//! # two-stage-gmres — reproduction of "Two-Stage Block Orthogonalization to
//! Improve Performance of s-step GMRES" (IPDPS 2024)
//!
//! This facade crate re-exports the workspace so downstream users can depend
//! on a single crate:
//!
//! * [`parkit`] — data-parallel primitives;
//! * [`dense`] — the dense linear-algebra kernels (GEMM, TRSM, Cholesky,
//!   Householder QR, Jacobi eigensolver);
//! * [`sparse`] — CSR matrices, SpMV, model problems, Matrix Market I/O;
//! * [`distsim`] — the simulated distributed-memory substrate;
//! * [`blockortho`] — every block orthogonalization scheme of the paper,
//!   including the two-stage algorithm;
//! * [`ssgmres`] — the standard / s-step GMRES solver with pluggable
//!   orthogonalization and preconditioning;
//! * [`testmat`] — the synthetic matrices of the numerical study;
//! * [`perfmodel`] — the analytic GPU-cluster performance model used to
//!   regenerate the paper's tables and figures.
//!
//! See the `examples/` directory for runnable entry points and the `bench`
//! crate for the per-table/figure experiment harness.

pub use blockortho;
pub use dense;
pub use distsim;
pub use parkit;
pub use perfmodel;
pub use sparse;
pub use ssgmres;
pub use testmat;
pub use trace;

/// Solve `A·x = b` with the paper's recommended configuration
/// (s-step GMRES, `s = 5`, restart 60, two-stage orthogonalization with
/// `bs = m`), returning the solution and solve statistics.
pub fn solve_two_stage(a: &sparse::Csr, b: &[f64], tol: f64) -> (Vec<f64>, ssgmres::SolveResult) {
    let config = ssgmres::GmresConfig {
        restart: 60,
        step_size: 5,
        tol,
        ortho: ssgmres::OrthoKind::TwoStage { big_panel: 60 },
        ..ssgmres::GmresConfig::default()
    };
    ssgmres::SStepGmres::new(config).solve_serial(a, b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_solves_a_small_system() {
        let a = sparse::laplace2d_5pt(20, 20);
        let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
        let (x, result) = crate::solve_two_stage(&a, &b, 1e-8);
        assert!(result.converged);
        assert!(x.iter().all(|v| (v - 1.0).abs() < 1e-5));
    }
}
