//! Property battery for per-column deflation in the block solver.
//!
//! The load-bearing claim: each restart cycle of `solve_block` is a pure
//! function of `(active residual block, x, A, b, config)` — deflating a
//! column therefore leaves the survivors' trajectories **bitwise**
//! unchanged versus a solve that never carried the deflated column from
//! the deflation cycle onward.  The battery verifies it constructively:
//!
//! 1. run a full block solve where one column gets a loose absolute
//!    target (so it deflates strictly first),
//! 2. replay the pre-deflation prefix by capping `max_restarts` at the
//!    recorded deflation cycle (bitwise the same cycles, so its output is
//!    the survivors' warm state at the deflation boundary),
//! 3. continue the survivors alone, warm-started from that state —
//!    and require the continued solve to land on the full solve's
//!    survivor columns bit for bit.
//!
//! Determinism of the deflation *schedule* is pinned separately: the
//! order and cycle at which columns deflate derive only from replicated
//! reduce results, so they are invariant across worker-thread counts
//! (swept here) and simulated rank counts (`DISTSIM_TEST_RANKS` extends
//! the sweep; `tests/block_equivalence.rs` pins the rank axis as well).

use std::sync::Arc;

use distsim::{run_ranks, Communicator, DistCsr};
use proptest::prelude::*;
use sparse::{block_row_partition, laplace2d_5pt, laplace2d_9pt, Csr};
use ssgmres::{BlockOptions, GmresConfig, Identity, OrthoKind, SStepGmres};

struct ThreadGuard;
impl Drop for ThreadGuard {
    fn drop(&mut self) {
        parkit::set_num_threads(0);
    }
}

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`
/// (comma-separated), the same hook the CI test matrix drives.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![2usize, 3];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

fn rhs_for(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 7 + seed * 13) % 17) as f64 * 0.25 - 2.0)
        .collect()
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dist_for(a: &Csr) -> DistCsr {
    let part = block_row_partition(a.nrows(), 1);
    DistCsr::from_global(distsim::SerialComm::new(), a, &part)
}

/// (solution bits, deflation order, deflation cycles) of one solve.
type Schedule = (Vec<f64>, Vec<usize>, Vec<Option<usize>>);

fn pack(n: usize, cols: &[&[f64]]) -> dense::Matrix {
    let mut m = dense::Matrix::zeros(n, cols.len());
    for (j, c) in cols.iter().enumerate() {
        m.col_mut(j).copy_from_slice(c);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn deflating_a_column_leaves_survivors_bitwise_unchanged(
        nx in 12usize..17,
        k in 2usize..5,
        loose in 0usize..4,
        s in 3usize..6,
        scheme in 0usize..2,
    ) {
        let loose = loose % k;
        let a = laplace2d_9pt(nx, nx);
        let n = a.nrows();
        let dist = dist_for(&a);
        let bs: Vec<Vec<f64>> = (0..k).map(|j| rhs_for(n, j)).collect();
        let b = pack(n, &bs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        // Column `loose` deflates strictly first (one cycle reaches a
        // 0.5·‖b‖ target by a wide margin); the others run deep.
        let targets: Vec<f64> = (0..k)
            .map(|j| if j == loose { 0.5 * norm(&bs[j]) } else { 1e-10 * norm(&bs[j]) })
            .collect();
        let opts = BlockOptions { abs_targets: Some(targets.clone()) };
        let config = GmresConfig {
            restart: 20,
            step_size: s,
            tol: 1e-10,
            ortho: if scheme == 0 {
                OrthoKind::TwoStage { big_panel: 20 }
            } else {
                OrthoKind::BcgsPip2
            },
            ..GmresConfig::default()
        };
        let solver = SStepGmres::new(config.clone());

        // 1. The full solve, with deflation.
        let mut x_full = dense::Matrix::zeros(n, k);
        let full = solver.solve_block_with(&dist, &Identity, &b, &mut x_full, &opts);
        prop_assert!(full.converged, "{:?}", full.breakdown);
        prop_assert_eq!(full.deflation_order.first(), Some(&loose));
        let c = full.deflated_at[loose].expect("loose column deflates");
        prop_assert!(c < full.restarts, "deflation must happen mid-solve");

        // 2. Replay the pre-deflation prefix: identical config capped at
        //    the deflation cycle reruns the identical cycles, so its x is
        //    the warm state at the boundary.
        let capped = SStepGmres::new(GmresConfig { max_restarts: c, ..config.clone() });
        let mut x_warm = dense::Matrix::zeros(n, k);
        let _ = capped.solve_block_with(&dist, &Identity, &b, &mut x_warm, &opts);

        // 3. Continue the survivors alone from the warm state.
        let survivors: Vec<usize> = (0..k).filter(|&j| j != loose).collect();
        let b_cont = pack(n, &survivors.iter().map(|&j| bs[j].as_slice()).collect::<Vec<_>>());
        let mut x_cont = pack(n, &survivors.iter().map(|&j| x_warm.col(j)).collect::<Vec<_>>());
        let cont_opts = BlockOptions {
            abs_targets: Some(survivors.iter().map(|&j| targets[j]).collect()),
        };
        let cont = solver.solve_block_with(&dist, &Identity, &b_cont, &mut x_cont, &cont_opts);
        prop_assert!(cont.converged, "{:?}", cont.breakdown);

        // The survivor columns are bitwise those of the full solve...
        for (p, &j) in survivors.iter().enumerate() {
            prop_assert_eq!(x_cont.col(p), x_full.col(j));
        }
        // ...and so is their post-deflation schedule.
        prop_assert_eq!(cont.restarts, full.restarts - c);
        for (p, &j) in survivors.iter().enumerate() {
            prop_assert_eq!(
                cont.relres_history[p].len(),
                full.relres_history[j].len() - c
            );
        }
    }

    #[test]
    fn deflation_schedule_is_deterministic_across_thread_counts(
        nx in 12usize..16,
        s in 3usize..6,
    ) {
        // Deflation decisions read only replicated reduce results, so the
        // worker-pool width must not move a single deflation by a single
        // cycle — and the solve itself stays bitwise width-invariant.
        let a = laplace2d_5pt(nx, nx);
        let n = a.nrows();
        let dist = dist_for(&a);
        let bs: Vec<Vec<f64>> = (0..3).map(|j| rhs_for(n, j)).collect();
        let b = pack(n, &bs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let opts = BlockOptions {
            abs_targets: Some(vec![
                1e-9 * norm(&bs[0]),
                0.5 * norm(&bs[1]),
                1e-6 * norm(&bs[2]),
            ]),
        };
        let solver = SStepGmres::new(GmresConfig {
            restart: 18,
            step_size: s,
            tol: 1e-9,
            ortho: OrthoKind::TwoStage { big_panel: 18 },
            ..GmresConfig::default()
        });
        let _guard = ThreadGuard;
        let mut baseline: Option<Schedule> = None;
        for threads in [1usize, 2, 4] {
            parkit::set_num_threads(threads);
            let mut x = dense::Matrix::zeros(n, 3);
            let r = solver.solve_block_with(&dist, &Identity, &b, &mut x, &opts);
            prop_assert!(r.converged, "threads {}: {:?}", threads, r.breakdown);
            let got = (x.data().to_vec(), r.deflation_order, r.deflated_at);
            match &baseline {
                None => baseline = Some(got),
                Some(expect) => prop_assert_eq!(expect, &got),
            }
        }
    }
}

#[test]
fn deflation_schedule_is_deterministic_across_rank_counts() {
    let (nx, ny) = (14, 14);
    let a = laplace2d_9pt(nx, ny);
    let n = a.nrows();
    let bs: Vec<Vec<f64>> = (0..3).map(|j| rhs_for(n, j)).collect();
    let targets = vec![1e-9 * norm(&bs[0]), 0.5 * norm(&bs[1]), 1e-6 * norm(&bs[2])];
    let config = GmresConfig {
        restart: 18,
        step_size: 4,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 18 },
        ..GmresConfig::default()
    };
    let solver = SStepGmres::new(config.clone());
    let b_ser = pack(n, &bs.iter().map(Vec::as_slice).collect::<Vec<_>>());
    let opts = BlockOptions {
        abs_targets: Some(targets.clone()),
    };
    let mut x_ser = dense::Matrix::zeros(n, 3);
    let serial = solver.solve_block_with(&dist_for(&a), &Identity, &b_ser, &mut x_ser, &opts);
    assert!(serial.converged, "{:?}", serial.breakdown);
    assert!(
        !serial.deflation_order.is_empty(),
        "the loose column must deflate mid-solve"
    );
    for nranks in ranks_under_test() {
        let part = block_row_partition(n, nranks);
        let schedules = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let comm_dyn: Arc<dyn Communicator> = comm;
            let dist = DistCsr::from_global(comm_dyn, &a, &part);
            let bm = pack(hi - lo, &bs.iter().map(|c| &c[lo..hi]).collect::<Vec<_>>());
            let mut x = dense::Matrix::zeros(hi - lo, 3);
            let r = SStepGmres::new(config.clone()).solve_block_with(
                &dist,
                &Identity,
                &bm,
                &mut x,
                &BlockOptions {
                    abs_targets: Some(targets.clone()),
                },
            );
            (r.converged, r.deflation_order, r.deflated_at, r.restarts)
        });
        for (rank, (converged, order, at, restarts)) in schedules.iter().enumerate() {
            assert!(*converged, "nranks {nranks} rank {rank}");
            assert_eq!(
                order, &serial.deflation_order,
                "nranks {nranks} rank {rank}: deflation order"
            );
            assert_eq!(
                at, &serial.deflated_at,
                "nranks {nranks} rank {rank}: deflation cycles"
            );
            assert_eq!(restarts, &serial.restarts, "nranks {nranks} rank {rank}");
        }
    }
}
