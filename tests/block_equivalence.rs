//! Block/single-RHS equivalence battery: the contract that makes
//! `SStepGmres::solve_block` safe to adopt incrementally.
//!
//! A one-column block solve is not "numerically close to" the scalar
//! solver — it **is** the scalar solver: every kernel call, reduce, and
//! branch happens in the identical order with the identical operands, so
//! solution bits, every per-cycle history, and the full communication
//! ledger (`CommStatsSnapshot` implements `PartialEq`) must match
//! exactly.  The battery pins that across orthogonalization schemes,
//! basis strategies, step policies, detection guards, thread-pool widths
//! (explicitly here; the CI test matrix additionally sweeps
//! `TWOSTAGE_NUM_THREADS`), and simulated rank counts
//! (`DISTSIM_TEST_RANKS`, comma-separated, extends the sweep like the
//! other distributed batteries).

use std::sync::Arc;

use distsim::{run_ranks, Communicator, DistCsr};
use sparse::{block_row_partition, laplace2d_9pt, Csr};
use ssgmres::{
    BasisStrategy, BlockSolveResult, GmresConfig, GuardPolicy, Identity, OrthoKind, SStepGmres,
    SolveResult, StepPolicy,
};

fn rhs_for(a: &Csr, seed: usize) -> Vec<f64> {
    (0..a.nrows())
        .map(|i| ((i * 7 + seed * 13) % 17) as f64 * 0.25 - 2.0)
        .collect()
}

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`
/// (comma-separated), the same hook the CI test matrix drives.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![2usize, 3];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

/// The full bitwise contract between a scalar solve and the k = 1 block
/// solve of the same system: solution, counts, every history, and both
/// communication ledgers.
fn assert_block_matches_scalar(
    tag: &str,
    x_scalar: &[f64],
    scalar: &SolveResult,
    x_block: &[f64],
    block: &BlockSolveResult,
) {
    assert_eq!(x_scalar, x_block, "{tag}: solution bits diverge");
    assert_eq!(scalar.converged, block.converged, "{tag}: converged");
    assert_eq!(vec![scalar.converged], block.col_converged, "{tag}");
    assert_eq!(scalar.iterations, block.iterations, "{tag}: iterations");
    assert_eq!(scalar.restarts, block.restarts, "{tag}: restarts");
    assert_eq!(
        scalar.final_relres.to_bits(),
        block.final_relres[0].to_bits(),
        "{tag}: final relres bits"
    );
    assert_eq!(
        scalar.relres_history, block.relres_history[0],
        "{tag}: relres history"
    );
    assert_eq!(
        scalar.shift_history, block.shift_history,
        "{tag}: shift history"
    );
    assert_eq!(scalar.step_history, block.step_history, "{tag}: steps");
    assert_eq!(scalar.spmv_count, block.spmv_count, "{tag}: spmv count");
    assert_eq!(
        scalar.precond_count, block.precond_count,
        "{tag}: precond count"
    );
    assert_eq!(scalar.rescues, block.rescues, "{tag}: rescues");
    assert_eq!(scalar.breakdown, block.breakdown, "{tag}: breakdown");
    assert_eq!(
        scalar.ortho_fallbacks, block.ortho_fallbacks,
        "{tag}: fallbacks"
    );
    assert_eq!(
        scalar.comm_total, block.comm_total,
        "{tag}: total communication ledger"
    );
    assert_eq!(
        scalar.comm_ortho, block.comm_ortho,
        "{tag}: ortho communication ledger"
    );
    // Health decisions must agree cycle by cycle (the block report adds
    // the per-column condition vector on top of the scalar fields).
    assert_eq!(
        scalar.health_history.len(),
        block.health_history.len(),
        "{tag}: health history length"
    );
    for (hs, hb) in scalar.health_history.iter().zip(&block.health_history) {
        assert_eq!(hs.verdict, hb.verdict, "{tag}: cycle verdict");
        assert_eq!(
            hs.kappa_est.to_bits(),
            hb.kappa_est.to_bits(),
            "{tag}: kappa bits"
        );
        assert_eq!(hb.kappa_per_col.len(), 1, "{tag}: one column, one kappa");
        assert_eq!(
            hb.kappa_per_col[0].to_bits(),
            hb.kappa_est.to_bits(),
            "{tag}: block kappa aggregates its only column"
        );
    }
}

#[test]
fn k1_block_solve_is_bitwise_the_scalar_solve_on_every_scheme() {
    let a = laplace2d_9pt(18, 18);
    let b = rhs_for(&a, 0);
    for ortho in [
        OrthoKind::Bcgs2CholQr2,
        OrthoKind::BcgsPip2,
        OrthoKind::TwoStage { big_panel: 30 },
        OrthoKind::RandCholQr,
        OrthoKind::TwoStageSketched { big_panel: 10 },
    ] {
        for basis in [
            BasisStrategy::Monomial,
            BasisStrategy::Adaptive(Default::default()),
        ] {
            let tag = format!("{ortho:?}/{basis:?}");
            let config = GmresConfig {
                restart: 30,
                step_size: 5,
                tol: 1e-9,
                ortho,
                basis: basis.clone(),
                ..GmresConfig::default()
            };
            let solver = SStepGmres::new(config);
            let (x_scalar, scalar) = solver.solve_serial(&a, &b);
            assert!(scalar.converged, "{tag}: {:?}", scalar.breakdown);
            let (x_block, block) = solver.solve_block_serial(&a, std::slice::from_ref(&b));
            assert_block_matches_scalar(&tag, &x_scalar, &scalar, x_block.col(0), &block);
            assert_eq!(block.deflated_at, vec![Some(block.restarts)], "{tag}");
            assert_eq!(block.deflation_order, vec![0], "{tag}");
        }
    }
}

#[test]
fn k1_equivalence_survives_auto_stepping_and_guards() {
    // Auto step policy exercises the controller/health plumbing; enabled
    // guards route the norm reduce through the guarded path — the block
    // solver must follow both bitwise at k = 1.
    let a = laplace2d_9pt(16, 16);
    let b = rhs_for(&a, 3);
    let config = GmresConfig {
        restart: 24,
        step_size: 6,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 12 },
        step_policy: StepPolicy::auto(),
        guards: GuardPolicy {
            gram_screen: true,
            agreement: true,
            ..GuardPolicy::default()
        },
        ..GmresConfig::default()
    };
    let solver = SStepGmres::new(config);
    let (x_scalar, scalar) = solver.solve_serial(&a, &b);
    assert!(scalar.converged, "{:?}", scalar.breakdown);
    let (x_block, block) = solver.solve_block_serial(&a, std::slice::from_ref(&b));
    assert_block_matches_scalar("auto+guards", &x_scalar, &scalar, x_block.col(0), &block);
    assert_eq!(scalar.faults_detected, block.faults_detected);
    assert_eq!(scalar.faults_recovered, block.faults_recovered);
}

#[test]
fn k1_equivalence_is_bitwise_on_every_thread_count() {
    // The pool width changes intra-reduce accumulation order in the fused
    // kernels; the scalar/block identity must hold at *each* width, and
    // the solves themselves must be width-invariant (the workspace-wide
    // determinism claim).
    let a = laplace2d_9pt(16, 16);
    let b = rhs_for(&a, 1);
    let config = GmresConfig {
        restart: 24,
        step_size: 4,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 24 },
        ..GmresConfig::default()
    };
    let solver = SStepGmres::new(config);
    let mut per_width: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for threads in [1usize, 4] {
        parkit::set_num_threads(threads);
        let (x_scalar, scalar) = solver.solve_serial(&a, &b);
        assert!(scalar.converged, "threads {threads}");
        let (x_block, block) = solver.solve_block_serial(&a, std::slice::from_ref(&b));
        assert_block_matches_scalar(
            &format!("threads {threads}"),
            &x_scalar,
            &scalar,
            x_block.col(0),
            &block,
        );
        per_width.push((x_scalar, x_block.col(0).to_vec()));
    }
    parkit::set_num_threads(0); // restore the automatic default
    let (x1_scalar, x1_block) = &per_width[0];
    for (xs, xb) in &per_width[1..] {
        assert_eq!(x1_scalar, xs, "scalar solve must be width-invariant");
        assert_eq!(x1_block, xb, "block solve must be width-invariant");
    }
}

#[test]
fn k1_equivalence_is_bitwise_on_every_rank_count() {
    let (nx, ny) = (18, 18);
    let a = laplace2d_9pt(nx, ny);
    let n = a.nrows();
    let b = rhs_for(&a, 2);
    let config = GmresConfig {
        restart: 24,
        step_size: 4,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 24 },
        ..GmresConfig::default()
    };
    for nranks in ranks_under_test() {
        let part = block_row_partition(n, nranks);
        let outcomes = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let comm_dyn: Arc<dyn Communicator> = comm;
            let dist = DistCsr::from_global(comm_dyn, &a, &part);
            let solver = SStepGmres::new(config.clone());
            let mut x_scalar = vec![0.0; hi - lo];
            let scalar = solver.solve(&dist, &Identity, &b[lo..hi], &mut x_scalar);
            let mut bm = dense::Matrix::zeros(hi - lo, 1);
            bm.col_mut(0).copy_from_slice(&b[lo..hi]);
            let mut x_block = dense::Matrix::zeros(hi - lo, 1);
            let block = solver.solve_block(&dist, &Identity, &bm, &mut x_block);
            (x_scalar, scalar, x_block, block)
        });
        for (rank, (x_scalar, scalar, x_block, block)) in outcomes.iter().enumerate() {
            assert!(scalar.converged, "nranks {nranks} rank {rank}");
            assert_block_matches_scalar(
                &format!("nranks {nranks} rank {rank}"),
                x_scalar,
                scalar,
                x_block.col(0),
                block,
            );
        }
    }
}

#[test]
fn wide_block_schedule_is_rank_count_invariant() {
    // Beyond k = 1: across rank counts the solve follows the same
    // contract the scalar solver pins in `distributed_equivalence.rs` —
    // the cycle-granular *schedule* (restart count, step history,
    // per-column history lengths, deflation order and deflation cycles)
    // is exactly reproduced because it derives only from replicated
    // reduce results with order-of-magnitude margins, while solution and
    // residual values agree to reduction-reordering accuracy (summation
    // order inside an allreduce legitimately depends on the rank count,
    // which can also move the panel-granular in-cycle early exit).
    let (nx, ny) = (16, 16);
    let a = laplace2d_9pt(nx, ny);
    let n = a.nrows();
    let bs: Vec<Vec<f64>> = (0..3).map(|j| rhs_for(&a, j)).collect();
    let config = GmresConfig {
        restart: 20,
        step_size: 5,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 20 },
        ..GmresConfig::default()
    };
    let solver = SStepGmres::new(config.clone());
    let (x_serial, r_serial) = solver.solve_block_serial(&a, &bs);
    assert!(r_serial.converged, "{:?}", r_serial.breakdown);
    for nranks in ranks_under_test() {
        let part = block_row_partition(n, nranks);
        let outcomes = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let comm_dyn: Arc<dyn Communicator> = comm;
            let dist = DistCsr::from_global(comm_dyn, &a, &part);
            let mut bm = dense::Matrix::zeros(hi - lo, 3);
            let mut x = dense::Matrix::zeros(hi - lo, 3);
            for (j, b) in bs.iter().enumerate() {
                bm.col_mut(j).copy_from_slice(&b[lo..hi]);
            }
            let block = SStepGmres::new(config.clone()).solve_block(&dist, &Identity, &bm, &mut x);
            (lo, x, block)
        });
        let mut x_dist = dense::Matrix::zeros(n, 3);
        for (lo, x, block) in &outcomes {
            assert!(block.converged, "nranks {nranks}");
            assert_eq!(block.deflated_at, r_serial.deflated_at, "nranks {nranks}");
            assert_eq!(
                block.deflation_order, r_serial.deflation_order,
                "nranks {nranks}: deflation order must be deterministic"
            );
            assert_eq!(block.restarts, r_serial.restarts, "nranks {nranks}");
            assert_eq!(block.step_history, r_serial.step_history, "nranks {nranks}");
            for (j, (hd, hs)) in block
                .relres_history
                .iter()
                .zip(&r_serial.relres_history)
                .enumerate()
            {
                assert_eq!(
                    hd.len(),
                    hs.len(),
                    "nranks {nranks} col {j}: history length"
                );
                assert!(
                    hd.last().unwrap() <= &1e-8,
                    "nranks {nranks} col {j}: final relres {}",
                    hd.last().unwrap()
                );
            }
            for j in 0..3 {
                x_dist.col_mut(j)[*lo..lo + x.nrows()].copy_from_slice(x.col(j));
            }
        }
        for (p, q) in x_dist.data().iter().zip(x_serial.data()) {
            assert!(
                (p - q).abs() < 1e-6,
                "nranks {nranks}: distributed and serial block solutions differ: {p} vs {q}"
            );
        }
        // And the assembled distributed solution is a genuine solve.
        for (j, b_col) in bs.iter().enumerate() {
            let ax = a.spmv_alloc(x_dist.col(j));
            let rn: f64 = ax
                .iter()
                .zip(b_col)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = b_col.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                rn / bn < 1e-7,
                "nranks {nranks} col {j}: relres {}",
                rn / bn
            );
        }
    }
}
