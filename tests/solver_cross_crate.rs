//! Cross-crate integration tests: full GMRES solves on the paper's problem
//! classes with every orthogonalization scheme and preconditioner
//! combination, checking solutions against the known exact answer.

use sparse::{
    elasticity3d, laplace2d_5pt, laplace2d_9pt, laplace3d_7pt, scale_rows_cols_by_max,
    suitesparse_surrogate, Csr, SUITE_SPARSE_SET,
};
use ssgmres::{
    standard_gmres_config, BlockJacobiGaussSeidel, GmresConfig, Jacobi, MulticolorGaussSeidel,
    OrthoKind, SStepGmres,
};

fn rhs_ones(a: &Csr) -> Vec<f64> {
    a.spmv_alloc(&vec![1.0; a.nrows()])
}

fn max_err(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max)
}

#[test]
fn every_scheme_solves_every_model_problem() {
    let problems: Vec<(&str, Csr)> = vec![
        ("laplace2d_5pt", laplace2d_5pt(20, 20)),
        ("laplace2d_9pt", laplace2d_9pt(18, 18)),
        ("laplace3d_7pt", laplace3d_7pt(8, 8, 8)),
        ("elasticity3d", elasticity3d(5, 5, 5)),
    ];
    let schemes = [
        OrthoKind::Bcgs2CholQr2,
        OrthoKind::Bcgs2Columnwise,
        OrthoKind::BcgsPip2,
        OrthoKind::TwoStage { big_panel: 30 },
    ];
    for (name, a) in &problems {
        let b = rhs_ones(a);
        for scheme in schemes {
            let solver = SStepGmres::new(GmresConfig {
                restart: 30,
                step_size: 5,
                tol: 1e-9,
                ortho: scheme,
                ..GmresConfig::default()
            });
            let (x, result) = solver.solve_serial(a, &b);
            assert!(result.converged, "{name} with {scheme:?}: {result:?}");
            assert!(
                max_err(&x) < 1e-6,
                "{name} with {scheme:?}: max error {}",
                max_err(&x)
            );
        }
    }
}

#[test]
fn standard_and_sstep_gmres_agree_on_solution() {
    let a = laplace2d_9pt(16, 16);
    let b = rhs_ones(&a);
    let (x_std, r_std) = SStepGmres::new(GmresConfig {
        restart: 30,
        tol: 1e-10,
        ..standard_gmres_config()
    })
    .solve_serial(&a, &b);
    let (x_ss, r_ss) = SStepGmres::new(GmresConfig {
        restart: 30,
        step_size: 5,
        tol: 1e-10,
        ortho: OrthoKind::TwoStage { big_panel: 30 },
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b);
    assert!(r_std.converged && r_ss.converged);
    for (p, q) in x_std.iter().zip(&x_ss) {
        assert!((p - q).abs() < 1e-7, "solutions diverge: {p} vs {q}");
    }
}

#[test]
fn preconditioners_compose_with_every_scheme() {
    let a = laplace2d_5pt(22, 22);
    let b = rhs_ones(&a);
    let jacobi = Jacobi::new(&a);
    let gs = BlockJacobiGaussSeidel::new(&a, 2);
    let mc = MulticolorGaussSeidel::new(&a, 1);
    let preconds: [(&str, &dyn ssgmres::Preconditioner); 3] =
        [("jacobi", &jacobi), ("gs", &gs), ("multicolor", &mc)];
    for scheme in [OrthoKind::BcgsPip2, OrthoKind::TwoStage { big_panel: 30 }] {
        let solver = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-8,
            ortho: scheme,
            ..GmresConfig::default()
        });
        let (_, unpreconditioned) = solver.solve_serial(&a, &b);
        for (name, p) in preconds {
            let (x, result) = solver.solve_serial_preconditioned(&a, &b, p);
            assert!(result.converged, "{name} with {scheme:?}");
            assert!(max_err(&x) < 1e-5, "{name} with {scheme:?}");
            assert!(
                result.iterations <= unpreconditioned.iterations,
                "{name} with {scheme:?} should not need more iterations"
            );
        }
    }
}

#[test]
fn scaled_suitesparse_surrogates_converge_with_two_stage() {
    // The paper's SuiteSparse experiments: row/column scaled, non-symmetric.
    for spec in SUITE_SPARSE_SET.iter().take(3) {
        let raw = suitesparse_surrogate(spec, Some(2_000), 9);
        let (a, _, _) = scale_rows_cols_by_max(&raw);
        let b = rhs_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 60,
            step_size: 5,
            tol: 1e-6,
            max_iters: 30_000,
            ortho: OrthoKind::TwoStage { big_panel: 60 },
            ..GmresConfig::default()
        });
        let (x, result) = solver.solve_serial(&a, &b);
        assert!(result.converged, "{}: {result:?}", spec.name);
        assert!(max_err(&x) < 1e-3, "{}: max err {}", spec.name, max_err(&x));
    }
}

#[test]
fn reduce_counts_follow_the_papers_ordering_end_to_end() {
    // End-to-end synchronization counts (the paper's core performance claim),
    // measured on real solves of the same problem with identical tolerances.
    let a = laplace2d_9pt(20, 20);
    let b = rhs_ones(&a);
    let run = |ortho, step| {
        let cfg = if step == 1 {
            GmresConfig {
                restart: 30,
                tol: 1e-8,
                ..standard_gmres_config()
            }
        } else {
            GmresConfig {
                restart: 30,
                step_size: step,
                tol: 1e-8,
                ortho,
                ..GmresConfig::default()
            }
        };
        SStepGmres::new(cfg).solve_serial(&a, &b).1
    };
    let standard = run(OrthoKind::Cgs2, 1);
    let bcgs2 = run(OrthoKind::Bcgs2CholQr2, 5);
    let pip2 = run(OrthoKind::BcgsPip2, 5);
    let two_stage = run(OrthoKind::TwoStage { big_panel: 30 }, 5);
    let per_iter = |r: &ssgmres::SolveResult| r.comm_ortho.allreduces as f64 / r.iterations as f64;
    assert!(per_iter(&two_stage) < per_iter(&pip2));
    assert!(per_iter(&pip2) < per_iter(&bcgs2));
    assert!(per_iter(&bcgs2) < per_iter(&standard) + 1.0);
    // Standard GMRES: 3 reduces per iteration; two-stage: ~(1/s + 1/bs).
    assert!((per_iter(&standard) - 3.0).abs() < 0.5);
    assert!(per_iter(&two_stage) < 0.5);
}
