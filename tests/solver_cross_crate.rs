//! Cross-crate integration tests: full GMRES solves on the paper's problem
//! classes with every orthogonalization scheme and preconditioner
//! combination, checking solutions against the known exact answer.

use sparse::{
    elasticity3d, laplace2d_5pt, laplace2d_9pt, laplace3d_7pt, scale_rows_cols_by_max,
    suitesparse_surrogate, Csr, SUITE_SPARSE_SET,
};
use ssgmres::{
    standard_gmres_config, BasisStrategy, BlockJacobiGaussSeidel, GmresConfig, Jacobi, KrylovBasis,
    MulticolorGaussSeidel, OrthoKind, SStepGmres,
};

fn rhs_ones(a: &Csr) -> Vec<f64> {
    a.spmv_alloc(&vec![1.0; a.nrows()])
}

fn max_err(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max)
}

#[test]
fn every_scheme_solves_every_model_problem() {
    let problems: Vec<(&str, Csr)> = vec![
        ("laplace2d_5pt", laplace2d_5pt(20, 20)),
        ("laplace2d_9pt", laplace2d_9pt(18, 18)),
        ("laplace3d_7pt", laplace3d_7pt(8, 8, 8)),
        ("elasticity3d", elasticity3d(5, 5, 5)),
    ];
    let schemes = [
        OrthoKind::Bcgs2CholQr2,
        OrthoKind::Bcgs2Columnwise,
        OrthoKind::BcgsPip2,
        OrthoKind::TwoStage { big_panel: 30 },
    ];
    for (name, a) in &problems {
        let b = rhs_ones(a);
        for scheme in schemes {
            let solver = SStepGmres::new(GmresConfig {
                restart: 30,
                step_size: 5,
                tol: 1e-9,
                ortho: scheme,
                ..GmresConfig::default()
            });
            let (x, result) = solver.solve_serial(a, &b);
            assert!(result.converged, "{name} with {scheme:?}: {result:?}");
            assert!(
                max_err(&x) < 1e-6,
                "{name} with {scheme:?}: max error {}",
                max_err(&x)
            );
        }
    }
}

#[test]
fn standard_and_sstep_gmres_agree_on_solution() {
    let a = laplace2d_9pt(16, 16);
    let b = rhs_ones(&a);
    let (x_std, r_std) = SStepGmres::new(GmresConfig {
        restart: 30,
        tol: 1e-10,
        ..standard_gmres_config()
    })
    .solve_serial(&a, &b);
    let (x_ss, r_ss) = SStepGmres::new(GmresConfig {
        restart: 30,
        step_size: 5,
        tol: 1e-10,
        ortho: OrthoKind::TwoStage { big_panel: 30 },
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b);
    assert!(r_std.converged && r_ss.converged);
    for (p, q) in x_std.iter().zip(&x_ss) {
        assert!((p - q).abs() < 1e-7, "solutions diverge: {p} vs {q}");
    }
}

#[test]
fn preconditioners_compose_with_every_scheme() {
    let a = laplace2d_5pt(22, 22);
    let b = rhs_ones(&a);
    let jacobi = Jacobi::new(&a);
    let gs = BlockJacobiGaussSeidel::new(&a, 2);
    let mc = MulticolorGaussSeidel::new(&a, 1);
    let preconds: [(&str, &dyn ssgmres::Preconditioner); 3] =
        [("jacobi", &jacobi), ("gs", &gs), ("multicolor", &mc)];
    for scheme in [OrthoKind::BcgsPip2, OrthoKind::TwoStage { big_panel: 30 }] {
        let solver = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-8,
            ortho: scheme,
            ..GmresConfig::default()
        });
        let (_, unpreconditioned) = solver.solve_serial(&a, &b);
        for (name, p) in preconds {
            let (x, result) = solver.solve_serial_preconditioned(&a, &b, p);
            assert!(result.converged, "{name} with {scheme:?}");
            assert!(max_err(&x) < 1e-5, "{name} with {scheme:?}");
            assert!(
                result.iterations <= unpreconditioned.iterations,
                "{name} with {scheme:?} should not need more iterations"
            );
        }
    }
}

#[test]
fn scaled_suitesparse_surrogates_converge_with_two_stage() {
    // The paper's SuiteSparse experiments: row/column scaled, non-symmetric.
    for spec in SUITE_SPARSE_SET.iter().take(3) {
        let raw = suitesparse_surrogate(spec, Some(2_000), 9);
        let (a, _, _) = scale_rows_cols_by_max(&raw);
        let b = rhs_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 60,
            step_size: 5,
            tol: 1e-6,
            max_iters: 30_000,
            ortho: OrthoKind::TwoStage { big_panel: 60 },
            ..GmresConfig::default()
        });
        let (x, result) = solver.solve_serial(&a, &b);
        assert!(result.converged, "{}: {result:?}", spec.name);
        assert!(max_err(&x) < 1e-3, "{}: max err {}", spec.name, max_err(&x));
    }
}

#[test]
fn zero_shift_newton_is_bitwise_identical_to_monomial() {
    // A Newton basis with no shifts (or all-zero shifts) applies theta = 0
    // to every column, which the matrix-powers kernel skips entirely — the
    // full solve must be bitwise identical to the monomial solve: same
    // solution bits, same residual history, same communication counts.
    let a = laplace2d_9pt(18, 18);
    let b = rhs_ones(&a);
    let run = |basis: BasisStrategy| {
        SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-9,
            ortho: OrthoKind::TwoStage { big_panel: 30 },
            basis,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
    };
    let (x_mono, r_mono) = run(BasisStrategy::Monomial);
    for basis in [
        BasisStrategy::Newton { shifts: vec![] },
        BasisStrategy::Newton {
            shifts: vec![0.0, 0.0, 0.0],
        },
    ] {
        let (x, r) = run(basis.clone());
        assert!(r.converged && r_mono.converged);
        assert_eq!(x, x_mono, "{basis:?}: solution bits diverge");
        assert_eq!(r.iterations, r_mono.iterations, "{basis:?}");
        assert_eq!(r.restarts, r_mono.restarts, "{basis:?}");
        assert_eq!(r.relres_history, r_mono.relres_history, "{basis:?}");
        assert_eq!(r.final_relres, r_mono.final_relres, "{basis:?}");
        assert_eq!(r.comm_total, r_mono.comm_total, "{basis:?}");
        assert_eq!(r.comm_ortho, r_mono.comm_ortho, "{basis:?}");
    }
    // The low-level mechanism agrees: an empty shift list is exactly the
    // zero-shift function.
    let empty = KrylovBasis::Newton { shifts: vec![] };
    for k in 0..40 {
        assert_eq!(empty.shift(k), KrylovBasis::Monomial.shift(k));
    }
}

#[test]
fn adaptive_solve_matches_scheduled_replay_bitwise() {
    // The adaptive policy's entire effect must flow through the shifts it
    // harvests: replaying its recorded per-cycle shift schedule through
    // BasisStrategy::Scheduled reproduces the solve bitwise (solution,
    // residual history, communication counts).
    let a0 = laplace2d_5pt(20, 20);
    let (a, _, _) = scale_rows_cols_by_max(&a0);
    let b = rhs_ones(&a);
    let config = GmresConfig {
        restart: 24,
        step_size: 6,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 24 },
        basis: BasisStrategy::adaptive(),
        ..GmresConfig::default()
    };
    let (x_ad, r_ad) = SStepGmres::new(config.clone()).solve_serial(&a, &b);
    assert!(r_ad.converged, "{r_ad:?}");
    assert!(
        r_ad.shift_history.iter().any(|s| !s.is_empty()),
        "adaptive run must have harvested shifts at least once: {:?}",
        r_ad.shift_history
    );
    // First cycle is the monomial warm-up.
    assert!(r_ad.shift_history[0].is_empty());
    let (x_replay, r_replay) = SStepGmres::new(GmresConfig {
        basis: BasisStrategy::Scheduled {
            per_cycle: r_ad.shift_history.clone(),
        },
        ..config
    })
    .solve_serial(&a, &b);
    assert_eq!(x_replay, x_ad, "replayed solution bits diverge");
    assert_eq!(r_replay.iterations, r_ad.iterations);
    assert_eq!(r_replay.restarts, r_ad.restarts);
    assert_eq!(r_replay.relres_history, r_ad.relres_history);
    assert_eq!(r_replay.shift_history, r_ad.shift_history);
    assert_eq!(r_replay.comm_total, r_ad.comm_total);
    assert_eq!(r_replay.comm_ortho, r_ad.comm_ortho);
}

#[test]
fn newton_shifts_leave_the_communication_structure_unchanged() {
    // The shifted matrix-powers kernel applies theta locally after the halo
    // exchange, and shift harvesting runs on the replicated Hessenberg —
    // so against a fixed iteration budget the Newton and adaptive bases
    // must produce exactly the communication counts of the monomial basis.
    let a = laplace2d_5pt(16, 16);
    let b = rhs_ones(&a);
    let run = |basis: BasisStrategy| {
        SStepGmres::new(GmresConfig {
            restart: 20,
            step_size: 5,
            tol: 1e-30, // never converges: both runs use the full budget
            max_restarts: 3,
            ortho: OrthoKind::TwoStage { big_panel: 20 },
            basis,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
        .1
    };
    let mono = run(BasisStrategy::Monomial);
    let newton = run(BasisStrategy::Newton {
        shifts: vec![6.0, 2.0, 4.0, 1.0, 7.0],
    });
    let adaptive = run(BasisStrategy::adaptive());
    assert_eq!(mono.iterations, newton.iterations);
    assert_eq!(mono.iterations, adaptive.iterations);
    assert_eq!(
        mono.comm_total, newton.comm_total,
        "fixed Newton shifts changed communication"
    );
    assert_eq!(
        mono.comm_total, adaptive.comm_total,
        "adaptive harvesting changed communication"
    );
    assert_eq!(mono.comm_ortho, newton.comm_ortho);
    assert_eq!(mono.comm_ortho, adaptive.comm_ortho);
}

#[test]
fn adaptive_basis_condition_number_beats_monomial_at_s8() {
    // The acceptance pin behind BENCH_basis.json: for s = 8 on the 2-D
    // Laplace stencil, the harvested adaptive Newton basis has strictly
    // lower measured condition number than the monomial basis.  This runs
    // the same pipeline as `bench --bin basis_compare`: a monomial warm-up
    // solve harvests Ritz shifts, and the resulting basis is measured with
    // the Jacobi-SVD condition number.
    let a = laplace2d_5pt(24, 24);
    let b = rhs_ones(&a);
    let s = 8;
    let warmup = SStepGmres::new(GmresConfig {
        restart: 24,
        step_size: s,
        tol: 1e-30,
        max_restarts: 1,
        ortho: OrthoKind::TwoStage { big_panel: 24 },
        basis: BasisStrategy::adaptive(),
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b)
    .1;
    let shifts = warmup.last_harvest.expect("warm-up harvest must succeed");
    assert!(shifts.len() <= s);
    let v0 = b.clone();
    let kappa_mono = ssgmres::shifts::basis_condition_number(&a, &KrylovBasis::Monomial, s, &v0);
    let kappa_newton =
        ssgmres::shifts::basis_condition_number(&a, &KrylovBasis::Newton { shifts }, s, &v0);
    assert!(
        kappa_newton < kappa_mono,
        "adaptive Newton basis must beat monomial at s=8: {kappa_newton:.3e} vs {kappa_mono:.3e}"
    );
    // The gap must be substantive (the monomial basis degrades
    // exponentially in s; Leja shifts keep the growth polynomial).
    assert!(
        kappa_newton < 0.5 * kappa_mono,
        "expected a substantive conditioning gain: {kappa_newton:.3e} vs {kappa_mono:.3e}"
    );
}

#[test]
fn adaptive_basis_converges_on_the_papers_problem_classes() {
    // The adaptive Newton basis must not regress convergence anywhere the
    // monomial basis works, including at step sizes beyond the paper's
    // conservative s = 5 where the monomial basis begins to strain.  (The
    // adaptive warm-up cycle is monomial, so step sizes where even one
    // monomial panel collapses — laplace2d at s = 16, elasticity3d at
    // s ≥ 9 — need the warm-up shift-oracle pattern below or the
    // step-shrink controller instead.)
    for (name, a, s) in [
        ("laplace2d_9pt", laplace2d_9pt(16, 16), 5),
        ("laplace2d_9pt", laplace2d_9pt(16, 16), 8),
        ("elasticity3d", elasticity3d(5, 5, 5), 5),
    ] {
        let b = rhs_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 32,
            step_size: s,
            tol: 1e-8,
            ortho: OrthoKind::TwoStage { big_panel: 32 },
            basis: BasisStrategy::adaptive(),
            ..GmresConfig::default()
        });
        let (x, result) = solver.solve_serial(&a, &b);
        assert!(result.converged, "{name} s={s}: {result:?}");
        assert!(max_err(&x) < 1e-5, "{name} s={s}: {}", max_err(&x));
    }
}

#[test]
fn warmup_shift_oracle_rescues_step_sizes_the_monomial_basis_cannot_run() {
    // laplace2d_9pt at s = 16: the monomial matrix-powers panel is
    // decisively rank deficient, so the plain solve dies.  Harvesting
    // shifts from a short s = 4 warm-up cycle (SolveResult::last_harvest)
    // and running fixed Newton shifts at s = 16 converges — the Newton
    // basis opens a step size the monomial basis cannot reach at all.
    // (The Laplace spectrum is spread enough that the harvest keeps a full
    // complement of distinct shifts; elasticity3d's clustered Ritz values
    // dedupe down to a handful, which is the step-shrink controller's
    // territory — see tests/controller_equivalence.rs.)
    let a = laplace2d_9pt(16, 16);
    let b = rhs_ones(&a);
    let s = 16;
    let monomial = SStepGmres::new(GmresConfig {
        restart: 32,
        step_size: s,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 32 },
        basis: BasisStrategy::Monomial,
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b)
    .1;
    assert!(
        !monomial.converged && monomial.breakdown.is_some(),
        "premise: monomial s=16 must break down on laplace2d_9pt(16,16): {monomial:?}"
    );
    let warmup = SStepGmres::new(GmresConfig {
        restart: 24,
        step_size: 4,
        tol: 1e-30,
        max_restarts: 1,
        ortho: OrthoKind::TwoStage { big_panel: 24 },
        basis: BasisStrategy::Adaptive(ssgmres::AdaptiveBasis {
            max_shifts: s,
            ..ssgmres::AdaptiveBasis::default()
        }),
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b)
    .1;
    let shifts = warmup.last_harvest.expect("warm-up harvest");
    let (x, newton) = SStepGmres::new(GmresConfig {
        restart: 32,
        step_size: s,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 32 },
        basis: BasisStrategy::Newton { shifts },
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b);
    assert!(newton.converged, "{newton:?}");
    assert!(max_err(&x) < 1e-5, "max err {}", max_err(&x));
}

#[test]
fn reduce_counts_follow_the_papers_ordering_end_to_end() {
    // End-to-end synchronization counts (the paper's core performance claim),
    // measured on real solves of the same problem with identical tolerances.
    let a = laplace2d_9pt(20, 20);
    let b = rhs_ones(&a);
    let run = |ortho, step| {
        let cfg = if step == 1 {
            GmresConfig {
                restart: 30,
                tol: 1e-8,
                ..standard_gmres_config()
            }
        } else {
            GmresConfig {
                restart: 30,
                step_size: step,
                tol: 1e-8,
                ortho,
                ..GmresConfig::default()
            }
        };
        SStepGmres::new(cfg).solve_serial(&a, &b).1
    };
    let standard = run(OrthoKind::Cgs2, 1);
    let bcgs2 = run(OrthoKind::Bcgs2CholQr2, 5);
    let pip2 = run(OrthoKind::BcgsPip2, 5);
    let two_stage = run(OrthoKind::TwoStage { big_panel: 30 }, 5);
    let per_iter = |r: &ssgmres::SolveResult| r.comm_ortho.allreduces as f64 / r.iterations as f64;
    assert!(per_iter(&two_stage) < per_iter(&pip2));
    assert!(per_iter(&pip2) < per_iter(&bcgs2));
    assert!(per_iter(&bcgs2) < per_iter(&standard) + 1.0);
    // Standard GMRES: 3 reduces per iteration; two-stage: ~(1/s + 1/bs).
    assert!((per_iter(&standard) - 3.0).abs() < 0.5);
    assert!(per_iter(&two_stage) < 0.5);
}
