//! Fault-tolerance battery: the fault-injection communicator, the
//! detection guards, and the solver's recovery ladder, exercised through
//! full distributed solves on simulated (thread) ranks.
//!
//! The contracts pinned here:
//!
//! * **Transparency** — a [`FaultyComm`] driven by the empty plan is
//!   *bitwise* invisible: identical solutions and identical communication
//!   statistics (down to per-peer tallies) on every rank count, across a
//!   property sweep of solver configurations.
//! * **Zero-fault guard cost** — enabling every guard adds **zero global
//!   reductions** and leaves the solve bitwise unchanged; the guards ride
//!   on widened payloads only.
//! * **In-place recovery** — a single corrupted Gram contribution, a
//!   failed collective, or a duplicated halo message is detected and
//!   repaired *in place*: the guarded solve is bitwise identical to its
//!   fault-free twin.
//! * **Rollback recovery** — a dropped or over-stalled halo message
//!   poisons the cycle; the solver rolls back and still converges.
//! * **Silent-error demonstration** — the same norm-reduce bit flip that
//!   makes the *unguarded* solver report convergence with a wrong answer
//!   is caught and repaired by the duplicated-word guard.
//!
//! Rank counts sweep `DISTSIM_TEST_RANKS` (comma-separated) like the other
//! distributed batteries.

use distsim::{
    run_ranks, Communicator, DistCsr, FaultKind, FaultPlan, FaultyComm, GuardPolicy, OpKind, Target,
};
use proptest::prelude::*;
use sparse::{block_row_partition, laplace2d_9pt, Csr};
use ssgmres::{GmresConfig, Identity, OrthoKind, SStepGmres, SolveResult};
use std::sync::Arc;

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`
/// (comma-separated), the same hook the CI test matrix drives.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![2usize, 3];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

/// Run one distributed solve, optionally wrapping every rank's
/// communicator in a [`FaultyComm`] driven by `plan`.  Returns each rank's
/// local solution block and its [`SolveResult`].
fn solve_dist(
    a: &Csr,
    b: &[f64],
    nranks: usize,
    config: &GmresConfig,
    plan: Option<&FaultPlan>,
) -> Vec<(Vec<f64>, SolveResult)> {
    let part = block_row_partition(a.nrows(), nranks);
    run_ranks(nranks, |comm| {
        let (lo, hi) = part.range(comm.rank());
        let comm_dyn: Arc<dyn Communicator> = match plan {
            Some(p) => FaultyComm::wrap(comm, p.clone()),
            None => comm,
        };
        let dist = DistCsr::from_global(comm_dyn, a, &part);
        let mut x = vec![0.0; hi - lo];
        let result = SStepGmres::new(config.clone()).solve(&dist, &Identity, &b[lo..hi], &mut x);
        (x, result)
    })
}

/// Stitch per-rank solution blocks back into a global vector.
fn gather(a: &Csr, nranks: usize, pieces: &[(Vec<f64>, SolveResult)]) -> Vec<f64> {
    let part = block_row_partition(a.nrows(), nranks);
    let mut x = vec![0.0; a.nrows()];
    for (rank, (piece, _)) in pieces.iter().enumerate() {
        let (lo, hi) = part.range(rank);
        x[lo..hi].copy_from_slice(piece);
    }
    x
}

/// True relative residual `‖b − A·x‖ / ‖b‖` (the solves start from x = 0).
fn true_relres(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.spmv_alloc(x);
    let num: f64 = b
        .iter()
        .zip(&ax)
        .map(|(bi, axi)| (bi - axi) * (bi - axi))
        .sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den).sqrt()
}

/// A right-hand side normalized to unit norm, so every rank's local
/// squared-norm contribution stays well inside `[2⁻⁶³, 2)` where the
/// exponent-bit flips of the silent-error scenarios behave predictably.
fn unit_rhs(a: &Csr) -> Vec<f64> {
    let mut b = a.spmv_alloc(&vec![1.0; a.nrows()]);
    let norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    for v in &mut b {
        *v /= norm;
    }
    b
}

fn base_config() -> GmresConfig {
    GmresConfig {
        restart: 16,
        step_size: 4,
        tol: 1e-8,
        max_iters: 20_000,
        ortho: OrthoKind::BcgsPip2,
        ..GmresConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A `FaultyComm` with the empty plan is bitwise the inner
    /// communicator: same solutions, same solver statistics, and the same
    /// `CommStats` snapshot including per-peer tallies — across solver
    /// configurations and the rank sweep.
    #[test]
    fn empty_fault_plan_is_bitwise_transparent(
        s in 2usize..6,
        restart in 12usize..24,
        two_stage in 0usize..2,
    ) {
        let a = laplace2d_9pt(14, 14);
        let b = unit_rhs(&a);
        let config = GmresConfig {
            restart,
            step_size: s,
            tol: 1e-7,
            max_iters: 20_000,
            ortho: if two_stage == 1 {
                OrthoKind::TwoStage { big_panel: restart }
            } else {
                OrthoKind::BcgsPip2
            },
            ..GmresConfig::default()
        };
        let plan = FaultPlan::none();
        for nranks in ranks_under_test() {
            let plain = solve_dist(&a, &b, nranks, &config, None);
            let wrapped = solve_dist(&a, &b, nranks, &config, Some(&plan));
            for (rank, ((xp, rp), (xw, rw))) in plain.iter().zip(&wrapped).enumerate() {
                prop_assert!(
                    xp == xw,
                    "rank {}/{}: solutions must be bitwise equal",
                    rank,
                    nranks
                );
                prop_assert_eq!(rp.iterations, rw.iterations);
                prop_assert_eq!(rp.converged, rw.converged);
                prop_assert!(
                    rp.comm_total == rw.comm_total,
                    "rank {}/{}: comm stats (incl. per-peer tallies) must match",
                    rank,
                    nranks
                );
                prop_assert_eq!(rw.faults_detected, 0);
            }
        }
    }
}

#[test]
fn guards_at_zero_faults_add_zero_reductions_and_stay_bitwise() {
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let unguarded = base_config();
    let guarded = GmresConfig {
        guards: GuardPolicy::all(),
        ..base_config()
    };
    for nranks in ranks_under_test() {
        let off = solve_dist(&a, &b, nranks, &unguarded, None);
        let on = solve_dist(&a, &b, nranks, &guarded, None);
        for (rank, ((xo, ro), (xg, rg))) in off.iter().zip(&on).enumerate() {
            assert!(rg.converged, "rank {rank}/{nranks}");
            assert_eq!(
                xo, xg,
                "rank {rank}/{nranks}: guards at zero faults must not perturb the solve"
            );
            assert_eq!(ro.iterations, rg.iterations);
            // The whole point of structure-exploiting guards: wider
            // payloads, **zero** additional global reductions or messages.
            assert_eq!(
                ro.comm_total.allreduces, rg.comm_total.allreduces,
                "rank {rank}/{nranks}: guards must add zero reductions"
            );
            assert_eq!(ro.comm_total.p2p_messages, rg.comm_total.p2p_messages);
            assert_eq!(rg.comm_total.allreduce_retries, 0);
            assert_eq!(rg.faults_detected, 0);
            assert!(rg.fault_events.is_empty());
        }
    }
}

#[test]
fn gram_bitflip_is_detected_and_repaired_in_place() {
    // A single flipped exponent bit in one rank's contribution to the
    // first panel Gram reduce (word s+1 = the (1,0) entry of the Gram
    // block behind the s-word projection prefix) breaks the bitwise
    // symmetry the screen checks.  The guard retries the reduce from the
    // saved clean contributions, so the repaired solve is bitwise the
    // fault-free one.
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let s = 4usize;
    let config = GmresConfig {
        guards: GuardPolicy::all(),
        ..base_config()
    };
    let plan = FaultPlan::none().with(
        Target::nth(OpKind::Allreduce, 0)
            .on_rank(0)
            .in_phase("ortho")
            .with_min_words(s * s),
        FaultKind::BitFlip {
            word: Some(s + 1),
            bit: 62,
        },
    );
    for nranks in ranks_under_test() {
        if nranks < 2 {
            continue;
        }
        let clean = solve_dist(&a, &b, nranks, &config, None);
        let faulted = solve_dist(&a, &b, nranks, &config, Some(&plan));
        for (rank, ((xc, _), (xf, rf))) in clean.iter().zip(&faulted).enumerate() {
            assert!(rf.converged, "rank {rank}/{nranks}");
            assert!(
                rf.faults_detected >= 1,
                "rank {rank}/{nranks}: the flip must be detected"
            );
            assert!(rf.faults_recovered >= 1);
            assert_eq!(rf.faults_unrecovered, 0);
            assert!(rf.comm_total.allreduce_retries >= 1, "repair = a retry");
            assert_eq!(
                xc, xf,
                "rank {rank}/{nranks}: in-place repair must be bitwise exact"
            );
        }
    }
}

#[test]
fn failed_collective_is_retried_and_bitwise_repaired() {
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let s = 4usize;
    let config = GmresConfig {
        guards: GuardPolicy::all(),
        ..base_config()
    };
    // A transient failure of a Gram reduce: NaN on every rank, caught by
    // the finiteness screen, repaired by one retry.
    let plan = FaultPlan::none().with(
        Target::nth(OpKind::Allreduce, 1)
            .in_phase("ortho")
            .with_min_words(s * s),
        FaultKind::OpFail,
    );
    let nranks = 2;
    let clean = solve_dist(&a, &b, nranks, &config, None);
    let faulted = solve_dist(&a, &b, nranks, &config, Some(&plan));
    for (rank, ((xc, _), (xf, rf))) in clean.iter().zip(&faulted).enumerate() {
        assert!(rf.converged, "rank {rank}");
        assert!(rf.faults_detected >= 1);
        assert!(rf.faults_recovered >= 1);
        assert_eq!(rf.faults_unrecovered, 0);
        assert_eq!(xc, xf, "rank {rank}: retry must restore the exact sum");
    }
}

#[test]
fn norm_flip_false_convergence_is_caught_by_the_duplicated_word_guard() {
    // The one truly *silent* failure mode: flip exponent bit 58 of every
    // rank's contribution to the cycle-1 residual-norm reduce.  The
    // squared norm collapses by 2⁻⁶⁴, the unguarded solver believes it
    // converged and returns a wrong answer without any breakdown.  The
    // duplicated-word guard sees the two halves of the payload disagree,
    // retries, and the guarded solve converges for real.
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let unguarded = base_config();
    let guarded = GmresConfig {
        guards: GuardPolicy::all(),
        ..base_config()
    };
    let plan = FaultPlan::none().with(
        Target::nth(OpKind::Allreduce, 1).in_phase("residual"),
        FaultKind::BitFlip {
            word: Some(0),
            bit: 58,
        },
    );
    let nranks = 2;
    // Sanity: fault-free, the solve needs more than one cycle, so the
    // targeted reduce (end of cycle 1) is not already converged.
    let reference = solve_dist(&a, &b, nranks, &unguarded, None);
    assert!(reference[0].1.restarts > 1, "scenario needs >1 cycle");

    let silent = solve_dist(&a, &b, nranks, &unguarded, Some(&plan));
    let x_silent = gather(&a, nranks, &silent);
    assert!(
        silent[0].1.converged,
        "the unguarded solver must *believe* it converged"
    );
    assert!(silent[0].1.breakdown.is_none(), "and see no breakdown");
    let relres_silent = true_relres(&a, &b, &x_silent);
    assert!(
        relres_silent > 1e2 * unguarded.tol,
        "…while the answer is silently wrong: true relres {relres_silent:e}"
    );

    let caught = solve_dist(&a, &b, nranks, &guarded, Some(&plan));
    let x_caught = gather(&a, nranks, &caught);
    for (rank, (_, r)) in caught.iter().enumerate() {
        assert!(r.converged, "rank {rank}");
        assert!(r.faults_detected >= 1, "rank {rank}: flip must be detected");
        assert_eq!(r.faults_unrecovered, 0);
    }
    let relres_caught = true_relres(&a, &b, &x_caught);
    assert!(
        relres_caught <= 10.0 * guarded.tol,
        "guarded solve must converge for real: true relres {relres_caught:e}"
    );
}

#[test]
fn dropped_halo_message_rolls_back_the_cycle_and_converges() {
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let config = GmresConfig {
        guards: GuardPolicy {
            halo_timeout_ms: 100,
            ..GuardPolicy::all()
        },
        ..base_config()
    };
    // Swallow rank 0's first matrix-powers halo message: the receiver
    // times out, poisons its ghosts, and the NaN cascades into a Gram
    // breakdown — the cycle rolls back and the solve still converges.
    let plan = FaultPlan::none().with(
        Target::nth(OpKind::Send, 0).on_rank(0).in_phase("mpk"),
        FaultKind::DropMessage,
    );
    let nranks = 2;
    let faulted = solve_dist(&a, &b, nranks, &config, Some(&plan));
    let x = gather(&a, nranks, &faulted);
    let detected: usize = faulted.iter().map(|(_, r)| r.faults_detected).sum();
    assert!(detected >= 1, "the lost message must be detected");
    assert!(
        faulted
            .iter()
            .flat_map(|(_, r)| &r.fault_events)
            .any(|e| e.guard.starts_with("halo")),
        "detection must come from a halo guard"
    );
    for (rank, (_, r)) in faulted.iter().enumerate() {
        assert!(r.converged, "rank {rank}");
    }
    let relres = true_relres(&a, &b, &x);
    assert!(relres <= 10.0 * config.tol, "true relres {relres:e}");
}

#[test]
fn duplicated_halo_message_is_discarded_exactly() {
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let config = GmresConfig {
        guards: GuardPolicy::all(),
        ..base_config()
    };
    let plan = FaultPlan::none().with(
        Target::nth(OpKind::Send, 0).on_rank(0).in_phase("mpk"),
        FaultKind::DuplicateMessage,
    );
    let nranks = 2;
    let clean = solve_dist(&a, &b, nranks, &config, None);
    let faulted = solve_dist(&a, &b, nranks, &config, Some(&plan));
    let detected: usize = faulted.iter().map(|(_, r)| r.faults_detected).sum();
    let unrecovered: usize = faulted.iter().map(|(_, r)| r.faults_unrecovered).sum();
    assert!(detected >= 1, "the duplicate must be seen");
    assert_eq!(unrecovered, 0);
    for (rank, ((xc, rc), (xf, rf))) in clean.iter().zip(&faulted).enumerate() {
        assert!(rf.converged, "rank {rank}");
        assert_eq!(rc.iterations, rf.iterations);
        assert_eq!(
            xc, xf,
            "rank {rank}: a discarded duplicate must leave the solve bitwise unchanged"
        );
    }
}

#[test]
fn stalled_halo_link_times_out_poisons_and_recovers() {
    // The stall outlives the halo patience: the receiver writes the
    // message off (guarded timeout instead of a hang — the configurable
    // recv-timeout satellite), the poisoned cycle rolls back, and the
    // stale frame that eventually arrives is discarded by its sequence
    // number.
    let a = laplace2d_9pt(16, 16);
    let b = unit_rhs(&a);
    let config = GmresConfig {
        guards: GuardPolicy {
            halo_timeout_ms: 80,
            ..GuardPolicy::all()
        },
        ..base_config()
    };
    let plan = FaultPlan::none().with(
        Target::nth(OpKind::Send, 0).on_rank(0).in_phase("mpk"),
        FaultKind::Stall { millis: 250 },
    );
    let nranks = 2;
    let faulted = solve_dist(&a, &b, nranks, &config, Some(&plan));
    let x = gather(&a, nranks, &faulted);
    let detected: usize = faulted.iter().map(|(_, r)| r.faults_detected).sum();
    assert!(detected >= 1, "the overdue message must be written off");
    for (rank, (_, r)) in faulted.iter().enumerate() {
        assert!(r.converged, "rank {rank}");
    }
    let relres = true_relres(&a, &b, &x);
    assert!(relres <= 10.0 * config.tol, "true relres {relres:e}");
}

#[test]
fn seeded_campaign_solves_replay_bitwise() {
    // The same seed must reproduce the same faults and therefore the same
    // solve, bit for bit — the replayability contract campaigns rely on.
    let a = laplace2d_9pt(14, 14);
    let b = unit_rhs(&a);
    let config = GmresConfig {
        guards: GuardPolicy::all(),
        ..base_config()
    };
    let plan = FaultPlan::from_seed(
        0x5eed_cafe,
        distsim::FaultRates {
            bitflip: 0.02,
            ..Default::default()
        },
    );
    let nranks = 2;
    let first = solve_dist(&a, &b, nranks, &config, Some(&plan));
    let second = solve_dist(&a, &b, nranks, &config, Some(&plan));
    for (rank, ((xa, ra), (xb, rb))) in first.iter().zip(&second).enumerate() {
        assert_eq!(xa, xb, "rank {rank}: replay must be bitwise");
        assert_eq!(ra.iterations, rb.iterations);
        assert_eq!(ra.faults_detected, rb.faults_detected);
        assert_eq!(ra.faults_recovered, rb.faults_recovered);
        assert_eq!(&ra.comm_total, &rb.comm_total);
    }
}
