//! Cross-crate pins of the step-size controller's equivalence claims:
//!
//! * `StepPolicy::Fixed` is the default and leaves the solver exactly as it
//!   was before the controller existed (the bitwise pins in
//!   `tests/solver_cross_crate.rs` / `tests/distributed_equivalence.rs`
//!   were written against the pre-controller solver and still pass; here
//!   we additionally pin Fixed against a `Scheduled` replay of itself).
//! * `StepPolicy::Auto` observing only healthy cycles is bitwise identical
//!   to `Fixed` — solution bits, residual/shift/step histories, and every
//!   communication counter.
//! * `Auto`'s decisions cost **zero additional reductions**: replaying an
//!   Auto solve's recorded `step_history` + `shift_history` through the
//!   decision-free `Scheduled` policies reproduces the solve bitwise,
//!   communication counts included — so at equal realized step sizes the
//!   reduce/word counts are exactly those of a controller-less solve.
//! * The acceptance headline: `Auto` rescues elasticity3d at a requested
//!   `s = 10` — where `Fixed` breaks down — with no manual warm-up oracle.
//!   (s = 8 used to be the canonical breaking step; the SIMD Gram kernels'
//!   split accumulators are accurate enough that s = 8 now sits on the
//!   knife edge, so the battery pins the decisively deficient s = 10.)

use sparse::{elasticity3d, laplace2d_9pt, Csr};
use ssgmres::{
    AutoStep, BasisStrategy, CycleVerdict, GmresConfig, OrthoKind, SStepGmres, SolveResult,
    StepPolicy,
};

fn rhs_ones(a: &Csr) -> Vec<f64> {
    a.spmv_alloc(&vec![1.0; a.nrows()])
}

fn max_err(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max)
}

/// Assert two solves are bitwise identical in every observable the replay
/// claims cover: solution bits, counts, histories, and communication.
fn assert_bitwise_equal(tag: &str, xa: &[f64], ra: &SolveResult, xb: &[f64], rb: &SolveResult) {
    assert_eq!(xa, xb, "{tag}: solution bits diverge");
    assert_eq!(ra.converged, rb.converged, "{tag}");
    assert_eq!(ra.iterations, rb.iterations, "{tag}");
    assert_eq!(ra.restarts, rb.restarts, "{tag}");
    assert_eq!(ra.final_relres, rb.final_relres, "{tag}");
    assert_eq!(ra.relres_history, rb.relres_history, "{tag}");
    assert_eq!(ra.shift_history, rb.shift_history, "{tag}");
    assert_eq!(ra.step_history, rb.step_history, "{tag}");
    assert_eq!(ra.spmv_count, rb.spmv_count, "{tag}");
    assert_eq!(ra.comm_total, rb.comm_total, "{tag}: total communication");
    assert_eq!(ra.comm_ortho, rb.comm_ortho, "{tag}: ortho communication");
}

#[test]
fn fixed_is_the_default_policy_and_replays_through_scheduled() {
    assert_eq!(GmresConfig::default().step_policy, StepPolicy::Fixed);
    let a = laplace2d_9pt(18, 18);
    let b = rhs_ones(&a);
    let config = GmresConfig {
        restart: 30,
        step_size: 5,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 30 },
        ..GmresConfig::default()
    };
    let (x_fixed, r_fixed) = SStepGmres::new(config.clone()).solve_serial(&a, &b);
    assert!(r_fixed.converged);
    assert!(r_fixed.step_history.iter().all(|&s| s == 5));
    assert_eq!(r_fixed.rescues, 0);
    // A Scheduled replay of Fixed's step history is the same solve: the
    // policy machinery adds nothing once the realized steps are equal.
    let (x_replay, r_replay) = SStepGmres::new(GmresConfig {
        step_policy: StepPolicy::Scheduled {
            per_cycle: r_fixed.step_history.clone(),
        },
        ..config
    })
    .solve_serial(&a, &b);
    assert_bitwise_equal(
        "fixed vs scheduled replay",
        &x_fixed,
        &r_fixed,
        &x_replay,
        &r_replay,
    );
}

#[test]
fn auto_with_all_healthy_signals_is_bitwise_identical_to_fixed() {
    // On a problem where every cycle is clean, Auto must never deviate:
    // same solution bits, same histories, same communication counters —
    // the monitoring itself is free and decision-free cycles change
    // nothing.
    let a = laplace2d_9pt(18, 18);
    let b = rhs_ones(&a);
    // big_panel < restart keeps `finalized` advancing, so the in-cycle
    // convergence estimate fires before converged directions make the last
    // panels of a cycle linearly dependent — every cycle stays clean.
    let run = |policy: StepPolicy| {
        SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-9,
            ortho: OrthoKind::TwoStage { big_panel: 10 },
            step_policy: policy,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
    };
    let (x_fixed, r_fixed) = run(StepPolicy::Fixed);
    let (x_auto, r_auto) = run(StepPolicy::auto());
    assert!(r_fixed.converged && r_auto.converged);
    assert!(
        r_auto
            .health_history
            .iter()
            .all(|h| h.verdict == CycleVerdict::Clean),
        "premise: every cycle must be healthy: {:?}",
        r_auto
            .health_history
            .iter()
            .map(|h| h.verdict)
            .collect::<Vec<_>>()
    );
    assert_eq!(r_auto.rescues, 0);
    assert_bitwise_equal(
        "auto(healthy) vs fixed",
        &x_fixed,
        &r_fixed,
        &x_auto,
        &r_auto,
    );
}

#[test]
fn auto_reduce_counts_equal_fixed_under_an_equal_step_budget() {
    // Fixed iteration budget (tolerance unreachable): Auto on a healthy
    // problem realizes the same steps as Fixed, so its reduce and word
    // counts must be *exactly* Fixed's — the controller spends nothing.
    // (The grid is sized so three cycles end well above the convergence
    // floor — at the floor the last panels go linearly dependent and the
    // verdict stops being Clean.)
    let a = laplace2d_9pt(24, 24);
    let b = rhs_ones(&a);
    let run = |policy: StepPolicy| {
        SStepGmres::new(GmresConfig {
            restart: 20,
            step_size: 5,
            tol: 1e-30,
            max_restarts: 3,
            ortho: OrthoKind::TwoStage { big_panel: 20 },
            step_policy: policy,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
        .1
    };
    let fixed = run(StepPolicy::Fixed);
    let auto = run(StepPolicy::auto());
    assert_eq!(fixed.step_history, auto.step_history, "realized steps");
    assert_eq!(fixed.iterations, auto.iterations);
    assert_eq!(
        fixed.comm_total, auto.comm_total,
        "Auto must cost zero additional reductions or words"
    );
    assert_eq!(fixed.comm_ortho, auto.comm_ortho);
}

#[test]
fn auto_rescues_elasticity3d_at_requested_s10_with_no_manual_oracle() {
    // The acceptance headline.  Premise: Fixed at s = 10 on elasticity3d
    // breaks down in the very first monomial panel and cannot converge.
    let a = elasticity3d(5, 5, 5);
    let b = rhs_ones(&a);
    let config = GmresConfig {
        restart: 32,
        step_size: 10,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 32 },
        basis: BasisStrategy::Monomial,
        ..GmresConfig::default()
    };
    let fixed = SStepGmres::new(config.clone()).solve_serial(&a, &b).1;
    assert!(
        !fixed.converged && fixed.breakdown.is_some(),
        "premise: monomial s=10 must break down under Fixed: {fixed:?}"
    );
    // Auto: same configuration, one flag flipped, no oracle anywhere.
    let (x, auto) = SStepGmres::new(GmresConfig {
        step_policy: StepPolicy::auto(),
        ..config
    })
    .solve_serial(&a, &b);
    assert!(auto.converged, "{auto:?}");
    assert!(max_err(&x) < 1e-5, "max err {}", max_err(&x));
    assert!(auto.rescues >= 1, "a rescue must have happened");
    assert_eq!(
        auto.step_history[0], 10,
        "first cycle runs at the requested step"
    );
    assert!(
        auto.step_history.iter().any(|&s| s < 10),
        "the rescue must have shrunk the step: {:?}",
        auto.step_history
    );
    // The rescue re-harvested Newton shifts at the reduced step: some
    // later cycle runs shifted (the automated warm-up oracle).
    assert!(
        auto.shift_history.iter().any(|s| !s.is_empty()),
        "rescue must activate harvested shifts: {:?}",
        auto.shift_history
    );
}

#[test]
fn auto_rescue_replays_bitwise_through_scheduled_steps_and_shifts() {
    // The controller's entire effect must flow through the step sizes and
    // shifts it selects.  Replaying a rescued Auto solve's recorded
    // step_history + shift_history through the decision-free Scheduled
    // policies reproduces it bitwise — communication counters included,
    // which proves Auto's reduce/word counts at equal realized steps are
    // exactly those of a controller-less solve (zero overhead).
    let a = elasticity3d(5, 5, 5);
    let b = rhs_ones(&a);
    let config = GmresConfig {
        restart: 32,
        step_size: 10,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 32 },
        basis: BasisStrategy::Monomial,
        step_policy: StepPolicy::auto(),
        ..GmresConfig::default()
    };
    let (x_auto, r_auto) = SStepGmres::new(config.clone()).solve_serial(&a, &b);
    assert!(r_auto.converged && r_auto.rescues >= 1, "{r_auto:?}");
    let (x_replay, r_replay) = SStepGmres::new(GmresConfig {
        basis: BasisStrategy::Scheduled {
            per_cycle: r_auto.shift_history.clone(),
        },
        step_policy: StepPolicy::Scheduled {
            per_cycle: r_auto.step_history.clone(),
        },
        ..config
    })
    .solve_serial(&a, &b);
    assert_bitwise_equal(
        "auto rescue vs replay",
        &x_auto,
        &r_auto,
        &x_replay,
        &r_replay,
    );
}

#[test]
fn auto_probes_back_up_to_the_requested_step_after_clean_cycles() {
    // With an unreachable tolerance the solve keeps cycling after the
    // rescue: two clean cycles at the reduced step must regrow the step
    // (doubling per probe) until the requested s = 12 is reached again —
    // and the regrown cycle must complete on the harvested shifts instead
    // of breaking down like the monomial first cycle did.
    let a = elasticity3d(5, 5, 5);
    let b = rhs_ones(&a);
    let r = SStepGmres::new(GmresConfig {
        restart: 16,
        step_size: 12,
        tol: 1e-30,
        max_restarts: 8,
        max_iters: 50_000,
        ortho: OrthoKind::TwoStage { big_panel: 16 },
        basis: BasisStrategy::Monomial,
        step_policy: StepPolicy::auto(),
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b)
    .1;
    assert!(r.rescues >= 1);
    let regrown = r
        .step_history
        .iter()
        .enumerate()
        .skip(1)
        .find(|&(i, &s)| s == 12 && r.step_history[i - 1] < 12);
    let (i, _) = regrown
        .unwrap_or_else(|| panic!("the step must probe back up to 12: {:?}", r.step_history));
    assert_ne!(
        r.health_history[i].verdict,
        CycleVerdict::Breakdown,
        "the regrown cycle must survive on the harvested shifts"
    );
    assert!(
        !r.shift_history[i].is_empty(),
        "the regrown cycle must run the harvested Newton shifts"
    );
    // Growth is gradual: each step is at most double its predecessor.
    for w in r.step_history.windows(2) {
        assert!(
            w[1] <= w[0] * 2,
            "probe must double at most: {:?}",
            r.step_history
        );
    }
}

#[test]
fn auto_at_step_one_degenerates_to_safe_standard_gmres_panels() {
    // min_step = 1 is the rescue floor; a solve *requested* at s = 1 under
    // Auto must behave exactly like Fixed at s = 1 (standard GMRES
    // panels): healthy, no rescues, bitwise equal.
    let a = laplace2d_9pt(14, 14);
    let b = rhs_ones(&a);
    let run = |policy: StepPolicy| {
        SStepGmres::new(GmresConfig {
            restart: 20,
            step_size: 1,
            tol: 1e-9,
            ortho: OrthoKind::TwoStage { big_panel: 20 },
            step_policy: policy,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
    };
    let (x_fixed, r_fixed) = run(StepPolicy::Fixed);
    let (x_auto, r_auto) = run(StepPolicy::auto());
    assert!(r_fixed.converged && r_auto.converged);
    assert_eq!(r_auto.rescues, 0);
    assert_bitwise_equal("s=1 auto vs fixed", &x_fixed, &r_fixed, &x_auto, &r_auto);
}

#[test]
fn auto_composes_with_the_adaptive_basis_strategy() {
    // Adaptive re-harvests its own shifts; Auto only manages the step.
    // Together they must still rescue the elasticity3d s = 10 scenario (the
    // adaptive warm-up is monomial, so the first cycle breaks identically)
    // and converge.
    let a = elasticity3d(5, 5, 5);
    let b = rhs_ones(&a);
    let (x, r) = SStepGmres::new(GmresConfig {
        restart: 32,
        step_size: 10,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 32 },
        basis: BasisStrategy::adaptive(),
        step_policy: StepPolicy::auto(),
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b);
    assert!(r.converged, "{r:?}");
    assert!(max_err(&x) < 1e-5);
    assert!(r.rescues >= 1);
}

#[test]
fn custom_auto_knobs_are_honored() {
    // A floor above 1 stops the shrink cascade early.
    let a = elasticity3d(5, 5, 5);
    let b = rhs_ones(&a);
    let r = SStepGmres::new(GmresConfig {
        restart: 16,
        step_size: 10,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 16 },
        basis: BasisStrategy::Monomial,
        step_policy: StepPolicy::Auto(AutoStep {
            min_step: 4,
            ..AutoStep::default()
        }),
        ..GmresConfig::default()
    })
    .solve_serial(&a, &b)
    .1;
    assert!(
        r.step_history.iter().all(|&s| s >= 4),
        "min_step floor violated: {:?}",
        r.step_history
    );
}
