//! Integration tests of the distributed path: the same solve run on one
//! serial rank and on several simulated (thread) ranks must converge to the
//! same solution, and the block orthogonalization must behave identically.

use distsim::{run_ranks, Communicator, DistCsr, DistMultiVector, SerialComm};
use sparse::{block_row_partition, laplace2d_9pt, Laplace2d9ptRows};
use ssgmres::{GmresConfig, Identity, OrthoKind, SStepGmres};
use std::sync::Arc;

#[test]
fn distributed_solve_matches_serial_solution() {
    let a = laplace2d_9pt(24, 24);
    let n = a.nrows();
    let b = a.spmv_alloc(&vec![1.0; n]);
    let config = GmresConfig {
        restart: 30,
        step_size: 5,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 30 },
        ..GmresConfig::default()
    };
    let (x_serial, serial_result) = SStepGmres::new(config.clone()).solve_serial(&a, &b);
    assert!(serial_result.converged);

    for nranks in [2usize, 3] {
        let part = block_row_partition(n, nranks);
        let pieces = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let comm_dyn: Arc<dyn Communicator> = comm;
            let dist = DistCsr::from_global(comm_dyn, &a, &part);
            let mut x = vec![0.0; hi - lo];
            let result =
                SStepGmres::new(config.clone()).solve(&dist, &Identity, &b[lo..hi], &mut x);
            (lo, x, result.converged, result.iterations)
        });
        let mut x_dist = vec![0.0; n];
        for (lo, x, converged, iterations) in &pieces {
            assert!(*converged, "nranks {nranks}");
            assert_eq!(
                *iterations, serial_result.iterations,
                "iteration counts must match"
            );
            x_dist[*lo..*lo + x.len()].copy_from_slice(x);
        }
        for (p, q) in x_dist.iter().zip(&x_serial) {
            assert!(
                (p - q).abs() < 1e-8,
                "nranks {nranks}: distributed and serial solutions differ: {p} vs {q}"
            );
        }
    }
}

#[test]
fn streamed_assembly_solve_is_bitwise_identical_to_replicated() {
    // The scaling refactor's contract: the whole solve — operator assembly
    // from a row provider (no rank holds the global matrix), halo
    // exchanges, orthogonalization, solution — reproduces the
    // replicated-construction solve bit for bit, with identical
    // communication counts, on every rank count.
    let (nx, ny) = (20, 20);
    let rows = Laplace2d9ptRows { nx, ny };
    let a = laplace2d_9pt(nx, ny);
    let n = a.nrows();
    let b = a.spmv_alloc(&vec![1.0; n]);
    let config = GmresConfig {
        restart: 30,
        step_size: 5,
        tol: 1e-8,
        ortho: OrthoKind::TwoStage { big_panel: 30 },
        ..GmresConfig::default()
    };
    for nranks in [1usize, 2, 4] {
        let part = block_row_partition(n, nranks);
        let outcomes = run_ranks(nranks, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let solver = SStepGmres::new(config.clone());
            // Replicated path.
            let dist = DistCsr::from_global(comm.clone(), &a, &part);
            let mut x_rep = vec![0.0; hi - lo];
            let rep = solver.solve(&dist, &Identity, &b[lo..hi], &mut x_rep);
            // Streamed path through the solver's row-provider constructor.
            let mut x_str = vec![0.0; hi - lo];
            let streamed =
                solver.solve_from_rows(comm, &part, &rows, &Identity, &b[lo..hi], &mut x_str);
            assert_eq!(x_rep, x_str, "solutions must be bitwise identical");
            assert_eq!(rep.iterations, streamed.iterations);
            assert_eq!(rep.comm_total, streamed.comm_total);
            assert_eq!(rep.comm_ortho, streamed.comm_ortho);
            rep.converged && streamed.converged
        });
        assert!(outcomes.into_iter().all(|c| c), "nranks {nranks}");
    }
}

#[test]
fn distributed_block_orthogonalization_matches_serial() {
    // Orthogonalize the same global multivector serially and across 4 ranks;
    // the resulting R factors must agree to rounding.
    let n = 400;
    let cols = 16;
    let full = dense::Matrix::from_fn(n, cols, |i, j| {
        ((i * 13 + j * 7) % 23) as f64 * 0.17 - 1.0 + if (i + j) % 6 == 0 { 2.0 } else { 0.0 }
    });
    let run_with = |kind: OrthoKind| -> dense::Matrix {
        let mut basis = DistMultiVector::from_matrix(SerialComm::new(), full.clone());
        let mut r = dense::Matrix::zeros(cols, cols);
        let mut ortho = blockortho::make_orthogonalizer(kind, cols);
        let mut c = 0;
        while c < cols {
            ortho
                .orthogonalize_panel(&mut basis, c..c + 4, &mut r)
                .unwrap();
            c += 4;
        }
        ortho.finish(&mut basis, &mut r).unwrap();
        r
    };
    for kind in [OrthoKind::BcgsPip2, OrthoKind::TwoStage { big_panel: 8 }] {
        let r_serial = run_with(kind);
        let nranks = 4;
        let part = block_row_partition(n, nranks);
        let r_dist_all = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let comm_dyn: Arc<dyn Communicator> = comm;
            let mut basis = DistMultiVector::zeros(comm_dyn, n, hi - lo, lo, cols);
            for j in 0..cols {
                basis
                    .local_mut()
                    .col_mut(j)
                    .copy_from_slice(&full.col(j)[lo..hi]);
            }
            let mut r = dense::Matrix::zeros(cols, cols);
            let mut ortho = blockortho::make_orthogonalizer(kind, cols);
            let mut c = 0;
            while c < cols {
                ortho
                    .orthogonalize_panel(&mut basis, c..c + 4, &mut r)
                    .unwrap();
                c += 4;
            }
            ortho.finish(&mut basis, &mut r).unwrap();
            r
        });
        for r_dist in &r_dist_all {
            for j in 0..cols {
                for i in 0..cols {
                    assert!(
                        (r_dist[(i, j)] - r_serial[(i, j)]).abs() < 1e-9 * r_serial.max_abs(),
                        "{kind:?}: R({i},{j}) differs between serial and distributed"
                    );
                }
            }
        }
    }
}

#[test]
fn distributed_ortho_reduce_counts_are_rank_independent() {
    // The number of global reductions per rank must not depend on the rank
    // count — only their cost does (which the performance model captures).
    let n = 600;
    let cols = 21;
    let full = dense::Matrix::from_fn(n, cols, |i, j| {
        ((i * 3 + j * 11) % 17) as f64 - 8.0 + (i as f64 * (j as f64 + 1.0) * 0.01).sin()
    });
    let count_for = |nranks: usize| -> usize {
        let part = block_row_partition(n, nranks);
        let counts = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let stats = comm.clone();
            let comm_dyn: Arc<dyn Communicator> = comm;
            let mut basis = DistMultiVector::zeros(comm_dyn, n, hi - lo, lo, cols);
            for j in 0..cols {
                basis
                    .local_mut()
                    .col_mut(j)
                    .copy_from_slice(&full.col(j)[lo..hi]);
            }
            let mut r = dense::Matrix::zeros(cols, cols);
            let mut ortho =
                blockortho::make_orthogonalizer(OrthoKind::TwoStage { big_panel: 20 }, cols);
            ortho.orthogonalize_panel(&mut basis, 0..1, &mut r).unwrap();
            let mut c = 1;
            while c < cols {
                ortho
                    .orthogonalize_panel(&mut basis, c..c + 5, &mut r)
                    .unwrap();
                c += 5;
            }
            ortho.finish(&mut basis, &mut r).unwrap();
            stats.stats().snapshot().allreduces
        });
        assert!(counts.iter().all(|&c| c == counts[0]));
        counts[0]
    };
    assert_eq!(count_for(1), count_for(4));
}
