//! Tier-1 battery for the tracing layer's core contract: observability is
//! **free**.  With tracing disabled a solve must be bitwise identical to an
//! untraced one — solution bits, iteration counts, and every `CommStats`
//! counter including the per-peer p2p tallies — and enabling it must add
//! spans, not communication: zero extra reductions, every span balanced,
//! across thread-pool widths and simulated rank counts (extendable via
//! `DISTSIM_TEST_RANKS=6,8` as in the other sweep batteries).

use distsim::{run_ranks, Communicator, DistCsr};
use sparse::{block_row_partition, laplace2d_9pt, Laplace2d9ptRows};
use ssgmres::{GmresConfig, Identity, OrthoKind, SStepGmres, SolveResult};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The enable flag, capacity, and ring registry of `trace` are process
/// globals; tests that toggle them must not interleave (integration tests
/// run on parallel threads within one binary).
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![1usize, 2, 4];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

fn config() -> GmresConfig {
    GmresConfig {
        restart: 30,
        step_size: 5,
        tol: 1e-9,
        ortho: OrthoKind::TwoStage { big_panel: 30 },
        ..GmresConfig::default()
    }
}

fn assert_identical(tag: &str, x0: &[f64], r0: &SolveResult, x1: &[f64], r1: &SolveResult) {
    assert_eq!(x0, x1, "{tag}: solutions must be bitwise identical");
    assert_eq!(r0.iterations, r1.iterations, "{tag}: iterations");
    assert_eq!(r0.relres_history, r1.relres_history, "{tag}: residuals");
    // CommStatsSnapshot equality covers every counter *and* the per-peer
    // p2p tallies, so this is also the zero-extra-reductions assertion.
    assert_eq!(r0.comm_total, r1.comm_total, "{tag}: comm stats");
    assert_eq!(r0.comm_ortho, r1.comm_ortho, "{tag}: ortho comm stats");
}

#[test]
fn toggling_tracing_keeps_serial_solves_bitwise_identical() {
    let _guard = trace_lock();
    let a = laplace2d_9pt(18, 18);
    let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
    let solver = SStepGmres::new(config());

    trace::set_enabled(false);
    let (x_off, r_off) = solver.solve_serial(&a, &b);
    assert!(r_off.converged);
    assert!(
        r_off.cycle_timings.iter().all(|t| t.sync_ns == 0),
        "sync attribution must be exactly 0 with tracing disabled"
    );

    trace::set_enabled(!trace::compiled_out());
    let (x_on, r_on) = solver.solve_serial(&a, &b);
    trace::set_enabled(false);
    assert_identical("disabled vs enabled", &x_off, &r_off, &x_on, &r_on);

    // And back off again: enabling must leave no residue in the solver.
    let (x_off2, r_off2) = solver.solve_serial(&a, &b);
    assert_identical("disabled after enabled", &x_off, &r_off, &x_off2, &r_off2);
}

#[test]
fn toggling_tracing_keeps_distributed_solves_bitwise_identical() {
    let _guard = trace_lock();
    let (nx, ny) = (16, 16);
    let rows = Laplace2d9ptRows { nx, ny };
    let a = laplace2d_9pt(nx, ny);
    let n = a.nrows();
    let b = a.spmv_alloc(&vec![1.0; n]);
    let nranks = 3;
    let part = block_row_partition(n, nranks);
    let run = || {
        run_ranks(nranks, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let comm_dyn: Arc<dyn Communicator> = comm;
            let dist = DistCsr::from_row_source(comm_dyn.clone(), &part, &rows);
            let mut x = vec![0.0; hi - lo];
            let result = SStepGmres::new(config()).solve(&dist, &Identity, &b[lo..hi], &mut x);
            (x, result, comm_dyn.stats().snapshot())
        })
    };

    trace::set_enabled(false);
    let off = run();
    trace::set_enabled(!trace::compiled_out());
    let on = run();
    trace::set_enabled(false);

    for (rank, ((x0, r0, s0), (x1, r1, s1))) in off.iter().zip(&on).enumerate() {
        assert!(r0.converged, "rank {rank}");
        assert_identical(&format!("rank {rank}"), x0, r0, x1, r1);
        // The whole endpoint's traffic — halo p2p per peer included — must
        // be identical counter for counter.
        assert_eq!(s0, s1, "rank {rank}: endpoint comm stats");
        if nranks > 1 {
            assert!(
                !s0.p2p_peers.is_empty(),
                "rank {rank}: halo exchange must produce per-peer tallies"
            );
            let peer_msgs: usize = s0.p2p_peers.iter().map(|p| p.messages).sum();
            let peer_words: usize = s0.p2p_peers.iter().map(|p| p.words).sum();
            assert_eq!(peer_msgs, s0.p2p_messages, "rank {rank}: tally split");
            assert_eq!(peer_words, s0.p2p_words, "rank {rank}: tally split");
        }
    }
}

#[test]
fn spans_balance_across_thread_and_rank_sweeps() {
    if trace::compiled_out() {
        return;
    }
    let _guard = trace_lock();
    let a = laplace2d_9pt(14, 14);
    let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
    let rows = Laplace2d9ptRows { nx: 14, ny: 14 };
    let n = a.nrows();

    for threads in [1usize, 4] {
        parkit::set_num_threads(threads);
        trace::clear();
        trace::set_enabled(true);
        let (_, result) = SStepGmres::new(config()).solve_serial(&a, &b);
        trace::set_enabled(false);
        assert!(result.converged, "threads {threads}");
        let stats = trace::stats();
        assert!(stats.events > 0, "threads {threads}: no spans recorded");
        assert_eq!(
            stats.open_spans, 0,
            "threads {threads}: unbalanced spans left open"
        );
    }
    parkit::set_num_threads(0);

    for nranks in ranks_under_test() {
        let part = block_row_partition(n, nranks);
        trace::clear();
        trace::set_enabled(true);
        let results = run_ranks(nranks, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let comm_dyn: Arc<dyn Communicator> = comm;
            let dist = DistCsr::from_row_source(comm_dyn, &part, &rows);
            let mut x = vec![0.0; hi - lo];
            SStepGmres::new(config())
                .solve(&dist, &Identity, &b[lo..hi], &mut x)
                .converged
        });
        trace::set_enabled(false);
        assert!(results.iter().all(|&c| c), "nranks {nranks}");
        let stats = trace::stats();
        assert_eq!(
            stats.open_spans, 0,
            "nranks {nranks}: unbalanced spans left open"
        );
    }
}

#[test]
fn chrome_timeline_validates_and_has_one_lane_per_rank() {
    if trace::compiled_out() {
        return;
    }
    let _guard = trace_lock();
    let (nx, ny) = (12, 12);
    let rows = Laplace2d9ptRows { nx, ny };
    let a = laplace2d_9pt(nx, ny);
    let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
    let nranks = 3;
    let part = block_row_partition(a.nrows(), nranks);

    trace::clear();
    trace::set_enabled(true);
    run_ranks(nranks, |comm| {
        let (lo, hi) = part.range(comm.rank());
        let comm_dyn: Arc<dyn Communicator> = comm;
        let dist = DistCsr::from_row_source(comm_dyn, &part, &rows);
        let mut x = vec![0.0; hi - lo];
        SStepGmres::new(config()).solve(&dist, &Identity, &b[lo..hi], &mut x);
    });
    trace::set_enabled(false);

    let timeline = trace::collect();
    let json = timeline.to_chrome_json();
    trace::validate_json(&json).expect("chrome trace JSON must be syntactically valid");
    for rank in 0..nranks {
        let label = format!("\"rank {rank}\"");
        assert!(json.contains(&label), "timeline is missing lane {label}");
    }
    // The rank lanes must actually contain comm spans (allreduce waits and
    // the halo exchange p2p), not just their thread-name metadata.
    assert!(
        timeline.category_ns("comm") > 0,
        "no comm span time recorded"
    );
    assert!(
        timeline
            .merged_spans()
            .iter()
            .any(|row| row.cat == "comm" && row.name == "send"),
        "halo exchange must record p2p send spans"
    );
}

#[test]
fn cycle_timings_partition_every_cycle() {
    let _guard = trace_lock();
    let a = laplace2d_9pt(16, 16);
    let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
    trace::set_enabled(!trace::compiled_out());
    let (_, result) = SStepGmres::new(config()).solve_serial(&a, &b);
    trace::set_enabled(false);
    assert!(result.converged);
    assert_eq!(
        result.cycle_timings.len(),
        result.step_history.len(),
        "one timing record per started cycle"
    );
    for (c, t) in result.cycle_timings.iter().enumerate() {
        assert_eq!(t.cycle, c);
        assert_eq!(t.step, result.step_history[c]);
        assert!(t.total_ns > 0);
        assert_eq!(
            t.segments_ns(),
            t.total_ns,
            "cycle {c}: phase buckets must partition the cycle"
        );
        assert!(t.sync_ns <= t.total_ns, "cycle {c}: sync exceeds total");
        assert_eq!(t.compute_ns(), t.total_ns - t.sync_ns);
    }
}
