//! Breakdown-scenario battery: engineered near-rank-deficient panels run
//! through **every** orthogonalization scheme, plus solver-level scenarios
//! where the matrix-powers basis collapses.
//!
//! The contract pinned here: an orthogonalizer either succeeds to its
//! documented orthogonality (O(ε) for every reorthogonalized scheme, the
//! `c·ε·κ²` envelope for single-pass BCGS-PIP), or *reports* what happened
//! — an `OrthoError`, or a remedial-fallback event with per-stage detail.
//! It never silently returns garbage.  On top sit determinism properties:
//! the `StepPolicy::Auto` controller's decisions (realized step schedule,
//! verdicts, rescues) are stable across worker-thread counts and across
//! simulated rank counts (including the `DISTSIM_TEST_RANKS` CI sweep),
//! because every signal it reads is replicated.

use blockortho::{make_orthogonalizer, OrthoError, OrthoKind};
use dense::Matrix;
use distsim::{run_ranks, Communicator, DistCsr, DistMultiVector, SerialComm};
use proptest::prelude::*;
use sparse::{block_row_partition, elasticity3d, laplace2d_9pt, Csr};
use ssgmres::{
    BasisStrategy, CycleVerdict, GmresConfig, Identity, OrthoKind as SolverOrthoKind, SStepGmres,
    SolveResult, StepPolicy,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Panel-level battery
// ---------------------------------------------------------------------------

const ALL_SCHEMES: &[OrthoKind] = &[
    OrthoKind::Bcgs2CholQr2,
    OrthoKind::Bcgs2Columnwise,
    OrthoKind::BcgsPip2,
    OrthoKind::BcgsPip,
    OrthoKind::TwoStage { big_panel: 12 },
    OrthoKind::TwoStage { big_panel: 8 },
    OrthoKind::RandCholQr,
    OrthoKind::TwoStageSketched { big_panel: 12 },
    OrthoKind::TwoStageSketched { big_panel: 8 },
    OrthoKind::Cgs2,
    OrthoKind::Mgs,
];

/// A deterministic well-conditioned base panel.
fn base_matrix(n: usize, c: usize) -> Matrix {
    Matrix::from_fn(n, c, |i, j| {
        ((i * 23 + j * 7) % 31) as f64 * 0.08 - 1.1 + if (i + 2 * j) % 11 == 0 { 1.8 } else { 0.0 }
    })
}

/// Drive a matrix panel-by-panel through a scheme.  On success returns the
/// final basis and the number of distinct fallback episodes the scheme
/// reported.
fn run_panels(kind: OrthoKind, v: &Matrix, panel: usize) -> Result<(Matrix, usize), OrthoError> {
    let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
    let mut r = Matrix::zeros(v.ncols(), v.ncols());
    let mut scheme = make_orthogonalizer(kind, v.ncols());
    let mut start = 0;
    while start < v.ncols() {
        let end = (start + panel).min(v.ncols());
        scheme.orthogonalize_panel(&mut basis, start..end, &mut r)?;
        start = end;
    }
    scheme.finish(&mut basis, &mut r)?;
    Ok((basis.local().clone(), scheme.fallback_count()))
}

/// The battery check: success means the scheme's documented orthogonality
/// was delivered; anything else must have been reported.
fn check_scenario(name: &str, v: &Matrix, panel: usize) {
    let kappa = dense::cond_2(&v.view());
    for &kind in ALL_SCHEMES {
        match run_panels(kind, v, panel) {
            Err(_) => {
                // Reported: the solver sees the error and reacts.  Never a
                // silent failure.
            }
            Ok((q, fallbacks)) => {
                let err = dense::orthogonality_error(&q.view());
                if fallbacks > 0 {
                    // The remedial path ran AND was reported; the result it
                    // returned must still be a usable orthonormal basis.
                    assert!(
                        err < 1e-8,
                        "{name} / {kind:?}: remediated result is garbage (err {err:.2e})"
                    );
                } else if matches!(kind, OrthoKind::BcgsPip) {
                    // Single-pass PIP's documented envelope is c*eps*kappa^2.
                    let envelope = 1e3 * f64::EPSILON * kappa * kappa;
                    assert!(
                        err < envelope.max(1e-10),
                        "{name} / {kind:?}: error {err:.2e} exceeds the eps*kappa^2 \
                         envelope {envelope:.2e} (kappa {kappa:.2e})"
                    );
                } else {
                    // Reorthogonalized schemes that claim success without a
                    // fallback must deliver O(eps) orthogonality.
                    assert!(
                        err < 1e-10,
                        "{name} / {kind:?}: silent garbage — claimed success \
                         with orthogonality error {err:.2e} (kappa {kappa:.2e})"
                    );
                }
            }
        }
    }
}

#[test]
fn duplicated_krylov_directions_are_never_silent() {
    // Column 7 duplicates column 2 exactly — the panel the matrix-powers
    // kernel produces when the Krylov space stalls.
    let mut v = base_matrix(300, 12);
    for i in 0..300 {
        let x = v[(i, 2)];
        v[(i, 7)] = x;
    }
    check_scenario("duplicated-direction", &v, 4);
}

#[test]
fn nearly_duplicated_directions_are_never_silent() {
    // Column 10 = column 3 + O(1e-14) noise: numerically rank deficient
    // without being exactly singular.
    let mut v = base_matrix(300, 12);
    for i in 0..300 {
        let x = v[(i, 3)];
        v[(i, 10)] = x + 1e-14 * ((i % 17) as f64 - 8.0);
    }
    check_scenario("nearly-duplicated-direction", &v, 4);
}

#[test]
fn kappa_near_inverse_epsilon_panels_are_never_silent() {
    // kappa ~ 1/eps: at (and beyond) the edge of numerical full rank.
    for kappa in [1e12, 1e15, 1e16] {
        let v = testmat::logscaled_matrix(300, 12, kappa, 5);
        check_scenario(&format!("logscaled kappa={kappa:.0e}"), &v, 4);
    }
}

#[test]
fn zero_columns_are_never_silent() {
    let mut v = base_matrix(250, 12);
    for i in 0..250 {
        v[(i, 9)] = 0.0;
    }
    check_scenario("zero-column", &v, 4);
    // Zero column at a panel start, too.
    let mut v = base_matrix(250, 12);
    for i in 0..250 {
        v[(i, 4)] = 0.0;
    }
    check_scenario("zero-column-at-panel-start", &v, 4);
}

#[test]
fn single_column_panels_are_never_silent() {
    // The s = 1 degeneration every scheme must support (the rescue floor).
    let mut v = base_matrix(200, 8);
    for i in 0..200 {
        let x = v[(i, 1)];
        v[(i, 6)] = x;
    }
    check_scenario("duplicated-direction s=1", &v, 1);
}

// ---------------------------------------------------------------------------
// Solver-level scenarios
// ---------------------------------------------------------------------------

fn rhs_ones(a: &Csr) -> Vec<f64> {
    a.spmv_alloc(&vec![1.0; a.nrows()])
}

#[test]
fn solver_reports_or_converges_for_every_scheme_and_policy_on_elasticity_s12() {
    // elasticity3d at s = 12: the monomial panel is decisively rank
    // deficient (s = 8 now sits on the knife edge of the SIMD Gram
    // kernels' last ulps).  Whatever the scheme and step policy, the solver must
    // either converge or carry an explicit breakdown report — a completed
    // SolveResult with `converged == false` and no explanation would be a
    // silent failure.
    let a = elasticity3d(5, 5, 5);
    let b = rhs_ones(&a);
    for scheme in [
        SolverOrthoKind::Bcgs2CholQr2,
        SolverOrthoKind::Bcgs2Columnwise,
        SolverOrthoKind::BcgsPip2,
        SolverOrthoKind::TwoStage { big_panel: 32 },
    ] {
        let mut fixed_converged = false;
        for policy in [StepPolicy::Fixed, StepPolicy::auto()] {
            let solver = SStepGmres::new(GmresConfig {
                restart: 32,
                step_size: 12,
                tol: 1e-8,
                max_iters: 20_000,
                ortho: scheme,
                basis: BasisStrategy::Monomial,
                step_policy: policy.clone(),
                ..GmresConfig::default()
            });
            let (x, r) = solver.solve_serial(&a, &b);
            assert_eq!(r.step_history.len(), r.health_history.len());
            if r.converged {
                let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
                assert!(
                    err < 1e-4,
                    "{scheme:?}/{policy:?}: converged to a wrong answer (err {err:.2e})"
                );
            } else {
                assert!(
                    r.breakdown.is_some() || r.iterations >= 20_000,
                    "{scheme:?}/{policy:?}: silent non-convergence: {r:?}"
                );
                // The health reports must show what went wrong.
                assert!(
                    r.health_history
                        .iter()
                        .any(|h| h.verdict == CycleVerdict::Breakdown),
                    "{scheme:?}/{policy:?}: no breakdown verdict recorded"
                );
            }
            if matches!(policy, StepPolicy::Fixed) {
                fixed_converged = r.converged;
            }
            // Auto must rescue the canonical two-stage scenario outright.
            // Whether the rescue is *needed* sits on the rank-deficiency
            // knife edge (it hinges on the last ulps of the Gram kernels),
            // so the step-shrink count is only pinned when Fixed actually
            // failed; convergence is pinned unconditionally.
            if matches!(scheme, SolverOrthoKind::TwoStage { .. })
                && matches!(policy, StepPolicy::Auto(_))
            {
                assert!(r.converged, "Auto + two-stage must rescue: {r:?}");
                if !fixed_converged {
                    assert!(r.rescues >= 1, "Fixed broke down but Auto never shrank");
                }
            }
        }
    }
}

#[test]
fn auto_with_sketched_ortho_holds_full_step_where_plain_two_stage_halves() {
    // Monomial basis on a 9-pt Laplacian at s = 10: the panel's condition
    // number grows exponentially in s, crossing the Cholesky-on-Gram
    // crossover while the panel stays numerically full rank.  The plain
    // two-stage first stage records remedial episodes there, so the Auto
    // controller halves the step; the sketched schemes draw their factor
    // from the sketch QR instead of the squared Gram, record no episodes,
    // and hold the full step at the same per-panel reduce count (that
    // count parity is pinned in `blockortho`'s and `perfmodel`'s tests).
    let a = laplace2d_9pt(16, 16);
    let b = rhs_ones(&a);
    let run = |ortho: SolverOrthoKind| {
        let solver = SStepGmres::new(GmresConfig {
            restart: 24,
            step_size: 10,
            tol: 1e-8,
            max_iters: 20_000,
            ortho,
            basis: BasisStrategy::Monomial,
            step_policy: StepPolicy::auto(),
            ..GmresConfig::default()
        });
        solver.solve_serial(&a, &b)
    };
    let (x_plain, plain) = run(SolverOrthoKind::TwoStage { big_panel: 24 });
    assert!(plain.converged, "{plain:?}");
    let err = x_plain
        .iter()
        .map(|v| (v - 1.0).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-4, "plain two-stage converged to a wrong answer");
    assert!(
        plain.rescues >= 1,
        "the scenario must force the plain first stage into a rescue: {plain:?}"
    );
    for ortho in [
        SolverOrthoKind::RandCholQr,
        SolverOrthoKind::TwoStageSketched { big_panel: 24 },
    ] {
        let (x, r) = run(ortho);
        assert!(r.converged, "{ortho:?}: {r:?}");
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        assert!(
            err < 1e-4,
            "{ortho:?}: converged to a wrong answer ({err:.2e})"
        );
        assert!(
            r.rescues < plain.rescues,
            "{ortho:?}: {} rescues, expected fewer than the plain two-stage's {}",
            r.rescues,
            plain.rescues
        );
        assert_eq!(r.rescues, 0, "{ortho:?}: expected to hold the full step");
        assert!(
            r.step_history.iter().all(|&s| s == 10),
            "{ortho:?}: step halved anyway: {:?}",
            r.step_history
        );
    }
}

#[test]
fn step_size_equal_to_restart_edge_works_under_both_policies() {
    // s = restart: one matrix-powers panel spans the whole cycle.  Both
    // policies must handle it; with clean cycles Auto realizes the same
    // steps as Fixed.  (s = 6 keeps the monomial panel solvable — at
    // s = 12 the panel is rank deficient by construction, which is the
    // rescue scenario above, not the edge-shape scenario here.)
    let a = laplace2d_9pt(12, 12);
    let b = rhs_ones(&a);
    let run = |policy: StepPolicy| {
        SStepGmres::new(GmresConfig {
            restart: 6,
            step_size: 6,
            tol: 1e-8,
            ortho: SolverOrthoKind::BcgsPip2,
            step_policy: policy,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
    };
    let (x_fixed, r_fixed) = run(StepPolicy::Fixed);
    let (x_auto, r_auto) = run(StepPolicy::auto());
    assert!(r_fixed.converged, "{r_fixed:?}");
    assert!(r_auto.converged, "{r_auto:?}");
    assert!(r_fixed.step_history.iter().all(|&s| s == 6));
    if r_auto.rescues == 0 {
        assert_eq!(x_fixed, x_auto, "healthy Auto must match Fixed bitwise");
        assert_eq!(r_fixed.step_history, r_auto.step_history);
    }
}

// ---------------------------------------------------------------------------
// Determinism of the Auto controller's decisions
// ---------------------------------------------------------------------------

/// The decision trace of a solve: per-cycle (step, verdict, #shifts) up to
/// the point where the rescue configuration is reached, plus convergence.
///
/// What is deliberately *not* compared: shift values (reduction order, and
/// thus the last ulps of harvested Ritz values, legitimately differs
/// across thread/rank counts) and anything after the first cycle that runs
/// with harvested shifts or drives the residual near the tolerance.  A
/// rescued cycle converges violently (1e-1 → 1e-15 within a few columns),
/// so *which column* makes its panel degenerate — and therefore that
/// cycle's verdict and everything after it — is genuinely chaotic in the
/// last ulps.  The deterministic property pinned here is the part the
/// controller owns: collapse detection, the halve cascade, and the
/// re-harvest configuration (same steps, same verdicts, same shift counts)
/// — plus that every configuration converges regardless of how the
/// post-rescue luck falls.
fn decision_trace(r: &SolveResult) -> (Vec<(usize, Option<CycleVerdict>, usize)>, bool) {
    let mut cycles = Vec::new();
    for (i, h) in r.health_history.iter().enumerate() {
        let shifts = r.shift_history[i].len();
        let rescued = shifts > 0;
        let near_tol = matches!(h.relres, Some(v) if v < 1e-10);
        if rescued || near_tol {
            // Step and shift count were decided *before* this cycle ran —
            // still deterministic; the cycle's outcome is not.
            cycles.push((h.step, None, shifts));
            break;
        }
        cycles.push((h.step, Some(h.verdict), shifts));
    }
    (cycles, r.converged)
}

/// Restore the global thread-count override even if an assertion unwinds.
struct ThreadGuard;
impl Drop for ThreadGuard {
    fn drop(&mut self) {
        parkit::set_num_threads(0);
    }
}

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`
/// (comma-separated), the same hook the CI test matrix drives.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![2usize, 3];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

fn auto_config(restart: usize, s: usize) -> GmresConfig {
    GmresConfig {
        restart,
        step_size: s,
        tol: 1e-8,
        max_iters: 20_000,
        // big_panel < restart keeps `finalized` advancing so the in-cycle
        // convergence estimate exits a cycle before fully converged
        // directions make its last panels linearly dependent.  Near the
        // convergence floor that "lucky breakdown" hinges on the last ulps
        // of reduction order, which *is* thread/rank-count dependent — the
        // decisions pinned here are the rescue decisions, not luck.
        ortho: SolverOrthoKind::TwoStage { big_panel: 8 },
        basis: BasisStrategy::Monomial,
        step_policy: StepPolicy::auto(),
        ..GmresConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn auto_decisions_are_deterministic_across_thread_counts(
        nx in 4usize..6,
        s in 6usize..9,
    ) {
        // The controller reads only replicated signals; worker-thread
        // chunking may change the last ulps of local kernels but must not
        // change what the controller decides.
        let a = elasticity3d(nx, nx, nx);
        let b = rhs_ones(&a);
        let solver = SStepGmres::new(auto_config(32, s));
        let _guard = ThreadGuard;
        let mut baseline = None;
        for threads in [1usize, 2, 4] {
            parkit::set_num_threads(threads);
            let (_, r) = solver.solve_serial(&a, &b);
            let trace = decision_trace(&r);
            match &baseline {
                None => baseline = Some(trace),
                Some(expect) => prop_assert_eq!(
                    expect,
                    &trace
                ),
            }
        }
    }

    #[test]
    fn auto_decisions_agree_across_ranks_and_rescue_across_rank_counts(
        nx in 4usize..6,
        s in 6usize..9,
    ) {
        // Every health signal the controller consumes is replicated, so
        // within one distributed run ALL ranks must take bitwise-identical
        // decisions — a single diverging rank would change its collective
        // sequence and deadlock a real MPI run.  Across *different* rank
        // counts the reduction order differs in the last ulps, which can
        // legitimately move the exact panel where an exponentially growing
        // basis condition number crosses the Cholesky threshold; what must
        // hold is that the initial collapse detection, the first shrink
        // target, and convergence agree with the serial run.
        let a = elasticity3d(nx, nx, nx);
        let n = a.nrows();
        let b = rhs_ones(&a);
        let config = auto_config(32, s);
        let (_, serial) = SStepGmres::new(config.clone()).solve_serial(&a, &b);
        let (serial_trace, serial_conv) = decision_trace(&serial);
        prop_assert!(serial_conv, "serial run must converge");
        for nranks in ranks_under_test() {
            let part = block_row_partition(n, nranks);
            let records = run_ranks(nranks, |comm| {
                let (lo, hi) = part.range(comm.rank());
                let comm_dyn: Arc<dyn Communicator> = comm;
                let dist = DistCsr::from_global(comm_dyn, &a, &part);
                let mut x = vec![0.0; hi - lo];
                let r = SStepGmres::new(config.clone()).solve(&dist, &Identity, &b[lo..hi], &mut x);
                // The full decision record, shift values included — within
                // one run these are replicated and must match bitwise.
                (
                    r.step_history.clone(),
                    r.shift_history.clone(),
                    r.health_history
                        .iter()
                        .map(|h| (h.verdict, h.fallbacks, h.stagnated, h.usable_cols))
                        .collect::<Vec<_>>(),
                    r.rescues,
                    r.converged,
                    decision_trace(&r),
                )
            });
            for (rank, rec) in records.iter().enumerate() {
                prop_assert!(
                    rec == &records[0],
                    "nranks {nranks}: rank {rank} diverged from rank 0 within the same run"
                );
            }
            let (_, _, _, rescues, converged, (trace, _)) = &records[0];
            prop_assert!(*converged, "nranks {nranks} must converge");
            // Initial detection matches serial when cycle 0 is far beyond
            // the conditioning threshold.  A `None` verdict in either first
            // entry means that run was already rescued or at the
            // convergence floor in cycle 0 — the knife-edge regime where
            // the last ulps of reduction order legitimately decide — so
            // the comparison is skipped there.
            let knife_edge = matches!(trace.first(), Some((_, None, _)))
                || matches!(serial_trace.first(), Some((_, None, _)));
            prop_assert!(
                knife_edge || trace.first() == serial_trace.first(),
                "nranks {nranks}: first-cycle decision diverged: {trace:?} vs {serial_trace:?}"
            );
            // If serial needed a rescue, so does every rank count, with
            // the same first shrink target.
            if serial.rescues > 0 {
                prop_assert!(*rescues > 0, "nranks {nranks}: rescue missing");
                prop_assert_eq!(records[0].0[1], serial.step_history[1]);
            }
        }
    }
}
