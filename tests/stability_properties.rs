//! Property-based tests (proptest) of the core numerical invariants the
//! paper's analysis relies on.

use blockortho::{orthogonalize_matrix, OrthoKind};
use dense::{cond_2, orthogonality_error, Matrix};
use proptest::prelude::*;
use testmat::{glued_matrix, logscaled_matrix, GluedSpec};

/// QR reconstruction check: `‖Q·R − V‖_max ≤ tol·‖V‖_max`.
fn reconstructs(q: &Matrix, r: &Matrix, v: &Matrix, tol: f64) -> bool {
    let back = dense::gemm_nn(q, r);
    let scale = v.max_abs().max(1.0);
    back.sub(v).max_abs() <= tol * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_schemes_factorize_well_conditioned_panels(
        seed in 0u64..1_000,
        kappa_exp in 0u32..6,
        s in 2usize..6,
        panels in 2usize..5,
    ) {
        let kappa = 10f64.powi(kappa_exp as i32);
        let n = 300;
        let v = glued_matrix(
            &GluedSpec {
                nrows: n,
                panel_cols: s,
                num_panels: panels,
                panel_cond: kappa,
                glue_cond: 10.0,
            },
            seed,
        );
        for kind in [
            OrthoKind::Bcgs2CholQr2,
            OrthoKind::BcgsPip2,
            OrthoKind::TwoStage { big_panel: 2 * s },
        ] {
            let (q, r) = orthogonalize_matrix(kind, &v, s).expect("well-conditioned input must not break down");
            prop_assert!(orthogonality_error(&q.view()) < 1e-11, "{kind:?}");
            prop_assert!(reconstructs(&q, &r, &v, 1e-9), "{kind:?}");
            // R upper triangular with positive diagonal.
            for j in 0..v.ncols() {
                prop_assert!(r[(j, j)] > 0.0);
                for i in (j + 1)..v.ncols() {
                    prop_assert!(r[(i, j)] == 0.0);
                }
            }
        }
    }

    #[test]
    fn cholqr_error_grows_with_condition_number_squared(
        seed in 0u64..1_000,
        kappa_exp in 1u32..7,
    ) {
        // Bound (2) of the paper: ‖I − Q̂ᵀQ̂‖ ≲ c₁·κ(V)².
        let kappa = 10f64.powi(kappa_exp as i32);
        let v = logscaled_matrix(400, 5, kappa, seed);
        let mut basis = distsim::DistMultiVector::from_matrix(distsim::SerialComm::new(), v.clone());
        if blockortho::kernels::cholqr(&mut basis, 0..5).is_ok() {
            let err = orthogonality_error(&basis.local().cols(0..5));
            let bound = 100.0 * 5.0 * (400.0 * 5.0 + 30.0) * f64::EPSILON * kappa * kappa;
            prop_assert!(err <= bound.max(1e-14), "err {err} vs bound {bound}");
        }
    }

    #[test]
    fn householder_qr_is_unconditionally_orthogonal(
        seed in 0u64..1_000,
        kappa_exp in 0u32..14,
    ) {
        let kappa = 10f64.powi(kappa_exp as i32);
        let v = logscaled_matrix(200, 4, kappa, seed);
        let (q, r) = dense::householder_qr(&v);
        prop_assert!(orthogonality_error(&q.view()) < 1e-12);
        prop_assert!(reconstructs(&q, &r, &v, 1e-10));
    }

    #[test]
    fn glued_matrices_have_prescribed_conditioning(
        seed in 0u64..1_000,
        panel_exp in 1u32..5,
        glue_exp in 1u32..4,
    ) {
        let spec = GluedSpec {
            nrows: 300,
            panel_cols: 4,
            num_panels: 3,
            panel_cond: 10f64.powi(panel_exp as i32),
            glue_cond: 10f64.powi(glue_exp as i32),
        };
        let v = glued_matrix(&spec, seed);
        let overall = cond_2(&v.view());
        let expect = spec.panel_cond * spec.glue_cond;
        prop_assert!(overall / expect > 0.2 && overall / expect < 5.0,
            "overall {overall} vs expected {expect}");
        for p in 0..3 {
            let kappa = cond_2(&v.cols(p * 4..(p + 1) * 4));
            prop_assert!(kappa / spec.panel_cond > 0.3 && kappa / spec.panel_cond < 3.0);
        }
    }

    #[test]
    fn two_sync_schemes_keep_o_eps_orthogonality_below_the_crossover(
        seed in 0u64..1_000,
        kappa_exp in 1u32..7,
        s in 3usize..6,
    ) {
        // The regime of the paper's Fig. 5 / Carson & Ma's analysis where
        // BCGS-PIP2-class schemes are guaranteed O(ε) orthogonality:
        // κ(V)² · ε < 1, i.e. κ(V) up to ~1e7 here.  Both the two-stage
        // scheme and BCGS-PIP2 must stay at machine-precision loss of
        // orthogonality across the whole bracket — this is the stability
        // envelope the performance comparison silently relies on, pinned
        // as a regression.
        let kappa = 10f64.powi(kappa_exp as i32);
        let v = glued_matrix(
            &GluedSpec {
                nrows: 320,
                panel_cols: s,
                num_panels: 4,
                panel_cond: kappa,
                glue_cond: 10.0,
            },
            seed,
        );
        let overall = cond_2(&v.view());
        for kind in [
            OrthoKind::TwoStage { big_panel: 2 * s },
            OrthoKind::TwoStage { big_panel: 4 * s },
            OrthoKind::BcgsPip2,
        ] {
            let (q, r) = orthogonalize_matrix(kind, &v, s)
                .expect("below the crossover no scheme may break down");
            let err = orthogonality_error(&q.view());
            // O(ε) envelope, independent of κ in this regime.
            prop_assert!(
                err < 1e-11,
                "{kind:?}: ‖I − QᵀQ‖ = {err:.2e} at κ(V) = {overall:.2e}"
            );
            prop_assert!(reconstructs(&q, &r, &v, 1e-8), "{kind:?}");
        }
    }

    #[test]
    fn single_pass_loss_of_orthogonality_grows_at_most_kappa_squared(
        seed in 0u64..1_000,
        kappa_exp in 1u32..8,
    ) {
        // The single-pass baseline (one BCGS-PIP sweep, no second stage)
        // follows the ‖I − QᵀQ‖ ≲ c·ε·κ(V)² envelope — the bound (2)-class
        // behaviour the two-sync schemes are built to escape.  On exactly
        // log-spaced singular values κ is prescribed, so the envelope can
        // be asserted sharply; the two-sync schemes must beat the single
        // pass by the κ² factor wherever the single pass degrades.
        let kappa = 10f64.powi(kappa_exp as i32);
        let v = logscaled_matrix(400, 5, kappa, seed);
        let mut basis =
            distsim::DistMultiVector::from_matrix(distsim::SerialComm::new(), v.clone());
        if blockortho::kernels::bcgs_pip(&mut basis, 0..0, 0..5).is_ok() {
            let err_single = orthogonality_error(&basis.local().cols(0..5));
            let envelope = (1e3 * f64::EPSILON * kappa * kappa).max(1e-14);
            prop_assert!(
                err_single <= envelope,
                "single pass: {err_single:.2e} vs c·ε·κ² = {envelope:.2e}"
            );
            if kappa <= 1e7 {
                // Same matrix through the reorthogonalized schemes: O(ε).
                for kind in [OrthoKind::BcgsPip2, OrthoKind::TwoStage { big_panel: 5 }] {
                    let (q, _) = orthogonalize_matrix(kind, &v, 5).expect("in-regime");
                    let err = orthogonality_error(&q.view());
                    prop_assert!(err < 1e-11, "{kind:?}: {err:.2e} at κ = {kappa:.1e}");
                }
            }
        }
    }

    #[test]
    fn sketched_schemes_keep_o_eps_orthogonality_across_the_full_kappa_bracket(
        seed in 0u64..1_000,
        kappa_exp in 1u32..13,
        s in 3usize..6,
    ) {
        // The sketched family's headline property (arXiv 2503.16717): the
        // panel factor comes from a backward-stable QR of the sketched
        // panel, so — unlike the CholQR-family kernels, whose Gram
        // factorization squares κ — the loss of orthogonality stays O(ε)
        // across the whole κ ∈ [10, 1e12] bracket, glued and log-scaled
        // alike, without any remedial fallback being required.
        let kappa = 10f64.powi(kappa_exp as i32);
        let glued = glued_matrix(
            &GluedSpec {
                nrows: 320,
                panel_cols: s,
                num_panels: 4,
                panel_cond: kappa,
                glue_cond: 10.0,
            },
            seed,
        );
        let logscaled = logscaled_matrix(400, 4 * s, kappa, seed);
        for v in [&glued, &logscaled] {
            for kind in [
                OrthoKind::RandCholQr,
                OrthoKind::TwoStageSketched { big_panel: 2 * s },
            ] {
                let (q, r) = orthogonalize_matrix(kind, v, s)
                    .expect("numerically full-rank input must not break down");
                let err = orthogonality_error(&q.view());
                prop_assert!(
                    err < 1e-11,
                    "{kind:?}: ‖I − QᵀQ‖ = {err:.2e} at κ = {kappa:.1e}"
                );
                prop_assert!(reconstructs(&q, &r, v, 1e-7), "{kind:?} at κ = {kappa:.1e}");
            }
        }
    }

    #[test]
    fn unsketched_single_pass_still_obeys_the_kappa_squared_envelope(
        seed in 0u64..1_000,
        kappa_exp in 1u32..8,
        s in 3usize..6,
    ) {
        // Adding the sketched family must not have touched the unsketched
        // kernels: a single BCGS-PIP pass keeps following the c·ε·κ²
        // envelope (bound (2)-class behaviour) on log-scaled panels.
        let kappa = 10f64.powi(kappa_exp as i32);
        let v = logscaled_matrix(400, s, kappa, seed);
        let mut basis =
            distsim::DistMultiVector::from_matrix(distsim::SerialComm::new(), v.clone());
        if blockortho::kernels::bcgs_pip(&mut basis, 0..0, 0..s).is_ok() {
            let err = orthogonality_error(&basis.local().cols(0..s));
            let envelope = (1e3 * f64::EPSILON * kappa * kappa).max(1e-14);
            prop_assert!(
                err <= envelope,
                "single pass: {err:.2e} vs c·ε·κ² = {envelope:.2e} at κ = {kappa:.1e}"
            );
        }
    }

    #[test]
    fn spmv_is_linear(
        seed in 0u64..1_000,
        nx in 4usize..12,
        alpha in -3.0f64..3.0,
    ) {
        // A(αx + y) = αAx + Ay for the stencil operators.
        let a = sparse::laplace2d_9pt(nx, nx);
        let n = a.nrows();
        let x = testmat::random_unit_vector(n, seed);
        let y = testmat::random_unit_vector(n, seed + 1);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| alpha * p + q).collect();
        let lhs = a.spmv_alloc(&combo);
        let ax = a.spmv_alloc(&x);
        let ay = a.spmv_alloc(&y);
        for i in 0..n {
            let rhs = alpha * ax[i] + ay[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-10 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn newton_basis_conditioning_dominates_monomial_for_large_s(
        seed in 0u64..1_000,
        nx in 12usize..20,
        s in 6usize..10,
    ) {
        // On a stencil with known spectrum (2-D Laplacian: eigenvalues
        // λ_{ij} = 4 − 2cos(iπ/(nx+1)) − 2cos(jπ/(nx+1))), Leja-ordered
        // exact-spectrum shifts must keep the matrix-powers basis at least
        // as well conditioned as the monomial basis for every s ≥ 6 — the
        // regime where the monomial basis degrades exponentially.
        let a = sparse::laplace2d_5pt(nx, nx);
        let v0 = testmat::random_unit_vector(a.nrows(), seed);
        let lam = |k: usize| {
            2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (nx + 1) as f64).cos()
        };
        let mut spectrum = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                spectrum.push((lam(i) + lam(j), 0.0));
            }
        }
        let shifts = ssgmres::shifts::newton_shifts(&spectrum, s, 1e-6)
            .expect("Laplace spectrum yields shifts");
        let kappa_mono = ssgmres::shifts::basis_condition_number(
            &a, &ssgmres::KrylovBasis::Monomial, s, &v0);
        let kappa_newton = ssgmres::shifts::basis_condition_number(
            &a, &ssgmres::KrylovBasis::Newton { shifts }, s, &v0);
        prop_assert!(
            kappa_newton <= kappa_mono,
            "s={s} nx={nx}: κ(newton) {kappa_newton:.3e} > κ(monomial) {kappa_mono:.3e}"
        );
    }

    #[test]
    fn two_stage_orthogonality_stays_o_eps_under_both_bases(
        seed in 0u64..1_000,
        s in 6usize..9,
    ) {
        // The two-stage scheme's O(ε) loss of orthogonality must hold
        // whichever basis feeds it: run the MPK + two-stage interleaving on
        // the Laplace stencil under the monomial basis and under
        // exact-spectrum Leja shifts, and check ‖I − QᵀQ‖ after finish.
        let nx = 14;
        let a = sparse::laplace2d_5pt(nx, nx);
        let m = 3 * s;
        let lam = |k: usize| {
            2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (nx + 1) as f64).cos()
        };
        let mut spectrum = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                spectrum.push((lam(i) + lam(j), 0.0));
            }
        }
        let newton_shifts = ssgmres::shifts::newton_shifts(&spectrum, s, 1e-6).unwrap();
        for basis in [
            ssgmres::KrylovBasis::Monomial,
            ssgmres::KrylovBasis::Newton { shifts: newton_shifts.clone() },
        ] {
            let mut mv = distsim::DistMultiVector::from_matrix(
                distsim::SerialComm::new(),
                Matrix::zeros(a.nrows(), m + 1),
            );
            let v0 = testmat::random_unit_vector(a.nrows(), seed);
            mv.local_mut().col_mut(0).copy_from_slice(&v0);
            let mut r = Matrix::zeros(m + 1, m + 1);
            let mut ts = blockortho::TwoStage::new(m + 1, m + 1);
            use blockortho::BlockOrthogonalizer;
            ts.orthogonalize_panel(&mut mv, 0..1, &mut r).expect("column 0");
            let mut cols = 1usize;
            while cols < m + 1 {
                let k = s.min(m + 1 - cols);
                for t in 0..k {
                    let input = mv.local().col(cols - 1 + t).to_vec();
                    let mut next = a.spmv_alloc(&input);
                    let theta = basis.shift(cols - 1 + t);
                    if theta != 0.0 {
                        for (wi, ui) in next.iter_mut().zip(&input) {
                            *wi -= theta * ui;
                        }
                    }
                    mv.local_mut().col_mut(cols + t).copy_from_slice(&next);
                }
                ts.orthogonalize_panel(&mut mv, cols..cols + k, &mut r)
                    .unwrap_or_else(|e| panic!("{basis:?}: panel {cols}: {e}"));
                cols += k;
            }
            ts.finish(&mut mv, &mut r)
                .unwrap_or_else(|e| panic!("{basis:?}: finish: {e}"));
            let err = orthogonality_error(&mv.local().cols(0..m + 1));
            prop_assert!(
                err < 1e-11,
                "{basis:?} s={s}: two-stage loss of orthogonality {err:.2e} not O(ε)"
            );
        }
    }

    #[test]
    fn sketched_variants_stay_clean_beyond_the_shifted_cholqr_crossover(
        seed in 0u64..1_000,
        kappa_exp in 9u32..13,
    ) {
        // At κ ≥ 1e9 a log-scaled panel drives the plain two-stage first
        // stage into its shifted-CholQR remedial path; the sketched
        // variants must absorb the same panel with zero fallback episodes
        // at the same per-panel reduce count, still landing at O(ε).
        use blockortho::make_orthogonalizer;
        let kappa = 10f64.powi(kappa_exp as i32);
        let v = logscaled_matrix(400, 8, kappa, seed);
        let run = |kind: OrthoKind| {
            let mut basis = distsim::DistMultiVector::from_matrix(
                distsim::SerialComm::new(),
                v.clone(),
            );
            let mut r = Matrix::zeros(8, 8);
            let mut scheme = make_orthogonalizer(kind, 8);
            scheme.orthogonalize_panel(&mut basis, 0..8, &mut r).expect("panel");
            scheme.finish(&mut basis, &mut r).expect("finish");
            (
                orthogonality_error(&basis.local().cols(0..8)),
                scheme.fallback_count(),
            )
        };
        let (err_plain, episodes_plain) = run(OrthoKind::TwoStage { big_panel: 8 });
        prop_assert!(err_plain < 1e-11, "the remedy itself must still work");
        for kind in [
            OrthoKind::RandCholQr,
            OrthoKind::TwoStageSketched { big_panel: 8 },
        ] {
            let (err, episodes) = run(kind);
            // Whether the plain Cholesky on the κ²-conditioned Gram
            // survives at a given κ is seed-dependent; the pinned claim is
            // the paper's: *where* the plain first stage records remedial
            // episodes, the sketched variants record strictly fewer (none)
            // at the same per-panel reduce count — and they stay at O(ε)
            // unconditionally.
            if episodes_plain > 0 {
                prop_assert!(
                    episodes == 0,
                    "{kind:?}: {episodes} episodes at κ = {kappa:.1e}, expected none"
                );
            }
            prop_assert!(err < 1e-11, "{kind:?}: {err:.2e} at κ = {kappa:.1e}");
        }
    }

    #[test]
    fn gmres_residual_never_increases_across_restarts(
        nx in 8usize..16,
        s in 1usize..6,
    ) {
        let a = sparse::laplace2d_5pt(nx, nx);
        let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
        let config = ssgmres::GmresConfig {
            restart: 10,
            step_size: s.min(10),
            tol: 1e-10,
            max_restarts: 6,
            ortho: if s == 1 { ssgmres::OrthoKind::Cgs2 } else { ssgmres::OrthoKind::BcgsPip2 },
            ..ssgmres::GmresConfig::default()
        };
        let (_, result) = ssgmres::SStepGmres::new(config).solve_serial(&a, &b);
        // GMRES minimizes the residual over a growing space each cycle; the
        // final relative residual can never exceed 1.  (A Cholesky breakdown
        // report is allowed: on these small systems the Krylov space is often
        // exhausted near convergence — the "lucky breakdown" — and the solver
        // truncates the cycle; the residual bound must still hold.)
        prop_assert!(result.final_relres <= 1.0 + 1e-12);
    }
}
