//! "Glued" matrices (Figs. 7–8 of the paper).
//!
//! A glued matrix is a block matrix `V = [V₁, V₂, …, V_k]` in which every
//! panel `V_j` has the same prescribed condition number `κ_panel`, while the
//! condition number of the accumulated matrix `V_{1:j}` grows geometrically
//! with `j` until it reaches `κ_panel · κ_glue` for the full matrix.  This is
//! the classic stress test for block Gram–Schmidt: a method that only looks
//! at one panel at a time sees benign inputs, but the concatenated basis can
//! be far worse conditioned.
//!
//! Construction: the panels live in mutually orthogonal subspaces (disjoint
//! columns of one random orthonormal `n × (k·p)` matrix), each panel has
//! log-spaced singular values `σ ∈ [1/κ_panel, 1]`, and panel `j` is scaled
//! by `g^{-j}` with `g = κ_glue^{1/(k−1)}`.  Scaling does not change a
//! panel's condition number, but the concatenation's singular values are the
//! union of the scaled panel spectra, so
//! `κ(V_{1:j}) ≈ g^{j−1} · κ_panel`, exactly the growth pattern reported in
//! the paper's Fig. 8.

use crate::logscaled::logspace_singular_values;
use crate::random::random_orthonormal;
use dense::Matrix;

/// Parameters of a glued matrix.
#[derive(Debug, Clone, Copy)]
pub struct GluedSpec {
    /// Number of rows `n`.
    pub nrows: usize,
    /// Columns per panel `p` (the paper's `s` or `s+1`).
    pub panel_cols: usize,
    /// Number of panels `k`.
    pub num_panels: usize,
    /// Condition number of every individual panel.
    pub panel_cond: f64,
    /// Extra growth factor of the overall matrix relative to a panel:
    /// `κ(V) ≈ panel_cond · glue_cond`.
    pub glue_cond: f64,
}

/// Generate a glued matrix according to `spec` (see the module docs).
pub fn glued_matrix(spec: &GluedSpec, seed: u64) -> Matrix {
    let GluedSpec {
        nrows,
        panel_cols,
        num_panels,
        panel_cond,
        glue_cond,
    } = *spec;
    assert!(panel_cols >= 1 && num_panels >= 1, "empty glued matrix");
    assert!(
        panel_cond >= 1.0 && glue_cond >= 1.0,
        "condition numbers must be >= 1"
    );
    let total_cols = panel_cols * num_panels;
    assert!(
        nrows >= total_cols,
        "glued_matrix: need nrows >= panel_cols * num_panels ({nrows} < {total_cols})"
    );
    // One global orthonormal basis; panel j uses columns j·p .. (j+1)·p.
    let x = random_orthonormal(nrows, total_cols, seed.wrapping_mul(3).wrapping_add(1));
    let sigma = logspace_singular_values(panel_cols, panel_cond);
    let growth = if num_panels > 1 {
        glue_cond.powf(1.0 / (num_panels as f64 - 1.0))
    } else {
        1.0
    };
    let mut v = Matrix::zeros(nrows, total_cols);
    for j in 0..num_panels {
        let scale = growth.powi(-(j as i32));
        // Random orthogonal p×p mixing so panel columns are not trivially the
        // basis directions.
        let y = random_orthonormal(
            panel_cols,
            panel_cols,
            seed.wrapping_mul(3).wrapping_add(2 + j as u64),
        );
        for c in 0..panel_cols {
            let col = v.col_mut(j * panel_cols + c);
            for k in 0..panel_cols {
                let w = scale * sigma[k] * y[(c, k)];
                dense::axpy(w, x.col(j * panel_cols + k), col);
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::cond_2;

    fn spec() -> GluedSpec {
        GluedSpec {
            nrows: 600,
            panel_cols: 5,
            num_panels: 4,
            panel_cond: 1e4,
            glue_cond: 1e3,
        }
    }

    #[test]
    fn panel_condition_numbers_match_spec() {
        let v = glued_matrix(&spec(), 1);
        for j in 0..4 {
            let panel = v.cols(j * 5..(j + 1) * 5);
            let kappa = cond_2(&panel);
            assert!(
                kappa / 1e4 > 0.5 && kappa / 1e4 < 2.0,
                "panel {j} cond = {kappa}"
            );
        }
    }

    #[test]
    fn accumulated_condition_number_grows_geometrically() {
        let v = glued_matrix(&spec(), 2);
        let growth = 1e3f64.powf(1.0 / 3.0);
        let mut prev = 0.0;
        for j in 1..=4 {
            let kappa = cond_2(&v.cols(0..j * 5));
            assert!(kappa > prev, "cond must be nondecreasing");
            let expect = 1e4 * growth.powi(j as i32 - 1);
            assert!(
                kappa / expect > 0.3 && kappa / expect < 3.0,
                "prefix {j}: cond {kappa}, expected ~{expect}"
            );
            prev = kappa;
        }
    }

    #[test]
    fn full_matrix_condition_is_panel_times_glue() {
        let v = glued_matrix(&spec(), 3);
        let kappa = cond_2(&v.view());
        let expect = 1e4 * 1e3;
        assert!(
            kappa / expect > 0.3 && kappa / expect < 3.0,
            "overall cond {kappa}, expected ~{expect}"
        );
    }

    #[test]
    fn single_panel_degenerates_to_logscaled() {
        let v = glued_matrix(
            &GluedSpec {
                nrows: 100,
                panel_cols: 4,
                num_panels: 1,
                panel_cond: 1e5,
                glue_cond: 1e8, // irrelevant with a single panel
            },
            4,
        );
        let kappa = cond_2(&v.view());
        assert!(kappa / 1e5 > 0.5 && kappa / 1e5 < 2.0);
    }

    #[test]
    #[should_panic(expected = "nrows >= panel_cols * num_panels")]
    fn rejects_too_many_columns() {
        glued_matrix(
            &GluedSpec {
                nrows: 10,
                panel_cols: 4,
                num_panels: 4,
                panel_cond: 10.0,
                glue_cond: 10.0,
            },
            0,
        );
    }
}
