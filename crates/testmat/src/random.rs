//! Random dense building blocks (Gaussian matrices, orthonormal panels).

use dense::{householder_qr, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draw one standard-normal sample via the Box–Muller transform.
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// An `nrows × ncols` matrix with i.i.d. standard-normal entries.
pub fn random_dense(nrows: usize, ncols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..nrows * ncols)
        .map(|_| standard_normal(&mut rng))
        .collect();
    Matrix::from_col_major(nrows, ncols, data)
}

/// A random matrix with orthonormal columns, `nrows × ncols` (`nrows ≥ ncols`),
/// obtained as the Q factor of a Gaussian matrix.
pub fn random_orthonormal(nrows: usize, ncols: usize, seed: u64) -> Matrix {
    assert!(
        nrows >= ncols,
        "random_orthonormal: need nrows >= ncols ({nrows} < {ncols})"
    );
    let g = random_dense(nrows, ncols, seed);
    let (q, _) = householder_qr(&g);
    q
}

/// A random unit-norm vector of length `n`.
pub fn random_unit_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
    let norm = dense::nrm2(&v);
    if norm > 0.0 {
        dense::scal(1.0 / norm, &mut v);
    } else {
        v[0] = 1.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::{cond_2, nrm2, orthogonality_error};

    #[test]
    fn random_dense_is_seed_deterministic() {
        let a = random_dense(20, 3, 123);
        let b = random_dense(20, 3, 123);
        let c = random_dense(20, 3, 124);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_dense_has_roughly_unit_variance() {
        let a = random_dense(20_000, 1, 5);
        let mean: f64 = a.data().iter().sum::<f64>() / 20_000.0;
        let var: f64 = a
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / 20_000.0;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn orthonormal_panel_is_orthonormal() {
        let q = random_orthonormal(800, 7, 9);
        assert!(orthogonality_error(&q.view()) < 1e-13);
        assert!((cond_2(&q.view()) - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "nrows >= ncols")]
    fn orthonormal_rejects_wide_shapes() {
        random_orthonormal(3, 5, 0);
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let v = random_unit_vector(1000, 17);
        assert!((nrm2(&v) - 1.0).abs() < 1e-14);
    }
}
