//! "Logscaled" matrices with a prescribed condition number (Fig. 6).
//!
//! `V = X Σ Yᵀ` with random orthonormal `X ∈ R^{n×s}`, random orthogonal
//! `Y ∈ R^{s×s}`, and `Σ` holding singular values spaced logarithmically
//! between `1` and `1/κ`, so `κ₂(V) = κ` exactly (up to rounding).

use crate::random::random_orthonormal;
use dense::Matrix;

/// Singular values logarithmically spaced from `1` down to `1/kappa`.
pub fn logspace_singular_values(s: usize, kappa: f64) -> Vec<f64> {
    assert!(s >= 1, "need at least one singular value");
    assert!(kappa >= 1.0, "condition number must be >= 1");
    if s == 1 {
        return vec![1.0];
    }
    let log_min = -kappa.log10();
    (0..s)
        .map(|k| 10f64.powf(log_min * k as f64 / (s - 1) as f64))
        .collect()
}

/// An `n × s` matrix with condition number `kappa` and logarithmically
/// spaced singular values (the synthetic input of the paper's Fig. 6).
pub fn logscaled_matrix(n: usize, s: usize, kappa: f64, seed: u64) -> Matrix {
    assert!(n >= s, "logscaled_matrix: need n >= s");
    let x = random_orthonormal(n, s, seed.wrapping_mul(2).wrapping_add(1));
    let y = random_orthonormal(s, s, seed.wrapping_mul(2).wrapping_add(2));
    let sigma = logspace_singular_values(s, kappa);
    // V = X · diag(σ) · Yᵀ, built column by column:
    // V[:, j] = Σ_k X[:, k] σ_k Y[j, k].
    let mut v = Matrix::zeros(n, s);
    for j in 0..s {
        let vj = v.col_mut(j);
        for k in 0..s {
            let w = sigma[k] * y[(j, k)];
            dense::axpy(w, x.col(k), vj);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::cond_2;

    #[test]
    fn logspace_endpoints_and_monotonicity() {
        let s = logspace_singular_values(5, 1e8);
        assert!((s[0] - 1.0).abs() < 1e-15);
        assert!((s[4] - 1e-8).abs() < 1e-20);
        for w in s.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn single_value_is_one() {
        assert_eq!(logspace_singular_values(1, 1e10), vec![1.0]);
    }

    #[test]
    fn condition_number_is_prescribed() {
        for &kappa in &[1e2, 1e6, 1e10] {
            let v = logscaled_matrix(400, 5, kappa, 3);
            let measured = cond_2(&v.view());
            let ratio = measured / kappa;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "kappa requested {kappa}, measured {measured}"
            );
        }
    }

    #[test]
    fn well_conditioned_case_is_orthonormal_like() {
        let v = logscaled_matrix(300, 4, 1.0, 11);
        assert!((cond_2(&v.view()) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn different_seeds_give_different_matrices_same_cond() {
        let a = logscaled_matrix(200, 5, 1e6, 1);
        let b = logscaled_matrix(200, 5, 1e6, 2);
        assert_ne!(a, b);
        let ka = cond_2(&a.view());
        let kb = cond_2(&b.view());
        assert!((ka / kb - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "need n >= s")]
    fn rejects_wide_shapes() {
        logscaled_matrix(3, 5, 10.0, 0);
    }
}
