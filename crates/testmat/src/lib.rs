//! # testmat — synthetic test matrices for the numerical study
//!
//! The paper's Section VI measures orthogonality errors and condition
//! numbers on synthetic inputs whose conditioning can be controlled exactly:
//!
//! * **logscaled matrices** (Fig. 6): `V = X Σ Yᵀ` with random orthonormal
//!   `X ∈ R^{n×s}`, `Y ∈ R^{s×s}` and `Σ = diag(logspace(0, −log₁₀κ, s))`,
//!   so that `κ(V)` is exactly the requested value;
//! * **glued matrices** (Figs. 7–8): block matrices whose panels each have a
//!   prescribed condition number while the condition number of the
//!   accumulated matrix `V_{1:j}` grows geometrically panel by panel —
//!   the classic stress test for block Gram–Schmidt stability;
//! * random orthonormal panels and general random matrices as building
//!   blocks.
//!
//! Each generator takes an explicit RNG seed so the "min/avg/max over ten
//! seeds" curves of the paper are reproducible.

pub mod glued;
pub mod logscaled;
pub mod random;

pub use glued::{glued_matrix, GluedSpec};
pub use logscaled::{logscaled_matrix, logspace_singular_values};
pub use random::{random_dense, random_orthonormal, random_unit_vector};

#[cfg(test)]
mod tests {
    use super::*;
    use dense::cond_2;

    #[test]
    fn generators_compose() {
        let v = logscaled_matrix(500, 5, 1e8, 42);
        let kappa = cond_2(&v.view());
        assert!(kappa > 1e7 && kappa < 1e9, "kappa = {kappa}");
        let g = glued_matrix(
            &GluedSpec {
                nrows: 400,
                panel_cols: 4,
                num_panels: 3,
                panel_cond: 1e4,
                glue_cond: 1e2,
            },
            7,
        );
        assert_eq!(g.nrows(), 400);
        assert_eq!(g.ncols(), 12);
    }
}
