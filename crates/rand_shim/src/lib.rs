//! Minimal deterministic stand-in for the subset of the `rand` API this
//! workspace uses (`StdRng::seed_from_u64` + `random::<u64>()` /
//! `random::<f64>()`).
//!
//! The build environment is offline, so the real `rand` crate cannot be
//! fetched.  All uses in this workspace are *seeded* generators for
//! reproducible synthetic test matrices — statistical quality beyond "well
//! mixed and uniform" is not required.  The generator is xoshiro256++ with
//! splitmix64 seeding, the same construction the real `rand` crate has used
//! for its small RNGs; streams are stable across platforms and releases of
//! this workspace, which keeps every seeded test matrix byte-reproducible.

/// Seedable random number generators (API-compatible subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sampling extension methods (API-compatible subset of `rand::Rng`,
/// under the 0.9-series name).
pub trait RngExt {
    /// Draw one uniformly distributed value.
    fn random<T: Standard>(&mut self) -> T;
}

impl RngExt for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::SeedableRng;

    /// A small, fast, seedable generator (xoshiro256++); stands in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state, the
            // standard recommendation of the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_samples_are_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn u32_and_u64_sampling_compile_and_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: u32 = rng.random();
        let b: u64 = rng.random();
        let c: u32 = rng.random();
        assert!(a != c || b != 0);
    }
}
