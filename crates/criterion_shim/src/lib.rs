//! Minimal drop-in replacement for the subset of the `criterion` API used by
//! this workspace's benchmarks.
//!
//! The build environment is fully offline, so the real `criterion` crate
//! cannot be fetched; this shim keeps the `benches/` sources unmodified and
//! runnable.  It is a plain wall-clock harness: each benchmark runs a short
//! warm-up followed by `sample_size` timed samples and reports min / mean /
//! max per-iteration time.  It makes no statistical claims beyond that —
//! swap in the real criterion (same API) when network access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group (function + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted by
/// [`BenchmarkGroup::bench_function`] (mirrors criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Prevent the compiler from optimizing a value away (best-effort without
/// unstable intrinsics, same approach as criterion's fallback).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark("", &id.into_benchmark_id(), sample_size, f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into_benchmark_id(), self.sample_size, f);
    }

    /// Finish the group (reports are printed eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples after one warm-up
    /// iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(group: &str, id: &BenchmarkId, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    if bencher.samples.is_empty() {
        println!("  {full}: no samples");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "  {full}: min {:?}  mean {:?}  max {:?}  ({} samples)",
        min,
        mean,
        max,
        bencher.samples.len()
    );
}

/// Declare a benchmark group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // one warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("cholqr", 5).label, "cholqr/5");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
