//! Property tests of the modified Leja ordering and the shift pipeline
//! (`ssgmres::shifts`) — the invariants the adaptive Newton basis relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssgmres::shifts::{dedupe_points, modified_leja_order, newton_shifts, SpectralPoint};

/// Deterministic point cloud: a mix of real points and conjugate pairs.
fn point_cloud(seed: u64, n_real: usize, n_pairs: usize) -> Vec<SpectralPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for _ in 0..n_real {
        let re = (rng.random::<u64>() % 2_001) as f64 / 100.0 - 10.0;
        pts.push((re, 0.0));
    }
    for _ in 0..n_pairs {
        let re = (rng.random::<u64>() % 2_001) as f64 / 100.0 - 10.0;
        let im = (rng.random::<u64>() % 1_000 + 1) as f64 / 100.0;
        pts.push((re, im));
        pts.push((re, -im));
    }
    pts
}

/// Shuffle a copy of `pts` with a seeded Fisher–Yates.
fn shuffled(pts: &[SpectralPoint], seed: u64) -> Vec<SpectralPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = pts.to_vec();
    for i in (1..out.len()).rev() {
        let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

fn sorted(mut v: Vec<SpectralPoint>) -> Vec<SpectralPoint> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

fn modulus(z: SpectralPoint) -> f64 {
    z.0.hypot(z.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn leja_output_is_a_permutation_of_the_input(
        seed in 0u64..10_000,
        n_real in 0usize..8,
        n_pairs in 0usize..4,
    ) {
        let pts = point_cloud(seed, n_real, n_pairs);
        let ordered = modified_leja_order(&pts);
        prop_assert_eq!(ordered.len(), pts.len());
        // Same multiset: equality after canonical sorting (the generator
        // never produces NaN, and ties are exact-value duplicates).
        prop_assert_eq!(sorted(ordered), sorted(pts));
    }

    #[test]
    fn leja_keeps_conjugate_pairs_adjacent(
        seed in 0u64..10_000,
        n_real in 0usize..6,
        n_pairs in 1usize..5,
    ) {
        let pts = point_cloud(seed, n_real, n_pairs);
        let ordered = modified_leja_order(&pts);
        let mut i = 0;
        while i < ordered.len() {
            let (re, im) = ordered[i];
            if im != 0.0 {
                prop_assert!(i + 1 < ordered.len(), "pair member last: {ordered:?}");
                prop_assert_eq!(ordered[i + 1], (re, -im));
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    #[test]
    fn leja_first_point_has_max_modulus(
        seed in 0u64..10_000,
        n_real in 1usize..8,
        n_pairs in 0usize..4,
    ) {
        let pts = point_cloud(seed, n_real, n_pairs);
        let ordered = modified_leja_order(&pts);
        let max_mod = pts.iter().map(|&z| modulus(z)).fold(0.0f64, f64::max);
        prop_assert!(
            modulus(ordered[0]) >= max_mod - 1e-15 * max_mod.max(1.0),
            "first {:?} has modulus {} < max {}",
            ordered[0], modulus(ordered[0]), max_mod
        );
    }

    #[test]
    fn leja_ordering_is_permutation_invariant_even_with_ties(
        seed in 0u64..10_000,
        n_real in 1usize..6,
        n_pairs in 0usize..3,
        shuffle_seed in 0u64..1_000,
    ) {
        // Inject exact duplicates (ties in both modulus and distance
        // products), then present the same multiset in a different order:
        // the output must be identical, element for element.
        let mut pts = point_cloud(seed, n_real, n_pairs);
        let dup = pts[0];
        pts.push(dup);
        let a = modified_leja_order(&pts);
        let b = modified_leja_order(&shuffled(&pts, shuffle_seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dedupe_preserves_conjugate_closure_and_shrinks_clusters(
        seed in 0u64..10_000,
        n_real in 0usize..6,
        n_pairs in 0usize..4,
    ) {
        let mut pts = point_cloud(seed, n_real, n_pairs);
        // Add a tight cluster around the first point (if any).
        if let Some(&(re, im)) = pts.first() {
            pts.push((re + 1e-13, im));
        }
        let out = dedupe_points(&pts, 1e-8);
        prop_assert!(out.len() <= pts.len());
        for &(re, im) in &out {
            if im != 0.0 {
                prop_assert!(
                    out.contains(&(re, -im)),
                    "conjugate closure broken: {out:?}"
                );
            }
        }
        // Deduplication is idempotent.
        prop_assert_eq!(dedupe_points(&out, 1e-8), out);
    }

    #[test]
    fn newton_shifts_never_split_a_pair_and_respect_the_cap(
        seed in 0u64..10_000,
        n_real in 1usize..6,
        n_pairs in 0usize..4,
        cap in 1usize..12,
    ) {
        let pts = point_cloud(seed, n_real, n_pairs);
        if let Some(shifts) = newton_shifts(&pts, cap, 1e-8) {
            prop_assert!(shifts.len() <= cap);
            prop_assert!(!shifts.is_empty());
            prop_assert!(shifts.iter().any(|&s| s != 0.0));
            // The shifts are the real parts of a prefix of the Leja-ordered
            // deduped points, and every conjugate pair member inside that
            // prefix has its mirror inside it too (no pair is split by the
            // cap) — so a pair always contributes its real part twice, in
            // adjacent positions.
            let ordered = modified_leja_order(&dedupe_points(&pts, 1e-8));
            let prefix = &ordered[..shifts.len()];
            for (i, &s) in shifts.iter().enumerate() {
                prop_assert!(
                    s == prefix[i].0,
                    "shift {i} ({s}) is not the prefix real part ({})",
                    prefix[i].0
                );
            }
            for (i, &(re, im)) in prefix.iter().enumerate() {
                if im != 0.0 {
                    let partner = if im > 0.0 { i + 1 } else { i.wrapping_sub(1) };
                    prop_assert!(
                        partner < prefix.len() && prefix[partner] == (re, -im),
                        "pair member ({re}, {im}) at {i} lacks its adjacent mirror: {prefix:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn leja_order_of_empty_and_singleton_inputs() {
    assert!(modified_leja_order(&[]).is_empty());
    assert_eq!(modified_leja_order(&[(2.5, 0.0)]), vec![(2.5, 0.0)]);
}

#[test]
fn leja_order_known_sequence_on_symmetric_reals() {
    // On {-2, -1, 0, 1, 2} the modified Leja order starts at an extreme
    // (±2; the deterministic tie-break picks +2), then the opposite extreme,
    // then the midpoint.
    let pts: Vec<SpectralPoint> = (-2..=2).map(|k| (k as f64, 0.0)).collect();
    let ordered = modified_leja_order(&pts);
    assert_eq!(ordered[0], (2.0, 0.0));
    assert_eq!(ordered[1], (-2.0, 0.0));
    assert_eq!(ordered[2], (0.0, 0.0));
}
