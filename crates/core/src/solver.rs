//! The restarted s-step GMRES solver (Fig. 1 / Fig. 5 of the paper).

use crate::basis::{BasisStrategy, KrylovBasis};
use crate::control::{self, CycleHealth, StepController, StepPolicy};
use crate::hessenberg::HessenbergRecovery;
use crate::precond::{Identity, Preconditioner};
use crate::shifts;
use crate::timing::{CycleClock, CycleTiming, Phase};
use blockortho::{make_orthogonalizer_with_sketch, FallbackEvent, OrthoKind};
use dense::Matrix;
use distsim::{
    fault, CommStatsSnapshot, Communicator, DistCsr, DistMultiVector, GuardContext, GuardCounts,
    GuardEvent, GuardPolicy, SerialComm, SketchConfig,
};
use sparse::{block_row_partition, Csr, RowPartition, RowSource};
use std::sync::Arc;

/// Configuration of the (s-step) GMRES solver.
#[derive(Debug, Clone)]
pub struct GmresConfig {
    /// Restart length `m` (the paper uses 60).
    pub restart: usize,
    /// Step size `s` of the matrix-powers kernel (`1` = standard GMRES; the
    /// paper's conservative default is 5).
    pub step_size: usize,
    /// Convergence tolerance on the relative residual `‖b − A·x‖ / ‖r₀‖`
    /// (the paper uses 1e-6).
    pub tol: f64,
    /// Hard cap on the total number of iterations (basis vectors generated).
    pub max_iters: usize,
    /// Hard cap on the number of restart cycles.
    pub max_restarts: usize,
    /// Block orthogonalization scheme.
    pub ortho: OrthoKind,
    /// Krylov basis policy of the matrix-powers kernel (fixed monomial or
    /// Newton shifts, adaptive Ritz harvesting, or a replayed schedule).
    pub basis: BasisStrategy,
    /// Step-size policy: [`StepPolicy::Fixed`] (the default, bitwise the
    /// pre-controller solver), the self-rescuing [`StepPolicy::Auto`], or
    /// a replayed [`StepPolicy::Scheduled`] step schedule.
    pub step_policy: StepPolicy,
    /// Fault-detection guards (Gram screening, halo checksums, agreement
    /// probes) and the in-place recovery budget.  All off by default: no
    /// [`GuardContext`] is allocated and every collective is bitwise the
    /// unguarded operation.
    pub guards: GuardPolicy,
    /// Sketch operator configuration used by the sketched orthogonalization
    /// kinds ([`OrthoKind::RandCholQr`], [`OrthoKind::TwoStageSketched`]);
    /// ignored by the unsketched kinds.  Fixing the seed makes sketched
    /// runs bitwise replayable.
    pub sketch: SketchConfig,
}

impl Default for GmresConfig {
    fn default() -> Self {
        Self {
            restart: 60,
            step_size: 5,
            tol: 1e-6,
            max_iters: 500_000,
            max_restarts: usize::MAX,
            ortho: OrthoKind::BcgsPip2,
            basis: BasisStrategy::Monomial,
            step_policy: StepPolicy::Fixed,
            guards: GuardPolicy::default(),
            sketch: SketchConfig::default(),
        }
    }
}

/// Configuration matching the paper's "standard GMRES + CGS2" baseline.
pub fn standard_gmres_config() -> GmresConfig {
    GmresConfig {
        step_size: 1,
        ortho: OrthoKind::Cgs2,
        ..GmresConfig::default()
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Whether the relative residual dropped below the tolerance.
    pub converged: bool,
    /// Total number of Krylov basis vectors generated (the paper's "# iters").
    pub iterations: usize,
    /// Number of restart cycles performed.
    pub restarts: usize,
    /// Final true relative residual `‖b − A·x‖ / ‖r₀‖`.
    pub final_relres: f64,
    /// Breakdown diagnostic, if an orthogonalization breakdown occurred.
    pub breakdown: Option<String>,
    /// Number of sparse matrix–vector products performed.
    pub spmv_count: usize,
    /// Number of preconditioner applications performed.
    pub precond_count: usize,
    /// Communication performed by the whole solve (this rank).
    pub comm_total: CommStatsSnapshot,
    /// Communication attributable to block orthogonalization only.
    pub comm_ortho: CommStatsSnapshot,
    /// True relative residual after each completed restart cycle.
    pub relres_history: Vec<f64>,
    /// Newton shifts in effect for each started cycle (empty = monomial).
    /// Feeding this back through [`BasisStrategy::Scheduled`] replays the
    /// solve bitwise.
    pub shift_history: Vec<Vec<f64>>,
    /// The most recent successful Ritz-shift harvest (recorded for every
    /// strategy; only [`BasisStrategy::Adaptive`] acts on it).  Lets a
    /// short warm-up solve serve as a shift oracle for a later fixed-shift
    /// [`BasisStrategy::Newton`] run.
    pub last_harvest: Option<Vec<f64>>,
    /// Total shifted-CholQR fallbacks the orthogonalization took across all
    /// cycles (nonzero only for schemes with a remedial path; distinct
    /// episodes — a big-panel fallback over an already-remediated panel is
    /// not counted twice).
    pub ortho_fallbacks: usize,
    /// Effective step size of each started cycle.  Feeding this back
    /// through [`StepPolicy::Scheduled`] (together with `shift_history`
    /// through [`BasisStrategy::Scheduled`]) replays the solve bitwise.
    pub step_history: Vec<usize>,
    /// Per-cycle health reports (one per started cycle): panel condition
    /// estimate from the R diagonal, per-stage fallback events, breakdown
    /// message, residual, stagnation flag, and verdict.  Recorded for
    /// every policy; only [`StepPolicy::Auto`] acts on it.
    pub health_history: Vec<CycleHealth>,
    /// Number of step-shrink rescues [`StepPolicy::Auto`] took (0 under
    /// `Fixed`/`Scheduled`).
    pub rescues: usize,
    /// Per-cycle wall-time breakdown (one entry per started cycle, aligned
    /// with `step_history`/`health_history`): matrix-powers kernel, block
    /// orthogonalization, Hessenberg recovery, solution update, residual
    /// check, and — when the [`trace`] layer is enabled — the cycle's
    /// synchronization share measured from `"comm"`-category spans.
    pub cycle_timings: Vec<CycleTiming>,
    /// Every fault the detection guards caught during the solve, in
    /// detection order (empty when guards are disabled).
    pub fault_events: Vec<GuardEvent>,
    /// Faults detected by the guards across the whole solve.
    pub faults_detected: usize,
    /// Of those, faults recovered — in place (successful collective retry,
    /// discarded duplicate) or by the cycle-rollback ladder.
    pub faults_recovered: usize,
    /// Faults that defeated every rung of the recovery ladder.  A solve
    /// can still report `converged` with these at zero only if recovery
    /// truly succeeded everywhere.
    pub faults_unrecovered: usize,
}

/// The restarted s-step GMRES solver.
#[derive(Debug, Clone)]
pub struct SStepGmres {
    config: GmresConfig,
}

impl SStepGmres {
    /// Create a solver with the given configuration.
    pub fn new(config: GmresConfig) -> Self {
        assert!(config.restart >= 1, "restart length must be at least 1");
        assert!(config.step_size >= 1, "step size must be at least 1");
        assert!(
            config.step_size <= config.restart,
            "step size cannot exceed the restart length"
        );
        if let StepPolicy::Auto(auto) = &config.step_policy {
            assert!(auto.min_step >= 1, "auto step floor must be at least 1");
            assert!(
                auto.min_step <= config.step_size,
                "auto step floor cannot exceed the requested step size"
            );
            assert!(auto.grow_after >= 1, "grow_after must be at least 1");
            assert!(
                auto.stagnation_window >= 1,
                "stagnation window must be at least 1"
            );
            assert!(
                auto.stagnation_factor > 0.0 && auto.stagnation_factor <= 1.0,
                "stagnation factor must be in (0, 1]"
            );
        }
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GmresConfig {
        &self.config
    }

    /// Solve `A·x = b` on a single rank, starting from `x = 0`, without a
    /// preconditioner.  Returns the solution and the solve statistics.
    pub fn solve_serial(&self, a: &Csr, b: &[f64]) -> (Vec<f64>, SolveResult) {
        self.solve_serial_preconditioned(a, b, &Identity)
    }

    /// Solve `A·x = b` on a single rank with a right preconditioner.
    pub fn solve_serial_preconditioned(
        &self,
        a: &Csr,
        b: &[f64],
        precond: &dyn Preconditioner,
    ) -> (Vec<f64>, SolveResult) {
        let comm = SerialComm::new();
        let part = block_row_partition(a.nrows(), 1);
        let dist = DistCsr::from_global(comm, a, &part);
        let mut x = vec![0.0; a.nrows()];
        let result = self.solve(&dist, precond, b, &mut x);
        (x, result)
    }

    /// Solve `A·x = b` on a single rank, assembling the operator by
    /// streaming it from a row provider instead of a replicated CSR.
    pub fn solve_serial_from_rows<S: RowSource>(
        &self,
        rows: &S,
        b: &[f64],
    ) -> (Vec<f64>, SolveResult) {
        let comm = SerialComm::new();
        let part = block_row_partition(rows.nrows(), 1);
        let mut x = vec![0.0; rows.nrows()];
        let result = self.solve_from_rows(comm, &part, rows, &Identity, b, &mut x);
        (x, result)
    }

    /// Solve `A·x = b` with the operator assembled from a **row provider**
    /// rather than a replicated `&Csr`: the distributed matrix is built by
    /// streaming this rank's rows ([`DistCsr::from_row_source`]), so no
    /// rank ever materializes the global matrix — peak construction memory
    /// is `O(nnz/P + halo)` per rank.
    ///
    /// Collective: every rank of `comm` must call it with the same `part`
    /// and an equivalent row provider.  `b_local` and `x_local` are this
    /// rank's blocks of the right-hand side and solution.
    pub fn solve_from_rows<S: RowSource>(
        &self,
        comm: Arc<dyn Communicator>,
        part: &RowPartition,
        rows: &S,
        precond: &dyn Preconditioner,
        b_local: &[f64],
        x_local: &mut [f64],
    ) -> SolveResult {
        let dist = DistCsr::from_row_source(comm, part, rows);
        self.solve(&dist, precond, b_local, x_local)
    }

    /// Solve `A·x = b` on the communicator `a` lives on.
    ///
    /// `b_local` and `x_local` are the local blocks of the right-hand side
    /// and the solution (used as the initial guess and overwritten).
    pub fn solve(
        &self,
        a: &DistCsr,
        precond: &dyn Preconditioner,
        b_local: &[f64],
        x_local: &mut [f64],
    ) -> SolveResult {
        let m = self.config.restart;
        let s_req = self.config.step_size;
        let nloc = a.local_matrix().nrows();
        assert_eq!(b_local.len(), nloc, "rhs length mismatch");
        assert_eq!(x_local.len(), nloc, "solution length mismatch");
        let comm = a.comm().clone();
        let stats_start = comm.stats().snapshot();
        let mut comm_ortho = CommStatsSnapshot::default();
        // Fault-detection guards: allocated only when the policy enables
        // any of them, so the default path stays bitwise identical to the
        // unguarded solver.
        let guard: Option<Arc<GuardContext>> = if self.config.guards.any_enabled() {
            Some(GuardContext::new(self.config.guards))
        } else {
            None
        };

        let mut iterations = 0usize;
        let mut restarts = 0usize;
        let mut spmv_count = 0usize;
        let mut precond_count = 0usize;
        let mut breakdown: Option<String> = None;
        let mut converged = false;
        // Basis policy state: the basis in effect for the current cycle,
        // plus the per-cycle record that makes a solve replayable.
        let mut current_basis = self.config.basis.initial_basis();
        let mut cycles_started = 0usize;
        let mut shift_history: Vec<Vec<f64>> = Vec::new();
        let mut relres_history: Vec<f64> = Vec::new();
        let mut last_harvest: Option<Vec<f64>> = None;
        let mut ortho_fallbacks = 0usize;
        // Step-size policy state: the controller observes every cycle's
        // health (all signals are replicated, so its decisions cost no
        // communication) and, under StepPolicy::Auto, shrinks/regrows the
        // effective step.
        let mut controller = StepController::new(self.config.step_policy.clone(), s_req, m);
        let mut step_history: Vec<usize> = Vec::new();
        let mut health_history: Vec<CycleHealth> = Vec::new();
        let mut cycle_timings: Vec<CycleTiming> = Vec::new();

        // Reusable buffers.
        let mut basis =
            DistMultiVector::zeros(comm.clone(), a.global_rows(), nloc, a.row_offset(), m + 1);
        basis.set_guard(guard.clone());
        let mut r_factor = Matrix::zeros(m + 1, m + 1);
        let mut z = vec![0.0; nloc]; // preconditioned vector
        let mut w = vec![0.0; nloc]; // A·z

        // Initial residual norm (r0 with the initial guess x_local).
        fault::set_phase("residual");
        let mut residual = compute_residual(a, x_local, b_local, &mut spmv_count, guard.as_deref());
        let r0_norm = global_norm(&residual, comm.as_ref(), guard.as_deref());
        if r0_norm == 0.0 {
            fault::set_phase("");
            return SolveResult {
                converged: true,
                iterations: 0,
                restarts: 0,
                final_relres: 0.0,
                breakdown: None,
                spmv_count,
                precond_count,
                comm_total: comm.stats().snapshot().since(&stats_start),
                comm_ortho,
                relres_history: Vec::new(),
                shift_history: Vec::new(),
                last_harvest: None,
                ortho_fallbacks: 0,
                step_history: Vec::new(),
                health_history: Vec::new(),
                rescues: 0,
                cycle_timings: Vec::new(),
                fault_events: Vec::new(),
                faults_detected: 0,
                faults_recovered: 0,
                faults_unrecovered: 0,
            };
        }
        let target = self.config.tol * r0_norm;
        let mut gamma = r0_norm;
        if let Some(ctx) = &guard {
            // The residual norm drives every replicated control decision:
            // stage it for the cross-rank agreement probe of the next
            // guarded reduce.
            ctx.stage_agreement(gamma);
        }
        let mut consecutive_breakdowns = 0usize;
        let mut no_progress_cycles = 0usize;

        'outer: while restarts < self.config.max_restarts && iterations < self.config.max_iters {
            if gamma <= target {
                converged = true;
                break;
            }
            // Select this cycle's basis and effective step and record both
            // (the records are what BasisStrategy::Scheduled and
            // StepPolicy::Scheduled replay).
            if let BasisStrategy::Scheduled { per_cycle } = &self.config.basis {
                current_basis = BasisStrategy::scheduled_basis(per_cycle, cycles_started);
            }
            let s = controller.step_for_cycle(cycles_started);
            shift_history.push(match &current_basis {
                KrylovBasis::Monomial => Vec::new(),
                KrylovBasis::Newton { shifts } => shifts.clone(),
            });
            step_history.push(s);
            cycles_started += 1;
            // Baseline for this cycle's fault accounting (all zero when
            // guards are off).
            let fault_base = guard.as_ref().map(|c| c.counts()).unwrap_or_default();
            // Per-cycle wall-time breakdown: plain clock reads, always on
            // (does not touch the arithmetic).  The trace span only fires
            // when the tracing layer is enabled.
            let mut clock = CycleClock::start(cycles_started - 1, s);
            let _cycle_span = trace::span2(
                "solver",
                "cycle",
                "cycle",
                (cycles_started - 1) as u64,
                "step",
                s as u64,
            );
            // Start a new cycle: column 0 = r/γ.
            for entry in r_factor.data_mut().iter_mut() {
                *entry = 0.0;
            }
            basis.set_col_from_global_local(0, &residual);
            basis.scale_col(0, 1.0 / gamma);
            let mut ortho =
                make_orthogonalizer_with_sketch(self.config.ortho, m + 1, self.config.sketch);
            let mut hess = HessenbergRecovery::new(m);
            // Submit column 0 as the first (single-column) panel so every
            // scheme sees its panels starting at column 0.
            let before = comm.stats().snapshot();
            clock.lap(Phase::Other);
            fault::set_phase("ortho");
            let first = {
                let _sp = trace::span2("solver", "ortho", "start", 0, "cols", 1);
                ortho.orthogonalize_panel(&mut basis, 0..1, &mut r_factor)
            };
            comm_ortho = comm_ortho.merge(&comm.stats().snapshot().since(&before));
            clock.lap(Phase::Ortho);
            let mut cycle_breakdown: Option<String> = None;
            if let Err(e) = first {
                // Fatal: the residual column itself could not be
                // normalized; no step size rescues this.  Record the
                // cycle's health for observability and stop.
                let msg = format!("initial column: {e}");
                breakdown = Some(msg.clone());
                let faults = cycle_fault_delta(&guard, &fault_base);
                if let Some(ctx) = &guard {
                    // A fatal first column defeats the ladder: whatever was
                    // poisoned this cycle stays unrecovered.
                    ctx.resolve_poisoned(faults.poisoned, false);
                }
                health_history.push(build_health(
                    &self.config.step_policy,
                    cycles_started - 1,
                    s,
                    0,
                    f64::INFINITY,
                    Vec::new(),
                    ortho.fallback_count(),
                    ortho.fallback_events().to_vec(),
                    Some(msg),
                    None,
                    &relres_history,
                    &faults,
                ));
                cycle_timings.push(clock.finish());
                break 'outer;
            }
            let mut cols = 1usize; // basis columns filled and submitted
            let mut cycle_converged_est = false;

            while cols < m + 1 && iterations < self.config.max_iters {
                let k = s.min(m + 1 - cols);
                // --- Matrix-powers kernel: generate k new columns. ---
                {
                    let _sp = trace::span2("solver", "mpk", "start", cols as u64, "k", k as u64);
                    fault::set_phase("mpk");
                    for t in 0..k {
                        let input = cols - 1 + t;
                        if t == 0 {
                            // The panel-start input had already been handed to
                            // the orthogonalizer.
                            hess.mark_submitted_input(input);
                        }
                        precond.apply(basis.local().col(input), &mut z);
                        precond_count += 1;
                        a.spmv_guarded(&z, &mut w, guard.as_deref());
                        spmv_count += 1;
                        let theta = current_basis.shift(input);
                        if theta != 0.0 {
                            let u = basis.local().col(input).to_vec();
                            for (wi, ui) in w.iter_mut().zip(&u) {
                                *wi -= theta * ui;
                            }
                        }
                        basis.local_mut().col_mut(cols + t).copy_from_slice(&w);
                    }
                }
                iterations += k;
                clock.lap(Phase::Mpk);
                // --- Block orthogonalization of the new panel. ---
                let before = comm.stats().snapshot();
                fault::set_phase("ortho");
                let status = {
                    let _sp =
                        trace::span2("solver", "ortho", "start", cols as u64, "cols", k as u64);
                    ortho.orthogonalize_panel(&mut basis, cols..cols + k, &mut r_factor)
                };
                comm_ortho = comm_ortho.merge(&comm.stats().snapshot().since(&before));
                clock.lap(Phase::Ortho);
                match status {
                    Ok(()) => {
                        consecutive_breakdowns = 0;
                    }
                    Err(e) => {
                        let msg = format!("panel {}..{}: {e}", cols, cols + k);
                        breakdown = Some(msg.clone());
                        cycle_breakdown = Some(msg);
                        consecutive_breakdowns += 1;
                        // Abandon this cycle; use what has been finalized.
                        break;
                    }
                }
                cols += k;
                // --- Convergence estimate on the finalized prefix. ---
                let finalized = ortho.finalized_cols().unwrap_or(cols).min(cols);
                if finalized >= 2 {
                    let hess_span = trace::span1("solver", "hess", "cols", finalized as u64);
                    hess.recover_upto(
                        finalized - 1,
                        &r_factor,
                        ortho.stored_basis_coeffs(),
                        &current_basis,
                    );
                    let (_, res_est) = hess.least_squares(finalized - 1, gamma);
                    let done = res_est <= target;
                    drop(hess_span);
                    clock.lap(Phase::Hess);
                    if done {
                        cycle_converged_est = true;
                        break;
                    }
                } else {
                    clock.lap(Phase::Hess);
                }
            }

            // --- Complete delayed orthogonalization and the projected solve. ---
            let before = comm.stats().snapshot();
            fault::set_phase("ortho");
            let finish_status = {
                let _sp = trace::span("solver", "ortho_finish");
                ortho.finish(&mut basis, &mut r_factor)
            };
            if let Err(e) = finish_status {
                let msg = format!("finish: {e}");
                if breakdown.is_none() {
                    breakdown = Some(msg.clone());
                }
                if cycle_breakdown.is_none() {
                    cycle_breakdown = Some(msg);
                }
                consecutive_breakdowns += 1;
            }
            comm_ortho = comm_ortho.merge(&comm.stats().snapshot().since(&before));
            clock.lap(Phase::Ortho);
            let cycle_fallbacks = ortho.fallback_count();
            let cycle_events = ortho.fallback_events().to_vec();
            ortho_fallbacks += cycle_fallbacks;
            let finalized = ortho.finalized_cols().unwrap_or(cols).min(cols);
            let mut k_use = finalized.saturating_sub(1);
            if let Some(ctx) = &guard {
                if ctx.take_alarm() {
                    // A replicated scalar diverged across ranks: nothing
                    // this cycle computed can be trusted to be consistent.
                    // Abandon the cycle (no solution update) and
                    // resynchronize the replicated residual norm with a
                    // fresh reduce of the untouched local residuals.
                    let msg =
                        "cross-rank divergence: agreement probe on the replicated residual norm"
                            .to_string();
                    if breakdown.is_none() {
                        breakdown = Some(msg.clone());
                    }
                    if cycle_breakdown.is_none() {
                        cycle_breakdown = Some(msg);
                    }
                    fault::set_phase("residual");
                    gamma = global_norm(&residual, comm.as_ref(), guard.as_deref());
                    ctx.stage_agreement(gamma);
                    k_use = 0;
                }
            }
            if k_use == 0 {
                // Nothing usable was generated in this cycle: without an
                // update the next cycle would start from the same residual,
                // so give up after repeated empty cycles — unless the Auto
                // policy can still rescue by shrinking the step.
                no_progress_cycles += 1;
                let faults = cycle_fault_delta(&guard, &fault_base);
                let health = build_health(
                    &self.config.step_policy,
                    cycles_started - 1,
                    s,
                    0,
                    control::r_diag_condition(&r_factor, finalized.min(s + 1)),
                    Vec::new(),
                    cycle_fallbacks,
                    cycle_events,
                    cycle_breakdown.clone(),
                    None,
                    &relres_history,
                    &faults,
                );
                let decision = controller.observe(&health);
                health_history.push(health);
                if decision.shrunk() {
                    trace::instant2(
                        "solver",
                        "step_shrink",
                        "cycle",
                        (cycles_started - 1) as u64,
                        "step",
                        s as u64,
                    );
                }
                cycle_timings.push(clock.finish());
                let giving_up =
                    !decision.shrunk() && (no_progress_cycles >= 2 || consecutive_breakdowns >= 3);
                if let Some(ctx) = &guard {
                    // The abandoned cycle *is* the rollback rung of the
                    // ladder: poisoned payloads were discarded with the
                    // cycle and the next one restarts from the last good
                    // residual — unless the solver is giving up entirely.
                    ctx.resolve_poisoned(faults.poisoned, !giving_up);
                }
                if giving_up {
                    break 'outer;
                }
                // An empty cycle yields no Hessenberg to harvest from; the
                // adaptive policy retries the next cycle with the monomial
                // basis (the shifts may be what broke the panel).
                if matches!(self.config.basis, BasisStrategy::Adaptive(_)) {
                    current_basis = KrylovBasis::Monomial;
                }
                apply_rescue_basis(
                    &self.config.basis,
                    &controller,
                    &mut current_basis,
                    &last_harvest,
                );
                restarts += 1;
                continue;
            }
            no_progress_cycles = 0;
            let hess_span = trace::span1("solver", "hess", "cols", k_use as u64);
            hess.recover_upto(
                k_use,
                &r_factor,
                ortho.stored_basis_coeffs(),
                &current_basis,
            );
            // Harvest Ritz shifts from this cycle's Hessenberg block.  The
            // block is replicated (recovered from the replicated R factor),
            // so every rank computes identical shifts with zero extra
            // communication; only the adaptive policy acts on the result,
            // but the harvest is recorded for every strategy so a warm-up
            // solve can serve as a shift oracle.
            // The harvest cap follows the *requested* step size even when a
            // rescue shrank the effective one — exactly the manual warm-up
            // oracle's shape, so a reduced-step cycle yields enough shifts
            // to probe back up to the requested step.
            let (cap, rtol, min_h) = match &self.config.basis {
                BasisStrategy::Adaptive(a) => (
                    if a.max_shifts == 0 {
                        s_req
                    } else {
                        a.max_shifts
                    },
                    a.dedup_rtol,
                    a.min_hessenberg,
                ),
                _ => (s_req, shifts::DEFAULT_DEDUP_RTOL, 2),
            };
            let harvest = if k_use >= min_h.max(1) {
                shifts::harvest_newton_shifts(&hess, k_use, cap, rtol)
            } else {
                None
            };
            if let Some(h) = &harvest {
                last_harvest = Some(h.clone());
            }
            if matches!(self.config.basis, BasisStrategy::Adaptive(_)) {
                current_basis = match harvest {
                    Some(shifts) => KrylovBasis::Newton { shifts },
                    None => KrylovBasis::Monomial,
                };
            }
            let (y, _) = hess.least_squares(k_use, gamma);
            drop(hess_span);
            clock.lap(Phase::Hess);
            // Solution update: x ← x + M⁻¹·(Q_{0..k_use}·y).  A poisoned
            // cycle can smuggle NaN into the projected solution without
            // tripping the Cholesky; with guards on, never let it reach x,
            // where it would be unrecoverable — skip the update and let the
            // breakdown verdict shrink the step instead.  (Unguarded solves
            // keep the seed behavior: corruption flows through, which is
            // exactly the silent failure the fault campaign demonstrates.)
            if guard.is_none() || y.iter().all(|v| v.is_finite()) {
                fault::set_phase("update");
                let _sp = trace::span1("solver", "update", "cols", k_use as u64);
                let mut qy = vec![0.0; nloc];
                dense::gemv_plus(&basis.local_cols(0..k_use), &y, &mut qy);
                precond.apply(&qy, &mut z);
                precond_count += 1;
                for (xi, zi) in x_local.iter_mut().zip(&z) {
                    *xi += zi;
                }
            } else {
                let msg =
                    "projected solution non-finite (poisoned cycle); update skipped".to_string();
                if breakdown.is_none() {
                    breakdown = Some(msg.clone());
                }
                if cycle_breakdown.is_none() {
                    cycle_breakdown = Some(msg);
                }
                consecutive_breakdowns += 1;
            }
            restarts += 1;
            clock.lap(Phase::Update);
            // True residual for the next cycle / convergence verification.
            {
                let _sp = trace::span("solver", "residual");
                fault::set_phase("residual");
                residual = compute_residual(a, x_local, b_local, &mut spmv_count, guard.as_deref());
                gamma = global_norm(&residual, comm.as_ref(), guard.as_deref());
                if let Some(ctx) = &guard {
                    ctx.stage_agreement(gamma);
                }
            }
            relres_history.push(gamma / r0_norm);
            clock.lap(Phase::Residual);
            // Cycle health: every signal is local or replicated (R factor
            // diagonal, fallback events, the residual already reduced
            // above), so assembling and acting on the report costs zero
            // additional global reductions.
            let faults = cycle_fault_delta(&guard, &fault_base);
            let health = build_health(
                &self.config.step_policy,
                cycles_started - 1,
                s,
                k_use,
                control::r_diag_condition(&r_factor, finalized.min(s + 1)),
                Vec::new(),
                cycle_fallbacks,
                cycle_events,
                cycle_breakdown.clone(),
                Some(gamma / r0_norm),
                &relres_history,
                &faults,
            );
            let decision = controller.observe(&health);
            health_history.push(health);
            // Verdict on this cycle's poisoned operations: the true residual
            // just recomputed is the ground truth.  A finite norm means the
            // rollback ladder absorbed the damage; a non-finite one means the
            // corruption reached state we could not rebuild.
            if let Some(ctx) = &guard {
                ctx.resolve_poisoned(faults.poisoned, gamma.is_finite());
            }
            if decision.shrunk() {
                trace::instant2(
                    "solver",
                    "step_shrink",
                    "cycle",
                    (cycles_started - 1) as u64,
                    "step",
                    s as u64,
                );
            }
            cycle_timings.push(clock.finish());
            if gamma <= target {
                converged = true;
                break;
            }
            if consecutive_breakdowns >= 3 {
                break;
            }
            apply_rescue_basis(
                &self.config.basis,
                &controller,
                &mut current_basis,
                &last_harvest,
            );
            let _ = cycle_converged_est; // estimate is re-verified by the true residual above
        }
        if gamma <= target {
            converged = true;
        }
        fault::set_phase("");
        // Any poisoned operations still pending (e.g. the solve ran out of
        // cycles mid-rollback) get their verdict from the final outcome.
        let (fault_events, faults_detected, faults_recovered, faults_unrecovered) = match &guard {
            Some(ctx) => {
                let pending = ctx.counts().poisoned;
                if pending > 0 {
                    ctx.resolve_poisoned(pending, converged);
                }
                let c = ctx.counts();
                (ctx.events(), c.detected, c.recovered, c.unrecovered)
            }
            None => (Vec::new(), 0, 0, 0),
        };

        SolveResult {
            converged,
            iterations,
            restarts,
            final_relres: gamma / r0_norm,
            breakdown,
            spmv_count,
            precond_count,
            comm_total: comm.stats().snapshot().since(&stats_start),
            comm_ortho,
            relres_history,
            shift_history,
            last_harvest,
            ortho_fallbacks,
            step_history,
            health_history,
            rescues: controller.shrinks(),
            cycle_timings,
            fault_events,
            faults_detected,
            faults_recovered,
            faults_unrecovered,
        }
    }
}

/// Assemble a [`CycleHealth`] report from a finished cycle's raw signals.
/// Non-Auto policies assess with [`control::AutoStep::default`] thresholds
/// so `health_history` reads the same everywhere.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_health(
    policy: &StepPolicy,
    cycle: usize,
    step: usize,
    usable_cols: usize,
    kappa_est: f64,
    kappa_per_col: Vec<f64>,
    fallbacks: usize,
    fallback_events: Vec<FallbackEvent>,
    breakdown: Option<String>,
    relres: Option<f64>,
    relres_history: &[f64],
    faults: &GuardCounts,
) -> CycleHealth {
    let auto = match policy {
        StepPolicy::Auto(a) => a.clone(),
        _ => control::AutoStep::default(),
    };
    let stagnated = relres.is_some()
        && control::residual_stagnated(
            relres_history,
            auto.stagnation_window,
            auto.stagnation_factor,
        );
    // Poisoned operations have no final verdict at assessment time (the
    // rollback has not been retried yet), so the health report treats them
    // as unrecovered: the controller must react to the damage *this* cycle.
    let verdict = control::assess_cycle(
        &auto,
        breakdown.is_some(),
        usable_cols,
        kappa_est,
        fallbacks,
        stagnated,
        faults.poisoned + faults.unrecovered,
    );
    CycleHealth {
        cycle,
        step,
        usable_cols,
        kappa_est,
        fallbacks,
        fallback_events,
        breakdown,
        relres,
        stagnated,
        kappa_per_col,
        verdict,
        faults_detected: faults.detected,
        faults_recovered: faults.recovered,
        faults_unrecovered: faults.poisoned + faults.unrecovered,
    }
}

/// Fault-guard activity attributable to the current cycle: the guard's
/// cumulative counters minus the snapshot taken when the cycle began.
pub(crate) fn cycle_fault_delta(
    guard: &Option<Arc<GuardContext>>,
    base: &GuardCounts,
) -> GuardCounts {
    match guard {
        Some(ctx) => {
            let c = ctx.counts();
            GuardCounts {
                detected: c.detected - base.detected,
                recovered: c.recovered - base.recovered,
                poisoned: c.poisoned - base.poisoned,
                unrecovered: c.unrecovered - base.unrecovered,
                retries: c.retries - base.retries,
            }
        }
        None => GuardCounts::default(),
    }
}

/// Once an Auto rescue is active, keep the most recent harvested Newton
/// shifts in effect for strategies that would otherwise re-run the basis
/// that broke (the automated form of the README's warm-up shift oracle).
/// Adaptive re-harvests on its own and Scheduled must replay verbatim, so
/// both are left alone; non-Auto policies never activate a rescue.
pub(crate) fn apply_rescue_basis(
    strategy: &BasisStrategy,
    controller: &StepController,
    current_basis: &mut KrylovBasis,
    last_harvest: &Option<Vec<f64>>,
) {
    if !controller.rescue_active() {
        return;
    }
    match strategy {
        BasisStrategy::Monomial | BasisStrategy::Newton { .. } => {
            if let Some(shifts) = last_harvest {
                if !shifts.is_empty() {
                    *current_basis = KrylovBasis::Newton {
                        shifts: shifts.clone(),
                    };
                }
            }
        }
        BasisStrategy::Adaptive(_) | BasisStrategy::Scheduled { .. } => {}
    }
}

/// `r = b − A·x` on the local blocks.  With an active guard the halo
/// exchange inside the SpMV is checksummed; a corrupted or lost frame
/// poisons the residual with NaN so the norm guard downstream trips.
pub(crate) fn compute_residual(
    a: &DistCsr,
    x: &[f64],
    b: &[f64],
    spmv_count: &mut usize,
    guard: Option<&GuardContext>,
) -> Vec<f64> {
    let mut ax = vec![0.0; x.len()];
    a.spmv_guarded(x, &mut ax, guard);
    *spmv_count += 1;
    b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect()
}

/// Global 2-norm of a distributed vector (one single-word all-reduce, or
/// the guard's duplicated-word reduce when screening is on).
pub(crate) fn global_norm(
    local: &[f64],
    comm: &dyn distsim::Communicator,
    guard: Option<&GuardContext>,
) -> f64 {
    let local_sq = dense::dot(local, local);
    match guard {
        Some(ctx) if ctx.policy().gram_screen || ctx.policy().agreement => {
            ctx.norm_reduce(comm, local_sq)
        }
        _ => {
            let mut buf = [local_sq];
            comm.allreduce_sum(&mut buf);
            buf[0].max(0.0).sqrt()
        }
    }
}

/// Small extension trait used internally: fill a column of a multivector
/// from a *local* vector (same length as the local block).
trait LocalFill {
    fn set_col_from_global_local(&mut self, col: usize, local: &[f64]);
}

impl LocalFill for DistMultiVector {
    fn set_col_from_global_local(&mut self, col: usize, local: &[f64]) {
        self.local_mut().col_mut(col).copy_from_slice(local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{BlockJacobiGaussSeidel, Jacobi};
    use sparse::{laplace2d_5pt, laplace2d_9pt, laplace3d_7pt};

    fn relres(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.spmv_alloc(x);
        let rn: f64 = ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        rn / bn
    }

    fn rhs_for_ones(a: &Csr) -> Vec<f64> {
        // Right-hand side such that the solution is the vector of all ones
        // (as the paper does).
        a.spmv_alloc(&vec![1.0; a.nrows()])
    }

    #[test]
    fn standard_gmres_solves_laplace() {
        let a = laplace2d_5pt(20, 20);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 40,
            tol: 1e-8,
            ..standard_gmres_config()
        });
        let (x, result) = solver.solve_serial(&a, &b);
        assert!(result.converged, "{result:?}");
        assert!(relres(&a, &x, &b) < 1e-7);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sstep_gmres_matches_standard_iteration_count_roughly() {
        let a = laplace2d_5pt(24, 24);
        let b = rhs_for_ones(&a);
        let std_result = SStepGmres::new(GmresConfig {
            restart: 30,
            tol: 1e-6,
            ..standard_gmres_config()
        })
        .solve_serial(&a, &b)
        .1;
        let sstep_result = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-6,
            ortho: OrthoKind::BcgsPip2,
            ..GmresConfig::default()
        })
        .solve_serial(&a, &b)
        .1;
        assert!(std_result.converged && sstep_result.converged);
        // s-step rounds iteration counts up to the panel granularity, so it
        // may do up to s-1 extra iterations per cycle; it must not need
        // substantially more work than standard GMRES.
        let ratio = sstep_result.iterations as f64 / std_result.iterations as f64;
        assert!(
            ratio < 1.25,
            "s-step used {} iterations vs standard {}",
            sstep_result.iterations,
            std_result.iterations
        );
    }

    #[test]
    fn all_ortho_schemes_converge_to_the_same_solution() {
        let a = laplace2d_9pt(16, 16);
        let b = rhs_for_ones(&a);
        for ortho in [
            OrthoKind::Bcgs2CholQr2,
            OrthoKind::BcgsPip2,
            OrthoKind::TwoStage { big_panel: 30 },
            OrthoKind::TwoStage { big_panel: 10 },
        ] {
            let solver = SStepGmres::new(GmresConfig {
                restart: 30,
                step_size: 5,
                tol: 1e-8,
                ortho,
                ..GmresConfig::default()
            });
            let (x, result) = solver.solve_serial(&a, &b);
            assert!(result.converged, "{ortho:?}: {result:?}");
            assert!(
                relres(&a, &x, &b) < 1e-7,
                "{ortho:?}: relres {}",
                relres(&a, &x, &b)
            );
        }
    }

    #[test]
    fn two_stage_reduces_ortho_synchronizations() {
        let a = laplace2d_5pt(20, 20);
        let b = rhs_for_ones(&a);
        let run = |ortho| {
            SStepGmres::new(GmresConfig {
                restart: 20,
                step_size: 5,
                tol: 1e-6,
                ortho,
                ..GmresConfig::default()
            })
            .solve_serial(&a, &b)
            .1
        };
        let pip2 = run(OrthoKind::BcgsPip2);
        let two_stage = run(OrthoKind::TwoStage { big_panel: 20 });
        let bcgs2 = run(OrthoKind::Bcgs2CholQr2);
        assert!(pip2.converged && two_stage.converged && bcgs2.converged);
        // Reduce counts per iteration must be ordered:
        // two-stage < BCGS-PIP2 < BCGS2-CholQR2.
        let per_iter = |r: &SolveResult| r.comm_ortho.allreduces as f64 / r.iterations as f64;
        assert!(
            per_iter(&two_stage) < per_iter(&pip2),
            "two-stage {} vs pip2 {}",
            per_iter(&two_stage),
            per_iter(&pip2)
        );
        assert!(
            per_iter(&pip2) < per_iter(&bcgs2),
            "pip2 {} vs bcgs2 {}",
            per_iter(&pip2),
            per_iter(&bcgs2)
        );
    }

    #[test]
    fn preconditioning_reduces_iteration_count() {
        let a = laplace2d_5pt(24, 24);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-8,
            ..GmresConfig::default()
        });
        let plain = solver.solve_serial(&a, &b).1;
        let gs = BlockJacobiGaussSeidel::new(&a, 2);
        let (xp, precond_result) = solver.solve_serial_preconditioned(&a, &b, &gs);
        assert!(plain.converged && precond_result.converged);
        assert!(
            precond_result.iterations < plain.iterations,
            "preconditioned {} vs plain {}",
            precond_result.iterations,
            plain.iterations
        );
        assert!(relres(&a, &xp, &b) < 1e-7);
    }

    #[test]
    fn jacobi_preconditioner_also_works_on_3d_problem() {
        let a = laplace3d_7pt(8, 8, 8);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-7,
            ortho: OrthoKind::TwoStage { big_panel: 30 },
            ..GmresConfig::default()
        });
        let jac = Jacobi::new(&a);
        let (x, result) = solver.solve_serial_preconditioned(&a, &b, &jac);
        assert!(result.converged, "{result:?}");
        assert!(relres(&a, &x, &b) < 1e-6);
    }

    #[test]
    fn streamed_row_provider_solve_matches_replicated_solve_bitwise() {
        // The solver fed by a row provider (no global matrix anywhere) must
        // reproduce the replicated-construction solve exactly: identical
        // local operator => identical arithmetic => identical solution.
        let rows = sparse::Laplace2d9ptRows { nx: 14, ny: 14 };
        let a = laplace2d_9pt(14, 14);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-9,
            ortho: OrthoKind::TwoStage { big_panel: 30 },
            ..GmresConfig::default()
        });
        let (x_rep, r_rep) = solver.solve_serial(&a, &b);
        let (x_str, r_str) = solver.solve_serial_from_rows(&rows, &b);
        assert!(r_rep.converged && r_str.converged);
        assert_eq!(r_rep.iterations, r_str.iterations);
        assert_eq!(x_rep, x_str, "solutions must be bitwise identical");
        assert_eq!(r_rep.comm_total, r_str.comm_total);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = laplace2d_5pt(10, 10);
        let b = vec![0.0; 100];
        let (x, result) = SStepGmres::new(GmresConfig::default()).solve_serial(&a, &b);
        assert!(result.converged);
        assert_eq!(result.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = laplace2d_5pt(30, 30);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 20,
            step_size: 5,
            tol: 1e-14,
            max_iters: 40,
            ..GmresConfig::default()
        });
        let (_, result) = solver.solve_serial(&a, &b);
        assert!(!result.converged);
        assert!(result.iterations <= 40 + 5);
    }

    #[test]
    fn nonsymmetric_matrix_converges() {
        // Row/column scaled Laplacian (non-symmetric, as in the paper's
        // SuiteSparse experiments).
        let a0 = laplace2d_5pt(18, 18);
        let (a, _, _) = sparse::scale_rows_cols_by_max(&a0);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 40,
            step_size: 5,
            tol: 1e-8,
            ortho: OrthoKind::TwoStage { big_panel: 40 },
            ..GmresConfig::default()
        });
        let (x, result) = solver.solve_serial(&a, &b);
        assert!(result.converged, "{result:?}");
        assert!(relres(&a, &x, &b) < 1e-7);
    }

    #[test]
    #[should_panic(expected = "step size cannot exceed")]
    fn invalid_config_is_rejected() {
        SStepGmres::new(GmresConfig {
            restart: 4,
            step_size: 8,
            ..GmresConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "auto step floor cannot exceed")]
    fn auto_floor_above_step_size_is_rejected() {
        SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 4,
            step_policy: crate::control::StepPolicy::Auto(crate::control::AutoStep {
                min_step: 6,
                ..crate::control::AutoStep::default()
            }),
            ..GmresConfig::default()
        });
    }

    #[test]
    fn every_cycle_gets_a_time_breakdown() {
        let a = laplace2d_5pt(20, 20);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-8,
            ortho: OrthoKind::TwoStage { big_panel: 30 },
            ..GmresConfig::default()
        });
        let (_, r) = solver.solve_serial(&a, &b);
        assert!(r.converged);
        assert_eq!(r.cycle_timings.len(), r.step_history.len());
        for (c, t) in r.cycle_timings.iter().enumerate() {
            assert_eq!(t.cycle, c);
            assert_eq!(t.step, r.step_history[c]);
            assert!(t.total_ns > 0);
            // The lap pattern partitions the cycle body: the phase buckets
            // must account for the whole cycle (finish() charges the tail,
            // so the sum matches the total exactly).
            assert_eq!(t.segments_ns(), t.total_ns);
            assert!(t.mpk_ns > 0, "cycle {c} recorded no MPK time");
            assert!(t.ortho_ns > 0, "cycle {c} recorded no ortho time");
            assert!(t.sync_ns <= t.total_ns);
            assert_eq!(t.compute_ns(), t.total_ns - t.sync_ns);
        }
    }

    #[test]
    fn every_cycle_gets_a_health_report_and_a_step_entry() {
        let a = laplace2d_5pt(16, 16);
        let b = rhs_for_ones(&a);
        let solver = SStepGmres::new(GmresConfig {
            restart: 20,
            step_size: 5,
            tol: 1e-8,
            ortho: OrthoKind::TwoStage { big_panel: 20 },
            ..GmresConfig::default()
        });
        let (_, r) = solver.solve_serial(&a, &b);
        assert!(r.converged);
        assert_eq!(r.step_history.len(), r.health_history.len());
        assert_eq!(r.step_history.len(), r.shift_history.len());
        assert!(r.step_history.iter().all(|&s| s == 5), "Fixed never moves");
        assert_eq!(r.rescues, 0);
        for (c, h) in r.health_history.iter().enumerate() {
            assert_eq!(h.cycle, c);
            assert_eq!(h.step, 5);
            assert!(h.kappa_est.is_finite() && h.kappa_est >= 1.0);
            assert_eq!(h.fallbacks, 0);
            assert!(h.breakdown.is_none());
            assert_eq!(h.verdict, crate::control::CycleVerdict::Clean);
        }
    }
}
