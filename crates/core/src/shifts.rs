//! Newton-basis shift pipeline: Ritz-value harvesting and modified Leja
//! ordering.
//!
//! For larger step sizes `s` the monomial basis `v, Av, A²v, …` of the
//! matrix-powers kernel becomes numerically dependent (its condition number
//! grows like the power iteration's), and Carson & Ma's backward-stability
//! analysis of s-step GMRES shows `κ(basis)` entering the attainable
//! accuracy directly.  The standard remedy is the **Newton basis**
//! `v, (A−θ₁I)v, (A−θ₂I)(A−θ₁I)v, …` with the shifts `θ_k` chosen as Ritz
//! values of `A` in **modified Leja order** — spread-out interpolation
//! points that keep the basis polynomials balanced.
//!
//! The pipeline implemented here:
//!
//! 1. **Harvest** — after a (monomial warm-up) restart cycle, take the
//!    leading `k×k` block of the recovered Hessenberg matrix and compute its
//!    eigenvalues (the Ritz values) with [`dense::hessenberg_eigvals`];
//! 2. **Dedupe/cap** — collapse clustered Ritz values (repeated shifts add
//!    no conditioning benefit and waste distinct interpolation points) and
//!    treat near-real pairs as real;
//! 3. **Order** — [`modified_leja_order`] arranges the points so each
//!    successive shift maximizes the product of distances to all previous
//!    ones, with complex-conjugate pairs kept adjacent so a real-arithmetic
//!    implementation can pair them;
//! 4. **Realize** — [`KrylovBasis::Newton`](crate::KrylovBasis) stores real
//!    shifts, so each point contributes its real part (a conjugate pair
//!    contributes it twice, adjacently).  For the real-spectrum problems of
//!    the paper's evaluation the Ritz values are real and this is exact; for
//!    genuinely complex pairs it is the common real-part simplification,
//!    which still centers the basis polynomials on the spectrum.
//!
//! Everything here is deterministic and communication-free: the Hessenberg
//! matrix is replicated on every rank (it is recovered from the replicated
//! `R` factor), so every rank computes identical shifts without a single
//! extra message — the adaptive basis changes **no** communication counts.

use crate::hessenberg::HessenbergRecovery;
use dense::Matrix;

/// A spectral point `re + i·im` (Ritz value) used as a shift candidate.
pub type SpectralPoint = (f64, f64);

/// Default relative tolerance below which two Ritz values are considered
/// the same cluster (and an imaginary part is considered zero).
pub const DEFAULT_DEDUP_RTOL: f64 = 1e-8;

/// Ritz values of the leading `k×k` block of a recovered `(m+1)×m`
/// Hessenberg matrix.  Returns `None` when `k == 0` or the QR iteration
/// fails (the caller falls back to the monomial basis).
pub fn ritz_values(hess: &HessenbergRecovery, k: usize) -> Option<Vec<SpectralPoint>> {
    let k = k.min(hess.recovered());
    if k == 0 {
        return None;
    }
    let h = hess.matrix();
    let block = Matrix::from_fn(k, k, |i, j| h[(i, j)]);
    dense::hessenberg_eigvals(&block).ok()
}

/// Modulus of a spectral point.
fn modulus(z: SpectralPoint) -> f64 {
    z.0.hypot(z.1)
}

/// Deterministic total order used only for tie-breaking, so the ordering is
/// a function of the input *multiset* (never of its storage order): larger
/// objective first, then larger real part, then larger imaginary part (the
/// `im > 0` member of a conjugate pair wins over its mirror).
fn better(candidate: (f64, SpectralPoint), best: (f64, SpectralPoint)) -> bool {
    let (cv, cz) = candidate;
    let (bv, bz) = best;
    if cv != bv {
        return cv > bv;
    }
    if cz.0 != bz.0 {
        return cz.0 > bz.0;
    }
    cz.1 > bz.1
}

/// Modified Leja ordering of spectral points.
///
/// The first point maximizes `|z|`; each subsequent point maximizes
/// `∏ |z − θ_j|` over the already-chosen `θ_j` (computed as a sum of
/// logarithms so products spanning many orders of magnitude neither
/// overflow nor underflow).  The *modified* constraint: whenever a point
/// with nonzero imaginary part is chosen, its complex conjugate (if
/// present among the remaining candidates) is placed immediately after it,
/// so conjugate pairs stay adjacent — the requirement for real-arithmetic
/// Newton recurrences.  Ties are broken by a fixed lexicographic rule, so
/// the output depends only on the input multiset.
pub fn modified_leja_order(points: &[SpectralPoint]) -> Vec<SpectralPoint> {
    leja_prefix(points, points.len())
}

/// The leading `limit` (or a few more, to complete a conjugate pair) points
/// of the modified Leja ordering.  The greedy selection makes any prefix of
/// the full ordering independent of `limit`, so capped callers
/// ([`newton_shifts`]) can stop early instead of ordering the whole
/// spectrum.  Running log-products are maintained incrementally (one `ln`
/// per candidate per chosen point), so the cost is `O(chosen · n)`.
fn leja_prefix(points: &[SpectralPoint], limit: usize) -> Vec<SpectralPoint> {
    let n = points.len();
    // Canonicalize the scan order so the output is invariant under input
    // permutations even in exact ties.
    let mut pool: Vec<SpectralPoint> = points.to_vec();
    pool.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut used = vec![false; n];
    // Running objective per candidate: ln|z| before the first pick (the
    // first point maximizes the modulus), then the accumulated log-product
    // of distances to every chosen point.  An exact repeat of a chosen
    // point contributes ln(MIN_POSITIVE), which still orders
    // deterministically behind everything.
    let mut logprod: Vec<f64> = pool
        .iter()
        .map(|&z| modulus(z).max(f64::MIN_POSITIVE).ln())
        .collect();
    let mut first_pick = true;
    let mut out: Vec<SpectralPoint> = Vec::with_capacity(limit.min(n));
    while out.len() < limit.min(n) {
        let mut best: Option<(f64, usize)> = None;
        for (idx, &z) in pool.iter().enumerate() {
            if used[idx] {
                continue;
            }
            let is_better = match best {
                None => true,
                Some((bv, bidx)) => better((logprod[idx], z), (bv, pool[bidx])),
            };
            if is_better {
                best = Some((logprod[idx], idx));
            }
        }
        let (_, idx) = best.expect("non-empty candidate pool");
        let mut appended = vec![idx];
        used[idx] = true;
        let z = pool[idx];
        out.push(z);
        if z.1 != 0.0 {
            // Conjugate-pair adjacency: place the mirror point next.
            if let Some(cidx) = (0..n).find(|&i| !used[i] && pool[i].0 == z.0 && pool[i].1 == -z.1)
            {
                used[cidx] = true;
                out.push(pool[cidx]);
                appended.push(cidx);
            }
        }
        if first_pick {
            // Switch the objective from modulus to distance products.
            logprod.iter_mut().for_each(|v| *v = 0.0);
            first_pick = false;
        }
        for &a in &appended {
            let c = pool[a];
            for (i, v) in logprod.iter_mut().enumerate() {
                if !used[i] {
                    *v += (pool[i].0 - c.0)
                        .hypot(pool[i].1 - c.1)
                        .max(f64::MIN_POSITIVE)
                        .ln();
                }
            }
        }
    }
    out
}

/// Collapse clustered spectral points and canonicalize near-real ones.
///
/// Points within `rtol · max|z|` of an already-kept point are dropped
/// (clustered Ritz values of a tight spectrum would otherwise spend several
/// of the few available shifts on the same location); imaginary parts below
/// the same tolerance are snapped to zero first, so a nearly-real pair
/// collapses to one real point instead of a conjugate pair whose members
/// would dedupe each other asymmetrically.  Conjugate closure is preserved:
/// deduplication runs on the `im ≥ 0` representatives and mirrors kept
/// complex points back.
pub fn dedupe_points(points: &[SpectralPoint], rtol: f64) -> Vec<SpectralPoint> {
    let scale = points.iter().map(|&z| modulus(z)).fold(0.0f64, f64::max);
    if scale == 0.0 {
        return if points.is_empty() {
            Vec::new()
        } else {
            vec![(0.0, 0.0)]
        };
    }
    let tol = rtol * scale;
    // Snap near-real, keep only im >= 0 representatives.
    let mut reps: Vec<SpectralPoint> = points
        .iter()
        .map(|&(re, im)| if im.abs() <= tol { (re, 0.0) } else { (re, im) })
        .filter(|&(_, im)| im >= 0.0)
        .collect();
    reps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut kept: Vec<SpectralPoint> = Vec::new();
    for z in reps {
        if kept.iter().all(|&c| (z.0 - c.0).hypot(z.1 - c.1) > tol) {
            kept.push(z);
        }
    }
    // Mirror complex representatives back into conjugate pairs.
    let mut out = Vec::with_capacity(kept.len() * 2);
    for z in kept {
        out.push(z);
        if z.1 > 0.0 {
            out.push((z.0, -z.1));
        }
    }
    out
}

/// The full shift pipeline: dedupe → modified Leja order → real shifts,
/// capped at `max_shifts` without splitting a conjugate pair across the
/// cap (the shift list is cycled by the matrix-powers kernel, so a split
/// pair would lose its adjacency at the wrap-around).
///
/// Returns `None` when no usable shift survives (empty input, or all
/// points collapse onto zero) — callers fall back to the monomial basis.
pub fn newton_shifts(ritz: &[SpectralPoint], max_shifts: usize, rtol: f64) -> Option<Vec<f64>> {
    if ritz.is_empty() || max_shifts == 0 {
        return None;
    }
    // Order only one point past the cap: the greedy prefix is independent
    // of how far the ordering runs, and one extra point is exactly what the
    // pair-split check below needs.
    let ordered = leja_prefix(&dedupe_points(ritz, rtol), max_shifts + 1);
    let mut cut = max_shifts.min(ordered.len());
    // Do not split a conjugate pair at the cap: drop the pair whole when
    // the cap lands between a pair's leading member (im > 0, emitted
    // first) and its mirror.
    if cut < ordered.len()
        && ordered[cut - 1].1 > 0.0
        && ordered[cut] == (ordered[cut - 1].0, -ordered[cut - 1].1)
    {
        cut -= 1;
    }
    let shifts: Vec<f64> = ordered[..cut].iter().map(|&(re, _)| re).collect();
    if shifts.is_empty() || shifts.iter().all(|&s| s == 0.0) {
        return None;
    }
    Some(shifts)
}

/// Harvest Leja-ordered Newton shifts from a recovered Hessenberg matrix:
/// [`ritz_values`] of the leading `k×k` block, then [`newton_shifts`].
///
/// `None` when the block is empty, the eigensolve fails, or no nonzero
/// shift survives deduplication — the adaptive solver falls back to the
/// monomial basis in all three cases.
pub fn harvest_newton_shifts(
    hess: &HessenbergRecovery,
    k: usize,
    max_shifts: usize,
    rtol: f64,
) -> Option<Vec<f64>> {
    newton_shifts(&ritz_values(hess, k)?, max_shifts, rtol)
}

/// Condition number of the (column-normalized) `s+1`-column Krylov basis
/// generated by the matrix-powers kernel under `basis`, starting from `v0`.
///
/// This is the `κ(basis)` the paper's Fig. 9 tracks and the quantity the
/// basis-comparison experiment records: each column is scaled to unit norm
/// (the conditioning of the *directions* is what the orthogonalization has
/// to repair; column scaling is repaired for free by the R factor), and the
/// singular values come from the Jacobi SVD so values near `1/ε` are still
/// resolved.
pub fn basis_condition_number(
    a: &sparse::Csr,
    basis: &crate::KrylovBasis,
    s: usize,
    v0: &[f64],
) -> f64 {
    let n = a.nrows();
    assert_eq!(v0.len(), n, "start vector length mismatch");
    let mut w = Matrix::zeros(n, s + 1);
    w.col_mut(0).copy_from_slice(v0);
    normalize(w.col_mut(0));
    for k in 0..s {
        let input = w.col(k).to_vec();
        let mut next = a.spmv_alloc(&input);
        let theta = basis.shift(k);
        if theta != 0.0 {
            for (wi, ui) in next.iter_mut().zip(&input) {
                *wi -= theta * ui;
            }
        }
        w.col_mut(k + 1).copy_from_slice(&next);
        normalize(w.col_mut(k + 1));
    }
    let sv = dense::svdvals_jacobi(&w);
    let smin = sv.last().copied().unwrap_or(0.0);
    if smin <= 0.0 {
        f64::INFINITY
    } else {
        sv[0] / smin
    }
}

fn normalize(col: &mut [f64]) {
    let norm = dense::nrm2(col);
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for v in col {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::KrylovBasis;

    #[test]
    fn leja_first_point_has_max_modulus() {
        let pts = vec![(1.0, 0.0), (-3.0, 0.0), (2.0, 0.0), (0.5, 0.0)];
        let ordered = modified_leja_order(&pts);
        assert_eq!(ordered[0], (-3.0, 0.0));
        assert_eq!(ordered.len(), 4);
    }

    #[test]
    fn leja_spreads_points_rather_than_walking() {
        // On {0, 1, 2, 3, 4} the Leja order after 4 must jump to 0, not
        // crawl to 3: the product of distances from {4} is maximized by 0.
        let pts: Vec<SpectralPoint> = (0..5).map(|k| (k as f64, 0.0)).collect();
        let ordered = modified_leja_order(&pts);
        assert_eq!(ordered[0], (4.0, 0.0));
        assert_eq!(ordered[1], (0.0, 0.0));
    }

    #[test]
    fn leja_keeps_conjugate_pairs_adjacent() {
        let pts = vec![
            (2.0, 1.0),
            (2.0, -1.0),
            (5.0, 0.0),
            (-1.0, 3.0),
            (-1.0, -3.0),
            (0.5, 0.0),
        ];
        let ordered = modified_leja_order(&pts);
        assert_eq!(ordered.len(), 6);
        let mut i = 0;
        while i < ordered.len() {
            let (re, im) = ordered[i];
            if im != 0.0 {
                assert_eq!(
                    ordered[i + 1],
                    (re, -im),
                    "conjugate pair split: {ordered:?}"
                );
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    #[test]
    fn dedupe_collapses_clusters_and_near_real_pairs() {
        let pts = vec![
            (1.0, 0.0),
            (1.0 + 1e-12, 0.0), // cluster of 1.0
            (2.0, 1e-13),       // near-real
            (2.0, -1e-13),      // its mirror: collapses with it
            (3.0, 1.0),
            (3.0, -1.0),
        ];
        let out = dedupe_points(&pts, 1e-8);
        assert_eq!(out.len(), 4, "{out:?}");
        assert!(out.contains(&(1.0, 0.0)));
        assert!(out.contains(&(2.0, 0.0)));
        assert!(out.contains(&(3.0, 1.0)) && out.contains(&(3.0, -1.0)));
    }

    #[test]
    fn newton_shifts_caps_without_splitting_pairs() {
        let ritz = vec![(4.0, 1.0), (4.0, -1.0), (1.0, 0.0), (-2.0, 0.0)];
        // Cap 3 after Leja ordering: if the cap falls on the second member
        // of a pair the pair is dropped entirely.
        let shifts = newton_shifts(&ritz, 3, 1e-8).unwrap();
        assert!(shifts.len() <= 3);
        // Adjacent equal real parts wherever a pair survived.
        let pair_count = shifts.windows(2).filter(|w| w[0] == w[1]).count();
        // The modulus-4.x pair is picked first, contributing (4.0, 4.0).
        assert_eq!(shifts[0], 4.0);
        assert_eq!(shifts[1], 4.0);
        assert!(pair_count >= 1);
    }

    #[test]
    fn cap_between_two_complete_pairs_does_not_shrink() {
        // Regression: with two conjugate pairs ordered back to back, a cap
        // landing exactly on the boundary between them must keep the first
        // pair whole — the old guard compared imaginary parts only and
        // truncated through the middle of the *complete* leading pair.
        let ritz = vec![(10.0, 1.0), (10.0, -1.0), (0.0, 1.0), (0.0, -1.0)];
        assert_eq!(newton_shifts(&ritz, 2, 1e-8), Some(vec![10.0, 10.0]));
        // A cap genuinely splitting the second pair drops that pair whole.
        assert_eq!(newton_shifts(&ritz, 3, 1e-8), Some(vec![10.0, 10.0]));
        // Capping inside the only (leading) pair leaves nothing usable.
        assert_eq!(newton_shifts(&[(10.0, 1.0), (10.0, -1.0)], 1, 1e-8), None);
    }

    #[test]
    fn capped_leja_prefix_matches_the_full_ordering() {
        let pts = vec![
            (4.0, 1.0),
            (4.0, -1.0),
            (1.0, 0.0),
            (-2.0, 0.0),
            (0.5, 2.0),
            (0.5, -2.0),
            (3.0, 0.0),
        ];
        let full = modified_leja_order(&pts);
        for limit in 1..=pts.len() {
            let prefix = super::leja_prefix(&pts, limit);
            assert!(prefix.len() >= limit.min(pts.len()));
            assert_eq!(&full[..prefix.len()], &prefix[..], "limit {limit}");
        }
    }

    #[test]
    fn degenerate_inputs_yield_no_shifts() {
        assert_eq!(newton_shifts(&[], 5, 1e-8), None);
        assert_eq!(newton_shifts(&[(0.0, 0.0)], 5, 1e-8), None);
        assert_eq!(newton_shifts(&[(1.0, 0.0)], 0, 1e-8), None);
    }

    #[test]
    fn harvested_shifts_match_the_operator_spectrum() {
        // Arnoldi on a diagonal matrix: Ritz values approximate extremal
        // eigenvalues; a full-dimension harvest is exact.
        let n = 6;
        let a = sparse::Csr::from_triplets(
            n,
            n,
            &(0..n)
                .map(|i| sparse::Triplet {
                    row: i,
                    col: i,
                    val: (i + 1) as f64,
                })
                .collect::<Vec<_>>(),
        );
        let b = vec![1.0; n];
        let solver = crate::SStepGmres::new(crate::GmresConfig {
            restart: n,
            step_size: 1,
            tol: 1e-30,
            max_restarts: 1,
            ortho: crate::OrthoKind::Cgs2,
            ..crate::GmresConfig::default()
        });
        let (_, result) = solver.solve_serial(&a, &b);
        // A lucky breakdown is fine: the harvest exists either way.
        let shifts = result.last_harvest.expect("harvest must succeed");
        // Every harvested shift is (close to) an actual eigenvalue 1..=6.
        for s in &shifts {
            let nearest = (1..=n)
                .map(|k| (s - k as f64).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1e-6, "shift {s} far from spectrum: {shifts:?}");
        }
        // Leja: the first shift is an extremal eigenvalue.
        assert!((shifts[0] - n as f64).abs() < 1e-6, "{shifts:?}");
    }

    #[test]
    fn newton_basis_conditioning_beats_monomial_on_laplace() {
        let a = sparse::laplace2d_5pt(16, 16);
        let v0 = vec![1.0; a.nrows()];
        let s = 8;
        let mono = basis_condition_number(&a, &KrylovBasis::Monomial, s, &v0);
        // Exact-spectrum Leja shifts for the 2-D Laplacian.
        let lam = |k: usize, n: usize| {
            2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n + 1) as f64).cos()
        };
        let mut spectrum: Vec<SpectralPoint> = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                spectrum.push((lam(i, 16) + lam(j, 16), 0.0));
            }
        }
        let shifts = newton_shifts(&spectrum, s, 1e-6).unwrap();
        let newton = basis_condition_number(&a, &KrylovBasis::Newton { shifts }, s, &v0);
        assert!(
            newton < mono,
            "Newton κ {newton:.3e} must beat monomial κ {mono:.3e}"
        );
    }
}
