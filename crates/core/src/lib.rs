//! # ssgmres — standard and s-step GMRES with pluggable block orthogonalization
//!
//! The solver crate of the two-stage GMRES reproduction.  It implements the
//! restarted GMRES(m) family of the paper (Fig. 1 / Fig. 5):
//!
//! * **standard GMRES** — step size `s = 1` with column-wise CGS2
//!   orthogonalization (the "GMRES + CGS2" baseline of Table III);
//! * **s-step GMRES** — a matrix-powers kernel generates `s` Krylov vectors
//!   per outer step (monomial or Newton basis — including the **adaptive**
//!   Newton basis of [`shifts`], which harvests Leja-ordered Ritz shifts
//!   after every restart), which are then handed to one of the block
//!   orthogonalization schemes of the [`blockortho`] crate (BCGS2 with
//!   CholQR2, BCGS-PIP2, or the **two-stage** scheme);
//! * right preconditioning with the local preconditioners the paper uses
//!   (Jacobi, block-Jacobi Gauss–Seidel, multicolor Gauss–Seidel, and a
//!   polynomial preconditioner as an extension).
//!
//! The solver operates on the distributed substrate of [`distsim`]
//! (block-row [`distsim::DistCsr`] matrix, [`distsim::DistMultiVector`]
//! Krylov basis) so every global reduction is recorded and the same code
//! path runs single-rank or multi-rank.
//!
//! ```
//! use sparse::laplace2d_5pt;
//! use ssgmres::{GmresConfig, SStepGmres};
//!
//! let a = laplace2d_5pt(30, 30);
//! let b = vec![1.0; a.nrows()];
//! let config = GmresConfig {
//!     restart: 30,
//!     step_size: 5,
//!     tol: 1e-8,
//!     ..GmresConfig::default()
//! };
//! let (solution, result) = SStepGmres::new(config).solve_serial(&a, &b);
//! assert!(result.converged);
//! assert_eq!(solution.len(), a.nrows());
//! ```

pub mod basis;
pub mod block;
pub mod control;
pub mod hessenberg;
pub mod precond;
pub mod service;
pub mod shifts;
pub mod solver;
pub mod timing;

pub use basis::{AdaptiveBasis, BasisStrategy, KrylovBasis};
pub use block::{BlockOptions, BlockSolveResult};
pub use control::{AutoStep, CycleHealth, CycleVerdict, StepController, StepDecision, StepPolicy};
pub use hessenberg::HessenbergRecovery;
pub use precond::{
    BlockJacobiGaussSeidel, Identity, Jacobi, MulticolorGaussSeidel, Polynomial, Preconditioner,
};
pub use service::{BatchConfig, BatchedSolve, BatchedSolver, SolveTicket};
pub use solver::{standard_gmres_config, GmresConfig, SStepGmres, SolveResult};
pub use timing::CycleTiming;
// Fault-injection and detection-guard surface, re-exported so solver users
// configure `GmresConfig::guards` / wrap a communicator without naming
// `distsim` directly.
pub use distsim::{
    FaultEvent, FaultKind, FaultPlan, FaultRates, FaultyComm, GuardContext, GuardCounts,
    GuardEvent, GuardPolicy, SketchConfig, Target,
};

// Re-export the orthogonalization selector (and the per-stage fallback
// detail surfaced in CycleHealth) so downstream users configure the solver
// and read its health reports without importing blockortho directly.
pub use blockortho::{FallbackEvent, FallbackStage, OrthoKind};
