//! Asynchronous batched-solve front-end over the block solver.
//!
//! Many workloads (time steppers with several tracer fields, uncertainty
//! sweeps, multiple linearization points) issue independent solves against
//! the **same** operator.  Solved one at a time, each pays the full
//! per-cycle synchronization bill of s-step GMRES; batched into a block,
//! the bill is paid once — [`SStepGmres::solve_block`] keeps the per-cycle
//! reduce *count* independent of the number of right-hand sides.
//!
//! [`BatchedSolver`] is the queueing layer that turns the former call
//! pattern into the latter: callers [`submit`](BatchedSolver::submit)
//! individual right-hand sides and block on a [`SolveTicket`]; a worker
//! thread accumulates requests that arrive within a linger window (up to
//! [`BatchConfig::max_batch`]) into one block right-hand side, runs a
//! single block solve, and resolves every ticket with its own column of
//! the solution.  [`BatchedSolve::batch_reduces`] reports the all-reduce
//! count of the whole batch so callers can observe the amortization
//! (`bench --bin batched` pins it: a full batch of 4 costs the same
//! number of reduces as a batch of 1).
//!
//! The implementation is std-only (`Mutex` + `Condvar` + `mpsc`), matching
//! the zero-dependency discipline of the workspace.

use crate::block::BlockSolveResult;
use crate::precond::{Identity, Preconditioner};
use crate::solver::{GmresConfig, SStepGmres};
use dense::Matrix;
use distsim::{DistCsr, SerialComm};
use sparse::{block_row_partition, Csr};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Batching policy of a [`BatchedSolver`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum right-hand sides folded into one block solve.
    pub max_batch: usize,
    /// How long the worker lingers after the first request of a batch,
    /// waiting for more arrivals before solving.
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            linger: Duration::from_millis(2),
        }
    }
}

/// One caller's share of a batched solve.
#[derive(Debug, Clone)]
pub struct BatchedSolve {
    /// The solution column for the submitted right-hand side.
    pub x: Vec<f64>,
    /// Whether this column's residual met the solver tolerance.
    pub converged: bool,
    /// Final true relative residual of this column.
    pub final_relres: f64,
    /// Per-cycle relative residual history of this column.
    pub relres_history: Vec<f64>,
    /// Number of right-hand sides the batch carried.
    pub batch_size: usize,
    /// All-reduce calls the **whole batch** performed — shared by every
    /// column, not multiplied by `batch_size`.
    pub batch_reduces: usize,
    /// Sequence number of the batch within this solver's lifetime.
    pub batch_id: usize,
    /// This request's column within the batch.
    pub column: usize,
}

/// Handle returned by [`BatchedSolver::submit`]; blocks until the batch
/// containing the request has been solved.
pub struct SolveTicket {
    rx: mpsc::Receiver<BatchedSolve>,
}

impl SolveTicket {
    /// Block until the batch resolves and return this request's column.
    pub fn wait(self) -> BatchedSolve {
        self.rx
            .recv()
            .expect("batched solver worker terminated before resolving the ticket")
    }
}

struct Request {
    b: Vec<f64>,
    tx: mpsc::Sender<BatchedSolve>,
}

#[derive(Default)]
struct Shared {
    pending: VecDeque<Request>,
    shutdown: bool,
    batches: usize,
    columns: usize,
}

/// Accumulates single right-hand-side solve requests against one operator
/// and serves them through block solves.  See the module docs.
pub struct BatchedSolver {
    shared: Arc<(Mutex<Shared>, Condvar)>,
    worker: Option<JoinHandle<()>>,
    n: usize,
}

impl BatchedSolver {
    /// Spawn a batched solver for `A·x = b` requests against `a`, solved
    /// with the given GMRES configuration, without preconditioning.
    pub fn new(a: Csr, config: GmresConfig, batch: BatchConfig) -> Self {
        Self::with_preconditioner(a, config, batch, Box::new(Identity))
    }

    /// [`new`](Self::new) with a right preconditioner applied to every
    /// batch.
    pub fn with_preconditioner(
        a: Csr,
        config: GmresConfig,
        batch: BatchConfig,
        precond: Box<dyn Preconditioner>,
    ) -> Self {
        assert!(batch.max_batch >= 1, "max_batch must be at least 1");
        let n = a.nrows();
        let shared = Arc::new((Mutex::new(Shared::default()), Condvar::new()));
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("batched-gmres".into())
            .spawn(move || worker_loop(worker_shared, a, config, batch, precond))
            .expect("spawn batched solver worker");
        Self {
            shared,
            worker: Some(worker),
            n,
        }
    }

    /// Enqueue one right-hand side.  Returns immediately; the returned
    /// ticket blocks until the batch containing it has been solved.
    pub fn submit(&self, b: Vec<f64>) -> SolveTicket {
        self.submit_all(vec![b]).pop().expect("one ticket per rhs")
    }

    /// Enqueue several right-hand sides **atomically**: all of them enter
    /// the queue under one lock, so (up to `max_batch`) they land in the
    /// same batch in submission order — the deterministic entry point the
    /// tests and benches use.
    pub fn submit_all(&self, bs: Vec<Vec<f64>>) -> Vec<SolveTicket> {
        assert!(!bs.is_empty(), "submit_all needs at least one rhs");
        let (lock, cvar) = &*self.shared;
        let mut tickets = Vec::with_capacity(bs.len());
        let mut state = lock.lock().expect("batched solver lock poisoned");
        assert!(!state.shutdown, "batched solver is shutting down");
        for b in bs {
            assert_eq!(b.len(), self.n, "rhs length must match the operator");
            let (tx, rx) = mpsc::channel();
            state.pending.push_back(Request { b, tx });
            tickets.push(SolveTicket { rx });
        }
        drop(state);
        cvar.notify_one();
        tickets
    }

    /// `(batches solved, total right-hand sides served)` so far.
    pub fn stats(&self) -> (usize, usize) {
        let state = self.shared.0.lock().expect("batched solver lock poisoned");
        (state.batches, state.columns)
    }
}

impl Drop for BatchedSolver {
    fn drop(&mut self) {
        {
            let (lock, cvar) = &*self.shared;
            let mut state = lock.lock().expect("batched solver lock poisoned");
            state.shutdown = true;
            cvar.notify_one();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    shared: Arc<(Mutex<Shared>, Condvar)>,
    a: Csr,
    config: GmresConfig,
    batch: BatchConfig,
    precond: Box<dyn Preconditioner>,
) {
    // The distributed operator is assembled once, not per batch.
    let comm = SerialComm::new();
    let part = block_row_partition(a.nrows(), 1);
    let dist = DistCsr::from_global(comm, &a, &part);
    let solver = SStepGmres::new(config);
    let n = a.nrows();
    let (lock, cvar) = &*shared;
    let mut batch_id = 0usize;
    loop {
        let requests = {
            let mut state = lock.lock().expect("batched solver lock poisoned");
            // Wait for work (or shutdown with a drained queue).
            while state.pending.is_empty() && !state.shutdown {
                state = cvar.wait(state).expect("batched solver lock poisoned");
            }
            if state.pending.is_empty() {
                return; // shutdown
            }
            // Linger for co-batchable arrivals unless already full or
            // shutting down (drain immediately on shutdown).
            let deadline = std::time::Instant::now() + batch.linger;
            while state.pending.len() < batch.max_batch && !state.shutdown {
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (next, timeout) = cvar
                    .wait_timeout(state, remaining)
                    .expect("batched solver lock poisoned");
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = state.pending.len().min(batch.max_batch);
            state.pending.drain(..take).collect::<Vec<_>>()
        };
        let k = requests.len();
        let mut b = Matrix::zeros(n, k);
        for (j, req) in requests.iter().enumerate() {
            b.col_mut(j).copy_from_slice(&req.b);
        }
        let mut x = Matrix::zeros(n, k);
        let result: BlockSolveResult = solver.solve_block(&dist, precond.as_ref(), &b, &mut x);
        {
            // Account the batch before resolving tickets so stats() is
            // current by the time any caller observes its result.
            let mut state = lock.lock().expect("batched solver lock poisoned");
            state.batches += 1;
            state.columns += k;
        }
        for (j, req) in requests.iter().enumerate() {
            // A dropped ticket (caller gave up) is not an error.
            let _ = req.tx.send(BatchedSolve {
                x: x.col(j).to_vec(),
                converged: result.col_converged[j],
                final_relres: result.final_relres[j],
                relres_history: result.relres_history[j].clone(),
                batch_size: k,
                batch_reduces: result.comm_total.allreduces,
                batch_id,
                column: j,
            });
        }
        batch_id += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::laplace2d_9pt;

    fn rhs_for(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 7 + seed * 13) % 17) as f64 * 0.25 - 2.0)
            .collect()
    }

    fn config() -> GmresConfig {
        GmresConfig {
            restart: 24,
            step_size: 4,
            tol: 1e-8,
            ..GmresConfig::default()
        }
    }

    #[test]
    fn batched_submissions_share_one_solve() {
        let a = laplace2d_9pt(14, 14);
        let n = a.nrows();
        let solver = BatchedSolver::new(
            a.clone(),
            config(),
            BatchConfig {
                max_batch: 4,
                linger: Duration::from_millis(50),
            },
        );
        let tickets = solver.submit_all((0..4).map(|j| rhs_for(n, j)).collect());
        let results: Vec<BatchedSolve> = tickets.into_iter().map(SolveTicket::wait).collect();
        // One batch, four columns, identical shared reduce bill.
        assert!(results.iter().all(|r| r.batch_id == results[0].batch_id));
        assert!(results.iter().all(|r| r.batch_size == 4));
        assert!(results
            .iter()
            .all(|r| r.batch_reduces == results[0].batch_reduces));
        for (j, r) in results.iter().enumerate() {
            assert_eq!(r.column, j);
            assert!(r.converged, "column {j}");
            let ax = a.spmv_alloc(&r.x);
            let b = rhs_for(n, j);
            let res: f64 = ax
                .iter()
                .zip(&b)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
            let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(res / bn < 1e-7, "column {j}: {}", res / bn);
        }
        assert_eq!(solver.stats(), (1, 4));
    }

    #[test]
    fn single_submission_matches_the_direct_solve() {
        let a = laplace2d_9pt(12, 12);
        let n = a.nrows();
        let b = rhs_for(n, 0);
        let solver = BatchedSolver::new(
            a.clone(),
            config(),
            BatchConfig {
                max_batch: 4,
                linger: Duration::from_millis(1),
            },
        );
        let got = solver.submit(b.clone()).wait();
        let (want_x, want) = SStepGmres::new(config()).solve_serial(&a, &b);
        assert_eq!(got.x, want_x, "bitwise identical to the scalar solve");
        assert_eq!(got.relres_history, want.relres_history);
        assert_eq!(got.batch_size, 1);
    }

    #[test]
    fn batches_larger_than_max_batch_split() {
        let a = laplace2d_9pt(10, 10);
        let n = a.nrows();
        let solver = BatchedSolver::new(
            a,
            config(),
            BatchConfig {
                max_batch: 2,
                linger: Duration::from_millis(20),
            },
        );
        let tickets = solver.submit_all((0..5).map(|j| rhs_for(n, j)).collect());
        let results: Vec<BatchedSolve> = tickets.into_iter().map(SolveTicket::wait).collect();
        assert!(results.iter().all(|r| r.converged));
        assert!(results.iter().all(|r| r.batch_size <= 2));
        let (batches, columns) = solver.stats();
        assert_eq!(columns, 5);
        assert!(
            batches >= 3,
            "five columns at max_batch 2 need >= 3 batches"
        );
    }
}
