//! Per-cycle wall-time breakdown of the s-step solver.
//!
//! Every restart cycle is split into the phases the paper's cost model
//! reasons about — matrix-powers kernel, block orthogonalization,
//! Hessenberg recovery + projected solve, solution update, true-residual
//! check — and each phase is timed with plain monotonic clock reads, so
//! the breakdown is **always on** and costs a handful of `Instant::now()`
//! calls per cycle (no tracing required, no extra reductions, and no
//! perturbation of the arithmetic: the solve stays bitwise identical).
//!
//! When the [`trace`] layer is enabled the solver additionally attributes
//! the cycle's **synchronization time** ([`CycleTiming::sync_ns`]): the
//! wall time this rank spent inside `"comm"`-category spans (allreduce /
//! broadcast / allgather / barrier / p2p waits), measured as a delta of
//! [`trace::thread_category_ns`] across the cycle.  With tracing disabled
//! the field is 0.

use std::time::Instant;

/// Wall-clock breakdown of one restart cycle (all durations nanoseconds).
///
/// The phase fields partition the cycle body: `mpk_ns + ortho_ns +
/// hess_ns + update_ns + residual_ns + other_ns` accounts for every
/// instant between the cycle's first and last clock read, so it tracks
/// `total_ns` to within the cost of the final clock read itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleTiming {
    /// Cycle index (0-based, aligned with `step_history`/`health_history`).
    pub cycle: usize,
    /// Effective matrix-powers step of the cycle.
    pub step: usize,
    /// Matrix-powers kernel: preconditioner applications, SpMVs (including
    /// their halo exchange), Newton shifts, and basis-column stores.
    pub mpk_ns: u64,
    /// Block orthogonalization: every `orthogonalize_panel` call (column 0
    /// included) plus the delayed-reorthogonalization `finish`.
    pub ortho_ns: u64,
    /// Hessenberg recovery, Ritz-shift harvesting, and the projected
    /// least-squares solves (both the in-cycle estimates and the final one).
    pub hess_ns: u64,
    /// Solution update `x ← x + M⁻¹·(Q·y)`.
    pub update_ns: u64,
    /// True-residual recomputation and its global norm.
    pub residual_ns: u64,
    /// Everything else: cycle setup, health assembly, controller decisions.
    pub other_ns: u64,
    /// Whole-cycle wall time (first to last clock read of the cycle).
    pub total_ns: u64,
    /// Time spent inside `"comm"`-category trace spans on this thread
    /// during the cycle — the solver's sync-vs-compute attribution.
    /// Exactly 0 when tracing is disabled or compiled out.
    pub sync_ns: u64,
}

impl CycleTiming {
    /// Sum of the six phase buckets (should match `total_ns` closely).
    pub fn segments_ns(&self) -> u64 {
        self.mpk_ns
            + self.ortho_ns
            + self.hess_ns
            + self.update_ns
            + self.residual_ns
            + self.other_ns
    }

    /// `total_ns − sync_ns`: the cycle's compute share under the tracing
    /// layer's sync attribution (equals `total_ns` when tracing is off).
    pub fn compute_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.sync_ns)
    }
}

/// The phase a [`CycleClock::lap`] charges elapsed time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Mpk,
    Ortho,
    Hess,
    Update,
    Residual,
    Other,
}

/// Accumulates one cycle's [`CycleTiming`] with the *lap* pattern: every
/// call to [`CycleClock::lap`] charges the time since the previous lap (or
/// construction) to one phase, so the phase buckets partition the cycle
/// body with no gaps and no double counting.
#[derive(Debug)]
pub(crate) struct CycleClock {
    start: Instant,
    last: Instant,
    sync0: u64,
    timing: CycleTiming,
}

impl CycleClock {
    pub(crate) fn start(cycle: usize, step: usize) -> Self {
        let now = Instant::now();
        CycleClock {
            start: now,
            last: now,
            sync0: trace::thread_category_ns("comm"),
            timing: CycleTiming {
                cycle,
                step,
                ..CycleTiming::default()
            },
        }
    }

    /// Charge the time since the previous lap to `phase`.
    pub(crate) fn lap(&mut self, phase: Phase) {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        let bucket = match phase {
            Phase::Mpk => &mut self.timing.mpk_ns,
            Phase::Ortho => &mut self.timing.ortho_ns,
            Phase::Hess => &mut self.timing.hess_ns,
            Phase::Update => &mut self.timing.update_ns,
            Phase::Residual => &mut self.timing.residual_ns,
            Phase::Other => &mut self.timing.other_ns,
        };
        *bucket += dt;
    }

    /// Close the cycle: charge any tail to `Other`, stamp `total_ns` and
    /// the `"comm"`-span delta, and return the finished record.
    pub(crate) fn finish(mut self) -> CycleTiming {
        self.lap(Phase::Other);
        self.timing.total_ns = self.last.duration_since(self.start).as_nanos() as u64;
        self.timing.sync_ns = trace::thread_category_ns("comm").saturating_sub(self.sync0);
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_partition_the_total() {
        let mut clock = CycleClock::start(3, 5);
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.lap(Phase::Mpk);
        std::thread::sleep(std::time::Duration::from_millis(1));
        clock.lap(Phase::Ortho);
        let t = clock.finish();
        assert_eq!(t.cycle, 3);
        assert_eq!(t.step, 5);
        assert!(t.mpk_ns >= 1_000_000, "mpk lap too short: {}", t.mpk_ns);
        assert!(t.ortho_ns >= 500_000, "ortho lap too short: {}", t.ortho_ns);
        // The laps partition the cycle: segments == total up to the final
        // clock read (finish() charges the tail, so they match exactly).
        assert_eq!(t.segments_ns(), t.total_ns);
        assert_eq!(t.compute_ns(), t.total_ns - t.sync_ns);
    }

    #[test]
    fn sync_is_zero_without_tracing() {
        // No comm spans are recorded here, so the delta must be 0 whether
        // or not some other test enabled tracing concurrently... which is
        // why we only assert the invariant that holds unconditionally:
        // sync never exceeds total-with-slack on an empty cycle.
        let clock = CycleClock::start(0, 1);
        let t = clock.finish();
        assert_eq!(t.cycle, 0);
        assert!(t.segments_ns() == t.total_ns);
    }
}
