//! Hessenberg recovery for s-step GMRES.
//!
//! Standard GMRES builds the upper-Hessenberg matrix `H` (with
//! `A·Q_{0:k−1} = Q_{0:k}·H`) directly from its orthogonalization
//! coefficients.  The s-step variant instead recovers `H` from the R factor
//! of the block QR factorization and the change-of-basis information — the
//! paper writes this as `H = R·T·R⁻¹` (Fig. 1, line 14).  We implement the
//! equivalent column-by-column recurrence, which handles all the cases that
//! occur in practice:
//!
//! For each generated column `c+1`, the matrix-powers kernel computed
//! `w_{c+1} = (A − θ_c·I)·u_c`, where the input `u_c` is some vector whose
//! representation `t_c` in the *final* orthonormal basis is known:
//!
//! * `u_c` was the raw Krylov vector stored in column `c` → `t_c = R[:, c]`;
//! * `u_c` was the column `c` *after* it had been handed to the
//!   orthogonalizer (a panel-start column) → `t_c` is the orthogonalizer's
//!   stored-basis coefficient column (identity for one-stage schemes, the
//!   second-stage `T` factor for the two-stage scheme).
//!
//! From `A·u_c = w_{c+1} + θ_c·u_c` and `W = Q·R` it follows that
//! `H·t_c = R[:, c+1] + θ_c·t_c`, and since `t_c` is upper triangular with a
//! nonzero diagonal this determines the Hessenberg columns one at a time.
//!
//! **Block generalization.**  With a block right-hand side of `kb` columns
//! the matrix-powers kernel maps input column `c` to output column `c + kb`
//! (the columns of one block step are interleaved), so the recurrence
//! becomes `Hb·t_c = R[:, c + kb] + θ_c·t_c` with `θ_c` indexed by the
//! *block step* `c / kb`, and `Hb` is band upper-Hessenberg with lower
//! bandwidth `kb`.  [`HessenbergRecovery::with_block_width`] runs exactly
//! this recurrence; at `kb = 1` it is bitwise the scalar recovery.

use crate::basis::KrylovBasis;
use dense::Matrix;

/// Incremental Hessenberg recovery for one restart cycle.
#[derive(Debug)]
pub struct HessenbergRecovery {
    /// `total_cols × (total_cols − width)` band Hessenberg matrix being
    /// recovered (`(m+1) × m` in the scalar case).
    h: Matrix,
    /// Number of columns of `h` recovered so far.
    recovered: usize,
    /// Whether basis column `c` had already been handed to the
    /// orthogonalizer when it was used as an MPK input.
    submitted_before_mpk: Vec<bool>,
    /// Block width `kb` of the right-hand-side block (1 = single RHS).
    width: usize,
}

impl HessenbergRecovery {
    /// Create the recovery bookkeeping for a cycle with at most `m`
    /// generated columns (basis of `m+1` columns).
    pub fn new(m: usize) -> Self {
        Self::with_block_width(m + 1, 1)
    }

    /// Create the recovery bookkeeping for a **block** cycle: a basis of
    /// `total_cols` columns built from an initial residual block of
    /// `width` columns (so at most `total_cols − width` MPK input columns
    /// exist).  `with_block_width(m + 1, 1)` is exactly [`new`](Self::new).
    pub fn with_block_width(total_cols: usize, width: usize) -> Self {
        assert!(width >= 1, "block width must be at least 1");
        assert!(
            total_cols > width,
            "basis must be wider than the residual block"
        );
        Self {
            h: Matrix::zeros(total_cols, total_cols - width),
            recovered: 0,
            submitted_before_mpk: vec![false; total_cols],
            width,
        }
    }

    /// Block width `kb` this recovery was created with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Record that column `c` had already been submitted to the
    /// orthogonalizer when the matrix-powers kernel used it as a starting
    /// vector (i.e. `c` is a panel-start input).
    pub fn mark_submitted_input(&mut self, c: usize) {
        self.submitted_before_mpk[c] = true;
    }

    /// Number of Hessenberg columns recovered so far.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// The (m+1)×m Hessenberg matrix (only the leading `recovered()` columns
    /// are meaningful).
    pub fn matrix(&self) -> &Matrix {
        &self.h
    }

    /// Recover Hessenberg columns up to (excluding) `upto`, given the current
    /// (final for those columns) `R` factor, the orthogonalizer's stored
    /// basis coefficients (`None` = identity), and the Krylov basis
    /// (for its shifts).
    ///
    /// Panics if a diagonal coefficient needed for the recurrence is zero —
    /// that can only happen after an orthogonalization breakdown, which the
    /// solver must have handled already.
    pub fn recover_upto(
        &mut self,
        upto: usize,
        r: &Matrix,
        coeffs: Option<&Matrix>,
        basis: &KrylovBasis,
    ) {
        let mrows = self.h.nrows();
        let kb = self.width;
        while self.recovered < upto {
            let c = self.recovered;
            // Representation of the MPK input u_c in the final basis.
            let mut t = vec![0.0; c + 1];
            if self.submitted_before_mpk[c] {
                match coeffs {
                    Some(cm) => {
                        for (i, ti) in t.iter_mut().enumerate() {
                            *ti = cm[(i, c)];
                        }
                    }
                    None => t[c] = 1.0,
                }
            } else {
                for (i, ti) in t.iter_mut().enumerate() {
                    *ti = r[(i, c)];
                }
            }
            // Shifts are per *block step*: input column c belongs to block
            // step c / kb (at kb = 1 this is c itself).
            let theta = basis.shift(c / kb);
            // Numerator: R[:, c+kb] + theta * t − Σ_{k<c} H[:,k]·t[k].
            let mut num = vec![0.0; mrows];
            for i in 0..(c + kb + 1).min(mrows) {
                num[i] = r[(i, c + kb)];
            }
            if theta != 0.0 {
                for (i, &ti) in t.iter().enumerate() {
                    num[i] += theta * ti;
                }
            }
            for (k, &tk) in t.iter().enumerate().take(c) {
                if tk != 0.0 {
                    for (i, entry) in num.iter_mut().enumerate().take((k + kb + 1).min(mrows)) {
                        *entry -= self.h[(i, k)] * tk;
                    }
                }
            }
            let tc = t[c];
            assert!(
                tc != 0.0,
                "Hessenberg recovery: zero diagonal coefficient at column {c}"
            );
            for (i, entry) in num.iter().enumerate().take((c + kb + 1).min(mrows)) {
                self.h[(i, c)] = entry / tc;
            }
            self.recovered += 1;
        }
    }

    /// Solve the projected least-squares problem for the first `k` recovered
    /// columns: `min_y ‖beta·e₁ − H_{1:k+1,1:k}·y‖₂`.
    ///
    /// Returns `(y, residual_estimate)`.
    pub fn least_squares(&self, k: usize, beta: f64) -> (Vec<f64>, f64) {
        assert!(k <= self.recovered, "cannot solve beyond recovered columns");
        debug_assert_eq!(self.width, 1, "use block_least_squares for width > 1");
        let mut hk = Matrix::zeros(k + 1, k);
        for j in 0..k {
            for i in 0..=(j + 1) {
                hk[(i, j)] = self.h[(i, j)];
            }
        }
        dense::hessenberg_lsq(&hk, beta)
    }

    /// Solve the projected block least-squares problem for the first `k`
    /// recovered columns: per right-hand-side column `q` of `rhs` (each of
    /// length `k + width`), `min_y ‖rhs[:, q] − Hb_{1:k+width,1:k}·y‖₂`.
    ///
    /// The block solver's right-hand sides are the residual block's
    /// coordinates in the orthonormal basis, `γ_q · S[:, q]` zero-padded
    /// (with `S` the leading `width × width` block of the R factor) — the
    /// honest block-GMRES coupling; the scalar path's `β·e₁` convention is
    /// the `width = 1`, `S = [1]` special case.
    ///
    /// Returns `(Y, residual_estimates)` with `Y` of shape `k × rhs.ncols()`.
    pub fn block_least_squares(&self, k: usize, rhs: &Matrix) -> (Matrix, Vec<f64>) {
        assert!(k <= self.recovered, "cannot solve beyond recovered columns");
        assert_eq!(rhs.nrows(), k + self.width, "rhs rows must be k + width");
        let mut hk = Matrix::zeros(k + self.width, k);
        for j in 0..k {
            for i in 0..=(j + self.width).min(k + self.width - 1) {
                hk[(i, j)] = self.h[(i, j)];
            }
        }
        let mut y = Matrix::zeros(k, rhs.ncols());
        let mut residuals = Vec::with_capacity(rhs.ncols());
        for q in 0..rhs.ncols() {
            let (yq, res) = dense::qr_lsq(&hk, rhs.col(q));
            y.col_mut(q).copy_from_slice(&yq);
            residuals.push(res);
        }
        (y, residuals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: build W column by column with w_{c+1} = A u_c where
    /// u_c is w_c itself (monomial, never re-submitted), factorize with
    /// Householder QR, and compare the recovered H against Qᵀ A Q.
    #[test]
    fn recovers_arnoldi_hessenberg_for_raw_inputs() {
        let n = 60;
        let m = 8;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i + 1 == j || j + 1 == i {
                -0.5
            } else {
                0.0
            }
        });
        // Generate W.
        let mut w = Matrix::zeros(n, m + 1);
        for i in 0..n {
            w[(i, 0)] = ((i * 7 % 13) as f64) - 6.0;
        }
        for c in 0..m {
            let prev = w.col(c).to_vec();
            let mut next = vec![0.0; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += a[(i, j)] * prev[j];
                }
                next[i] = acc;
            }
            w.col_mut(c + 1).copy_from_slice(&next);
        }
        let (q, r) = dense::householder_qr(&w);
        let mut rec = HessenbergRecovery::new(m);
        // All inputs are raw (t_c = R[:, c]).
        rec.recover_upto(m, &r, None, &KrylovBasis::Monomial);
        // Reference H = Q_{:,0:m}ᵀ A Q_{:,0:m}, extended Hessenberg.
        let aq = dense::gemm_nn(&a, &q.cols_owned(0..m));
        let h_ref = dense::gemm_tn(&q.view(), &aq.view());
        // The raw Krylov basis is ill-conditioned (power iteration), so the
        // recovered H carries an amplification of roughly κ(W)·ε; a 1e-6
        // absolute tolerance on O(1) entries is the appropriate check here.
        for c in 0..m {
            for i in 0..=c + 1 {
                assert!(
                    (rec.matrix()[(i, c)] - h_ref[(i, c)]).abs() < 1e-6,
                    "H({i},{c}): {} vs {}",
                    rec.matrix()[(i, c)],
                    h_ref[(i, c)]
                );
            }
        }
    }

    #[test]
    fn submitted_inputs_use_identity_coefficients() {
        // Standard GMRES pattern: every input is the orthonormalized column
        // (submitted), so H[:, c] must equal R[:, c+1] for unit-diagonal
        // coefficients.
        let m = 5;
        let mut r = Matrix::zeros(m + 1, m + 1);
        for j in 0..=m {
            for i in 0..=j {
                r[(i, j)] = 1.0 / (1.0 + (i + 2 * j) as f64);
            }
        }
        let mut rec = HessenbergRecovery::new(m);
        for c in 0..m {
            rec.mark_submitted_input(c);
        }
        rec.recover_upto(m, &r, None, &KrylovBasis::Monomial);
        for c in 0..m {
            for i in 0..=c + 1 {
                assert!((rec.matrix()[(i, c)] - r[(i, c + 1)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn newton_shift_is_accounted_for() {
        // With a Newton shift θ, H must equal the monomial recovery plus θ on
        // the diagonal contribution of the input representation.
        let m = 4;
        let mut r = Matrix::identity(m + 1);
        for j in 0..=m {
            for i in 0..j {
                r[(i, j)] = 0.1 * (i + j) as f64;
            }
        }
        let theta = 2.5;
        let mut rec_mono = HessenbergRecovery::new(m);
        let mut rec_newton = HessenbergRecovery::new(m);
        for c in 0..m {
            rec_mono.mark_submitted_input(c);
            rec_newton.mark_submitted_input(c);
        }
        rec_mono.recover_upto(m, &r, None, &KrylovBasis::Monomial);
        rec_newton.recover_upto(
            m,
            &r,
            None,
            &KrylovBasis::Newton {
                shifts: vec![theta],
            },
        );
        for c in 0..m {
            for i in 0..=c + 1 {
                let expect = rec_mono.matrix()[(i, c)] + if i == c { theta } else { 0.0 };
                assert!((rec_newton.matrix()[(i, c)] - expect).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn least_squares_residual_decreases_with_k() {
        let m = 6;
        let mut r = Matrix::zeros(m + 1, m + 1);
        for j in 0..=m {
            for i in 0..=j {
                r[(i, j)] = if i == j {
                    1.0 + j as f64 * 0.1
                } else {
                    0.3 / (1.0 + (j - i) as f64)
                };
            }
        }
        let mut rec = HessenbergRecovery::new(m);
        rec.recover_upto(m, &r, None, &KrylovBasis::Monomial);
        let mut prev = f64::INFINITY;
        for k in 1..=m {
            let (_, res) = rec.least_squares(k, 1.0);
            assert!(res <= prev + 1e-14, "k={k}: {res} > {prev}");
            prev = res;
        }
    }

    #[test]
    #[should_panic(expected = "cannot solve beyond recovered")]
    fn least_squares_beyond_recovery_panics() {
        let rec = HessenbergRecovery::new(4);
        rec.least_squares(2, 1.0);
    }

    #[test]
    fn width_one_recovery_is_bitwise_the_scalar_recovery() {
        // with_block_width(m + 1, 1) must run the identical recurrence as
        // new(m): same inputs, same operations, same bits.
        let m = 7;
        let mut r = Matrix::zeros(m + 1, m + 1);
        for j in 0..=m {
            for i in 0..=j {
                r[(i, j)] = 1.0 / (1.0 + (2 * i + 3 * j) as f64) + if i == j { 0.5 } else { 0.0 };
            }
        }
        let basis = KrylovBasis::Newton {
            shifts: vec![1.25, -0.5],
        };
        let mut scalar = HessenbergRecovery::new(m);
        let mut block = HessenbergRecovery::with_block_width(m + 1, 1);
        assert_eq!(block.width(), 1);
        for c in [0, 3, 5] {
            scalar.mark_submitted_input(c);
            block.mark_submitted_input(c);
        }
        scalar.recover_upto(m, &r, None, &basis);
        block.recover_upto(m, &r, None, &basis);
        assert_eq!(scalar.matrix().data(), block.matrix().data());
        // The block least-squares with the scalar convention's rhs (β·e₁)
        // solves the same projected problem (different factorization path,
        // so close — the solver keeps the bitwise scalar route at kb = 1).
        let beta = 2.0;
        let k = m - 1;
        let (y_s, res_s) = scalar.least_squares(k, beta);
        let mut rhs = Matrix::zeros(k + 1, 1);
        rhs[(0, 0)] = beta;
        let (y_b, res_b) = block.block_least_squares(k, &rhs);
        assert!((res_s - res_b[0]).abs() < 1e-12 * (1.0 + res_s.abs()));
        for (a, b) in y_s.iter().zip(y_b.col(0)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn block_recovery_matches_dense_reference_at_width_two() {
        // Width-2 interleaved layout: columns {0, 1} are the residual
        // block; raw (monomial) MPK maps input column c to column c + 2 via
        // w_{c+2} = A·w_c.  The recovered band Hessenberg must equal the
        // dense reference Qᵀ·A·Q on every recovered column.
        let n = 60;
        let kb = 2;
        let steps = 4;
        let total = kb * (steps + 1); // 10 columns, 8 recovered
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i + 1 == j || j + 1 == i {
                -0.5
            } else {
                0.0
            }
        });
        let mut w = Matrix::zeros(n, total);
        for i in 0..n {
            w[(i, 0)] = ((i * 7 % 13) as f64) - 6.0;
            w[(i, 1)] = ((i * 5 % 11) as f64) - 5.0;
        }
        for c in 0..total - kb {
            let prev = w.col(c).to_vec();
            let mut next = vec![0.0; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += a[(i, j)] * prev[j];
                }
                next[i] = acc;
            }
            w.col_mut(c + kb).copy_from_slice(&next);
        }
        let (q, r) = dense::householder_qr(&w);
        let mut rec = HessenbergRecovery::with_block_width(total, kb);
        rec.recover_upto(total - kb, &r, None, &KrylovBasis::Monomial);
        let aq = dense::gemm_nn(&a, &q.cols_owned(0..total - kb));
        let h_ref = dense::gemm_tn(&q.view(), &aq.view());
        for c in 0..total - kb {
            for i in 0..(c + kb + 1).min(total) {
                assert!(
                    (rec.matrix()[(i, c)] - h_ref[(i, c)]).abs() < 1e-6,
                    "Hb({i},{c}): {} vs {}",
                    rec.matrix()[(i, c)],
                    h_ref[(i, c)]
                );
            }
        }
    }
}
