//! Per-cycle step-size control for the s-step solver.
//!
//! The monomial (and even a badly shifted Newton) matrix-powers basis can
//! collapse at the *requested* step size — elasticity3d at `s = 8` breaks
//! down in the very first panel — and "On the backward stability of s-step
//! GMRES" (arXiv 2409.03079) shows the attainable accuracy is governed by
//! the per-cycle basis conditioning.  Both mean an ill-conditioned panel is
//! a **runtime signal to react to**, not a configuration error.  This
//! module automates the README's manual warm-up shift-oracle pattern:
//!
//! * every restart cycle produces a [`CycleHealth`] report built entirely
//!   from *replicated* data (the recovered R factor's diagonal, the
//!   orthogonalizer's [`FallbackEvent`]s, the true-residual history), so
//!   monitoring costs **zero additional global reductions**;
//! * under [`StepPolicy::Auto`] the [`StepController`] **halves** the
//!   effective step on a breakdown cycle (down to [`AutoStep::min_step`];
//!   at `s = 1` the solver degenerates to safe standard GMRES panels),
//!   lets the solver re-harvest Newton shifts from the surviving
//!   reduced-step cycle, and **probes back up** (doubling, capped at the
//!   requested `s`) after [`AutoStep::grow_after`] consecutive clean
//!   cycles;
//! * [`StepPolicy::Fixed`] (the default) never deviates from the
//!   configured step — it is pinned bitwise-identical to the pre-controller
//!   solver — and [`StepPolicy::Scheduled`] replays a recorded
//!   [`crate::SolveResult::step_history`] verbatim, which is how the test
//!   suite proves Auto's decisions cost nothing: an Auto solve replayed
//!   through `Scheduled` steps + `Scheduled` shifts is bitwise identical,
//!   communication counts included.

use blockortho::FallbackEvent;
use dense::Matrix;

/// How the solver chooses the effective matrix-powers step size per cycle.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StepPolicy {
    /// Every cycle runs at the configured [`crate::GmresConfig::step_size`]
    /// (bitwise-identical to the solver before the controller existed).
    #[default]
    Fixed,
    /// Monitor per-cycle health and shrink/regrow the effective step
    /// (see [`StepController`]).
    Auto(AutoStep),
    /// Replay a recorded per-cycle step schedule: cycle `c` runs at
    /// `per_cycle[c]` (the last entry is reused past the end; entries are
    /// clamped to `[1, restart]`).  Feeding a previous solve's
    /// [`crate::SolveResult::step_history`] back through this variant,
    /// together with [`crate::BasisStrategy::Scheduled`] for its
    /// `shift_history`, reproduces that solve bitwise.
    Scheduled {
        /// Effective step per restart cycle.
        per_cycle: Vec<usize>,
    },
}

impl StepPolicy {
    /// Convenience constructor for the default self-rescuing policy.
    pub fn auto() -> Self {
        StepPolicy::Auto(AutoStep::default())
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StepPolicy::Fixed => "fixed",
            StepPolicy::Auto(_) => "auto",
            StepPolicy::Scheduled { .. } => "scheduled",
        }
    }
}

/// Tuning knobs of the self-rescuing step policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoStep {
    /// Floor for the effective step size (default 1: standard GMRES
    /// panels, the safest configuration the s-step solver degenerates to).
    pub min_step: usize,
    /// Consecutive clean cycles required before probing the step back up
    /// (one doubling per probe, capped at the requested step).
    pub grow_after: usize,
    /// R-diagonal condition estimate above which a cycle is *distressed*
    /// (the panel is approaching the `O(1/sqrt(eps))` Cholesky bound and a
    /// probe upward would likely break; default `1e8`).
    pub kappa_threshold: f64,
    /// Number of completed cycles over which residual stagnation is
    /// measured.
    pub stagnation_window: usize,
    /// A cycle is *stagnated* when the relative residual failed to drop
    /// below `stagnation_factor` times its value `stagnation_window`
    /// cycles ago (default 0.9: less than 10% total progress).  Stagnation
    /// shrinks the step: per the backward-stability analysis, a
    /// better-conditioned (shorter) basis raises the attainable accuracy.
    pub stagnation_factor: f64,
}

impl Default for AutoStep {
    fn default() -> Self {
        Self {
            min_step: 1,
            grow_after: 2,
            kappa_threshold: 1e8,
            stagnation_window: 4,
            stagnation_factor: 0.9,
        }
    }
}

/// Classification of one restart cycle's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleVerdict {
    /// No breakdown, no remedial fallbacks, conditioning within bounds,
    /// residual still making progress.
    Clean,
    /// Usable but strained: the orthogonalizer needed remedial passes, the
    /// R-diagonal condition estimate exceeded the threshold, or the
    /// residual stagnated.  The controller will not probe upward out of a
    /// distressed state.
    Distressed,
    /// The cycle broke down (an orthogonalization error, or no usable
    /// columns were produced).  The controller shrinks the step.
    Breakdown,
}

/// Health report of one restart cycle, assembled by the solver from
/// replicated data only (no additional communication).
#[derive(Debug, Clone, PartialEq)]
pub struct CycleHealth {
    /// Index of the cycle (0-based, in started order).
    pub cycle: usize,
    /// Effective step size the cycle ran at.
    pub step: usize,
    /// Usable basis columns the cycle produced (`k_use`; 0 = empty cycle).
    pub usable_cols: usize,
    /// Condition estimate of the cycle's Krylov panel: the ratio of the
    /// largest to smallest |diagonal| of the finalized R factor (a cheap
    /// lower bound on the basis condition number; `inf` after a breakdown
    /// that left no finalized columns).
    pub kappa_est: f64,
    /// Distinct remedial-fallback episodes the orthogonalizer took this
    /// cycle (the deduplicated [`blockortho::BlockOrthogonalizer::fallback_count`]).
    pub fallbacks: usize,
    /// Per-stage detail of each remedial episode (stage, panel, shift).
    pub fallback_events: Vec<FallbackEvent>,
    /// The orthogonalization breakdown message, if the cycle hit one.
    pub breakdown: Option<String>,
    /// True relative residual after the cycle's solution update (`None`
    /// for an empty cycle, which performs no update).
    pub relres: Option<f64>,
    /// Whether the residual history qualified as stagnated at this cycle.
    pub stagnated: bool,
    /// Per-column condition estimates of a **block** cycle's interleaved R
    /// factor (one entry per column active when the cycle started; see
    /// [`block_r_diag_condition`]).  Empty for single-RHS solves, where
    /// `kappa_est` is the whole story.  `kappa_est` aggregates these with
    /// [`active_kappa_max`] over the columns that *survive* the cycle's
    /// deflation check, so the Auto policy never shrinks or blocks a probe
    /// on a deflated column's stale conditioning.
    pub kappa_per_col: Vec<f64>,
    /// Faults the detection guards caught during this cycle (zero when
    /// guards are disabled).
    pub faults_detected: usize,
    /// Of those, faults recovered in place (successful collective retry,
    /// discarded duplicate halo message).
    pub faults_recovered: usize,
    /// Faults that exhausted in-place recovery this cycle and reached the
    /// rollback ladder as poisoned payloads.  A cycle with any of these is
    /// never [`CycleVerdict::Clean`].
    pub faults_unrecovered: usize,
    /// The overall classification (see [`assess_cycle`]).
    pub verdict: CycleVerdict,
}

/// Classify a cycle from its raw signals (thresholds from `auto`; the
/// solver uses [`AutoStep::default`] for reporting under non-Auto
/// policies, so `health_history` is populated consistently everywhere).
pub fn assess_cycle(
    auto: &AutoStep,
    broke_down: bool,
    usable_cols: usize,
    kappa_est: f64,
    fallbacks: usize,
    stagnated: bool,
    faults_unrecovered: usize,
) -> CycleVerdict {
    // NaN condition estimates count as over the threshold.
    let kappa_bad = kappa_est > auto.kappa_threshold || kappa_est.is_nan();
    if broke_down || usable_cols == 0 {
        CycleVerdict::Breakdown
    } else if fallbacks > 0 || kappa_bad || stagnated || faults_unrecovered > 0 {
        CycleVerdict::Distressed
    } else {
        CycleVerdict::Clean
    }
}

/// Whether the relative-residual history is stagnating: the latest value
/// failed to drop below `factor` times the value `window` completed cycles
/// earlier (non-finite values count as stagnation).
pub fn residual_stagnated(relres_history: &[f64], window: usize, factor: f64) -> bool {
    if relres_history.len() < window + 1 {
        return false;
    }
    let last = relres_history[relres_history.len() - 1];
    let bound = factor * relres_history[relres_history.len() - 1 - window];
    // "Did not improve" — a NaN residual (either side) is stagnation too.
    !matches!(last.partial_cmp(&bound), Some(std::cmp::Ordering::Less))
}

/// Condition estimate of the leading `cols`-column basis from the R
/// factor's diagonal: `max |R_ii| / min |R_ii|`.  Replicated input, so
/// every rank computes the identical value with no communication.
pub fn r_diag_condition(r: &Matrix, cols: usize) -> f64 {
    if cols == 0 {
        return f64::INFINITY;
    }
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for i in 0..cols {
        let d = r[(i, i)].abs();
        lo = lo.min(d);
        hi = hi.max(d);
    }
    if lo == 0.0 || !lo.is_finite() || !hi.is_finite() {
        f64::INFINITY
    } else {
        hi / lo
    }
}

/// Per-column condition estimates of a **block** cycle's R factor.
///
/// The block solver interleaves its `block_width` right-hand-side columns:
/// column `j` of the block occupies basis columns `j`, `block_width + j`,
/// `2·block_width + j`, … so its per-column conditioning is the
/// max/min ratio over exactly those diagonal entries of `R`, scanned over
/// the leading `blocks` diagonal blocks.  At `block_width = 1` the single
/// entry is bitwise [`r_diag_condition`]`(r, blocks)`.
pub fn block_r_diag_condition(r: &Matrix, block_width: usize, blocks: usize) -> Vec<f64> {
    assert!(block_width >= 1, "block width must be at least 1");
    let mut out = Vec::with_capacity(block_width);
    for j in 0..block_width {
        if blocks == 0 {
            out.push(f64::INFINITY);
            continue;
        }
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for i in 0..blocks {
            let d = r[(i * block_width + j, i * block_width + j)].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        out.push(if lo == 0.0 || !lo.is_finite() || !hi.is_finite() {
            f64::INFINITY
        } else {
            hi / lo
        });
    }
    out
}

/// Aggregate per-column condition estimates into the scalar `kappa_est`
/// the [`StepController`] acts on: the **max over still-active columns**.
///
/// Columns deflated out of the block (converged) are masked out so their
/// stale conditioning cannot push the Auto policy into a rescue; when no
/// column remains active (the block just finished), every column's estimate
/// participates — a column converging *this* cycle is this cycle's honest
/// data, not stale data.
pub fn active_kappa_max(per_col: &[f64], active: &[bool]) -> f64 {
    assert_eq!(per_col.len(), active.len(), "mask length mismatch");
    let over_active = per_col
        .iter()
        .zip(active)
        .filter(|(_, &a)| a)
        .map(|(&k, _)| k)
        .fold(f64::NEG_INFINITY, f64::max);
    if over_active > f64::NEG_INFINITY {
        over_active
    } else {
        per_col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// What the controller decided after observing a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepDecision {
    /// Keep the current effective step.
    Hold,
    /// Halve the effective step for the next cycle (breakdown rescue or
    /// stagnation relief).
    Shrink {
        /// Step the observed cycle ran at.
        from: usize,
        /// Step the next cycle will run at.
        to: usize,
    },
    /// Probe the effective step back up for the next cycle.
    Grow {
        /// Step the observed cycle ran at.
        from: usize,
        /// Step the next cycle will run at.
        to: usize,
    },
}

impl StepDecision {
    /// Whether this decision shrank the step.
    pub fn shrunk(&self) -> bool {
        matches!(self, StepDecision::Shrink { .. })
    }
}

/// Per-solve state of the step policy.
///
/// [`StepController::step_for_cycle`] yields the effective step for the
/// cycle about to start; [`StepController::observe`] consumes the finished
/// cycle's [`CycleHealth`] and updates the state.  For `Fixed` and
/// `Scheduled` policies `observe` is a no-op returning
/// [`StepDecision::Hold`], so the pre-controller solver behavior is
/// preserved exactly.
#[derive(Debug, Clone)]
pub struct StepController {
    policy: StepPolicy,
    /// The configured (requested) step size — the probe ceiling.
    requested: usize,
    /// Restart length (schedule entries are clamped to it).
    restart: usize,
    /// Current effective step (Auto only).
    s_eff: usize,
    /// Consecutive clean cycles since the last shrink/grow (Auto only).
    clean_streak: usize,
    /// Number of shrink decisions taken.
    shrinks: usize,
    /// True once any shrink has happened; the solver keeps rescue shifts
    /// active from then on.
    rescue_active: bool,
}

impl StepController {
    /// Create the controller for a solve with the given configured step
    /// size and restart length.
    pub fn new(policy: StepPolicy, requested: usize, restart: usize) -> Self {
        Self {
            policy,
            requested,
            restart,
            s_eff: requested,
            clean_streak: 0,
            shrinks: 0,
            rescue_active: false,
        }
    }

    /// Effective step size for cycle `cycle` (0-based).
    pub fn step_for_cycle(&self, cycle: usize) -> usize {
        match &self.policy {
            StepPolicy::Fixed => self.requested,
            StepPolicy::Auto(_) => self.s_eff,
            StepPolicy::Scheduled { per_cycle } => {
                let raw = per_cycle
                    .get(cycle)
                    .or(per_cycle.last())
                    .copied()
                    .unwrap_or(self.requested);
                raw.clamp(1, self.restart)
            }
        }
    }

    /// Whether the Auto policy could still shrink below the current
    /// effective step — false at the [`AutoStep::min_step`] floor and for
    /// non-Auto policies.  Introspection only: the solver reacts to
    /// [`StepDecision::shrunk`], which is equivalent on breakdown cycles.
    pub fn can_shrink(&self) -> bool {
        match &self.policy {
            StepPolicy::Auto(auto) => self.s_eff > auto.min_step.max(1),
            _ => false,
        }
    }

    /// True once any rescue (shrink) has happened in this solve.
    pub fn rescue_active(&self) -> bool {
        self.rescue_active
    }

    /// Number of shrink decisions taken so far.
    pub fn shrinks(&self) -> usize {
        self.shrinks
    }

    /// Observe a finished cycle and decide the next cycle's step.
    pub fn observe(&mut self, health: &CycleHealth) -> StepDecision {
        let auto = match &self.policy {
            StepPolicy::Auto(auto) => auto.clone(),
            _ => return StepDecision::Hold,
        };
        let floor = auto.min_step.max(1);
        match health.verdict {
            CycleVerdict::Breakdown => {
                self.clean_streak = 0;
                self.shrink_to(floor, health.step)
            }
            CycleVerdict::Distressed => {
                self.clean_streak = 0;
                if health.stagnated {
                    // Conditioning-limited progress: a shorter basis raises
                    // the attainable accuracy (arXiv 2409.03079).
                    self.shrink_to(floor, health.step)
                } else {
                    StepDecision::Hold
                }
            }
            CycleVerdict::Clean => {
                self.clean_streak += 1;
                if self.s_eff < self.requested && self.clean_streak >= auto.grow_after {
                    let from = self.s_eff;
                    self.s_eff = (self.s_eff * 2).min(self.requested);
                    self.clean_streak = 0;
                    StepDecision::Grow {
                        from,
                        to: self.s_eff,
                    }
                } else {
                    StepDecision::Hold
                }
            }
        }
    }

    fn shrink_to(&mut self, floor: usize, from: usize) -> StepDecision {
        if self.s_eff <= floor {
            return StepDecision::Hold;
        }
        self.s_eff = (self.s_eff / 2).max(floor);
        self.shrinks += 1;
        self.rescue_active = true;
        StepDecision::Shrink {
            from,
            to: self.s_eff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(step: usize, verdict: CycleVerdict, stagnated: bool) -> CycleHealth {
        CycleHealth {
            cycle: 0,
            step,
            usable_cols: if verdict == CycleVerdict::Breakdown {
                0
            } else {
                step
            },
            kappa_est: 1.0,
            fallbacks: 0,
            fallback_events: Vec::new(),
            breakdown: None,
            relres: Some(0.5),
            stagnated,
            kappa_per_col: Vec::new(),
            faults_detected: 0,
            faults_recovered: 0,
            faults_unrecovered: 0,
            verdict,
        }
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut c = StepController::new(StepPolicy::Fixed, 8, 30);
        assert_eq!(c.step_for_cycle(0), 8);
        assert_eq!(
            c.observe(&health(8, CycleVerdict::Breakdown, false)),
            StepDecision::Hold
        );
        assert_eq!(c.step_for_cycle(1), 8);
        assert!(!c.can_shrink());
        assert!(!c.rescue_active());
    }

    #[test]
    fn auto_halves_on_breakdown_down_to_one_then_holds() {
        let mut c = StepController::new(StepPolicy::auto(), 8, 30);
        assert_eq!(
            c.observe(&health(8, CycleVerdict::Breakdown, false)),
            StepDecision::Shrink { from: 8, to: 4 }
        );
        assert_eq!(
            c.observe(&health(4, CycleVerdict::Breakdown, false)),
            StepDecision::Shrink { from: 4, to: 2 }
        );
        assert_eq!(
            c.observe(&health(2, CycleVerdict::Breakdown, false)),
            StepDecision::Shrink { from: 2, to: 1 }
        );
        assert!(!c.can_shrink());
        assert_eq!(
            c.observe(&health(1, CycleVerdict::Breakdown, false)),
            StepDecision::Hold
        );
        assert_eq!(c.shrinks(), 3);
        assert!(c.rescue_active());
    }

    #[test]
    fn auto_probes_back_up_after_consecutive_clean_cycles() {
        let mut c = StepController::new(StepPolicy::auto(), 8, 30);
        c.observe(&health(8, CycleVerdict::Breakdown, false));
        assert_eq!(c.step_for_cycle(1), 4);
        // One clean cycle is not enough (grow_after = 2).
        assert_eq!(
            c.observe(&health(4, CycleVerdict::Clean, false)),
            StepDecision::Hold
        );
        assert_eq!(
            c.observe(&health(4, CycleVerdict::Clean, false)),
            StepDecision::Grow { from: 4, to: 8 }
        );
        assert_eq!(c.step_for_cycle(3), 8);
        // At the requested step, clean cycles keep holding.
        assert_eq!(
            c.observe(&health(8, CycleVerdict::Clean, false)),
            StepDecision::Hold
        );
    }

    #[test]
    fn distress_resets_the_clean_streak_and_blocks_probing() {
        let mut c = StepController::new(StepPolicy::auto(), 8, 30);
        c.observe(&health(8, CycleVerdict::Breakdown, false));
        c.observe(&health(4, CycleVerdict::Clean, false));
        assert_eq!(
            c.observe(&health(4, CycleVerdict::Distressed, false)),
            StepDecision::Hold
        );
        // The streak restarted: one clean cycle must not grow yet.
        assert_eq!(
            c.observe(&health(4, CycleVerdict::Clean, false)),
            StepDecision::Hold
        );
        assert_eq!(
            c.observe(&health(4, CycleVerdict::Clean, false)),
            StepDecision::Grow { from: 4, to: 8 }
        );
    }

    #[test]
    fn stagnation_shrinks_even_without_breakdown() {
        let mut c = StepController::new(StepPolicy::auto(), 8, 30);
        assert_eq!(
            c.observe(&health(8, CycleVerdict::Distressed, true)),
            StepDecision::Shrink { from: 8, to: 4 }
        );
    }

    #[test]
    fn scheduled_policy_replays_and_clamps() {
        let c = StepController::new(
            StepPolicy::Scheduled {
                per_cycle: vec![8, 4, 4, 100, 0],
            },
            8,
            30,
        );
        assert_eq!(c.step_for_cycle(0), 8);
        assert_eq!(c.step_for_cycle(1), 4);
        assert_eq!(c.step_for_cycle(3), 30); // clamped to restart
        assert_eq!(c.step_for_cycle(4), 1); // clamped up to 1
        assert_eq!(c.step_for_cycle(9), 1); // last entry reused past the end
    }

    #[test]
    fn assessment_maps_signals_to_verdicts() {
        let auto = AutoStep::default();
        assert_eq!(
            assess_cycle(&auto, true, 5, 1.0, 0, false, 0),
            CycleVerdict::Breakdown
        );
        assert_eq!(
            assess_cycle(&auto, false, 0, 1.0, 0, false, 0),
            CycleVerdict::Breakdown
        );
        assert_eq!(
            assess_cycle(&auto, false, 5, 1.0, 1, false, 0),
            CycleVerdict::Distressed
        );
        assert_eq!(
            assess_cycle(&auto, false, 5, 1e9, 0, false, 0),
            CycleVerdict::Distressed
        );
        assert_eq!(
            assess_cycle(&auto, false, 5, f64::INFINITY, 0, false, 0),
            CycleVerdict::Distressed
        );
        assert_eq!(
            assess_cycle(&auto, false, 5, 1.0, 0, true, 0),
            CycleVerdict::Distressed
        );
        assert_eq!(
            assess_cycle(&auto, false, 5, 1e3, 0, false, 0),
            CycleVerdict::Clean
        );
        // An unrecovered fault is never a clean cycle: the controller must
        // not probe the step up off the back of a poisoned rollback.
        assert_eq!(
            assess_cycle(&auto, false, 5, 1e3, 0, false, 1),
            CycleVerdict::Distressed
        );
    }

    #[test]
    fn stagnation_detector_needs_a_full_window() {
        assert!(!residual_stagnated(&[0.5, 0.49], 4, 0.9));
        // 5 entries, window 4: 0.49 vs 0.9 * 0.5 — no real progress.
        assert!(residual_stagnated(&[0.5, 0.5, 0.5, 0.5, 0.49], 4, 0.9));
        assert!(!residual_stagnated(&[0.5, 0.4, 0.3, 0.2, 0.1], 4, 0.9));
        // Non-finite residuals count as stagnation.
        assert!(residual_stagnated(&[0.5, 0.5, 0.5, 0.5, f64::NAN], 4, 0.9));
    }

    #[test]
    fn block_r_diag_condition_reads_interleaved_columns() {
        // 2-wide block over 3 diagonal blocks: column 0 owns diagonal
        // entries 0, 2, 4 and column 1 owns 1, 3, 5.
        let mut r = Matrix::identity(6);
        r[(2, 2)] = 1e-3; // block 1, column 0
        r[(5, 5)] = 1e-6; // block 2, column 1
        let per_col = block_r_diag_condition(&r, 2, 3);
        assert_eq!(per_col, vec![1e3, 1e6]);
        // Width 1 is bitwise the scalar estimate.
        assert_eq!(
            block_r_diag_condition(&r, 1, 6),
            vec![r_diag_condition(&r, 6)]
        );
        // Zero blocks: no information, infinite estimate.
        assert_eq!(
            block_r_diag_condition(&r, 2, 0),
            vec![f64::INFINITY, f64::INFINITY]
        );
    }

    #[test]
    fn active_kappa_max_masks_deflated_columns() {
        // A deflated column's huge stale estimate must not drive rescues.
        assert_eq!(
            active_kappa_max(&[1e12, 2.0, 3.0], &[false, true, true]),
            3.0
        );
        assert_eq!(active_kappa_max(&[1e12, 2.0], &[true, true]), 1e12);
        // All columns finished this cycle: their own data still counts.
        assert_eq!(active_kappa_max(&[5.0, 7.0], &[false, false]), 7.0);
    }

    #[test]
    fn r_diag_condition_estimates_from_the_diagonal() {
        let mut r = Matrix::identity(4);
        r[(2, 2)] = 1e-6;
        assert_eq!(r_diag_condition(&r, 2), 1.0);
        assert_eq!(r_diag_condition(&r, 4), 1e6);
        r[(3, 3)] = 0.0;
        assert_eq!(r_diag_condition(&r, 4), f64::INFINITY);
        assert_eq!(r_diag_condition(&r, 0), f64::INFINITY);
    }
}
