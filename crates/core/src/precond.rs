//! Local (communication-free) preconditioners.
//!
//! The paper applies the preconditioner inside the matrix-powers kernel,
//! "with neighborhood communication and preconditioner in sequence", and in
//! Fig. 13 uses a local Gauss–Seidel preconditioner — block Jacobi across
//! ranks with (multicolor) Gauss–Seidel sweeps inside each rank's diagonal
//! block.  All preconditioners here therefore act on the *local* part of a
//! vector only and never communicate, exactly like their Trilinos/Ifpack2
//! counterparts in the paper's runs.

use sparse::{greedy_coloring, Coloring, Csr};

/// A right preconditioner `M⁻¹` applied to local vectors.
pub trait Preconditioner: Send + Sync {
    /// `out = M⁻¹·input` (both are local blocks of global vectors).
    fn apply(&self, input: &[f64], out: &mut [f64]);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The identity preconditioner (unpreconditioned GMRES).
#[derive(Debug, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, input: &[f64], out: &mut [f64]) {
        out.copy_from_slice(input);
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal scaling) preconditioner.
#[derive(Debug)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the local diagonal block (zero diagonal entries are treated
    /// as ones so the preconditioner never divides by zero).
    pub fn new(local: &Csr) -> Self {
        let inv_diag = local
            .diagonal()
            .iter()
            .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, input: &[f64], out: &mut [f64]) {
        assert_eq!(input.len(), self.inv_diag.len(), "Jacobi: length mismatch");
        for ((o, x), d) in out.iter_mut().zip(input).zip(&self.inv_diag) {
            *o = x * d;
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Block-Jacobi across ranks with (sequential) Gauss–Seidel sweeps inside the
/// local diagonal block.
#[derive(Debug)]
pub struct BlockJacobiGaussSeidel {
    /// Local diagonal block, restricted to locally owned columns.
    local: Csr,
    inv_diag: Vec<f64>,
    sweeps: usize,
}

impl BlockJacobiGaussSeidel {
    /// Build from the rank's local matrix (columns outside `0..local_rows`
    /// — i.e. ghost couplings — are ignored, which is exactly the block-
    /// Jacobi approximation).  `sweeps` forward Gauss–Seidel sweeps are
    /// applied per preconditioner application.
    pub fn new(local: &Csr, sweeps: usize) -> Self {
        assert!(sweeps >= 1, "need at least one sweep");
        let n = local.nrows();
        // Drop couplings to ghost columns.
        let mut triplets = Vec::new();
        for i in 0..n {
            let (cols, vals) = local.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if c < n {
                    triplets.push(sparse::Triplet {
                        row: i,
                        col: c,
                        val: v,
                    });
                }
            }
        }
        let local_block = Csr::from_triplets(n, n, &triplets);
        let inv_diag = local_block
            .diagonal()
            .iter()
            .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self {
            local: local_block,
            inv_diag,
            sweeps,
        }
    }
}

impl Preconditioner for BlockJacobiGaussSeidel {
    fn apply(&self, input: &[f64], out: &mut [f64]) {
        let n = self.local.nrows();
        assert_eq!(input.len(), n, "GS: length mismatch");
        // Solve M·out = input approximately with forward GS sweeps starting
        // from zero.
        for o in out.iter_mut() {
            *o = 0.0;
        }
        for _ in 0..self.sweeps {
            for i in 0..n {
                let (cols, vals) = self.local.row(i);
                let mut acc = input[i];
                for (&c, &v) in cols.iter().zip(vals) {
                    if c != i {
                        acc -= v * out[c];
                    }
                }
                out[i] = acc * self.inv_diag[i];
            }
        }
    }

    fn name(&self) -> &'static str {
        "block-jacobi gauss-seidel"
    }
}

/// Multicolor Gauss–Seidel: rows of the same color are updated together
/// (in parallel on a GPU; here the colors primarily reproduce the iteration
/// order and operation count of the Kokkos-Kernels smoother used in
/// Fig. 13).
#[derive(Debug)]
pub struct MulticolorGaussSeidel {
    local: Csr,
    coloring: Coloring,
    inv_diag: Vec<f64>,
    sweeps: usize,
}

impl MulticolorGaussSeidel {
    /// Build from the rank's local matrix; ghost couplings are dropped as in
    /// [`BlockJacobiGaussSeidel`].
    pub fn new(local: &Csr, sweeps: usize) -> Self {
        assert!(sweeps >= 1, "need at least one sweep");
        let n = local.nrows();
        let mut triplets = Vec::new();
        for i in 0..n {
            let (cols, vals) = local.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if c < n {
                    triplets.push(sparse::Triplet {
                        row: i,
                        col: c,
                        val: v,
                    });
                }
            }
        }
        let local_block = Csr::from_triplets(n, n, &triplets);
        let coloring = greedy_coloring(&local_block);
        let inv_diag = local_block
            .diagonal()
            .iter()
            .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self {
            local: local_block,
            coloring,
            inv_diag,
            sweeps,
        }
    }

    /// Number of colors the local block required.
    pub fn num_colors(&self) -> usize {
        self.coloring.num_colors()
    }
}

impl Preconditioner for MulticolorGaussSeidel {
    fn apply(&self, input: &[f64], out: &mut [f64]) {
        let n = self.local.nrows();
        assert_eq!(input.len(), n, "multicolor GS: length mismatch");
        for o in out.iter_mut() {
            *o = 0.0;
        }
        for _ in 0..self.sweeps {
            for color_rows in &self.coloring.rows_by_color {
                // All rows of one color are independent; update them from the
                // current state of `out`.
                for &i in color_rows {
                    let (cols, vals) = self.local.row(i);
                    let mut acc = input[i];
                    for (&c, &v) in cols.iter().zip(vals) {
                        if c != i {
                            acc -= v * out[c];
                        }
                    }
                    out[i] = acc * self.inv_diag[i];
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "multicolor gauss-seidel"
    }
}

/// Polynomial (damped Neumann series) preconditioner
/// `M⁻¹ ≈ ω·Σ_{k<degree} (I − ω·D⁻¹·A)^k·D⁻¹` — a communication-free
/// preconditioner sometimes paired with s-step methods; provided as an
/// extension beyond the paper's evaluation.
#[derive(Debug)]
pub struct Polynomial {
    local: Csr,
    inv_diag: Vec<f64>,
    degree: usize,
    omega: f64,
}

impl Polynomial {
    /// Build with the given polynomial degree and damping factor `omega`.
    pub fn new(local: &Csr, degree: usize, omega: f64) -> Self {
        assert!(degree >= 1, "polynomial degree must be at least 1");
        let n = local.nrows();
        let mut triplets = Vec::new();
        for i in 0..n {
            let (cols, vals) = local.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if c < n {
                    triplets.push(sparse::Triplet {
                        row: i,
                        col: c,
                        val: v,
                    });
                }
            }
        }
        let local_block = Csr::from_triplets(n, n, &triplets);
        let inv_diag = local_block
            .diagonal()
            .iter()
            .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self {
            local: local_block,
            inv_diag,
            degree,
            omega,
        }
    }
}

impl Preconditioner for Polynomial {
    fn apply(&self, input: &[f64], out: &mut [f64]) {
        let n = self.local.nrows();
        assert_eq!(input.len(), n, "polynomial: length mismatch");
        // out = omega * sum_k (I - omega D^-1 A)^k D^-1 input, computed with
        // the iteration x_{k+1} = x_k + omega D^-1 (input - A x_k).
        for o in out.iter_mut() {
            *o = 0.0;
        }
        let mut ax = vec![0.0; n];
        for _ in 0..self.degree {
            self.local.spmv(out, &mut ax);
            for i in 0..n {
                out[i] += self.omega * self.inv_diag[i] * (input[i] - ax[i]);
            }
        }
    }

    fn name(&self) -> &'static str {
        "polynomial (damped Neumann)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::laplace2d_5pt;

    fn residual_norm(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.spmv_alloc(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn identity_copies_input() {
        let p = Identity;
        let x = vec![1.0, -2.0, 3.0];
        let mut y = vec![0.0; 3];
        p.apply(&x, &mut y);
        assert_eq!(x, y);
        assert_eq!(p.name(), "identity");
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = laplace2d_5pt(4, 4);
        let p = Jacobi::new(&a);
        let x = vec![4.0; 16];
        let mut y = vec![0.0; 16];
        p.apply(&x, &mut y);
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-15));
    }

    #[test]
    fn gauss_seidel_reduces_residual_better_than_jacobi() {
        let a = laplace2d_5pt(10, 10);
        let b = vec![1.0; 100];
        let gs = BlockJacobiGaussSeidel::new(&a, 2);
        let jac = Jacobi::new(&a);
        let mut x_gs = vec![0.0; 100];
        let mut x_j = vec![0.0; 100];
        gs.apply(&b, &mut x_gs);
        jac.apply(&b, &mut x_j);
        assert!(residual_norm(&a, &x_gs, &b) < residual_norm(&a, &x_j, &b));
    }

    #[test]
    fn more_gs_sweeps_reduce_residual_further() {
        let a = laplace2d_5pt(8, 8);
        let b: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 * 0.1).collect();
        let mut prev = f64::INFINITY;
        for sweeps in [1, 2, 4, 8] {
            let gs = BlockJacobiGaussSeidel::new(&a, sweeps);
            let mut x = vec![0.0; 64];
            gs.apply(&b, &mut x);
            let r = residual_norm(&a, &x, &b);
            assert!(r < prev, "sweeps {sweeps}: {r} >= {prev}");
            prev = r;
        }
    }

    #[test]
    fn multicolor_gs_is_gauss_seidel_in_color_order() {
        // Multicolor Gauss–Seidel is exactly Gauss–Seidel with the rows
        // visited color by color; verify against a straightforward reference
        // sweep in that ordering.
        let a = laplace2d_5pt(12, 12);
        let b: Vec<f64> = (0..144)
            .map(|i| ((i * 5) % 11) as f64 * 0.2 - 1.0)
            .collect();
        let mc = MulticolorGaussSeidel::new(&a, 2);
        assert_eq!(mc.num_colors(), 2);
        let mut x_mc = vec![0.0; 144];
        mc.apply(&b, &mut x_mc);
        // Reference: same sweeps, same visiting order, naive implementation.
        let coloring = sparse::greedy_coloring(&a);
        let diag = a.diagonal();
        let mut x_ref = vec![0.0; 144];
        for _ in 0..2 {
            for rows in &coloring.rows_by_color {
                for &i in rows {
                    let (cols, vals) = a.row(i);
                    let mut acc = b[i];
                    for (&c, &v) in cols.iter().zip(vals) {
                        if c != i {
                            acc -= v * x_ref[c];
                        }
                    }
                    x_ref[i] = acc / diag[i];
                }
            }
        }
        for (p, q) in x_mc.iter().zip(&x_ref) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    fn gauss_seidel_error_contracts_in_energy_norm() {
        // Gauss–Seidel is convergent in the A-norm for SPD matrices: the
        // error after more sweeps must be smaller in the energy norm.
        let a = laplace2d_5pt(10, 10);
        let x_exact: Vec<f64> = (0..100).map(|i| ((i * 3) % 7) as f64 * 0.5 - 1.0).collect();
        let b = a.spmv_alloc(&x_exact);
        let energy = |x: &[f64]| {
            let e: Vec<f64> = x.iter().zip(&x_exact).map(|(p, q)| p - q).collect();
            let ae = a.spmv_alloc(&e);
            e.iter().zip(&ae).map(|(p, q)| p * q).sum::<f64>().sqrt()
        };
        let mut prev = f64::INFINITY;
        for sweeps in [1usize, 2, 4, 8] {
            let mc = MulticolorGaussSeidel::new(&a, sweeps);
            let mut x = vec![0.0; 100];
            mc.apply(&b, &mut x);
            let e = energy(&x);
            assert!(e < prev, "sweeps {sweeps}: energy error {e} >= {prev}");
            prev = e;
        }
    }

    #[test]
    fn polynomial_preconditioner_improves_with_degree() {
        let a = laplace2d_5pt(8, 8);
        let b = vec![1.0; 64];
        let mut prev = f64::INFINITY;
        for degree in [1, 3, 6] {
            let p = Polynomial::new(&a, degree, 0.8);
            let mut x = vec![0.0; 64];
            p.apply(&b, &mut x);
            let r = residual_norm(&a, &x, &b);
            assert!(r < prev, "degree {degree}");
            prev = r;
        }
    }

    #[test]
    fn ghost_couplings_are_ignored() {
        // A local block whose rows reference ghost columns (index >= nrows):
        // the preconditioners must drop them rather than panic.
        let local = Csr::from_triplets(
            2,
            4,
            &[
                sparse::Triplet {
                    row: 0,
                    col: 0,
                    val: 2.0,
                },
                sparse::Triplet {
                    row: 0,
                    col: 3,
                    val: -1.0,
                }, // ghost
                sparse::Triplet {
                    row: 1,
                    col: 1,
                    val: 2.0,
                },
                sparse::Triplet {
                    row: 1,
                    col: 2,
                    val: -1.0,
                }, // ghost
            ],
        );
        let gs = BlockJacobiGaussSeidel::new(&local, 1);
        let mut out = vec![0.0; 2];
        gs.apply(&[2.0, 4.0], &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }
}
