//! Block (multi-RHS) restarted s-step GMRES: one matrix-powers pass, one
//! orthogonalization, and one all-reduce serve `k` right-hand sides at
//! once.
//!
//! The paper's premise is that synchronization dominates s-step GMRES at
//! scale, so every reduce must do more work.  [`SStepGmres::solve_block`]
//! pushes that one axis further: the Krylov basis is built for a **block**
//! `B` of `k` columns (the structure of `bgmres`/`bfgmres` in phist),
//! interleaved so block step `t` occupies basis columns
//! `t·k .. (t+1)·k`.  Each MPK panel then carries `k·s` columns through
//! the *unchanged* [`blockortho`] schemes and fused
//! `proj_and_gram`/`update_and_gram` kernels — the per-cycle reduce
//! **count** is independent of `k` (panel cadence is preserved by
//! [`OrthoKind::for_block_width`]) while each reduce carries the k-scaled
//! payload.  Reduces are paid per *batch*, not per RHS.
//!
//! **Single-RHS equivalence.**  At `k = 1` every operation below is the
//! identical kernel call, in the identical order, with the identical
//! operands as [`SStepGmres::solve`] — the solve is **bitwise identical**
//! including `relres_history`, `step_history`, and the full
//! [`CommStatsSnapshot`] (pinned by `tests/block_equivalence.rs`).
//!
//! **Deflation.**  Convergence is tracked per column ("On the backward
//! stability of s-step GMRES", arXiv 2409.03079, motivates the per-column
//! residual bookkeeping).  A column whose true residual meets its target
//! leaves the active block at the restart boundary; subsequent cycles run
//! with the narrower block (smaller panels, smaller reduces), and each
//! restart cycle is a pure function of the surviving columns' residuals —
//! so deflating a column leaves the survivors' iterates bitwise unchanged
//! versus a solve that never carried the deflated column from that cycle
//! on (pinned by `tests/deflation_properties.rs`).
//!
//! Scope notes for wide blocks (`k > 1`): adaptive Ritz harvesting
//! operates only once the active block has narrowed to one column (the
//! band Hessenberg of a wide block is not in the Hessenberg form the
//! double-shift QR eigensolver consumes); `Newton`/`Scheduled` shifts
//! apply per block step for every width.  Detection guards screen Gram
//! reduces and checksum halos for any width, but the agreement probe and
//! the full poison/rollback ladder stay single-RHS (`k = 1` runs the
//! scalar guard path verbatim).

use crate::basis::{BasisStrategy, KrylovBasis};
use crate::control::{self, CycleHealth, StepController};
use crate::hessenberg::HessenbergRecovery;
use crate::precond::{Identity, Preconditioner};
use crate::shifts;
use crate::solver::{
    apply_rescue_basis, build_health, compute_residual, cycle_fault_delta, global_norm, SStepGmres,
};
use crate::timing::{CycleClock, CycleTiming, Phase};
use blockortho::make_orthogonalizer_with_sketch;
use dense::Matrix;
use distsim::{
    fault, CommStatsSnapshot, Communicator, DistCsr, DistMultiVector, GuardContext, GuardEvent,
    SerialComm,
};
use sparse::{block_row_partition, Csr, RowPartition, RowSource};
use std::sync::Arc;

/// Per-solve options of the block path that have no [`crate::GmresConfig`]
/// equivalent.
#[derive(Debug, Clone, Default)]
pub struct BlockOptions {
    /// Absolute per-column convergence targets on `‖b_j − A·x_j‖₂`.
    ///
    /// `None` (the default) uses the relative criterion of the scalar
    /// solver per column: `tol · ‖r₀_j‖`.  Explicit targets make a
    /// continued solve comparable to a warm-started one — the deflation
    /// property tests use them to align thresholds across runs.
    pub abs_targets: Option<Vec<f64>>,
}

/// Outcome of a block solve: the scalar [`crate::SolveResult`] observables,
/// with the per-column quantities widened to one entry per right-hand side.
#[derive(Debug, Clone)]
pub struct BlockSolveResult {
    /// Whether **every** column's residual dropped below its target.
    pub converged: bool,
    /// Per-column convergence flags.
    pub col_converged: Vec<bool>,
    /// Total Krylov basis columns generated (the block analogue of the
    /// paper's "# iters": `k_active · s` per MPK panel).
    pub iterations: usize,
    /// Number of restart cycles performed.
    pub restarts: usize,
    /// Final true relative residual `‖b_j − A·x_j‖ / ‖r₀_j‖` per column
    /// (`0.0` for an identically zero right-hand side).
    pub final_relres: Vec<f64>,
    /// Breakdown diagnostic, if an orthogonalization breakdown occurred.
    pub breakdown: Option<String>,
    /// Number of sparse matrix–vector products performed.
    pub spmv_count: usize,
    /// Number of preconditioner applications performed.
    pub precond_count: usize,
    /// Communication performed by the whole solve (this rank).
    pub comm_total: CommStatsSnapshot,
    /// Communication attributable to block orthogonalization only.
    pub comm_ortho: CommStatsSnapshot,
    /// True relative residual per column after each restart cycle the
    /// column was **active** in (a deflated column's history simply stops
    /// growing).  `relres_history[j]` of a `k = 1` solve is bitwise the
    /// scalar solver's `relres_history`.
    pub relres_history: Vec<Vec<f64>>,
    /// Number of completed restart cycles after which each column left the
    /// active block (`Some(0)` = converged before the first cycle; `None` =
    /// still active when the solve ended).
    pub deflated_at: Vec<Option<usize>>,
    /// Original column indices in the order they deflated.  Within one
    /// cycle, columns deflate in ascending column order — the order is
    /// deterministic and bitwise-reproducible across thread and rank
    /// counts because the residual norms it is derived from are.
    pub deflation_order: Vec<usize>,
    /// Newton shifts in effect for each started cycle (empty = monomial).
    pub shift_history: Vec<Vec<f64>>,
    /// The most recent successful Ritz-shift harvest (harvesting runs once
    /// the active block is one column wide; see the module docs).
    pub last_harvest: Option<Vec<f64>>,
    /// Distinct shifted-CholQR fallback episodes across all cycles.
    pub ortho_fallbacks: usize,
    /// Effective step size of each started cycle.
    pub step_history: Vec<usize>,
    /// Per-cycle health reports; `kappa_per_col` holds the per-column
    /// condition estimates and `kappa_est` aggregates them over the
    /// columns that survived the cycle's deflation check.
    pub health_history: Vec<CycleHealth>,
    /// Number of step-shrink rescues [`StepPolicy::Auto`] took.
    pub rescues: usize,
    /// Per-cycle wall-time breakdown (one entry per started cycle).
    pub cycle_timings: Vec<CycleTiming>,
    /// Every fault the detection guards caught, in detection order.
    pub fault_events: Vec<GuardEvent>,
    /// Faults detected by the guards across the whole solve.
    pub faults_detected: usize,
    /// Of those, faults recovered in place or by cycle rollback.
    pub faults_recovered: usize,
    /// Faults that defeated every rung of the recovery ladder.
    pub faults_unrecovered: usize,
}

impl SStepGmres {
    /// Solve `A·X = B` for a block of right-hand sides on the communicator
    /// `a` lives on.
    ///
    /// `b_local` and `x_local` are the local row blocks of `B` and `X`
    /// (`nloc × k`; `x_local` is the initial guess and is overwritten).
    /// One MPK pass, one orthogonalization panel, and one all-reduce serve
    /// all `k` columns; converged columns deflate out at restart
    /// boundaries.  At `k = 1` this is bitwise [`SStepGmres::solve`].
    pub fn solve_block(
        &self,
        a: &DistCsr,
        precond: &dyn Preconditioner,
        b_local: &Matrix,
        x_local: &mut Matrix,
    ) -> BlockSolveResult {
        self.solve_block_with(a, precond, b_local, x_local, &BlockOptions::default())
    }

    /// [`solve_block`](Self::solve_block) with explicit [`BlockOptions`].
    pub fn solve_block_with(
        &self,
        a: &DistCsr,
        precond: &dyn Preconditioner,
        b_local: &Matrix,
        x_local: &mut Matrix,
        opts: &BlockOptions,
    ) -> BlockSolveResult {
        let config = self.config();
        let mb = config.restart;
        let s_req = config.step_size;
        let nloc = a.local_matrix().nrows();
        let kb = b_local.ncols();
        assert!(kb >= 1, "block solve needs at least one right-hand side");
        assert_eq!(b_local.nrows(), nloc, "rhs row count mismatch");
        assert_eq!(x_local.nrows(), nloc, "solution row count mismatch");
        assert_eq!(x_local.ncols(), kb, "solution column count mismatch");
        if let Some(t) = &opts.abs_targets {
            assert_eq!(t.len(), kb, "one absolute target per column");
        }
        let comm = a.comm().clone();
        let stats_start = comm.stats().snapshot();
        let mut comm_ortho = CommStatsSnapshot::default();
        let guard: Option<Arc<GuardContext>> = if config.guards.any_enabled() {
            Some(GuardContext::new(config.guards))
        } else {
            None
        };

        let mut iterations = 0usize;
        let mut restarts = 0usize;
        let mut spmv_count = 0usize;
        let mut precond_count = 0usize;
        let mut breakdown: Option<String> = None;
        let mut current_basis = config.basis.initial_basis();
        let mut cycles_started = 0usize;
        let mut shift_history: Vec<Vec<f64>> = Vec::new();
        let mut relres_history: Vec<Vec<f64>> = vec![Vec::new(); kb];
        // Aggregate (max over active columns) relative residual per cycle:
        // the block-level signal stagnation detection runs on.  At k = 1
        // it is exactly the scalar relres_history.
        let mut agg_relres_history: Vec<f64> = Vec::new();
        let mut last_harvest: Option<Vec<f64>> = None;
        let mut ortho_fallbacks = 0usize;
        let mut controller = StepController::new(config.step_policy.clone(), s_req, mb);
        let mut step_history: Vec<usize> = Vec::new();
        let mut health_history: Vec<CycleHealth> = Vec::new();
        let mut cycle_timings: Vec<CycleTiming> = Vec::new();

        // Per-column bookkeeping, indexed by *original* column.
        let mut deflated_at: Vec<Option<usize>> = vec![None; kb];
        let mut deflation_order: Vec<usize> = Vec::new();
        let mut col_converged = vec![false; kb];
        // Columns still in the active block, in ascending original order.
        let mut active: Vec<usize> = (0..kb).collect();

        // Initial residual block and per-column norms (one k-word reduce —
        // the k = 1 case is the scalar solver's single-word norm reduce).
        fault::set_phase("residual");
        let mut residuals: Vec<Vec<f64>> = (0..kb)
            .map(|j| {
                compute_residual(
                    a,
                    x_local.col(j),
                    b_local.col(j),
                    &mut spmv_count,
                    guard.as_deref(),
                )
            })
            .collect();
        let r0_norms = block_norms(&residuals, &active, comm.as_ref(), guard.as_deref());
        let mut gammas: Vec<f64> = r0_norms.clone();
        if r0_norms.iter().all(|&v| v == 0.0) {
            fault::set_phase("");
            return BlockSolveResult {
                converged: true,
                col_converged: vec![true; kb],
                iterations: 0,
                restarts: 0,
                final_relres: vec![0.0; kb],
                breakdown: None,
                spmv_count,
                precond_count,
                comm_total: comm.stats().snapshot().since(&stats_start),
                comm_ortho,
                relres_history,
                deflated_at,
                deflation_order,
                shift_history: Vec::new(),
                last_harvest: None,
                ortho_fallbacks: 0,
                step_history: Vec::new(),
                health_history: Vec::new(),
                rescues: 0,
                cycle_timings: Vec::new(),
                fault_events: Vec::new(),
                faults_detected: 0,
                faults_recovered: 0,
                faults_unrecovered: 0,
            };
        }
        let targets: Vec<f64> = match &opts.abs_targets {
            Some(t) => t.clone(),
            None => r0_norms.iter().map(|&r0| config.tol * r0).collect(),
        };
        if let Some(ctx) = &guard {
            ctx.stage_agreement(aggregate_norm(&gammas, &active));
        }
        let mut consecutive_breakdowns = 0usize;
        let mut no_progress_cycles = 0usize;

        // Reusable buffers, sized for the current active width (reallocated
        // only when deflation narrows the block).
        let mut ka = active.len();
        let mut basis = DistMultiVector::zeros(
            comm.clone(),
            a.global_rows(),
            nloc,
            a.row_offset(),
            ka * (mb + 1),
        );
        basis.set_guard(guard.clone());
        let mut r_factor = Matrix::zeros(ka * (mb + 1), ka * (mb + 1));
        let mut z = vec![0.0; nloc]; // preconditioned vector
        let mut w = vec![0.0; nloc]; // A·z

        'outer: while restarts < config.max_restarts && iterations < config.max_iters {
            // Columns already at target leave the block before the cycle
            // starts (the scalar loop-top convergence check).
            deflate_converged(
                &mut active,
                &gammas,
                &targets,
                restarts,
                &mut deflated_at,
                &mut deflation_order,
                &mut col_converged,
            );
            if active.is_empty() {
                break;
            }
            if active.len() != ka {
                ka = active.len();
                basis = DistMultiVector::zeros(
                    comm.clone(),
                    a.global_rows(),
                    nloc,
                    a.row_offset(),
                    ka * (mb + 1),
                );
                basis.set_guard(guard.clone());
                r_factor = Matrix::zeros(ka * (mb + 1), ka * (mb + 1));
            }
            let total = ka * (mb + 1);
            if let BasisStrategy::Scheduled { per_cycle } = &config.basis {
                current_basis = BasisStrategy::scheduled_basis(per_cycle, cycles_started);
            }
            let s = controller.step_for_cycle(cycles_started);
            shift_history.push(match &current_basis {
                KrylovBasis::Monomial => Vec::new(),
                KrylovBasis::Newton { shifts } => shifts.clone(),
            });
            step_history.push(s);
            cycles_started += 1;
            let fault_base = guard.as_ref().map(|c| c.counts()).unwrap_or_default();
            let mut clock = CycleClock::start(cycles_started - 1, s);
            let _cycle_span = trace::span2(
                "solver",
                "cycle",
                "cycle",
                (cycles_started - 1) as u64,
                "step",
                s as u64,
            );
            // Start a new cycle: columns 0..ka = the scaled residual block.
            for entry in r_factor.data_mut().iter_mut() {
                *entry = 0.0;
            }
            for (p, &j) in active.iter().enumerate() {
                basis.local_mut().col_mut(p).copy_from_slice(&residuals[j]);
                basis.scale_col(p, 1.0 / gammas[j]);
            }
            let mut ortho = make_orthogonalizer_with_sketch(
                config.ortho.for_block_width(ka),
                total,
                config.sketch,
            );
            let mut hess = HessenbergRecovery::with_block_width(total, ka);
            // Submit the residual block as the first panel so every scheme
            // sees its panels starting at column 0.
            let before = comm.stats().snapshot();
            clock.lap(Phase::Other);
            fault::set_phase("ortho");
            let first = {
                let _sp = trace::span2("solver", "ortho", "start", 0, "cols", ka as u64);
                ortho.orthogonalize_panel(&mut basis, 0..ka, &mut r_factor)
            };
            comm_ortho = comm_ortho.merge(&comm.stats().snapshot().since(&before));
            clock.lap(Phase::Ortho);
            let mut cycle_breakdown: Option<String> = None;
            if let Err(e) = first {
                let msg = format!("initial block: {e}");
                breakdown = Some(msg.clone());
                let faults = cycle_fault_delta(&guard, &fault_base);
                if let Some(ctx) = &guard {
                    ctx.resolve_poisoned(faults.poisoned, false);
                }
                health_history.push(build_health(
                    &config.step_policy,
                    cycles_started - 1,
                    s,
                    0,
                    f64::INFINITY,
                    vec![f64::INFINITY; ka],
                    ortho.fallback_count(),
                    ortho.fallback_events().to_vec(),
                    Some(msg),
                    None,
                    &agg_relres_history,
                    &faults,
                ));
                cycle_timings.push(clock.finish());
                break 'outer;
            }
            let mut cols = ka; // basis columns filled and submitted
            let mut cycle_converged_est = false;

            while cols < total && iterations < config.max_iters {
                let sb = s.min((total - cols) / ka); // block steps this panel
                let width = sb * ka;
                // --- Matrix-powers kernel: ka·sb new columns. ---
                {
                    let _sp =
                        trace::span2("solver", "mpk", "start", cols as u64, "k", width as u64);
                    fault::set_phase("mpk");
                    for t in 0..sb {
                        for q in 0..ka {
                            let input = cols - ka + t * ka + q;
                            if t == 0 {
                                // The panel-start block had already been
                                // handed to the orthogonalizer.
                                hess.mark_submitted_input(input);
                            }
                            precond.apply(basis.local().col(input), &mut z);
                            precond_count += 1;
                            a.spmv_guarded(&z, &mut w, guard.as_deref());
                            spmv_count += 1;
                            // Shifts apply per block step, not per column.
                            let theta = current_basis.shift(input / ka);
                            if theta != 0.0 {
                                let u = basis.local().col(input).to_vec();
                                for (wi, ui) in w.iter_mut().zip(&u) {
                                    *wi -= theta * ui;
                                }
                            }
                            basis.local_mut().col_mut(input + ka).copy_from_slice(&w);
                        }
                    }
                }
                iterations += width;
                clock.lap(Phase::Mpk);
                // --- Block orthogonalization of the new panel. ---
                let before = comm.stats().snapshot();
                fault::set_phase("ortho");
                let status = {
                    let _sp = trace::span2(
                        "solver",
                        "ortho",
                        "start",
                        cols as u64,
                        "cols",
                        width as u64,
                    );
                    ortho.orthogonalize_panel(&mut basis, cols..cols + width, &mut r_factor)
                };
                comm_ortho = comm_ortho.merge(&comm.stats().snapshot().since(&before));
                clock.lap(Phase::Ortho);
                match status {
                    Ok(()) => {
                        consecutive_breakdowns = 0;
                    }
                    Err(e) => {
                        let msg = format!("panel {}..{}: {e}", cols, cols + width);
                        breakdown = Some(msg.clone());
                        cycle_breakdown = Some(msg);
                        consecutive_breakdowns += 1;
                        break;
                    }
                }
                cols += width;
                // --- Convergence estimate on the finalized prefix. ---
                let finalized = ortho.finalized_cols().unwrap_or(cols).min(cols);
                if finalized >= 2 * ka {
                    let hess_span = trace::span1("solver", "hess", "cols", finalized as u64);
                    hess.recover_upto(
                        finalized - ka,
                        &r_factor,
                        ortho.stored_basis_coeffs(),
                        &current_basis,
                    );
                    let done = if ka == 1 {
                        // Scalar convention (β·e₁ right-hand side), bitwise
                        // the single-RHS solver.
                        let (_, res_est) = hess.least_squares(finalized - 1, gammas[active[0]]);
                        res_est <= targets[active[0]]
                    } else {
                        let rhs = block_ls_rhs(&r_factor, &active, &gammas, finalized - ka, ka);
                        let (_, res_est) = hess.block_least_squares(finalized - ka, &rhs);
                        active
                            .iter()
                            .enumerate()
                            .all(|(p, &j)| res_est[p] <= targets[j])
                    };
                    drop(hess_span);
                    clock.lap(Phase::Hess);
                    if done {
                        cycle_converged_est = true;
                        break;
                    }
                } else {
                    clock.lap(Phase::Hess);
                }
            }

            // --- Complete delayed orthogonalization and the projected solve. ---
            let before = comm.stats().snapshot();
            fault::set_phase("ortho");
            let finish_status = {
                let _sp = trace::span("solver", "ortho_finish");
                ortho.finish(&mut basis, &mut r_factor)
            };
            if let Err(e) = finish_status {
                let msg = format!("finish: {e}");
                if breakdown.is_none() {
                    breakdown = Some(msg.clone());
                }
                if cycle_breakdown.is_none() {
                    cycle_breakdown = Some(msg);
                }
                consecutive_breakdowns += 1;
            }
            comm_ortho = comm_ortho.merge(&comm.stats().snapshot().since(&before));
            clock.lap(Phase::Ortho);
            let cycle_fallbacks = ortho.fallback_count();
            let cycle_events = ortho.fallback_events().to_vec();
            ortho_fallbacks += cycle_fallbacks;
            let finalized = ortho.finalized_cols().unwrap_or(cols).min(cols);
            let mut k_use = finalized.saturating_sub(ka);
            if let Some(ctx) = &guard {
                if ctx.take_alarm() {
                    let msg =
                        "cross-rank divergence: agreement probe on the replicated residual norm"
                            .to_string();
                    if breakdown.is_none() {
                        breakdown = Some(msg.clone());
                    }
                    if cycle_breakdown.is_none() {
                        cycle_breakdown = Some(msg);
                    }
                    fault::set_phase("residual");
                    let fresh = block_norms(&residuals, &active, comm.as_ref(), guard.as_deref());
                    for (p, &j) in active.iter().enumerate() {
                        gammas[j] = fresh[p];
                    }
                    ctx.stage_agreement(aggregate_norm(&gammas, &active));
                    k_use = 0;
                }
            }
            let blocks_done = (finalized / ka).min(s + 1);
            if k_use == 0 {
                no_progress_cycles += 1;
                let faults = cycle_fault_delta(&guard, &fault_base);
                let per_col = control::block_r_diag_condition(&r_factor, ka, blocks_done);
                let all_active = vec![true; ka];
                let health = build_health(
                    &config.step_policy,
                    cycles_started - 1,
                    s,
                    0,
                    control::active_kappa_max(&per_col, &all_active),
                    per_col,
                    cycle_fallbacks,
                    cycle_events,
                    cycle_breakdown.clone(),
                    None,
                    &agg_relres_history,
                    &faults,
                );
                let decision = controller.observe(&health);
                health_history.push(health);
                if decision.shrunk() {
                    trace::instant2(
                        "solver",
                        "step_shrink",
                        "cycle",
                        (cycles_started - 1) as u64,
                        "step",
                        s as u64,
                    );
                }
                cycle_timings.push(clock.finish());
                let giving_up =
                    !decision.shrunk() && (no_progress_cycles >= 2 || consecutive_breakdowns >= 3);
                if let Some(ctx) = &guard {
                    ctx.resolve_poisoned(faults.poisoned, !giving_up);
                }
                if giving_up {
                    break 'outer;
                }
                if matches!(config.basis, BasisStrategy::Adaptive(_)) {
                    current_basis = KrylovBasis::Monomial;
                }
                apply_rescue_basis(
                    &config.basis,
                    &controller,
                    &mut current_basis,
                    &last_harvest,
                );
                restarts += 1;
                continue;
            }
            no_progress_cycles = 0;
            let hess_span = trace::span1("solver", "hess", "cols", k_use as u64);
            hess.recover_upto(
                k_use,
                &r_factor,
                ortho.stored_basis_coeffs(),
                &current_basis,
            );
            // Ritz-shift harvesting consumes a square Hessenberg block, so
            // it runs once the active block is one column wide (where it is
            // bitwise the scalar path); wide blocks skip it.
            let (cap, rtol, min_h) = match &config.basis {
                BasisStrategy::Adaptive(a) => (
                    if a.max_shifts == 0 {
                        s_req
                    } else {
                        a.max_shifts
                    },
                    a.dedup_rtol,
                    a.min_hessenberg,
                ),
                _ => (s_req, shifts::DEFAULT_DEDUP_RTOL, 2),
            };
            let harvest = if ka == 1 && k_use >= min_h.max(1) {
                shifts::harvest_newton_shifts(&hess, k_use, cap, rtol)
            } else {
                None
            };
            if let Some(h) = &harvest {
                last_harvest = Some(h.clone());
            }
            if matches!(config.basis, BasisStrategy::Adaptive(_)) {
                current_basis = match harvest {
                    Some(shifts) => KrylovBasis::Newton { shifts },
                    None => KrylovBasis::Monomial,
                };
            }
            let y = if ka == 1 {
                let (y, _) = hess.least_squares(k_use, gammas[active[0]]);
                Matrix::from_col_major(k_use, 1, y)
            } else {
                let rhs = block_ls_rhs(&r_factor, &active, &gammas, k_use, ka);
                let (y, _) = hess.block_least_squares(k_use, &rhs);
                y
            };
            drop(hess_span);
            clock.lap(Phase::Hess);
            // Solution update: x_j ← x_j + M⁻¹·(Q_{0..k_use}·y_j).
            if guard.is_none() || y.data().iter().all(|v| v.is_finite()) {
                fault::set_phase("update");
                let _sp = trace::span1("solver", "update", "cols", k_use as u64);
                let mut qy = vec![0.0; nloc];
                for (p, &j) in active.iter().enumerate() {
                    for v in qy.iter_mut() {
                        *v = 0.0;
                    }
                    dense::gemv_plus(&basis.local_cols(0..k_use), y.col(p), &mut qy);
                    precond.apply(&qy, &mut z);
                    precond_count += 1;
                    for (xi, zi) in x_local.col_mut(j).iter_mut().zip(&z) {
                        *xi += zi;
                    }
                }
            } else {
                let msg =
                    "projected solution non-finite (poisoned cycle); update skipped".to_string();
                if breakdown.is_none() {
                    breakdown = Some(msg.clone());
                }
                if cycle_breakdown.is_none() {
                    cycle_breakdown = Some(msg);
                }
                consecutive_breakdowns += 1;
            }
            restarts += 1;
            clock.lap(Phase::Update);
            // True residuals for the next cycle / convergence verification.
            {
                let _sp = trace::span("solver", "residual");
                fault::set_phase("residual");
                for &j in &active {
                    residuals[j] = compute_residual(
                        a,
                        x_local.col(j),
                        b_local.col(j),
                        &mut spmv_count,
                        guard.as_deref(),
                    );
                }
                let fresh = block_norms(&residuals, &active, comm.as_ref(), guard.as_deref());
                for (p, &j) in active.iter().enumerate() {
                    gammas[j] = fresh[p];
                }
                if let Some(ctx) = &guard {
                    ctx.stage_agreement(aggregate_norm(&gammas, &active));
                }
            }
            for &j in &active {
                relres_history[j].push(gammas[j] / r0_norms[j]);
            }
            let agg = aggregate_relres(&gammas, &r0_norms, &active);
            agg_relres_history.push(agg);
            clock.lap(Phase::Residual);
            // Cycle health.  The deflation check runs *first*: a column
            // that just met its target is excluded from the κ aggregate
            // (when survivors remain), so the Auto policy never rescues on
            // a deflated column's stale conditioning.
            let survivors: Vec<bool> = active.iter().map(|&j| gammas[j] > targets[j]).collect();
            let faults = cycle_fault_delta(&guard, &fault_base);
            let per_col = control::block_r_diag_condition(&r_factor, ka, blocks_done);
            let health = build_health(
                &config.step_policy,
                cycles_started - 1,
                s,
                k_use,
                control::active_kappa_max(&per_col, &survivors),
                per_col,
                cycle_fallbacks,
                cycle_events,
                cycle_breakdown.clone(),
                Some(agg),
                &agg_relres_history,
                &faults,
            );
            let decision = controller.observe(&health);
            health_history.push(health);
            if let Some(ctx) = &guard {
                let all_finite = active.iter().all(|&j| gammas[j].is_finite());
                ctx.resolve_poisoned(faults.poisoned, all_finite);
            }
            if decision.shrunk() {
                trace::instant2(
                    "solver",
                    "step_shrink",
                    "cycle",
                    (cycles_started - 1) as u64,
                    "step",
                    s as u64,
                );
            }
            cycle_timings.push(clock.finish());
            // Deflate at the restart boundary (the scalar bottom-of-cycle
            // convergence break).
            let width_before = active.len();
            deflate_converged(
                &mut active,
                &gammas,
                &targets,
                restarts,
                &mut deflated_at,
                &mut deflation_order,
                &mut col_converged,
            );
            if active.is_empty() {
                break;
            }
            if consecutive_breakdowns >= 3 {
                break;
            }
            apply_rescue_basis(
                &config.basis,
                &controller,
                &mut current_basis,
                &last_harvest,
            );
            let _ = cycle_converged_est; // estimate is re-verified by the true residuals above
            if active.len() != width_before {
                ka = active.len();
                basis = DistMultiVector::zeros(
                    comm.clone(),
                    a.global_rows(),
                    nloc,
                    a.row_offset(),
                    ka * (mb + 1),
                );
                basis.set_guard(guard.clone());
                r_factor = Matrix::zeros(ka * (mb + 1), ka * (mb + 1));
            }
        }
        // Trailing convergence sweep (the scalar `if gamma <= target`).
        deflate_converged(
            &mut active,
            &gammas,
            &targets,
            restarts,
            &mut deflated_at,
            &mut deflation_order,
            &mut col_converged,
        );
        let converged = active.is_empty();
        fault::set_phase("");
        let (fault_events, faults_detected, faults_recovered, faults_unrecovered) = match &guard {
            Some(ctx) => {
                let pending = ctx.counts().poisoned;
                if pending > 0 {
                    ctx.resolve_poisoned(pending, converged);
                }
                let c = ctx.counts();
                (ctx.events(), c.detected, c.recovered, c.unrecovered)
            }
            None => (Vec::new(), 0, 0, 0),
        };

        let final_relres = (0..kb)
            .map(|j| {
                if r0_norms[j] == 0.0 {
                    0.0
                } else {
                    gammas[j] / r0_norms[j]
                }
            })
            .collect();
        BlockSolveResult {
            converged,
            col_converged,
            iterations,
            restarts,
            final_relres,
            breakdown,
            spmv_count,
            precond_count,
            comm_total: comm.stats().snapshot().since(&stats_start),
            comm_ortho,
            relres_history,
            deflated_at,
            deflation_order,
            shift_history,
            last_harvest,
            ortho_fallbacks,
            step_history,
            health_history,
            rescues: controller.shrinks(),
            cycle_timings,
            fault_events,
            faults_detected,
            faults_recovered,
            faults_unrecovered,
        }
    }

    /// Block solve with the operator assembled from a **row provider** (the
    /// block analogue of [`SStepGmres::solve_from_rows`]): no rank ever
    /// materializes the global matrix.
    pub fn solve_block_from_rows<S: RowSource>(
        &self,
        comm: Arc<dyn Communicator>,
        part: &RowPartition,
        rows: &S,
        precond: &dyn Preconditioner,
        b_local: &Matrix,
        x_local: &mut Matrix,
    ) -> BlockSolveResult {
        let dist = DistCsr::from_row_source(comm, part, rows);
        self.solve_block(&dist, precond, b_local, x_local)
    }

    /// Solve `A·X = B` on a single rank from `X = 0`, without a
    /// preconditioner.  `b_cols` holds one right-hand side per entry;
    /// returns the solution block (`n × k`) and the solve statistics.
    pub fn solve_block_serial(&self, a: &Csr, b_cols: &[Vec<f64>]) -> (Matrix, BlockSolveResult) {
        self.solve_block_serial_preconditioned(a, b_cols, &Identity)
    }

    /// [`solve_block_serial`](Self::solve_block_serial) with a right
    /// preconditioner.
    pub fn solve_block_serial_preconditioned(
        &self,
        a: &Csr,
        b_cols: &[Vec<f64>],
        precond: &dyn Preconditioner,
    ) -> (Matrix, BlockSolveResult) {
        let comm = SerialComm::new();
        let part = block_row_partition(a.nrows(), 1);
        let dist = DistCsr::from_global(comm, a, &part);
        let b = cols_to_matrix(a.nrows(), b_cols);
        let mut x = Matrix::zeros(a.nrows(), b_cols.len());
        let result = self.solve_block(&dist, precond, &b, &mut x);
        (x, result)
    }

    /// Single-rank block solve streamed from a row provider.
    pub fn solve_block_serial_from_rows<S: RowSource>(
        &self,
        rows: &S,
        b_cols: &[Vec<f64>],
    ) -> (Matrix, BlockSolveResult) {
        let comm = SerialComm::new();
        let part = block_row_partition(rows.nrows(), 1);
        let b = cols_to_matrix(rows.nrows(), b_cols);
        let mut x = Matrix::zeros(rows.nrows(), b_cols.len());
        let result = self.solve_block_from_rows(comm, &part, rows, &Identity, &b, &mut x);
        (x, result)
    }
}

/// Pack per-column right-hand sides into the `nloc × k` local block.
fn cols_to_matrix(nloc: usize, cols: &[Vec<f64>]) -> Matrix {
    assert!(!cols.is_empty(), "block solve needs at least one column");
    let mut b = Matrix::zeros(nloc, cols.len());
    for (j, c) in cols.iter().enumerate() {
        assert_eq!(c.len(), nloc, "rhs length mismatch in column {j}");
        b.col_mut(j).copy_from_slice(c);
    }
    b
}

/// Global 2-norms of the active residual columns in **one** all-reduce of
/// `active.len()` words.  At one active column this delegates to the scalar
/// solver's [`global_norm`] — including its guarded-reduce path — so a
/// `k = 1` block solve is bitwise the single-RHS solve.
fn block_norms(
    residuals: &[Vec<f64>],
    active: &[usize],
    comm: &dyn Communicator,
    guard: Option<&GuardContext>,
) -> Vec<f64> {
    if active.len() == 1 {
        return vec![global_norm(&residuals[active[0]], comm, guard)];
    }
    let mut buf: Vec<f64> = active
        .iter()
        .map(|&j| dense::dot(&residuals[j], &residuals[j]))
        .collect();
    comm.allreduce_sum(&mut buf);
    buf.iter().map(|v| v.max(0.0).sqrt()).collect()
}

/// The replicated scalar staged for the cross-rank agreement probe: the
/// max active residual norm (the norm itself at one active column).
fn aggregate_norm(gammas: &[f64], active: &[usize]) -> f64 {
    active
        .iter()
        .map(|&j| gammas[j])
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Block-level relative residual of a cycle: the max over active columns
/// (`gamma / r0` itself at one active column), `NaN` if any column's is.
fn aggregate_relres(gammas: &[f64], r0_norms: &[f64], active: &[usize]) -> f64 {
    let mut agg = f64::NEG_INFINITY;
    for &j in active {
        let v = gammas[j] / r0_norms[j];
        if v.is_nan() {
            return f64::NAN;
        }
        agg = agg.max(v);
    }
    agg
}

/// Right-hand sides of the projected block least-squares problem:
/// column `p` is `γ_p · S[:, p]` zero-padded to `k_inputs + ka` rows, with
/// `S` the leading `ka × ka` block of the R factor (the residual block's
/// coordinates in the orthonormal basis).
fn block_ls_rhs(
    r_factor: &Matrix,
    active: &[usize],
    gammas: &[f64],
    k_inputs: usize,
    ka: usize,
) -> Matrix {
    let mut rhs = Matrix::zeros(k_inputs + ka, ka);
    for (p, &j) in active.iter().enumerate() {
        let g = gammas[j];
        for i in 0..ka {
            rhs[(i, p)] = g * r_factor[(i, p)];
        }
    }
    rhs
}

/// Remove converged columns from the active block, in ascending original
/// order, recording when and in what order they left.
fn deflate_converged(
    active: &mut Vec<usize>,
    gammas: &[f64],
    targets: &[f64],
    completed_cycles: usize,
    deflated_at: &mut [Option<usize>],
    deflation_order: &mut Vec<usize>,
    col_converged: &mut [bool],
) {
    active.retain(|&j| {
        if gammas[j] <= targets[j] {
            deflated_at[j] = Some(completed_cycles);
            deflation_order.push(j);
            col_converged[j] = true;
            false
        } else {
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GmresConfig;
    use blockortho::OrthoKind;
    use sparse::{laplace2d_5pt, laplace2d_9pt};

    fn rhs_for(a: &Csr, seed: usize) -> Vec<f64> {
        (0..a.nrows())
            .map(|i| ((i * 7 + seed * 13) % 17) as f64 * 0.25 - 2.0)
            .collect()
    }

    fn block_relres(a: &Csr, x: &Matrix, b: &[Vec<f64>], j: usize) -> f64 {
        let ax = a.spmv_alloc(x.col(j));
        let rn: f64 = ax
            .iter()
            .zip(&b[j])
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b[j].iter().map(|v| v * v).sum::<f64>().sqrt();
        rn / bn
    }

    #[test]
    fn block_solve_converges_every_column_on_every_scheme() {
        let a = laplace2d_9pt(16, 16);
        let b: Vec<Vec<f64>> = (0..4).map(|j| rhs_for(&a, j)).collect();
        for ortho in [
            OrthoKind::BcgsPip2,
            OrthoKind::Bcgs2CholQr2,
            OrthoKind::TwoStage { big_panel: 30 },
            OrthoKind::TwoStageSketched { big_panel: 10 },
        ] {
            let solver = SStepGmres::new(GmresConfig {
                restart: 30,
                step_size: 5,
                tol: 1e-8,
                ortho,
                ..GmresConfig::default()
            });
            let (x, r) = solver.solve_block_serial(&a, &b);
            assert!(r.converged, "{ortho:?}: {:?}", r.breakdown);
            assert!(r.col_converged.iter().all(|&c| c), "{ortho:?}");
            for j in 0..4 {
                assert!(
                    block_relres(&a, &x, &b, j) < 1e-7,
                    "{ortho:?} column {j}: {}",
                    block_relres(&a, &x, &b, j)
                );
            }
        }
    }

    #[test]
    fn reduce_count_per_cycle_is_independent_of_block_width() {
        // The headline: reduces are paid per batch, not per RHS.  Force
        // full cycles (tiny tolerance, fixed restarts) so the per-cycle
        // schedule is identical, then compare counts at k = 1 and k = 4.
        let a = laplace2d_5pt(20, 20);
        let run = |k: usize| {
            let b: Vec<Vec<f64>> = (0..k).map(|j| rhs_for(&a, j)).collect();
            let solver = SStepGmres::new(GmresConfig {
                restart: 20,
                step_size: 5,
                tol: 1e-30,
                max_restarts: 4,
                ortho: OrthoKind::TwoStage { big_panel: 20 },
                ..GmresConfig::default()
            });
            let (_, r) = solver.solve_block_serial(&a, &b);
            assert_eq!(r.restarts, 4);
            r
        };
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(
            r1.comm_total.allreduces, r4.comm_total.allreduces,
            "per-batch reduce count must not scale with k"
        );
        assert_eq!(r1.comm_ortho.allreduces, r4.comm_ortho.allreduces);
        // The payload axis is what scales instead.
        assert!(
            r4.comm_ortho.allreduce_words > 3 * r1.comm_ortho.allreduce_words,
            "k=4 words {} vs k=1 words {}",
            r4.comm_ortho.allreduce_words,
            r1.comm_ortho.allreduce_words
        );
    }

    #[test]
    fn converged_columns_deflate_and_survivors_finish() {
        let a = laplace2d_9pt(14, 14);
        // Column 1 gets a loose absolute target: it deflates early.
        let b: Vec<Vec<f64>> = (0..3).map(|j| rhs_for(&a, j)).collect();
        let solver = SStepGmres::new(GmresConfig {
            restart: 20,
            step_size: 5,
            tol: 1e-9,
            ortho: OrthoKind::BcgsPip2,
            ..GmresConfig::default()
        });
        let b0: f64 = b[1].iter().map(|v| v * v).sum::<f64>().sqrt();
        let opts = BlockOptions {
            abs_targets: Some(vec![1e-9 * b0, 0.5 * b0, 1e-9 * b0]),
        };
        let comm = SerialComm::new();
        let part = block_row_partition(a.nrows(), 1);
        let dist = DistCsr::from_global(comm, &a, &part);
        let bm = cols_to_matrix(a.nrows(), &b);
        let mut x = Matrix::zeros(a.nrows(), 3);
        let r = solver.solve_block_with(&dist, &Identity, &bm, &mut x, &opts);
        assert!(r.converged, "{:?}", r.breakdown);
        assert_eq!(r.deflation_order.first(), Some(&1), "loose column first");
        let d1 = r.deflated_at[1].expect("column 1 deflated");
        assert!(d1 < r.restarts, "column 1 must leave before the end");
        // Its history stopped growing at deflation.
        assert_eq!(r.relres_history[1].len(), d1);
        assert!(r.relres_history[0].len() >= r.relres_history[1].len());
    }

    #[test]
    fn zero_block_returns_immediately() {
        let a = laplace2d_5pt(10, 10);
        let b = vec![vec![0.0; 100], vec![0.0; 100]];
        let (x, r) = SStepGmres::new(GmresConfig::default()).solve_block_serial(&a, &b);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(x.data().iter().all(|&v| v == 0.0));
        assert_eq!(r.final_relres, vec![0.0, 0.0]);
    }

    #[test]
    fn mixed_zero_and_nonzero_columns_work() {
        let a = laplace2d_5pt(12, 12);
        let b = vec![vec![0.0; 144], rhs_for(&a, 1)];
        let (x, r) = SStepGmres::new(GmresConfig {
            restart: 30,
            step_size: 5,
            tol: 1e-8,
            ..GmresConfig::default()
        })
        .solve_block_serial(&a, &b);
        assert!(r.converged, "{:?}", r.breakdown);
        assert_eq!(r.deflated_at[0], Some(0), "zero column deflates up front");
        assert!(x.col(0).iter().all(|&v| v == 0.0));
        assert!(block_relres(&a, &x, &b, 1) < 1e-7);
    }

    #[test]
    fn streamed_block_solve_matches_replicated_bitwise() {
        let rows = sparse::Laplace2d9ptRows { nx: 12, ny: 12 };
        let a = laplace2d_9pt(12, 12);
        let b: Vec<Vec<f64>> = (0..2).map(|j| rhs_for(&a, j)).collect();
        let solver = SStepGmres::new(GmresConfig {
            restart: 24,
            step_size: 4,
            tol: 1e-9,
            ortho: OrthoKind::TwoStage { big_panel: 24 },
            ..GmresConfig::default()
        });
        let (x_rep, r_rep) = solver.solve_block_serial(&a, &b);
        let (x_str, r_str) = solver.solve_block_serial_from_rows(&rows, &b);
        assert!(r_rep.converged && r_str.converged);
        assert_eq!(x_rep.data(), x_str.data(), "bitwise identical blocks");
        assert_eq!(r_rep.comm_total, r_str.comm_total);
    }
}
