//! Property battery for the distributed sketch operator: the sketched
//! panel must be **bitwise identical** across rank counts (the slot
//! exchange gives every slot exactly one owner, so the rank-ordered reduce
//! only ever adds exact zeros) and across compute-pool widths (the slot
//! fill is serial by design and the combine runs in fixed slot order), the
//! fused [`DistMultiVector::sketch_and_proj`] must reproduce the
//! standalone sketch bit for bit, and every sketched reduce must cost
//! exactly **one allreduce** of the word count `SketchOp::reduce_words`
//! predicts (the same closed form `perfmodel::sketch_reduce_words`
//! mirrors; that join is pinned in `perfmodel`'s tests).
//!
//! Extra rank counts come from `DISTSIM_TEST_RANKS` (comma-separated) —
//! CI sweeps it, together with `TWOSTAGE_NUM_THREADS` for the pool width.

use dense::Matrix;
use distsim::{run_ranks, DistMultiVector, SerialComm, SketchConfig, SketchOp};
use proptest::prelude::*;

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![1usize, 2, 3, 5];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

/// Deterministic dense test panel with a few exact zeros (the -0.0 guard
/// in the slot fill is what keeps zero entries partition-invariant).
fn test_panel(n: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(n, cols, |i, j| {
        let mut x = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            ^ seed;
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        if x.is_multiple_of(11) {
            0.0
        } else {
            (x >> 40) as f64 / 16_777_216.0 - 0.5
        }
    })
}

fn bits(m: &Matrix) -> Vec<u64> {
    let mut out = Vec::with_capacity(m.nrows() * m.ncols());
    for j in 0..m.ncols() {
        out.extend(m.col(j).iter().map(|x| x.to_bits()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sketch_is_bitwise_identical_across_rank_counts(
        seed in 0u64..1_000,
        n in 40usize..200,
        s in 1usize..7,
    ) {
        let cols = s + 2;
        let v = test_panel(n, cols, seed);
        let op = SketchOp::for_basis(
            &SketchConfig { rows_per_col: 4, seed },
            n,
            cols,
        );
        let serial = {
            let basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            basis.sketch(&op, 0..s)
        };
        let reference = bits(&serial);
        for nranks in ranks_under_test() {
            let results = run_ranks(nranks, |comm| {
                let basis = DistMultiVector::from_matrix(comm, v.clone());
                let before = basis.comm().stats().snapshot();
                let sv = basis.sketch(&op, 0..s);
                let delta = basis.comm().stats().snapshot().since(&before);
                (bits(&sv), delta.allreduces, delta.allreduce_words)
            });
            for (b, reduces, words) in results {
                prop_assert_eq!(&b, &reference);
                prop_assert_eq!(reduces, 1);
                prop_assert_eq!(words, op.reduce_words(s));
            }
        }
    }

    #[test]
    fn fused_sketch_and_proj_reproduces_the_standalone_pieces_bitwise(
        seed in 0u64..1_000,
        n in 60usize..220,
        k in 1usize..6,
        s in 1usize..6,
    ) {
        let cols = k + s;
        let v = test_panel(n, cols, seed);
        let op = SketchOp::for_basis(
            &SketchConfig { rows_per_col: 5, seed: seed ^ 0xABCD },
            n,
            cols,
        );
        // Standalone pieces on a serial communicator.
        let basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let sv_alone = basis.sketch(&op, k..k + s);
        let p_alone = basis.proj(0..k, k..k + s);
        let before = basis.comm().stats().snapshot();
        let (p, sv) = basis.sketch_and_proj(&op, 0..k, k..k + s);
        let delta = basis.comm().stats().snapshot().since(&before);
        prop_assert_eq!(delta.allreduces, 1);
        prop_assert_eq!(delta.allreduce_words,
            k * s + op.reduce_words(s));
        prop_assert_eq!(bits(&sv), bits(&sv_alone));
        prop_assert_eq!(bits(&p), bits(&p_alone));
        // And the fused kernel stays bitwise rank-invariant on the SV part
        // (the projection block agrees to rounding like every Gram kernel,
        // and bitwise on any rank count with single-owner row splits).
        for nranks in ranks_under_test() {
            let sv_ref = bits(&sv);
            let results = run_ranks(nranks, |comm| {
                let basis = DistMultiVector::from_matrix(comm, v.clone());
                let (_p, sv) = basis.sketch_and_proj(&op, 0..k, k..k + s);
                bits(&sv)
            });
            for b in results {
                prop_assert_eq!(&b, &sv_ref);
            }
        }
    }

    #[test]
    fn sketch_is_bitwise_identical_across_compute_pool_widths(
        seed in 0u64..1_000,
        n in 80usize..240,
        s in 1usize..6,
    ) {
        // The slot fill is serial by design and the combine runs in fixed
        // slot order, so the sketched panel must not depend on the parkit
        // pool width (CI additionally sweeps TWOSTAGE_NUM_THREADS).
        let cols = s + 1;
        let v = test_panel(n, cols, seed);
        let op = SketchOp::for_basis(&SketchConfig::default(), n, cols);
        let run_with = |threads: usize| {
            parkit::set_num_threads(threads);
            let basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            let out = basis.sketch_and_proj(&op, 0..1, 1..1 + s);
            parkit::set_num_threads(0); // restore auto sizing
            out
        };
        let (p1, sv1) = run_with(1);
        let (p4, sv4) = run_with(4);
        prop_assert_eq!(bits(&sv1), bits(&sv4));
        prop_assert_eq!(bits(&p1), bits(&p4));
    }
}

#[test]
fn operator_is_reconstructed_identically_on_every_rank() {
    // Every rank realizes the operator from (seed, n, c) alone: two ranks
    // of the same group building it independently must agree, and the
    // sketch of a multivector whose content is zero is exactly zero (no
    // -0.0 leakage from the sign flips).
    let n = 150;
    let op = SketchOp::new(n, 32, 42);
    let results = run_ranks(4, |comm| {
        let local_op = SketchOp::new(n, 32, 42);
        let range = &parkit::chunk_ranges(n, comm.size())[comm.rank()];
        let (lo, hi) = (range.start, range.end);
        let basis = DistMultiVector::zeros(comm, n, hi - lo, lo, 6);
        let sv = basis.sketch(&local_op, 0..3);
        let mut all_plus_zero = true;
        for j in 0..3 {
            for &x in sv.col(j) {
                all_plus_zero &= x.to_bits() == 0.0f64.to_bits();
            }
        }
        (local_op.rows(), local_op.reduce_words(3), all_plus_zero)
    });
    for (rows, words, all_plus_zero) in results {
        assert_eq!(rows, op.rows());
        assert_eq!(words, op.reduce_words(3));
        assert!(all_plus_zero, "zero panel must sketch to exactly +0.0");
    }
}
