//! Property tests of the streamed assembly path on awkward partitions.
//!
//! Every constructor of [`DistCsr`] — replicated (`from_global`), streamed
//! from a one-shot row iterator (`from_row_stream`) and from a
//! pre-assembled local block (`from_partitioned`) — must produce the same
//! object: bitwise-identical local matrices and halo plans, bitwise-equal
//! SpMV results, and identical `CommStats` traffic.  The properties sample
//! the partition edge cases the planner has to survive: prime dimensions
//! (maximally unbalanced block rows), more ranks than rows (empty ranks),
//! one row per rank, and ranks whose rows hold zero nonzeros.
//!
//! The rank counts swept can be extended from the environment
//! (`DISTSIM_TEST_RANKS=6,8`, comma-separated) — CI runs a ranks sweep on
//! top of the defaults; the proptest shim is deterministic, so any failure
//! reported in CI reproduces locally from the printed case values.

use distsim::{run_ranks, DistCsr};
use proptest::prelude::*;
use sparse::{block_row_partition, Csr, Triplet};

/// Rank counts to sweep: defaults plus any from `DISTSIM_TEST_RANKS`.
fn ranks_under_test() -> Vec<usize> {
    let mut ranks = vec![1usize, 2, 3, 5];
    if let Ok(spec) = std::env::var("DISTSIM_TEST_RANKS") {
        for tok in spec.split(',') {
            if let Ok(r) = tok.trim().parse::<usize>() {
                if r >= 1 && !ranks.contains(&r) {
                    ranks.push(r);
                }
            }
        }
    }
    ranks
}

/// Deterministic banded test matrix with pseudo-random off-diagonals; rows
/// in `empty_rows` are left completely empty (zero stored entries).
fn banded_matrix(n: usize, seed: u64, empty_rows: std::ops::Range<usize>) -> Csr {
    let mut t = Vec::new();
    for i in 0..n {
        if empty_rows.contains(&i) {
            continue;
        }
        let h = |j: usize| {
            let mut x = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                ^ seed;
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (x >> 40) as f64 / 16_777_216.0 - 0.5
        };
        t.push(Triplet {
            row: i,
            col: i,
            val: 4.0 + h(0),
        });
        // A short band plus one long-range coupling, clipped to the matrix.
        for (k, d) in [1usize, 2, n / 3 + 1].into_iter().enumerate() {
            if d == 0 {
                continue;
            }
            if i >= d {
                t.push(Triplet {
                    row: i,
                    col: i - d,
                    val: h(2 * k + 1),
                });
            }
            if i + d < n {
                t.push(Triplet {
                    row: i,
                    col: i + d,
                    val: h(2 * k + 2),
                });
            }
        }
    }
    Csr::from_triplets(n, n, &t)
}

/// Build the same distributed matrix through all three constructors on
/// every rank, assert they are bitwise identical (storage, halo plan, SpMV
/// result, per-SpMV `CommStats` traffic), and return the assembled global
/// SpMV result for an end-to-end check against the serial product.
fn assert_constructors_agree(a: &Csr, nranks: usize) {
    assert_constructors_agree_with_part(a, &block_row_partition(a.nrows(), nranks));
}

fn assert_constructors_agree_with_part(a: &Csr, part: &sparse::RowPartition) {
    let n = a.nrows();
    let nranks = part.nranks();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 17 % 31) as f64) * 0.23 - 2.1)
        .collect();
    let pieces = run_ranks(nranks, |comm| {
        let rank = comm.rank();
        let (lo, hi) = part.range(rank);
        let replicated = DistCsr::from_global(comm.clone(), a, part);
        let streamed = DistCsr::from_row_stream(
            comm.clone(),
            part,
            (lo..hi).map(|i| {
                let (c, v) = a.row(i);
                (c.to_vec(), v.to_vec())
            }),
        );
        let partitioned = DistCsr::from_partitioned(comm.clone(), part, a.row_block(lo, hi));
        assert_eq!(
            streamed.local_matrix(),
            replicated.local_matrix(),
            "rank {rank}: stream vs replicated local block"
        );
        assert_eq!(
            partitioned.local_matrix(),
            replicated.local_matrix(),
            "rank {rank}: partitioned vs replicated local block"
        );
        assert_eq!(streamed.halo_plan(), replicated.halo_plan(), "rank {rank}");
        assert_eq!(
            partitioned.halo_plan(),
            replicated.halo_plan(),
            "rank {rank}"
        );
        // SpMV: bitwise-equal outputs and identical message traffic.
        let mut y_rep = vec![0.0; hi - lo];
        let mut y_str = vec![0.0; hi - lo];
        let mut y_par = vec![0.0; hi - lo];
        let s0 = comm.stats().snapshot();
        replicated.spmv(&x[lo..hi], &mut y_rep);
        let d_rep = comm.stats().snapshot().since(&s0);
        let s1 = comm.stats().snapshot();
        streamed.spmv(&x[lo..hi], &mut y_str);
        let d_str = comm.stats().snapshot().since(&s1);
        let s2 = comm.stats().snapshot();
        partitioned.spmv(&x[lo..hi], &mut y_par);
        let d_par = comm.stats().snapshot().since(&s2);
        assert_eq!(y_str, y_rep, "rank {rank}: SpMV must be bitwise equal");
        assert_eq!(y_par, y_rep, "rank {rank}: SpMV must be bitwise equal");
        assert_eq!(d_str, d_rep, "rank {rank}: identical CommStats per SpMV");
        assert_eq!(d_par, d_rep, "rank {rank}: identical CommStats per SpMV");
        (lo, y_rep, replicated.local_matrix().nnz())
    });
    // End-to-end: the distributed product matches the serial one (to
    // rounding — local column remap changes the accumulation order).
    let y_ref = a.spmv_alloc(&x);
    let mut nnz_total = 0;
    for (lo, y, nnz_local) in &pieces {
        nnz_total += nnz_local;
        for (k, v) in y.iter().enumerate() {
            let r = y_ref[lo + k];
            assert!(
                (v - r).abs() <= 1e-12 * r.abs().max(1.0),
                "row {}: {v} vs {r}",
                lo + k
            );
        }
    }
    assert_eq!(nnz_total, a.nnz(), "local blocks must partition the nnz");
}

#[test]
fn empty_middle_rank_partition_attributes_ghosts_to_the_real_owner() {
    // offsets [0, 3, 3, 6]: rank 1 owns nothing, and the band couplings of
    // rows 2 and 3 reach across the empty rank's boundary.  The planner
    // must attribute those ghosts to the ranks that actually own them
    // (attributing one to the empty rank would leave a recv without a
    // matching send and deadlock the halo exchange).
    let a = banded_matrix(6, 9, 0..0);
    let part = sparse::RowPartition {
        offsets: vec![0, 3, 3, 6],
    };
    assert_constructors_agree_with_part(&a, &part);
}

#[test]
fn matrix_market_row_blocks_feed_the_partitioned_constructor() {
    // The production path for real SuiteSparse files: each rank streams its
    // own row block from the .mtx file (never reading the whole matrix into
    // memory) and hands it to `from_partitioned`; the result must be
    // bitwise identical to the replicated construction.
    let a = banded_matrix(57, 42, 0..0);
    let dir = std::env::temp_dir().join(format!(
        "two_stage_gmres_assembly_mm_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("banded.mtx");
    sparse::write_matrix_market(&path, &a).unwrap();
    // Values round-trip through the "%.17e" text form exactly (17
    // significant digits are enough for f64), so the file-fed construction
    // stays bitwise comparable.
    let a = sparse::read_matrix_market(&path).unwrap();
    let nranks = 3;
    let info = sparse::read_matrix_market_info(&path).unwrap();
    let part = block_row_partition(info.nrows, nranks);
    let same = run_ranks(nranks, |comm| {
        let (lo, hi) = part.range(comm.rank());
        let block = sparse::read_matrix_market_row_block(&path, lo..hi).unwrap();
        let from_file = DistCsr::from_partitioned(comm.clone(), &part, block);
        let reference = DistCsr::from_global(comm, &a, &part);
        from_file.local_matrix() == reference.local_matrix()
            && from_file.halo_plan() == reference.halo_plan()
    });
    std::fs::remove_dir_all(&dir).ok();
    assert!(same.into_iter().all(|s| s));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn constructors_agree_on_prime_dimensions(
        seed in 0u64..1_000,
        prime_idx in 0usize..6,
    ) {
        // Prime n: block rows are maximally uneven and never align with the
        // rank count.
        let n = [13usize, 17, 23, 31, 41, 53][prime_idx];
        let a = banded_matrix(n, seed, 0..0);
        for nranks in ranks_under_test() {
            assert_constructors_agree(&a, nranks);
        }
    }

    #[test]
    fn constructors_agree_with_more_ranks_than_rows(
        seed in 0u64..1_000,
        n in 2usize..6,
    ) {
        // More ranks than rows: trailing ranks own empty row ranges and
        // must still participate in the construction-time collectives.
        let a = banded_matrix(n, seed, 0..0);
        assert_constructors_agree(&a, n + 3);
    }

    #[test]
    fn constructors_agree_with_one_row_per_rank(
        seed in 0u64..1_000,
        n in 2usize..8,
    ) {
        // nranks == n: every rank owns exactly one row, so almost every
        // matrix entry is a ghost reference.
        let a = banded_matrix(n, seed, 0..0);
        assert_constructors_agree(&a, n);
    }

    #[test]
    fn constructors_agree_when_a_rank_owns_zero_nonzeros(
        seed in 0u64..1_000,
        nranks in 2usize..5,
    ) {
        // Empty a full rank's worth of rows: that rank has no entries, no
        // ghosts, and nothing to send, but still joins the planner
        // collectives and the SpMV must stay consistent around it.
        let n = 7 * nranks;
        let part = block_row_partition(n, nranks);
        let (lo, hi) = part.range(1);
        let a = banded_matrix(n, seed, lo..hi);
        let local_nnz = a.rowptr()[hi] - a.rowptr()[lo];
        prop_assert!(local_nnz == 0, "rank 1 must own zero nonzeros");
        assert_constructors_agree(&a, nranks);
    }
}
