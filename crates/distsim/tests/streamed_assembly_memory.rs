//! Allocation-tracking proof of the streamed-assembly memory claim.
//!
//! The point of `DistCsr::from_row_source` is that a rank building its
//! block never holds the global matrix: peak construction memory must be
//! `O(nnz/P + halo)`, not `O(nnz)`.  This harness installs a counting
//! global allocator with **thread-local** live/peak counters — each
//! simulated rank runs on its own thread (`run_ranks`), so a rank's peak is
//! measured independently of its peers — and asserts both the absolute
//! bound (a rank's peak is a small multiple of its own block, far below the
//! global matrix) and the scaling (doubling the rank count roughly halves
//! the per-rank peak).
//!
//! Counters are `isize`: a thread may legitimately free memory another
//! thread allocated (mailbox messages, collective result buffers), which
//! only perturbs the measurement by halo-sized amounts.

use distsim::{run_ranks, DistCsr};
use sparse::{block_row_partition, laplace2d_9pt, Laplace2d9ptRows, RowPartition};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static LIVE: Cell<isize> = const { Cell::new(0) };
    static PEAK: Cell<isize> = const { Cell::new(0) };
}

fn track_alloc(size: usize) {
    LIVE.with(|live| {
        let now = live.get() + size as isize;
        live.set(now);
        PEAK.with(|peak| {
            if now > peak.get() {
                peak.set(now);
            }
        });
    });
}

fn track_dealloc(size: usize) {
    LIVE.with(|live| live.set(live.get() - size as isize));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Old and new blocks coexist while the contents are copied.
        track_alloc(new_size);
        track_dealloc(layout.size());
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` and return (this thread's peak allocation above the level at
/// entry, in bytes; f's result).
fn measure<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let base = LIVE.with(|l| l.get());
    PEAK.with(|p| p.set(base));
    let out = f();
    let peak = PEAK.with(|p| p.get());
    ((peak - base).max(0) as usize, out)
}

/// Largest per-rank construction peak over all ranks of a streamed
/// assembly.
fn streamed_peak(nranks: usize, rows: &Laplace2d9ptRows, part: &RowPartition) -> usize {
    let peaks = run_ranks(nranks, |comm| {
        let (peak, dist) = measure(|| DistCsr::from_row_source(comm, part, rows));
        assert_eq!(dist.global_rows(), part.nrows());
        peak
    });
    peaks.into_iter().max().unwrap()
}

#[test]
fn streamed_construction_peak_is_local_block_sized_not_global() {
    // 9-point Laplacian on a 180×180 grid: n = 32 400, nnz ≈ 289k, so the
    // global CSR is ~4.6 MB — big enough that per-rank blocks and the
    // global matrix are clearly distinguishable through allocator noise.
    let nx = 180;
    let rows = Laplace2d9ptRows { nx, ny: nx };

    // Reference: what materializing the global operator costs (measured on
    // this thread, where the replicated path would pay it on every rank).
    let (replicated_peak, a) = measure(|| laplace2d_9pt(nx, nx));
    let global_bytes = a.nnz() * 16 + (a.nrows() + 1) * 8;
    assert!(
        replicated_peak >= global_bytes,
        "sanity: building the global matrix allocates at least its storage \
         ({replicated_peak} vs {global_bytes})"
    );
    let n = a.nrows();
    drop(a);

    let part8 = block_row_partition(n, 8);
    let peak8 = streamed_peak(8, &rows, &part8);

    // Absolute bound: a rank's peak is a small multiple of its own block
    // (nnz/P + halo), far below the global matrix.  The halo of a 9-pt
    // block row is two grid lines (2·nx values) plus planner metadata.
    let local_bytes = global_bytes / 8;
    let halo_bytes = 8 * (2 * nx) * 8; // padded ghost lists of all 8 ranks
    assert!(
        peak8 < 3 * (local_bytes + halo_bytes) + (64 << 10),
        "rank peak {peak8} B exceeds O(nnz/P + halo) bound \
         (local {local_bytes} B, halo {halo_bytes} B)"
    );
    assert!(
        2 * peak8 < global_bytes,
        "rank peak {peak8} B must be far below the {global_bytes} B global \
         matrix the replicated path holds per rank"
    );

    // Scaling: 4× the ranks must shrink the per-rank peak by well over 2×.
    let part2 = block_row_partition(n, 2);
    let peak2 = streamed_peak(2, &rows, &part2);
    assert!(
        peak2 > 2 * peak8,
        "per-rank peak must scale with nnz/P: P=2 peaked at {peak2} B, \
         P=8 at {peak8} B"
    );
}

#[test]
fn replicated_wrapper_still_costs_global_memory_per_rank() {
    // The flip side of the claim: `from_global` (now a wrapper over the
    // streamed path) is handed an already-materialized global matrix, so a
    // simulated rank that *builds* that matrix first pays O(nnz) — the cost
    // the row-provider constructors exist to avoid.
    let nx = 120;
    let rows = Laplace2d9ptRows { nx, ny: nx };
    let n = nx * nx;
    let part = block_row_partition(n, 4);
    let peaks = run_ranks(4, |comm| {
        let (replicated_peak, _) = measure(|| {
            let a = laplace2d_9pt(nx, nx); // every rank replicates the matrix
            DistCsr::from_global(comm.clone(), &a, &part)
        });
        let (streamed_peak, _) = measure(|| DistCsr::from_row_source(comm, &part, &rows));
        (replicated_peak, streamed_peak)
    });
    for (replicated, streamed) in peaks {
        assert!(
            2 * streamed < replicated,
            "streamed {streamed} B should be far below replicated {replicated} B"
        );
    }
}
