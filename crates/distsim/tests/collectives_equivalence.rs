//! Integration tests of the distsim substrate itself: the serial and the
//! thread-backed communicators must be observationally equivalent — same
//! collective results, same operation counts — and the distributed CSR's
//! halo-exchange SpMV must reproduce the serial SpMV exactly.

use distsim::{run_ranks, DistCsr, DistMultiVector, SerialComm};
use sparse::{block_row_partition, laplace2d_9pt};

#[test]
fn serial_and_thread_collectives_produce_identical_results() {
    // The same reduction executed on SerialComm and on 1..=4 thread ranks
    // (with the data partitioned so the global content is identical) must
    // agree; rank-order combination makes the multi-rank result value
    // deterministic, and the single-rank thread group must match SerialComm
    // bitwise.
    let data: Vec<f64> = (0..240)
        .map(|i| ((i * 37 % 101) as f64) * 0.173 - 5.0)
        .collect();

    let serial = SerialComm::new();
    let mut serial_buf = vec![0.0; 3];
    for (i, x) in data.iter().enumerate() {
        serial_buf[i % 3] += x;
    }
    serial.allreduce_sum(&mut serial_buf);

    for nranks in [1usize, 2, 4] {
        let part = block_row_partition(data.len(), nranks);
        let results = run_ranks(nranks, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let mut buf = vec![0.0; 3];
            for (i, x) in data[lo..hi].iter().enumerate() {
                buf[(lo + i) % 3] += x;
            }
            comm.allreduce_sum(&mut buf);
            buf
        });
        for r in &results {
            for (a, b) in r.iter().zip(&serial_buf) {
                if nranks == 1 {
                    assert_eq!(a, b, "single thread rank must match SerialComm bitwise");
                } else {
                    assert!((a - b).abs() < 1e-12 * b.abs().max(1.0), "nranks {nranks}");
                }
            }
        }
    }
}

#[test]
fn comm_stats_count_exactly_the_collectives_issued() {
    for nranks in [1usize, 4] {
        let snapshots = run_ranks(nranks, |comm| {
            let before = comm.stats().snapshot();
            let mut buf = vec![1.0; 7];
            comm.allreduce_sum(&mut buf);
            comm.allreduce_sum(&mut buf[..2]);
            assert_eq!(comm.allreduce_sum_scalar(1.0), nranks as f64);
            comm.broadcast(0, &mut buf[..4]);
            let send = [comm.rank() as f64; 2];
            let mut recv = vec![0.0; 2 * comm.size()];
            comm.allgather(&send, &mut recv);
            comm.barrier();
            comm.stats().snapshot().since(&before)
        });
        for s in snapshots {
            assert_eq!(s.allreduces, 3);
            assert_eq!(s.allreduce_words, 7 + 2 + 1);
            assert_eq!(s.broadcasts, 1);
            assert_eq!(s.broadcast_words, 4);
            assert_eq!(s.allgathers, 1);
            assert_eq!(s.allgather_words, 2);
            assert_eq!(s.barriers, 1);
        }
    }
}

#[test]
fn multivector_reduction_counts_are_rank_count_independent() {
    // The defining property of the substrate: the number of global
    // reductions a kernel performs must not depend on the rank count.
    let full = dense::Matrix::from_fn(96, 6, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
    let count_with = |nranks: usize| -> usize {
        let counts = run_ranks(nranks, |comm| {
            let before_owner = comm.clone();
            let mv = DistMultiVector::from_matrix(comm, full.clone());
            let before = before_owner.stats().snapshot();
            let _ = mv.gram(0..6);
            let _ = mv.proj(0..2, 2..5);
            let _ = mv.proj_and_gram(0..2, 2..5);
            let _ = mv.norm2(0);
            let _ = mv.dot(1, 2);
            before_owner.stats().snapshot().since(&before).allreduces
        });
        assert!(counts.iter().all(|&c| c == counts[0]));
        counts[0]
    };
    let serial = {
        let comm = SerialComm::new();
        let mv = DistMultiVector::from_matrix(comm.clone(), full.clone());
        let before = comm.stats().snapshot();
        let _ = mv.gram(0..6);
        let _ = mv.proj(0..2, 2..5);
        let _ = mv.proj_and_gram(0..2, 2..5);
        let _ = mv.norm2(0);
        let _ = mv.dot(1, 2);
        comm.stats().snapshot().since(&before).allreduces
    };
    assert_eq!(serial, 5, "one reduce per kernel call");
    assert_eq!(count_with(1), serial);
    assert_eq!(count_with(3), serial);
    assert_eq!(count_with(4), serial);
}

#[test]
fn dist_csr_halo_spmv_matches_serial_spmv_on_laplace2d_9pt() {
    let a = laplace2d_9pt(15, 9);
    let n = a.nrows();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 13 % 29) as f64) * 0.31 - 2.0)
        .collect();
    let y_ref = a.spmv_alloc(&x);
    for nranks in [1usize, 2, 3, 4] {
        let part = block_row_partition(n, nranks);
        let pieces = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let dist = DistCsr::from_global(comm, &a, &part);
            assert_eq!(dist.row_offset(), lo);
            assert_eq!(dist.local_rows(), hi - lo);
            let mut y = vec![0.0; hi - lo];
            dist.spmv(&x[lo..hi], &mut y);
            (lo, y)
        });
        let mut y = vec![0.0; n];
        for (lo, block) in &pieces {
            y[*lo..lo + block.len()].copy_from_slice(block);
        }
        for (p, q) in y.iter().zip(&y_ref) {
            assert!(
                (p - q).abs() <= 1e-12 * q.abs().max(1.0),
                "nranks {nranks}: {p} vs {q}"
            );
        }
    }
}
