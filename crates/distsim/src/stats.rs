//! Per-communicator instrumentation of collective and point-to-point
//! traffic.
//!
//! Every [`Communicator`](crate::Communicator) owns a [`CommStats`] whose
//! counters are bumped by each operation — including on the serial
//! communicator, where the operations are no-ops but the *counts* are the
//! quantity the paper's analysis is built on.  Counters are atomic so a
//! `&self` communicator behind an `Arc` can record them; reads are
//! [`snapshot`](CommStats::snapshot)s, and phase attribution is done by
//! differencing snapshots ([`CommStatsSnapshot::since`]) and accumulating
//! deltas ([`CommStatsSnapshot::merge`]).
//!
//! Point-to-point traffic is tallied both globally and **per peer** (the
//! halo-exchange neighbor structure), so imbalance across neighbors is
//! visible in snapshots and in the trace timeline.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Live operation counters of one communicator (one rank).
#[derive(Debug, Default)]
pub struct CommStats {
    allreduces: AtomicUsize,
    allreduce_words: AtomicUsize,
    broadcasts: AtomicUsize,
    broadcast_words: AtomicUsize,
    allgathers: AtomicUsize,
    allgather_words: AtomicUsize,
    p2p_messages: AtomicUsize,
    p2p_words: AtomicUsize,
    barriers: AtomicUsize,
    allreduce_retries: AtomicUsize,
    allreduce_retry_words: AtomicUsize,
    /// Per-destination-rank `(messages, words)` tallies.
    p2p_peers: Mutex<BTreeMap<usize, (usize, usize)>>,
}

impl CommStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one all-reduce of `words` `f64` words.
    pub fn record_allreduce(&self, words: usize) {
        self.allreduces.fetch_add(1, Ordering::Relaxed);
        self.allreduce_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Record one broadcast of `words` `f64` words.
    pub fn record_broadcast(&self, words: usize) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.broadcast_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Record one all-gather contributing `words` `f64` words.
    pub fn record_allgather(&self, words: usize) {
        self.allgathers.fetch_add(1, Ordering::Relaxed);
        self.allgather_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Record one point-to-point message of `words` `f64` words sent to
    /// rank `to` (counted at the sender).
    pub fn record_p2p(&self, to: usize, words: usize) {
        self.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.p2p_words.fetch_add(words, Ordering::Relaxed);
        let mut peers = self.p2p_peers.lock().expect("p2p peer tallies poisoned");
        let entry = peers.entry(to).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += words;
    }

    /// Record one barrier.
    pub fn record_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one **retried** all-reduce of `words` `f64` words.
    ///
    /// Retries (a fault-recovery re-execution of a collective that already
    /// happened) are tallied separately from [`record_allreduce`] so the
    /// reduce-count audits the tests pin — "this kernel is one global
    /// reduction" — stay exact even when the fault-tolerance layer had to
    /// repeat an operation.
    ///
    /// [`record_allreduce`]: Self::record_allreduce
    pub fn record_allreduce_retry(&self, words: usize) {
        self.allreduce_retries.fetch_add(1, Ordering::Relaxed);
        self.allreduce_retry_words
            .fetch_add(words, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy of the counters.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        let p2p_peers = {
            let peers = self.p2p_peers.lock().expect("p2p peer tallies poisoned");
            peers
                .iter()
                .map(|(&peer, &(messages, words))| PeerTally {
                    peer,
                    messages,
                    words,
                })
                .collect()
        };
        CommStatsSnapshot {
            allreduces: self.allreduces.load(Ordering::Relaxed),
            allreduce_words: self.allreduce_words.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            broadcast_words: self.broadcast_words.load(Ordering::Relaxed),
            allgathers: self.allgathers.load(Ordering::Relaxed),
            allgather_words: self.allgather_words.load(Ordering::Relaxed),
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_words: self.p2p_words.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            allreduce_retries: self.allreduce_retries.load(Ordering::Relaxed),
            allreduce_retry_words: self.allreduce_retry_words.load(Ordering::Relaxed),
            p2p_peers,
        }
    }
}

/// Point-to-point traffic towards one destination rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerTally {
    /// Destination rank.
    pub peer: usize,
    /// Messages sent to `peer`.
    pub messages: usize,
    /// Total `f64` words sent to `peer`.
    pub words: usize,
}

/// Point-in-time counter values; differences of snapshots attribute
/// communication to solver phases.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    /// Number of all-reduces (the paper's "global reductions").
    pub allreduces: usize,
    /// Total `f64` words all-reduced.
    pub allreduce_words: usize,
    /// Number of broadcasts.
    pub broadcasts: usize,
    /// Total `f64` words broadcast.
    pub broadcast_words: usize,
    /// Number of all-gathers.
    pub allgathers: usize,
    /// Total `f64` words contributed to all-gathers.
    pub allgather_words: usize,
    /// Number of point-to-point messages sent (halo exchange).
    pub p2p_messages: usize,
    /// Total `f64` words sent point-to-point.
    pub p2p_words: usize,
    /// Number of explicit barriers.
    pub barriers: usize,
    /// Number of **retried** all-reduces (fault-recovery re-executions;
    /// counted separately so `allreduces` stays the paper's audit count).
    pub allreduce_retries: usize,
    /// Total `f64` words all-reduced by retries.
    pub allreduce_retry_words: usize,
    /// Per-destination `(messages, words)` tallies, sorted by peer rank.
    /// All-zero entries are dropped, so snapshots compare structurally.
    pub p2p_peers: Vec<PeerTally>,
}

/// Merge per-peer tallies with `f(dst_entry, src_tally)` applied per peer
/// (missing peers behave as zero), keeping the result sorted and dropping
/// all-zero entries.
fn combine_peers(
    a: &[PeerTally],
    b: &[PeerTally],
    f: impl Fn(PeerTally, PeerTally) -> PeerTally,
) -> Vec<PeerTally> {
    let zero = |peer| PeerTally {
        peer,
        messages: 0,
        words: 0,
    };
    let peers: std::collections::BTreeSet<usize> = a.iter().chain(b).map(|t| t.peer).collect();
    peers
        .into_iter()
        .map(|peer| {
            let ta = a
                .iter()
                .find(|t| t.peer == peer)
                .copied()
                .unwrap_or(zero(peer));
            let tb = b
                .iter()
                .find(|t| t.peer == peer)
                .copied()
                .unwrap_or(zero(peer));
            f(ta, tb)
        })
        .filter(|t| t.messages != 0 || t.words != 0)
        .collect()
}

impl CommStatsSnapshot {
    /// Mean `f64` words carried per all-reduce (`0.0` when no all-reduce
    /// happened).
    ///
    /// This is the **block amortization** headline metric of the batched
    /// solver: a k-wide block solve performs the *same number* of
    /// all-reduces per cycle as a single-RHS solve while each reduce
    /// carries a k-scaled payload, so words-per-call grows ≈ k-fold while
    /// `allreduces` stays flat — one synchronization serves k right-hand
    /// sides.  `bench --bin batched` and the block-equivalence battery pin
    /// both axes.
    pub fn allreduce_words_per_call(&self) -> f64 {
        if self.allreduces == 0 {
            0.0
        } else {
            self.allreduce_words as f64 / self.allreduces as f64
        }
    }

    /// The operations performed between `earlier` and this snapshot.
    pub fn since(&self, earlier: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            allreduces: self.allreduces - earlier.allreduces,
            allreduce_words: self.allreduce_words - earlier.allreduce_words,
            broadcasts: self.broadcasts - earlier.broadcasts,
            broadcast_words: self.broadcast_words - earlier.broadcast_words,
            allgathers: self.allgathers - earlier.allgathers,
            allgather_words: self.allgather_words - earlier.allgather_words,
            p2p_messages: self.p2p_messages - earlier.p2p_messages,
            p2p_words: self.p2p_words - earlier.p2p_words,
            barriers: self.barriers - earlier.barriers,
            allreduce_retries: self.allreduce_retries - earlier.allreduce_retries,
            allreduce_retry_words: self.allreduce_retry_words - earlier.allreduce_retry_words,
            p2p_peers: combine_peers(&self.p2p_peers, &earlier.p2p_peers, |now, before| {
                PeerTally {
                    peer: now.peer,
                    messages: now.messages - before.messages,
                    words: now.words - before.words,
                }
            }),
        }
    }

    /// Field-wise sum (accumulate phase deltas).
    pub fn merge(&self, other: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            allreduces: self.allreduces + other.allreduces,
            allreduce_words: self.allreduce_words + other.allreduce_words,
            broadcasts: self.broadcasts + other.broadcasts,
            broadcast_words: self.broadcast_words + other.broadcast_words,
            allgathers: self.allgathers + other.allgathers,
            allgather_words: self.allgather_words + other.allgather_words,
            p2p_messages: self.p2p_messages + other.p2p_messages,
            p2p_words: self.p2p_words + other.p2p_words,
            barriers: self.barriers + other.barriers,
            allreduce_retries: self.allreduce_retries + other.allreduce_retries,
            allreduce_retry_words: self.allreduce_retry_words + other.allreduce_retry_words,
            p2p_peers: combine_peers(&self.p2p_peers, &other.p2p_peers, |a, b| PeerTally {
                peer: a.peer,
                messages: a.messages + b.messages,
                words: a.words + b.words,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_since_and_merge_are_fieldwise() {
        let stats = CommStats::new();
        stats.record_allreduce(25);
        let a = stats.snapshot();
        stats.record_allreduce(5);
        stats.record_broadcast(3);
        stats.record_allgather(7);
        stats.record_p2p(2, 11);
        stats.record_barrier();
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(d.allreduces, 1);
        assert_eq!(d.allreduce_words, 5);
        assert_eq!(d.broadcasts, 1);
        assert_eq!(d.broadcast_words, 3);
        assert_eq!(d.allgathers, 1);
        assert_eq!(d.allgather_words, 7);
        assert_eq!(d.p2p_messages, 1);
        assert_eq!(d.p2p_words, 11);
        assert_eq!(d.barriers, 1);
        let m = a.merge(&d);
        assert_eq!(m, b);
    }

    #[test]
    fn retries_do_not_inflate_the_reduce_audit() {
        let stats = CommStats::new();
        stats.record_allreduce(10);
        stats.record_allreduce_retry(10);
        stats.record_allreduce_retry(10);
        let s = stats.snapshot();
        assert_eq!(s.allreduces, 1, "retries must not count as reduces");
        assert_eq!(s.allreduce_words, 10);
        assert_eq!(s.allreduce_retries, 2);
        assert_eq!(s.allreduce_retry_words, 20);
        // since/merge are field-wise over the retry counters too.
        let before = CommStatsSnapshot::default();
        assert_eq!(s.since(&before), s);
        assert_eq!(before.merge(&s), s);
    }

    #[test]
    fn words_per_call_tracks_block_width() {
        let stats = CommStats::new();
        assert_eq!(stats.snapshot().allreduce_words_per_call(), 0.0);
        // Same reduce count, k-scaled payloads: the per-call mean is the
        // axis that moves under block batching.
        stats.record_allreduce(10);
        stats.record_allreduce(10);
        assert_eq!(stats.snapshot().allreduce_words_per_call(), 10.0);
        let wide = CommStats::new();
        wide.record_allreduce(40);
        wide.record_allreduce(40);
        let (a, b) = (stats.snapshot(), wide.snapshot());
        assert_eq!(a.allreduces, b.allreduces);
        assert_eq!(
            b.allreduce_words_per_call(),
            4.0 * a.allreduce_words_per_call()
        );
    }

    #[test]
    fn default_snapshot_is_zero() {
        let z = CommStatsSnapshot::default();
        assert_eq!(z.allreduces, 0);
        assert!(z.p2p_peers.is_empty());
        assert_eq!(z, z.merge(&CommStatsSnapshot::default()));
    }

    #[test]
    fn per_peer_tallies_split_the_global_count() {
        let stats = CommStats::new();
        stats.record_p2p(3, 10);
        stats.record_p2p(1, 4);
        stats.record_p2p(3, 6);
        let s = stats.snapshot();
        assert_eq!(s.p2p_messages, 3);
        assert_eq!(s.p2p_words, 20);
        assert_eq!(
            s.p2p_peers,
            vec![
                PeerTally {
                    peer: 1,
                    messages: 1,
                    words: 4
                },
                PeerTally {
                    peer: 3,
                    messages: 2,
                    words: 16
                },
            ]
        );
        let msg_sum: usize = s.p2p_peers.iter().map(|t| t.messages).sum();
        let word_sum: usize = s.p2p_peers.iter().map(|t| t.words).sum();
        assert_eq!(msg_sum, s.p2p_messages);
        assert_eq!(word_sum, s.p2p_words);
    }

    #[test]
    fn per_peer_since_drops_unchanged_peers() {
        let stats = CommStats::new();
        stats.record_p2p(0, 5);
        stats.record_p2p(2, 7);
        let a = stats.snapshot();
        stats.record_p2p(2, 3);
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(
            d.p2p_peers,
            vec![PeerTally {
                peer: 2,
                messages: 1,
                words: 3
            }]
        );
        // Deltas recompose: a + d == b, including per-peer rows.
        assert_eq!(a.merge(&d), b);
        // since(self) is the zero snapshot.
        assert_eq!(b.since(&b), CommStatsSnapshot::default());
    }
}
