//! The zero-cost single-rank communicator.

use crate::comm::Communicator;
use crate::stats::CommStats;
use std::sync::Arc;

/// A communicator over a group of exactly one rank.
///
/// All collectives are data-movement no-ops, but they are still recorded in
/// [`CommStats`], so a serial run exhibits exactly the reduction structure
/// (and counts) of a distributed one — the property the reduction-count
/// tests rely on.
#[derive(Debug, Default)]
pub struct SerialComm {
    stats: CommStats,
}

impl SerialComm {
    /// Create a single-rank communicator, ready to be passed to
    /// [`DistMultiVector`](crate::DistMultiVector) and
    /// [`DistCsr`](crate::DistCsr) constructors.
    #[allow(clippy::new_ret_no_self)] // the API trades in Arc<dyn Communicator>
    pub fn new() -> Arc<dyn Communicator> {
        Arc::new(SerialComm {
            stats: CommStats::new(),
        })
    }
}

impl Communicator for SerialComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        let _span = trace::span1("comm", "allreduce", "words", buf.len() as u64);
        self.stats.record_allreduce(buf.len());
    }

    fn allreduce_sum_retry(&self, buf: &mut [f64]) {
        let _span = trace::span1("comm", "allreduce_retry", "words", buf.len() as u64);
        self.stats.record_allreduce_retry(buf.len());
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        assert_eq!(root, 0, "serial communicator has only rank 0");
        let _span = trace::span1("comm", "broadcast", "words", buf.len() as u64);
        self.stats.record_broadcast(buf.len());
    }

    fn allgather(&self, send: &[f64], recv: &mut [f64]) {
        assert_eq!(
            recv.len(),
            send.len(),
            "serial allgather: recv must hold exactly one contribution"
        );
        let _span = trace::span1("comm", "allgather", "words", send.len() as u64);
        recv.copy_from_slice(send);
        self.stats.record_allgather(send.len());
    }

    fn barrier(&self) {
        let _span = trace::span("comm", "barrier");
        self.stats.record_barrier();
    }

    fn send(&self, to: usize, _data: &[f64]) {
        panic!("serial communicator has no peer rank {to} to send to");
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        panic!("serial communicator has no peer rank {from} to receive from");
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_counted_noops() {
        let comm = SerialComm::new();
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);
        let mut buf = [1.0, 2.0, 3.0];
        comm.allreduce_sum(&mut buf);
        assert_eq!(buf, [1.0, 2.0, 3.0]);
        assert_eq!(comm.allreduce_sum_scalar(4.5), 4.5);
        comm.broadcast(0, &mut buf);
        let mut out = [0.0; 3];
        comm.allgather(&buf, &mut out);
        assert_eq!(out, buf);
        comm.barrier();
        let s = comm.stats().snapshot();
        assert_eq!(s.allreduces, 2);
        assert_eq!(s.allreduce_words, 4);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.allgathers, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.p2p_messages, 0);
    }

    #[test]
    #[should_panic(expected = "no peer rank")]
    fn p2p_on_serial_comm_panics() {
        SerialComm::new().send(1, &[1.0]);
    }
}
