//! The 1D block-row distributed multivector (the Krylov basis).
//!
//! Each rank owns a contiguous block of rows of a global `n × c` matrix,
//! stored as a local column-major [`dense::Matrix`].  The fused kernels the
//! block orthogonalization schemes call are implemented here, each
//! documenting its global-reduction count — [`proj_and_gram`] is *the*
//! single-reduce fusion (projection coefficients and Gram matrix in one
//! all-reduce) that BCGS-PIP and the two-stage scheme are built on, and
//! [`update_and_gram`] is its dual for the second synchronization of the
//! two-sync reorthogonalization schemes (vector update fused with the next
//! panel's inner products, still one all-reduce and one pass over the
//! panel).
//!
//! [`proj_and_gram`]: DistMultiVector::proj_and_gram
//! [`update_and_gram`]: DistMultiVector::update_and_gram

use crate::comm::Communicator;
use crate::guard::{GuardContext, Screen};
use crate::sketch::SketchOp;
use dense::{MatView, Matrix};
use std::ops::Range;
use std::sync::Arc;

/// A dense multivector distributed over a communicator in 1D block-row
/// layout.
#[derive(Debug, Clone)]
pub struct DistMultiVector {
    comm: Arc<dyn Communicator>,
    global_rows: usize,
    row_offset: usize,
    local: Matrix,
    /// Fault-detection guards for the Gram/norm reduces; `None` (the
    /// default) leaves every collective bitwise identical to the
    /// unguarded path.
    guard: Option<Arc<GuardContext>>,
}

impl DistMultiVector {
    /// Distribute `full` (the same global matrix passed on every rank) in
    /// block-row layout: rank `r` keeps row chunk `r` of
    /// [`parkit::chunk_ranges`]`(nrows, size)` — the same split
    /// `sparse::block_row_partition` produces.  On a single rank the local
    /// block is the whole matrix.
    pub fn from_matrix(comm: Arc<dyn Communicator>, full: Matrix) -> Self {
        let n = full.nrows();
        if comm.size() == 1 {
            return Self {
                comm,
                global_rows: n,
                row_offset: 0,
                local: full,
                guard: None,
            };
        }
        let ranges = parkit::chunk_ranges(n, comm.size());
        let (lo, hi) = match ranges.get(comm.rank()) {
            Some(r) => (r.start, r.end),
            None => (n, n), // more ranks than rows: empty local block
        };
        let mut local = Matrix::zeros(hi - lo, full.ncols());
        for j in 0..full.ncols() {
            local.col_mut(j).copy_from_slice(&full.col(j)[lo..hi]);
        }
        Self {
            comm,
            global_rows: n,
            row_offset: lo,
            local,
            guard: None,
        }
    }

    /// An all-zero distributed multivector from an explicit layout
    /// (`local_rows` rows starting at global row `row_offset` on this rank).
    pub fn zeros(
        comm: Arc<dyn Communicator>,
        global_rows: usize,
        local_rows: usize,
        row_offset: usize,
        cols: usize,
    ) -> Self {
        assert!(
            row_offset + local_rows <= global_rows,
            "local block [{row_offset}, {}) exceeds {global_rows} global rows",
            row_offset + local_rows
        );
        Self {
            comm,
            global_rows,
            row_offset,
            local: Matrix::zeros(local_rows, cols),
            guard: None,
        }
    }

    /// The communicator this multivector lives on.
    pub fn comm(&self) -> &Arc<dyn Communicator> {
        &self.comm
    }

    /// Attach (or detach) fault-detection guards: subsequent Gram and norm
    /// reduces are screened, retried and — on exhaustion — NaN-poisoned
    /// through `ctx`.  Guarded reduces perform exactly as many reductions
    /// as unguarded ones.
    pub fn set_guard(&mut self, guard: Option<Arc<GuardContext>>) {
        self.guard = guard;
    }

    /// The attached guard context, if any.
    pub fn guard(&self) -> Option<&Arc<GuardContext>> {
        self.guard.as_ref()
    }

    /// One all-reduce, routed through the guards when attached.  `screen`
    /// describes the healthy shape of the payload; with guards detached
    /// (or screening disabled by policy) this is exactly
    /// `comm.allreduce_sum`.
    fn reduce(&self, buf: &mut [f64], screen: Screen) {
        match &self.guard {
            Some(ctx) if ctx.policy().gram_screen => {
                ctx.allreduce(self.comm.as_ref(), buf, screen);
            }
            Some(ctx) if ctx.policy().agreement => {
                ctx.allreduce(self.comm.as_ref(), buf, Screen::None);
            }
            _ => self.comm.allreduce_sum(buf),
        }
    }

    /// Global row count.
    pub fn global_rows(&self) -> usize {
        self.global_rows
    }

    /// Rows owned by this rank.
    pub fn local_rows(&self) -> usize {
        self.local.nrows()
    }

    /// First global row owned by this rank.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Number of columns (replicated on every rank).
    pub fn local_cols_count(&self) -> usize {
        self.local.ncols()
    }

    /// The local row block.
    pub fn local(&self) -> &Matrix {
        &self.local
    }

    /// Mutable access to the local row block.
    pub fn local_mut(&mut self) -> &mut Matrix {
        &mut self.local
    }

    /// Read-only view of the local rows of columns `cols`.
    pub fn local_cols(&self, cols: Range<usize>) -> MatView<'_> {
        self.local.cols(cols)
    }

    /// Gram matrix `G = VᵀV` of the global columns `cols`.
    /// **1 global reduce** of `s²` words.
    pub fn gram(&self, cols: Range<usize>) -> Matrix {
        let mut g = dense::gram(&self.local.cols(cols));
        let s = g.nrows();
        self.reduce(g.data_mut(), Screen::Gram { offset: 0, s });
        g
    }

    /// Projection coefficients `P = Q_prevᵀ·V_new` of the global columns.
    /// **1 global reduce** of `k·s` words.
    pub fn proj(&self, prev: Range<usize>, new: Range<usize>) -> Matrix {
        assert!(prev.end <= new.start, "prev must precede new");
        let mut p = dense::gemm_tn(&self.local.cols(prev), &self.local.cols(new));
        self.comm.allreduce_sum(p.data_mut());
        p
    }

    /// Fused `P = Q_prevᵀ·V_new` **and** `G = V_newᵀ·V_new` with a
    /// **single global reduce** of `k·s + s²` words — the one-reduce fusion
    /// of BCGS-PIP (Fig. 4a of the paper) and of both stages of the
    /// two-stage scheme.
    pub fn proj_and_gram(&self, prev: Range<usize>, new: Range<usize>) -> (Matrix, Matrix) {
        assert!(prev.end <= new.start, "prev must precede new");
        let k = prev.end - prev.start;
        let s = new.end - new.start;
        let _span = trace::span2("mv", "proj_and_gram", "k", k as u64, "s", s as u64);
        let p_local = dense::gemm_tn(&self.local.cols(prev), &self.local.cols(new.clone()));
        let g_local = dense::gram(&self.local.cols(new));
        let mut buf = Vec::with_capacity(k * s + s * s);
        buf.extend_from_slice(p_local.data());
        buf.extend_from_slice(g_local.data());
        self.reduce(&mut buf, Screen::Gram { offset: k * s, s });
        let p = Matrix::from_col_major(k, s, buf[..k * s].to_vec());
        let g = Matrix::from_col_major(s, s, buf[k * s..].to_vec());
        (p, g)
    }

    /// BCGS vector update `V_new ← V_new − Q_prev·P` (local, no
    /// communication).
    pub fn update(&mut self, prev: Range<usize>, new: Range<usize>, p: &Matrix) {
        assert!(prev.end <= new.start, "prev must precede new");
        let s = new.end - new.start;
        let (head, mut tail) = self.local.split_at_col(new.start);
        let q = head.cols(prev);
        let mut v = tail.cols_mut(0..s);
        dense::gemm_nn_minus(&mut v, &q, p);
    }

    /// Fused BCGS update **and** re-projection inner products: applies
    /// `W = V_new − Q_prev·P` in place and returns
    /// `(C, G) = (Q_prevᵀ·W, Wᵀ·W)` with a **single global reduce** of
    /// `k·s + s²` words.
    ///
    /// This is the dual of [`proj_and_gram`]: where that kernel fuses the
    /// two inner products *before* an update, this one fuses the update
    /// with the inner products the *next* Cholesky needs, so the two-sync
    /// reorthogonalization schemes (BCGS-IRO-2S / BCGS-PIP2, and the
    /// two-stage scheme's shifted second-stage path) touch each row of the
    /// panel once per synchronization instead of twice.  Locally the pass
    /// is [`dense::fused_update_proj_gram`].
    ///
    /// With an empty `prev` the update is a no-op and `C` is `0×s`; the
    /// call is **routed** to the dedicated symmetric [`dense::gram`] kernel
    /// instead of the fused pass (still one reduce, of `s²` words).  The
    /// routing decision depends only on the shape (`k == 0`), never on
    /// timing, so repeated runs stay bitwise-identical.  For `k > 0` the
    /// fused single pass is unconditionally the faster formulation: it
    /// moves `n·(k + 2s)` words where the separate sweeps move
    /// `n·(2k + 3s)`.
    ///
    /// [`proj_and_gram`]: Self::proj_and_gram
    /// [`gram`]: Self::gram
    pub fn update_and_gram(
        &mut self,
        prev: Range<usize>,
        new: Range<usize>,
        p: &Matrix,
    ) -> (Matrix, Matrix) {
        assert!(prev.end <= new.start, "prev must precede new");
        let k = prev.end - prev.start;
        let s = new.end - new.start;
        let _span = trace::span2("mv", "update_and_gram", "k", k as u64, "s", s as u64);
        let (head, mut tail) = self.local.split_at_col(new.start);
        let q = head.cols(prev);
        let mut v = tail.cols_mut(0..s);
        let (c_local, g_local) = if k == 0 {
            (Matrix::zeros(0, s), dense::gram(&v.as_view()))
        } else {
            dense::fused_update_proj_gram(&mut v, &q, p)
        };
        let mut buf = Vec::with_capacity(k * s + s * s);
        buf.extend_from_slice(c_local.data());
        buf.extend_from_slice(g_local.data());
        self.reduce(&mut buf, Screen::Gram { offset: k * s, s });
        let c = Matrix::from_col_major(k, s, buf[..k * s].to_vec());
        let g = Matrix::from_col_major(s, s, buf[k * s..].to_vec());
        (c, g)
    }

    /// Sketched panel `S·V` of the global columns `cols`.  **1 global
    /// reduce** of [`SketchOp::reduce_words`]`(s)` words (the slot table —
    /// Θ(c·s)).  The result is replicated and, because every slot of the
    /// exchange has exactly one owning rank, **bitwise identical across
    /// rank and thread counts** for a fixed seed.
    pub fn sketch(&self, op: &SketchOp, cols: Range<usize>) -> Matrix {
        assert_eq!(
            op.global_rows(),
            self.global_rows,
            "sketch operator was realized for a different row dimension"
        );
        let s = cols.end - cols.start;
        let _span = trace::span2("mv", "sketch", "c", op.rows() as u64, "s", s as u64);
        let mut buf = vec![0.0; op.slots() * s];
        op.fill_slots(&mut buf, &self.local.cols(cols), self.row_offset);
        self.reduce(&mut buf, Screen::None);
        op.combine_slots(&buf, s)
    }

    /// Fused projection coefficients `P = Q_prevᵀ·V_new` **and** sketched
    /// panel `S·V_new` with a **single global reduce** of
    /// `k·s + `[`SketchOp::reduce_words`]`(s)` words — the one-reduce
    /// fusion the sketched first-stage schemes are built on, replacing
    /// [`proj_and_gram`]'s Gram block with the sketch slot table.
    ///
    /// [`proj_and_gram`]: Self::proj_and_gram
    pub fn sketch_and_proj(
        &self,
        op: &SketchOp,
        prev: Range<usize>,
        new: Range<usize>,
    ) -> (Matrix, Matrix) {
        assert!(prev.end <= new.start, "prev must precede new");
        assert_eq!(
            op.global_rows(),
            self.global_rows,
            "sketch operator was realized for a different row dimension"
        );
        let k = prev.end - prev.start;
        let s = new.end - new.start;
        let _span = trace::span2("mv", "sketch_and_proj", "k", k as u64, "s", s as u64);
        let p_local = dense::gemm_tn(&self.local.cols(prev), &self.local.cols(new.clone()));
        let mut buf = vec![0.0; k * s + op.slots() * s];
        buf[..k * s].copy_from_slice(p_local.data());
        op.fill_slots(&mut buf[k * s..], &self.local.cols(new), self.row_offset);
        self.reduce(&mut buf, Screen::None);
        let p = Matrix::from_col_major(k, s, buf[..k * s].to_vec());
        let sv = op.combine_slots(&buf[k * s..], s);
        (p, sv)
    }

    /// Triangular normalization `V ← V·R⁻¹` of the columns `cols` (local,
    /// no communication).
    pub fn scale_right(&mut self, cols: Range<usize>, r: &Matrix) {
        let mut v = self.local.cols_mut(cols);
        dense::trsm_right_upper(&mut v, r);
    }

    /// Scale column `col` by `alpha` (local, no communication).
    pub fn scale_col(&mut self, col: usize, alpha: f64) {
        dense::scal(alpha, self.local.col_mut(col));
    }

    /// Global 2-norm of column `col`.  **1 global reduce** of one word
    /// (two words when guarded — the duplicated-word screen — but still a
    /// single reduction).
    pub fn norm2(&self, col: usize) -> f64 {
        let c = self.local.col(col);
        let local = dense::dot(c, c);
        if let Some(ctx) = &self.guard {
            if ctx.policy().gram_screen || ctx.policy().agreement {
                return ctx.norm_reduce(self.comm.as_ref(), local);
            }
        }
        self.comm.allreduce_sum_scalar(local).max(0.0).sqrt()
    }

    /// Global dot product of columns `a` and `b`.  **1 global reduce** of
    /// one word.
    pub fn dot(&self, a: usize, b: usize) -> f64 {
        let local = dense::dot(self.local.col(a), self.local.col(b));
        self.comm.allreduce_sum_scalar(local)
    }

    /// `col_dst ← col_dst + alpha·col_src` (local, no communication).
    pub fn axpy_col(&mut self, alpha: f64, src: usize, dst: usize) {
        assert_ne!(src, dst, "axpy_col: source and destination must differ");
        let n = self.local.nrows();
        let data = self.local.data_mut();
        if src < dst {
            let (head, tail) = data.split_at_mut(dst * n);
            dense::axpy(alpha, &head[src * n..(src + 1) * n], &mut tail[..n]);
        } else {
            let (head, tail) = data.split_at_mut(src * n);
            dense::axpy(alpha, &tail[..n], &mut head[dst * n..(dst + 1) * n]);
        }
    }

    /// Gather the full global matrix onto every rank (one allgather; test
    /// and diagnostic helper — O(n·c) words, not for hot paths).
    ///
    /// Requires every rank to own the same number of rows or the layouts
    /// produced by [`from_matrix`]/`block_row_partition`; rows are
    /// reassembled by each rank's `row_offset`.
    pub fn gather_global(&self) -> Matrix {
        let size = self.comm.size();
        if size == 1 {
            return self.local.clone();
        }
        let cols = self.local.ncols();
        // Ship (row_offset, local_rows, data...) padded to a common length.
        let mut counts = vec![0.0; size];
        self.comm
            .allgather(&[self.local.nrows() as f64], &mut counts);
        let max_rows = counts.iter().fold(0.0f64, |a, &b| a.max(b)) as usize;
        let mut send = vec![0.0; 2 + max_rows * cols];
        send[0] = self.row_offset as f64;
        send[1] = self.local.nrows() as f64;
        for j in 0..cols {
            send[2 + j * max_rows..2 + j * max_rows + self.local.nrows()]
                .copy_from_slice(self.local.col(j));
        }
        let mut recv = vec![0.0; send.len() * size];
        self.comm.allgather(&send, &mut recv);
        let mut full = Matrix::zeros(self.global_rows, cols);
        for r in 0..size {
            let block = &recv[r * send.len()..(r + 1) * send.len()];
            let offset = block[0] as usize;
            let rows = block[1] as usize;
            for j in 0..cols {
                full.col_mut(j)[offset..offset + rows]
                    .copy_from_slice(&block[2 + j * max_rows..2 + j * max_rows + rows]);
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialComm;
    use crate::thread::run_ranks;

    fn test_matrix(n: usize, c: usize) -> Matrix {
        Matrix::from_fn(n, c, |i, j| {
            ((i * 17 + j * 29) % 37) as f64 * 0.21 - 2.0 + if i % (j + 2) == 1 { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn serial_kernels_match_dense_references() {
        let v = test_matrix(200, 8);
        let mv = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let g = mv.gram(2..6);
        let g_ref = dense::gram(&v.cols(2..6));
        assert_eq!(g, g_ref);
        let p = mv.proj(0..3, 3..7);
        let p_ref = dense::gemm_tn(&v.cols(0..3), &v.cols(3..7));
        assert_eq!(p, p_ref);
        let (p2, g2) = mv.proj_and_gram(0..3, 3..7);
        assert_eq!(p2, p_ref);
        assert_eq!(g2, dense::gram(&v.cols(3..7)));
    }

    #[test]
    fn proj_and_gram_is_one_reduce_and_proj_plus_gram_is_two() {
        let v = test_matrix(150, 6);
        let mv = DistMultiVector::from_matrix(SerialComm::new(), v);
        let before = mv.comm().stats().snapshot();
        let _ = mv.proj_and_gram(0..2, 2..5);
        assert_eq!(mv.comm().stats().snapshot().since(&before).allreduces, 1);
        let before = mv.comm().stats().snapshot();
        let _ = mv.proj(0..2, 2..5);
        let _ = mv.gram(2..5);
        assert_eq!(mv.comm().stats().snapshot().since(&before).allreduces, 2);
    }

    #[test]
    fn update_and_gram_is_one_reduce_and_matches_separate_kernels() {
        let v = test_matrix(300, 8);
        let p_seed = {
            let mv = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            mv.proj(0..3, 3..7)
        };
        // Fused path: exactly one allreduce of k·s + s² words.
        let mut fused = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let before = fused.comm().stats().snapshot();
        let (c, g) = fused.update_and_gram(0..3, 3..7, &p_seed);
        let delta = fused.comm().stats().snapshot().since(&before);
        assert_eq!(delta.allreduces, 1, "update_and_gram must be one reduce");
        assert_eq!(delta.allreduce_words, 3 * 4 + 4 * 4);
        // Separate path: update (0 reduces) + proj + gram (2 reduces).
        let mut sep = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let before = sep.comm().stats().snapshot();
        sep.update(0..3, 3..7, &p_seed);
        let c_ref = sep.proj(0..3, 3..7);
        let g_ref = sep.gram(3..7);
        let delta = sep.comm().stats().snapshot().since(&before);
        assert_eq!(delta.allreduces, 2, "separate path costs two reduces");
        // Same updated panel, same inner products (to rounding: the fused
        // accumulation is row-blocked).
        assert_eq!(fused.local(), sep.local(), "updated panels must agree");
        for j in 0..4 {
            for i in 0..3 {
                assert!((c[(i, j)] - c_ref[(i, j)]).abs() < 1e-12 * c_ref.max_abs().max(1.0));
            }
            for i in 0..4 {
                assert!((g[(i, j)] - g_ref[(i, j)]).abs() < 1e-12 * g_ref.max_abs().max(1.0));
            }
        }
    }

    #[test]
    fn update_and_gram_with_empty_prev_is_gram() {
        let v = test_matrix(150, 5);
        let mut mv = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let before = mv.comm().stats().snapshot();
        let (c, g) = mv.update_and_gram(0..0, 0..5, &Matrix::zeros(0, 5));
        assert_eq!(mv.comm().stats().snapshot().since(&before).allreduces, 1);
        assert_eq!(c.nrows(), 0);
        assert_eq!(c.ncols(), 5);
        let g_ref = mv.gram(0..5);
        for j in 0..5 {
            for i in 0..5 {
                assert!((g[(i, j)] - g_ref[(i, j)]).abs() < 1e-12 * g_ref.max_abs());
            }
        }
        assert_eq!(mv.local(), &v, "empty-prev update must not modify V");
    }

    #[test]
    fn update_and_gram_matches_across_rank_counts() {
        let n = 203; // deliberately not divisible by the rank count
        let v = test_matrix(n, 7);
        let mut serial = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let p = serial.proj(0..3, 3..7);
        let (c_ref, g_ref) = serial.update_and_gram(0..3, 3..7, &p);
        for nranks in [2usize, 3, 4] {
            let results = run_ranks(nranks, |comm| {
                let mut mv = DistMultiVector::from_matrix(comm, v.clone());
                let before = mv.comm().stats().snapshot();
                let (c, g) = mv.update_and_gram(0..3, 3..7, &p);
                let reduces = mv.comm().stats().snapshot().since(&before).allreduces;
                (c, g, reduces, mv.gather_global())
            });
            for (c, g, reduces, full) in &results {
                assert_eq!(*reduces, 1, "one reduce on every rank count");
                for j in 0..4 {
                    for i in 0..3 {
                        assert!((c[(i, j)] - c_ref[(i, j)]).abs() < 1e-10 * c_ref.max_abs());
                    }
                    for i in 0..4 {
                        assert!((g[(i, j)] - g_ref[(i, j)]).abs() < 1e-10 * g_ref.max_abs());
                    }
                }
                for j in 0..7 {
                    for i in 0..n {
                        assert!((full[(i, j)] - serial.local()[(i, j)]).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_kernels_match_serial_to_rounding() {
        let n = 203; // deliberately not divisible by the rank count
        let v = test_matrix(n, 7);
        let serial = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let g_ref = serial.gram(0..7);
        let p_ref = serial.proj(0..3, 3..7);
        for nranks in [2usize, 3, 4] {
            let results = run_ranks(nranks, |comm| {
                let mv = DistMultiVector::from_matrix(comm, v.clone());
                (
                    mv.gram(0..7),
                    mv.proj(0..3, 3..7),
                    mv.norm2(1),
                    mv.dot(0, 2),
                )
            });
            for (g, p, norm, dot) in &results {
                for j in 0..7 {
                    for i in 0..7 {
                        assert!((g[(i, j)] - g_ref[(i, j)]).abs() < 1e-10 * g_ref.max_abs());
                    }
                }
                for j in 0..4 {
                    for i in 0..3 {
                        assert!((p[(i, j)] - p_ref[(i, j)]).abs() < 1e-10 * p_ref.max_abs());
                    }
                }
                assert!((norm - serial.norm2(1)).abs() < 1e-10);
                assert!((dot - serial.dot(0, 2)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn update_and_scale_right_are_local_and_correct() {
        let v = test_matrix(120, 6);
        let mut mv = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let p = mv.proj(0..2, 2..5);
        let before = mv.comm().stats().snapshot();
        mv.update(0..2, 2..5, &p);
        let r = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.0, 1.5, -0.5], &[0.0, 0.0, 3.0]]);
        mv.scale_right(2..5, &r);
        mv.scale_col(5, 2.0);
        mv.axpy_col(0.5, 0, 5);
        assert_eq!(
            mv.comm().stats().snapshot().since(&before).allreduces,
            0,
            "update/scale/axpy must not communicate"
        );
        // Reference: same operations densely.
        let mut reference = v.clone();
        let q = reference.cols_owned(0..2);
        let mut block = reference.cols_mut(2..5);
        dense::gemm_nn_minus(&mut block, &q.view(), &p);
        dense::trsm_right_upper(&mut block, &r);
        dense::scal(2.0, reference.col_mut(5));
        let c0 = reference.col(0).to_vec();
        for (dst, s) in reference.col_mut(5).iter_mut().zip(&c0) {
            *dst += 0.5 * s;
        }
        assert_eq!(mv.local(), &reference);
    }

    #[test]
    fn from_matrix_partitions_like_block_row_partition() {
        let n = 101;
        let v = test_matrix(n, 3);
        let parts = run_ranks(3, |comm| {
            let mv = DistMultiVector::from_matrix(comm, v.clone());
            (mv.row_offset(), mv.local_rows())
        });
        let reference = sparse::block_row_partition(n, 3);
        let mut covered = 0;
        for (rank, (offset, rows)) in parts.iter().enumerate() {
            let (lo, hi) = reference.range(rank);
            assert_eq!((*offset, offset + rows), (lo, hi));
            assert_eq!(*offset, covered);
            covered += rows;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn gather_global_round_trips() {
        let n = 57;
        let v = test_matrix(n, 4);
        let results = run_ranks(3, |comm| {
            let mv = DistMultiVector::from_matrix(comm, v.clone());
            mv.gather_global()
        });
        for full in results {
            assert_eq!(full, v);
        }
    }
}
