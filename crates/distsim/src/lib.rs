//! # distsim — a simulated distributed-memory runtime
//!
//! The paper's contribution is communication-avoidance: the two-stage
//! scheme performs **one global reduction per s-step panel** (plus one per
//! big panel), versus five for BCGS2 + CholQR2.  Validating that claim
//! requires a substrate that actually *executes and counts* collective
//! operations.  This crate provides one, small enough to reason about and
//! faithful enough that the same solver code runs unchanged on a single
//! rank or on a simulated multi-rank group:
//!
//! * [`Communicator`] — the object-safe collective-communication interface
//!   (`allreduce_sum`, `broadcast`, `allgather`, point-to-point
//!   `send`/`recv`, `barrier`), always held as `Arc<dyn Communicator>`;
//! * [`SerialComm`] — the zero-cost single-rank communicator (collectives
//!   are no-ops that still count, so serial runs audit the same reduction
//!   structure as distributed ones);
//! * [`run_ranks`] — launch an `n`-rank group on scoped threads with
//!   barrier-synchronized, deterministically combined collectives and
//!   FIFO-mailbox point-to-point messaging;
//! * [`CommStats`] / [`CommStatsSnapshot`] — per-communicator operation and
//!   word counters; `stats().snapshot()`, [`CommStatsSnapshot::since`] and
//!   [`CommStatsSnapshot::merge`] are how the tests, benches and the
//!   performance model audit the paper's reduction counts;
//! * [`DistMultiVector`] — the 1D block-row distributed Krylov basis with
//!   the fused kernels the orthogonalization schemes need (`gram`, `proj`,
//!   `proj_and_gram`, `update`, `scale_right`, ...), each documenting how
//!   many global reductions it performs;
//! * [`DistCsr`] — a 1D block-row distributed CSR matrix whose SpMV does
//!   the neighborhood (halo) exchange with point-to-point messages, as the
//!   paper's MPI runs do.  Construction is **streamed**
//!   ([`DistCsr::from_row_source`] / [`DistCsr::from_row_stream`] /
//!   [`DistCsr::from_partitioned`]): each rank materializes only its own
//!   row block — `O(nnz/P + halo)` peak memory — and the exchange plan is
//!   negotiated by the [`assembly`] planner; [`DistCsr::from_global`] is a
//!   thin wrapper streaming a replicated matrix through the same path;
//! * [`FaultyComm`] / [`FaultPlan`] — a deterministic fault-injection
//!   wrapper over any communicator (bit-flips, dropped/duplicated
//!   messages, transient collective failures, rank stalls), seeded and
//!   bitwise replayable;
//! * [`GuardPolicy`] / [`GuardContext`] — low-overhead detection guards
//!   (Gram-symmetry screening, duplicated norm words, cross-rank
//!   agreement probes, checksummed halo frames) with bounded collective
//!   retry and NaN-poisoning for cycle-level rollback.  The `guards-off`
//!   cargo feature compiles the whole layer out, like `trace`'s `off`.
//!
//! Determinism: collective reductions combine per-rank contributions in
//! rank order, so a given rank count always produces bitwise-identical
//! results; serial and multi-rank runs agree to rounding (the summation
//! *order* differs, the reduction *structure* does not).

pub mod assembly;
pub mod comm;
pub mod csr;
pub mod fault;
pub mod guard;
pub mod multivector;
pub mod serial;
pub mod sketch;
pub mod stats;
pub mod thread;

pub use assembly::{plan_halo_exchange, HaloPlan};
pub use comm::{default_recv_timeout, CommError, Communicator};
pub use csr::DistCsr;
pub use fault::{
    FaultEvent, FaultKind, FaultPlan, FaultRates, FaultyComm, Injection, OpKind, Target,
};
pub use guard::{GuardContext, GuardCounts, GuardEvent, GuardPolicy, Screen};
pub use multivector::DistMultiVector;
pub use serial::SerialComm;
pub use sketch::{SketchConfig, SketchOp, SKETCH_NNZ_PER_ROW};
pub use stats::{CommStats, CommStatsSnapshot, PeerTally};
pub use thread::{run_ranks, ThreadComm};
