//! Low-overhead fault-detection guards and in-place recovery.
//!
//! The s-step solver's communication surface is tiny — Gram-matrix
//! all-reduces, one-word norm reduces, and the halo exchange of the
//! matrix-powers kernel — and each of those carries algebraic structure
//! that a fault almost certainly breaks.  The guards exploit that
//! structure instead of paying for generic duplication:
//!
//! * **Gram screen** — the reduced Gram matrix `Vᵀ·V` is *bitwise*
//!   symmetric: each rank's local contribution `dense::gram` fills both
//!   triangles from one fused product, and the rank-ordered collective sum
//!   preserves the bit pattern.  Any single corrupted off-diagonal word
//!   breaks symmetry; diagonal words must be finite and non-negative
//!   (they are sums of squares).  Cost: an `O(s²)` comparison per reduce,
//!   no extra communication.
//! * **Duplicated norm words** — a residual-norm reduce is the 1×1 Gram of
//!   the residual; symmetry degenerates, so the contribution is sent
//!   twice in one payload (`[dot, dot]`, still one reduction).  A single
//!   flip anywhere makes the two replicated sums differ bitwise.
//! * **Agreement probe** — the solver's control decisions replicate a
//!   scalar (the cycle residual norm) on every rank; divergence there is
//!   the one fault that silently desynchronizes ranks.  The probe encodes
//!   the staged scalar's bits as two exact small integers and folds a
//!   signed combination into the *next* guarded reduce: the extra words
//!   sum to exactly `0.0` iff every rank staged the same bit pattern.
//!   Zero extra reductions.
//! * **Halo checksum** — each halo message is framed with a per-peer
//!   sequence number and a mixed XOR checksum.  A flipped bit anywhere in
//!   the frame is detected; a dropped message surfaces as a sequence gap
//!   or a receive timeout; a duplicated message is discarded exactly.
//!
//! Detection verdicts on collectives are **replicated** by construction —
//! every screen reads only the post-reduce buffer, which is identical on
//! all ranks — so the bounded retry
//! ([`Communicator::allreduce_sum_retry`]) is itself a safe collective.
//! When retries are exhausted (or a halo message is unrecoverable) the
//! payload is *poisoned* with NaN, which flows into the next Cholesky
//! factorization as a breakdown: the solver's existing cycle-rollback and
//! step-shrinking machinery then recovers from the last restart vector.
//! That layering — retry, poison, rollback, degrade — is the recovery
//! ladder described in the README.
//!
//! Everything here is gated on [`GuardPolicy`]; with all guards disabled
//! (the default) no `GuardContext` is ever allocated and the solver's
//! communication is bitwise identical to the unguarded build.  The
//! `guards-off` cargo feature additionally pins [`GuardPolicy::any_enabled`]
//! to `false` at compile time so the whole layer folds away, mirroring the
//! `trace` crate's `off` feature.

use crate::comm::Communicator;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which guards run, and how persistent recovery is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Screen reduced Gram matrices (finiteness, bitwise symmetry,
    /// non-negative diagonal) and duplicate the words of norm reduces.
    pub gram_screen: bool,
    /// Frame halo-exchange messages with sequence numbers and checksums.
    pub halo_checksum: bool,
    /// Piggyback a cross-rank agreement probe for replicated scalars on
    /// guarded reduces.
    pub agreement: bool,
    /// How many times a failed collective is retried before its payload is
    /// poisoned and the cycle rolled back.
    pub max_retries: usize,
    /// Patience of a guarded halo receive before the message is written
    /// off (milliseconds).
    pub halo_timeout_ms: u64,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            gram_screen: false,
            halo_checksum: false,
            agreement: false,
            max_retries: 2,
            halo_timeout_ms: 5_000,
        }
    }
}

impl GuardPolicy {
    /// Every guard on, with default retry/timeout budgets.
    pub fn all() -> Self {
        GuardPolicy {
            gram_screen: true,
            halo_checksum: true,
            agreement: true,
            ..GuardPolicy::default()
        }
    }

    /// Whether any guard is active.  Compiled to `false` under the
    /// `guards-off` cargo feature, so guarded call sites fold down to
    /// their unguarded bodies.
    pub fn any_enabled(&self) -> bool {
        if cfg!(feature = "guards-off") {
            return false;
        }
        self.gram_screen || self.halo_checksum || self.agreement
    }
}

/// What a guarded reduce's payload should look like when healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Screen {
    /// The payload ends (at `offset`) with an `s × s` column-major Gram
    /// block: everything finite, block bitwise symmetric, diagonal
    /// non-negative.
    Gram {
        /// Start of the Gram block within the payload.
        offset: usize,
        /// Block dimension.
        s: usize,
    },
    /// The payload is a non-negative scalar duplicated as `[x, x]`:
    /// finite, bitwise-equal halves, non-negative.
    NormDup,
    /// Finiteness only.
    Finite,
    /// No screening — used to carry an agreement probe on a reduce whose
    /// payload the policy does not screen.
    None,
}

fn screen_ok(buf: &[f64], screen: Screen) -> bool {
    if screen == Screen::None {
        return true;
    }
    if buf.iter().any(|v| !v.is_finite()) {
        return false;
    }
    match screen {
        Screen::None => unreachable!(),
        Screen::Finite => true,
        Screen::NormDup => {
            debug_assert_eq!(buf.len(), 2);
            buf[0].to_bits() == buf[1].to_bits() && buf[0] >= 0.0
        }
        Screen::Gram { offset, s } => {
            let g = &buf[offset..offset + s * s];
            for i in 0..s {
                if g[i * s + i] < 0.0 {
                    return false;
                }
                for j in (i + 1)..s {
                    if g[i * s + j].to_bits() != g[j * s + i].to_bits() {
                        return false;
                    }
                }
            }
            true
        }
    }
}

/// One detected fault, as the guards saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardEvent {
    /// Which guard fired: `"gram_screen"`, `"norm_dup"`, `"agreement"`,
    /// `"halo_checksum"`, `"halo_seq"`, `"halo_timeout"`.
    pub guard: &'static str,
    /// Solver phase tag in effect (see [`crate::fault::set_phase`]).
    pub phase: &'static str,
    /// `"recovered"` (fixed in place), `"poisoned"` (handed to the
    /// cycle-rollback ladder), or `"unrecovered"`.
    pub outcome: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// Snapshot of a [`GuardContext`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardCounts {
    /// Faults detected by any guard.
    pub detected: usize,
    /// Faults fully recovered in place (successful retry, discarded
    /// duplicate).
    pub recovered: usize,
    /// Faults that exhausted in-place recovery and were handed to the
    /// cycle-rollback ladder as poisoned payloads (pending resolution).
    pub poisoned: usize,
    /// Faults that defeated the ladder.
    pub unrecovered: usize,
    /// Collective retries issued.
    pub retries: usize,
}

#[derive(Debug, Default)]
struct HaloState {
    /// Next sequence number per destination peer.
    send_seq: HashMap<usize, u64>,
    /// Next expected sequence number per source peer.
    recv_seq: HashMap<usize, u64>,
    /// Early-arrived frames per source peer, keyed by sequence number.
    stash: HashMap<usize, BTreeMap<u64, Vec<f64>>>,
}

/// Per-rank guard state: counters, the fault-event log, agreement-probe
/// staging, and halo sequencing.  Interior-mutable so it can sit behind an
/// `Arc` next to the communicator.
#[derive(Debug)]
pub struct GuardContext {
    policy: GuardPolicy,
    detected: AtomicUsize,
    recovered: AtomicUsize,
    poisoned: AtomicUsize,
    unrecovered: AtomicUsize,
    retries: AtomicUsize,
    events: Mutex<Vec<GuardEvent>>,
    /// Scalar staged for the next agreement probe.
    staged: Mutex<Option<f64>>,
    /// Set when a probe detects cross-rank divergence; the solver takes it
    /// and rolls the cycle back.
    alarm: AtomicBool,
    halo: Mutex<HaloState>,
}

impl GuardContext {
    /// Fresh per-rank guard state for the given policy.
    pub fn new(policy: GuardPolicy) -> Arc<GuardContext> {
        Arc::new(GuardContext {
            policy,
            detected: AtomicUsize::new(0),
            recovered: AtomicUsize::new(0),
            poisoned: AtomicUsize::new(0),
            unrecovered: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            events: Mutex::new(Vec::new()),
            staged: Mutex::new(None),
            alarm: AtomicBool::new(false),
            halo: Mutex::new(HaloState::default()),
        })
    }

    /// The policy this context was built with.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Current counter values.
    pub fn counts(&self) -> GuardCounts {
        GuardCounts {
            detected: self.detected.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            unrecovered: self.unrecovered.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    /// The fault-event log so far, in detection order.
    pub fn events(&self) -> Vec<GuardEvent> {
        self.events
            .lock()
            .expect("guard event log poisoned")
            .clone()
    }

    fn record(&self, guard: &'static str, outcome: &'static str, detail: String) {
        trace::instant("guard", guard);
        self.detected.fetch_add(1, Ordering::Relaxed);
        match outcome {
            "recovered" => {
                self.recovered.fetch_add(1, Ordering::Relaxed);
            }
            "poisoned" => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.unrecovered.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.events
            .lock()
            .expect("guard event log poisoned")
            .push(GuardEvent {
                guard,
                phase: crate::fault::current_phase(),
                outcome,
                detail,
            });
    }

    /// Resolve `n` pending poisoned faults: the solver calls this when the
    /// cycle rollback that absorbs them completes (recovered) or when it
    /// gives up (unrecovered).
    pub fn resolve_poisoned(&self, n: usize, recovered: bool) {
        let n = n.min(self.poisoned.load(Ordering::Relaxed));
        self.poisoned.fetch_sub(n, Ordering::Relaxed);
        if recovered {
            self.recovered.fetch_add(n, Ordering::Relaxed);
        } else {
            self.unrecovered.fetch_add(n, Ordering::Relaxed);
        }
    }

    // ----- agreement probe -------------------------------------------------

    /// Stage a replicated scalar for cross-rank agreement checking; the
    /// probe rides on the next guarded reduce.
    pub fn stage_agreement(&self, value: f64) {
        if self.policy.agreement {
            *self.staged.lock().expect("agreement stage poisoned") = Some(value);
        }
    }

    /// Take (and clear) the divergence alarm.
    pub fn take_alarm(&self) -> bool {
        self.alarm.swap(false, Ordering::Relaxed)
    }

    /// The probe contribution for a staged value: the value's 64 bit
    /// pattern split into two 32-bit halves, each an exactly-representable
    /// integer.  Rank 0 contributes `+(size-1)·half`, every other rank
    /// `-half`, so the collective sum is exactly `0.0` iff all ranks
    /// staged the same bits (exact as long as `(size-1)·half < 2^53`,
    /// i.e. for any group smaller than 2^21 ranks).
    fn probe_words(value: f64, rank: usize, size: usize) -> [f64; 2] {
        let bits = value.to_bits();
        let hi = (bits >> 32) as u32 as f64;
        let lo = bits as u32 as f64;
        if rank == 0 {
            let n = (size - 1) as f64;
            [n * hi, n * lo]
        } else {
            [-hi, -lo]
        }
    }

    // ----- guarded collectives ---------------------------------------------

    /// Guarded drop-in for [`Communicator::allreduce_sum`]: screens the
    /// replicated result, retries boundedly on detection, and poisons the
    /// buffer with NaN when retries are exhausted.  Returns `false` when
    /// poisoned.  Exactly one reduction in the fault-free case; an
    /// agreement probe staged via [`stage_agreement`](Self::stage_agreement)
    /// is folded into the same reduction.
    pub fn allreduce(&self, comm: &dyn Communicator, buf: &mut [f64], screen: Screen) -> bool {
        let n = buf.len();
        let staged = self.staged.lock().expect("agreement stage poisoned").take();
        let mut contribution = Vec::with_capacity(n + 2);
        contribution.extend_from_slice(buf);
        if let Some(v) = staged {
            contribution.extend_from_slice(&Self::probe_words(v, comm.rank(), comm.size()));
        }
        let saved = contribution.clone();
        let mut payload = contribution;
        comm.allreduce_sum(&mut payload);
        let mut ok = screen_ok(&payload[..n], screen);
        if !ok {
            let mut attempts = 0;
            while !ok && attempts < self.policy.max_retries {
                attempts += 1;
                self.retries.fetch_add(1, Ordering::Relaxed);
                payload.copy_from_slice(&saved);
                comm.allreduce_sum_retry(&mut payload);
                ok = screen_ok(&payload[..n], screen);
            }
            let guard = match screen {
                Screen::NormDup => "norm_dup",
                _ => "gram_screen",
            };
            if ok {
                self.record(
                    guard,
                    "recovered",
                    format!("corrupted {n}-word reduce recovered after {attempts} retr(ies)"),
                );
            } else {
                self.record(
                    guard,
                    "poisoned",
                    format!(
                        "{n}-word reduce still corrupt after {attempts} retr(ies); \
                         payload poisoned for cycle rollback"
                    ),
                );
                buf.fill(f64::NAN);
                return false;
            }
        }
        // The probe reads the *accepted* payload, so a retried reduce is
        // re-probed for free.
        if staged.is_some() {
            let hi = payload[n];
            let lo = payload[n + 1];
            if hi != 0.0 || lo != 0.0 {
                self.alarm.store(true, Ordering::Relaxed);
                self.record(
                    "agreement",
                    "poisoned",
                    format!("replicated-scalar divergence (probe sums {hi}, {lo})"),
                );
            }
        }
        buf.copy_from_slice(&payload[..n]);
        true
    }

    /// Guarded replacement for the one-word norm reduce: the local sum of
    /// squares is sent as a duplicated pair (one reduction, two words) and
    /// screened with [`Screen::NormDup`].  Returns NaN when unrecoverable
    /// (which downstream convergence logic treats as a breakdown).
    pub fn norm_reduce(&self, comm: &dyn Communicator, local_sq: f64) -> f64 {
        if !self.policy.gram_screen {
            let mut buf = [local_sq];
            if !self.allreduce(comm, &mut buf, Screen::None) {
                return f64::NAN;
            }
            return buf[0].max(0.0).sqrt();
        }
        let mut buf = [local_sq, local_sq];
        if !self.allreduce(comm, &mut buf, Screen::NormDup) {
            return f64::NAN;
        }
        buf[0].sqrt()
    }

    // ----- guarded halo exchange -------------------------------------------

    /// Frame a halo payload for a guarded send to `peer`: sequence word,
    /// checksum word, then the payload.
    pub fn send_halo(&self, comm: &dyn Communicator, peer: usize, payload: &[f64]) {
        let seq = {
            let mut halo = self.halo.lock().expect("halo state poisoned");
            let c = halo.send_seq.entry(peer).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        comm.send(peer, &encode_halo_frame(seq, payload));
    }

    /// Receive one guarded halo message from `peer`.  Returns the payload,
    /// or `None` when this round's message is written off (timeout,
    /// checksum mismatch, or a sequence gap proving a drop) — the caller
    /// poisons the affected ghost values, and the NaN cascade hands the
    /// cycle to the rollback ladder.  Duplicated messages are discarded
    /// exactly; early-arrived frames are stashed for their round.
    pub fn recv_halo(
        &self,
        comm: &dyn Communicator,
        from: usize,
        want_words: usize,
    ) -> Option<Vec<f64>> {
        let expected = {
            let mut halo = self.halo.lock().expect("halo state poisoned");
            let c = halo.recv_seq.entry(from).or_insert(0);
            let s = *c;
            // One logical message per round: written off or delivered, the
            // round is consumed.
            *c += 1;
            if let Some(frame) = halo
                .stash
                .get_mut(&from)
                .and_then(|pending| pending.remove(&s))
            {
                return Some(frame);
            }
            s
        };
        let timeout = Duration::from_millis(self.policy.halo_timeout_ms);
        loop {
            let frame = match comm.recv_timeout(from, timeout) {
                Ok(frame) => frame,
                Err(err) => {
                    self.record("halo_timeout", "poisoned", err.to_string());
                    return None;
                }
            };
            let Some((seq, payload)) = decode_halo_frame(&frame) else {
                self.record(
                    "halo_checksum",
                    "poisoned",
                    format!("corrupt halo frame from rank {from} (round {expected})"),
                );
                return None;
            };
            if payload.len() != want_words {
                self.record(
                    "halo_checksum",
                    "poisoned",
                    format!(
                        "halo frame from rank {from}: {} words, expected {want_words}",
                        payload.len()
                    ),
                );
                return None;
            }
            match seq.cmp(&expected) {
                std::cmp::Ordering::Equal => return Some(payload.to_vec()),
                std::cmp::Ordering::Less => {
                    // A duplicate (or a stalled message from a written-off
                    // round): discard and keep waiting — full recovery.
                    self.record(
                        "halo_seq",
                        "recovered",
                        format!("discarded duplicate halo frame {seq} from rank {from}"),
                    );
                }
                std::cmp::Ordering::Greater => {
                    // Sequence gap: this round's message was dropped and a
                    // later round's frame arrived early.  Stash it for its
                    // round and write this round off.
                    self.halo
                        .lock()
                        .expect("halo state poisoned")
                        .stash
                        .entry(from)
                        .or_default()
                        .insert(seq, payload.to_vec());
                    self.record(
                        "halo_seq",
                        "poisoned",
                        format!(
                            "halo frame {expected} from rank {from} missing \
                             (frame {seq} arrived instead: message dropped)"
                        ),
                    );
                    return None;
                }
            }
        }
    }
}

/// Mix a sequence number and payload bits into a 64-bit checksum.  Word
/// positions are rotated into the fold so reordered or displaced words are
/// caught, not just flipped bits.
fn halo_checksum(seq: u64, payload: &[f64]) -> u64 {
    let mut c = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
    for (i, w) in payload.iter().enumerate() {
        c ^= w.to_bits().rotate_left((i % 63) as u32 + 1);
        c = c.wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    c
}

/// Frame a guarded halo message: `[seq, checksum, payload...]`, with the
/// two control words carried as raw bit patterns (the transport moves
/// `f64` words verbatim, so NaN-pattern bit payloads survive).
pub fn encode_halo_frame(seq: u64, payload: &[f64]) -> Vec<f64> {
    let mut frame = Vec::with_capacity(payload.len() + 2);
    frame.push(f64::from_bits(seq));
    frame.push(f64::from_bits(halo_checksum(seq, payload)));
    frame.extend_from_slice(payload);
    frame
}

/// Decode a guarded halo frame; `None` when the checksum does not match
/// (a flipped bit anywhere in the frame, including the control words).
pub fn decode_halo_frame(frame: &[f64]) -> Option<(u64, &[f64])> {
    if frame.len() < 2 {
        return None;
    }
    let seq = frame[0].to_bits();
    let checksum = frame[1].to_bits();
    let payload = &frame[2..];
    if halo_checksum(seq, payload) != checksum {
        return None;
    }
    Some((seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyComm, OpKind, Target};
    use crate::serial::SerialComm;
    use crate::thread::run_ranks;

    fn flip_plan(rank: usize, seq: u64, word: usize) -> FaultPlan {
        FaultPlan::none().with(
            Target::nth(OpKind::Allreduce, seq).on_rank(rank),
            FaultKind::BitFlip {
                word: Some(word),
                bit: 62,
            },
        )
    }

    #[test]
    fn gram_screen_accepts_a_healthy_reduce() {
        let ctx = GuardContext::new(GuardPolicy::all());
        let comm = SerialComm::new();
        // 2×2 Gram of [[1,2],[2,8]] — symmetric, nonneg diagonal.
        let mut g = [1.0, 2.0, 2.0, 8.0];
        assert!(ctx.allreduce(comm.as_ref(), &mut g, Screen::Gram { offset: 0, s: 2 }));
        assert_eq!(g, [1.0, 2.0, 2.0, 8.0]);
        assert_eq!(ctx.counts(), GuardCounts::default());
        assert_eq!(comm.stats().snapshot().allreduces, 1);
        assert_eq!(comm.stats().snapshot().allreduce_retries, 0);
    }

    #[test]
    fn gram_screen_detects_and_retries_a_contribution_flip() {
        let results = run_ranks(3, |comm| {
            // Rank 1's first allreduce contribution gets an off-diagonal
            // bit flipped; the retry (the second allreduce op) is clean.
            let faulty = FaultyComm::wrap(comm, flip_plan(1, 0, 1));
            let ctx = GuardContext::new(GuardPolicy::all());
            let mut g = [1.0, 2.0, 2.0, 8.0];
            let ok = ctx.allreduce(faulty.as_ref(), &mut g, Screen::Gram { offset: 0, s: 2 });
            (ok, g, ctx.counts(), faulty.stats().snapshot())
        });
        for (ok, g, counts, stats) in results {
            assert!(ok);
            assert_eq!(g, [3.0, 6.0, 6.0, 24.0], "recovered the true sum");
            assert_eq!(counts.detected, 1);
            assert_eq!(counts.recovered, 1);
            assert_eq!(counts.retries, 1);
            assert_eq!(stats.allreduces, 1, "retries audit separately");
            assert_eq!(stats.allreduce_retries, 1);
        }
    }

    #[test]
    fn exhausted_retries_poison_the_payload() {
        let results = run_ranks(2, |comm| {
            // Flip every allreduce this rank-0 issues (seq 0, 1, 2): the
            // first attempt and both retries stay corrupt.
            let plan = FaultPlan::none()
                .with(
                    Target::nth(OpKind::Allreduce, 0).on_rank(0),
                    FaultKind::BitFlip {
                        word: Some(1),
                        bit: 62,
                    },
                )
                .with(
                    Target::nth(OpKind::Allreduce, 1).on_rank(0),
                    FaultKind::BitFlip {
                        word: Some(1),
                        bit: 62,
                    },
                )
                .with(
                    Target::nth(OpKind::Allreduce, 2).on_rank(0),
                    FaultKind::BitFlip {
                        word: Some(1),
                        bit: 62,
                    },
                );
            let faulty = FaultyComm::wrap(comm, plan);
            let ctx = GuardContext::new(GuardPolicy::all());
            let mut g = [1.0, 2.0, 2.0, 8.0];
            let ok = ctx.allreduce(faulty.as_ref(), &mut g, Screen::Gram { offset: 0, s: 2 });
            (ok, g, ctx.counts())
        });
        for (ok, g, counts) in results {
            assert!(!ok);
            assert!(g.iter().all(|v| v.is_nan()), "payload poisoned");
            assert_eq!(counts.detected, 1);
            assert_eq!(counts.poisoned, 1);
            assert_eq!(counts.retries, 2, "bounded by max_retries");
        }
    }

    #[test]
    fn poisoned_faults_resolve_into_recovered_or_not() {
        let ctx = GuardContext::new(GuardPolicy::all());
        ctx.record("gram_screen", "poisoned", "test".into());
        ctx.record("gram_screen", "poisoned", "test".into());
        ctx.resolve_poisoned(1, true);
        ctx.resolve_poisoned(1, false);
        let c = ctx.counts();
        assert_eq!((c.poisoned, c.recovered, c.unrecovered), (0, 1, 1));
    }

    #[test]
    fn norm_dup_catches_a_flip_in_the_one_word_reduce() {
        let results = run_ranks(2, |comm| {
            let faulty = FaultyComm::wrap(comm, flip_plan(0, 0, 0));
            let ctx = GuardContext::new(GuardPolicy::all());
            let norm = ctx.norm_reduce(faulty.as_ref(), 8.0);
            (norm, ctx.counts(), faulty.stats().snapshot())
        });
        for (norm, counts, stats) in results {
            assert_eq!(norm, 4.0, "sqrt(8 + 8) recovered exactly");
            assert_eq!(counts.detected, 1);
            assert_eq!(counts.recovered, 1);
            assert_eq!(stats.allreduces, 1, "duplication costs words, not reduces");
        }
    }

    #[test]
    fn agreement_probe_passes_when_ranks_agree() {
        let results = run_ranks(3, |comm| {
            let ctx = GuardContext::new(GuardPolicy::all());
            ctx.stage_agreement(0.123456789);
            let mut buf = [1.0];
            ctx.allreduce(comm.as_ref(), &mut buf, Screen::Finite);
            (buf[0], ctx.take_alarm(), ctx.counts().detected)
        });
        for (sum, alarm, detected) in results {
            assert_eq!(sum, 3.0, "probe words are stripped from the result");
            assert!(!alarm);
            assert_eq!(detected, 0);
        }
    }

    #[test]
    fn agreement_probe_flags_a_divergent_rank() {
        let results = run_ranks(3, |comm| {
            let ctx = GuardContext::new(GuardPolicy::all());
            let v = if comm.rank() == 2 {
                // One ulp off: the divergence a plain equality of rounded
                // prints would miss.
                f64::from_bits(0.123456789f64.to_bits() + 1)
            } else {
                0.123456789
            };
            ctx.stage_agreement(v);
            let mut buf = [1.0];
            ctx.allreduce(comm.as_ref(), &mut buf, Screen::Finite);
            (buf[0], ctx.take_alarm())
        });
        for (sum, alarm) in results {
            assert_eq!(sum, 3.0);
            assert!(alarm, "every rank sees the same replicated alarm");
        }
    }

    #[test]
    fn agreement_probe_is_exact_for_single_rank_groups() {
        let ctx = GuardContext::new(GuardPolicy::all());
        let comm = SerialComm::new();
        ctx.stage_agreement(42.0);
        let mut buf = [1.0];
        assert!(ctx.allreduce(comm.as_ref(), &mut buf, Screen::Finite));
        assert!(!ctx.take_alarm());
    }

    #[test]
    fn halo_frame_roundtrips_and_catches_every_single_bit_flip() {
        let payload = [1.5, -2.25, 1e-300, 0.0];
        let frame = encode_halo_frame(7, &payload);
        let (seq, got) = decode_halo_frame(&frame).expect("clean frame decodes");
        assert_eq!(seq, 7);
        assert_eq!(got, payload);
        for word in 0..frame.len() {
            for bit in 0..64 {
                let mut corrupt = frame.clone();
                corrupt[word] = f64::from_bits(corrupt[word].to_bits() ^ (1u64 << bit));
                let decoded = decode_halo_frame(&corrupt);
                match decoded {
                    None => {}
                    Some((s, p)) => {
                        // A flip in the seq word that still checksums is
                        // impossible; a flip must change something.
                        assert!(
                            s != 7 || p != payload,
                            "undetected flip at word {word} bit {bit}"
                        );
                        panic!("checksum missed a flip at word {word} bit {bit}");
                    }
                }
            }
        }
    }

    #[test]
    fn guarded_halo_delivers_in_order_payloads() {
        let results = run_ranks(2, |comm| {
            let ctx = GuardContext::new(GuardPolicy::all());
            if comm.rank() == 0 {
                ctx.send_halo(comm.as_ref(), 1, &[1.0, 2.0]);
                ctx.send_halo(comm.as_ref(), 1, &[3.0, 4.0]);
                Vec::new()
            } else {
                vec![
                    ctx.recv_halo(comm.as_ref(), 0, 2),
                    ctx.recv_halo(comm.as_ref(), 0, 2),
                ]
            }
        });
        assert_eq!(results[1], vec![Some(vec![1.0, 2.0]), Some(vec![3.0, 4.0])]);
    }

    #[test]
    fn guarded_halo_discards_duplicates_exactly() {
        let results = run_ranks(2, |comm| {
            let plan = FaultPlan::none().with(
                Target::nth(OpKind::Send, 0).on_rank(0),
                FaultKind::DuplicateMessage,
            );
            let faulty = FaultyComm::wrap(comm, plan);
            let ctx = GuardContext::new(GuardPolicy::all());
            if faulty.rank() == 0 {
                ctx.send_halo(faulty.as_ref(), 1, &[1.0]);
                ctx.send_halo(faulty.as_ref(), 1, &[2.0]);
                (Vec::new(), GuardCounts::default())
            } else {
                let got = vec![
                    ctx.recv_halo(faulty.as_ref(), 0, 1),
                    ctx.recv_halo(faulty.as_ref(), 0, 1),
                ];
                (got, ctx.counts())
            }
        });
        let (got, counts) = &results[1];
        assert_eq!(got, &vec![Some(vec![1.0]), Some(vec![2.0])]);
        assert_eq!(counts.detected, 1, "the duplicate was seen");
        assert_eq!(counts.recovered, 1, "and fully recovered");
    }

    #[test]
    fn guarded_halo_survives_a_dropped_message_via_the_stash() {
        let results = run_ranks(2, |comm| {
            let plan = FaultPlan::none().with(
                Target::nth(OpKind::Send, 0).on_rank(0),
                FaultKind::DropMessage,
            );
            let faulty = FaultyComm::wrap(comm, plan);
            let mut policy = GuardPolicy::all();
            policy.halo_timeout_ms = 2_000;
            let ctx = GuardContext::new(policy);
            if faulty.rank() == 0 {
                ctx.send_halo(faulty.as_ref(), 1, &[1.0]); // dropped
                ctx.send_halo(faulty.as_ref(), 1, &[2.0]);
                (Vec::new(), GuardCounts::default())
            } else {
                // Round 0's frame never arrives; round 1's arrives early,
                // proving the drop without waiting out the timeout.
                let got = vec![
                    ctx.recv_halo(faulty.as_ref(), 0, 1),
                    ctx.recv_halo(faulty.as_ref(), 0, 1),
                ];
                (got, ctx.counts())
            }
        });
        let (got, counts) = &results[1];
        assert_eq!(
            got,
            &vec![None, Some(vec![2.0])],
            "round 0 written off, round 1 served from the stash"
        );
        assert_eq!(counts.detected, 1);
        assert_eq!(counts.poisoned, 1, "the drop is handed to the ladder");
    }

    #[test]
    fn guarded_halo_times_out_on_a_silent_peer() {
        let results = run_ranks(2, |comm| {
            let mut policy = GuardPolicy::all();
            policy.halo_timeout_ms = 50;
            let ctx = GuardContext::new(policy);
            if comm.rank() == 0 {
                // Send nothing.
                (None, GuardCounts::default())
            } else {
                let got = ctx.recv_halo(comm.as_ref(), 0, 1);
                (got, ctx.counts())
            }
        });
        let (got, counts) = &results[1];
        assert_eq!(*got, None);
        assert_eq!(counts.detected, 1);
        assert_eq!(counts.poisoned, 1);
        assert_eq!(counts.recovered, 0);
    }

    #[test]
    fn guarded_halo_detects_an_in_flight_flip() {
        let results = run_ranks(2, |comm| {
            let plan = FaultPlan::none().with(
                Target::nth(OpKind::Send, 0).on_rank(0),
                FaultKind::BitFlip {
                    word: Some(2),
                    bit: 17,
                },
            );
            let faulty = FaultyComm::wrap(comm, plan);
            let mut policy = GuardPolicy::all();
            policy.halo_timeout_ms = 2_000;
            let ctx = GuardContext::new(policy);
            if faulty.rank() == 0 {
                ctx.send_halo(faulty.as_ref(), 1, &[1.0, 2.0]);
                (None, GuardCounts::default())
            } else {
                (ctx.recv_halo(faulty.as_ref(), 0, 2), ctx.counts())
            }
        });
        let (got, counts) = &results[1];
        assert_eq!(*got, None, "corrupt frame is rejected, ghosts poisoned");
        assert_eq!(counts.detected, 1);
        assert_eq!(counts.poisoned, 1);
    }

    #[cfg(not(feature = "guards-off"))]
    #[test]
    fn any_enabled_reflects_the_policy() {
        assert!(!GuardPolicy::default().any_enabled());
        assert!(GuardPolicy::all().any_enabled());
    }

    #[cfg(feature = "guards-off")]
    #[test]
    fn guards_off_feature_pins_any_enabled_false() {
        assert!(!GuardPolicy::all().any_enabled());
    }
}
