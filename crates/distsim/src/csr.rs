//! The 1D block-row distributed CSR matrix with halo-exchange SpMV.
//!
//! The paper distributes matrices "among MPI processes in 1D block row
//! format"; before each local SpMV a rank must receive the ghost entries of
//! `x` its off-diagonal couplings reference (the neighborhood exchange of
//! the matrix-powers kernel).
//!
//! Construction is **streamed**: a rank supplies only its own row block —
//! from a [`RowSource`] generator ([`DistCsr::from_row_source`]), a plain
//! row iterator ([`DistCsr::from_row_stream`]), or an already-assembled
//! local block with global columns ([`DistCsr::from_partitioned`], e.g.
//! from `sparse::mm::read_matrix_market_row_block`) — so peak per-rank
//! memory is `O(nnz/P + halo)` instead of `O(nnz)`
//! (`crates/distsim/tests/streamed_assembly_memory.rs` enforces this with
//! an allocation-tracking harness).  The halo/recv/send plan is negotiated
//! by the shared planner in [`crate::assembly`];
//! [`DistCsr::from_global`] remains as a thin wrapper that streams the rows
//! of a replicated matrix through the same path, so every replicated call
//! site exercises the streamed code and the two constructions are bitwise
//! identical.  [`DistCsr::spmv`] executes the plan with point-to-point
//! messages (counted in [`CommStats`](crate::CommStats)) and then runs the
//! purely local CSR SpMV.

use crate::assembly::{local_ghosts, normalize_local_block, plan_halo_exchange, HaloPlan};
use crate::comm::Communicator;
use sparse::{Csr, RowPartition, RowSource};
use std::sync::Arc;

/// A CSR matrix distributed over a communicator in 1D block-row layout.
#[derive(Debug)]
pub struct DistCsr {
    comm: Arc<dyn Communicator>,
    global_rows: usize,
    row_offset: usize,
    /// Local row block; columns `0..local_rows` are owned, columns
    /// `local_rows..` are ghosts in the order of `plan.ghost_globals`.
    local: Csr,
    plan: HaloPlan,
}

impl DistCsr {
    /// Build the distributed matrix from this rank's **local row block**
    /// (rows `part.range(comm.rank())`, columns still global) — the
    /// lowest-level streamed constructor; the other constructors produce
    /// the block and delegate here.
    ///
    /// Collective: every rank must call it (the halo plan is negotiated
    /// with two halo-sized all-gathers; see [`crate::assembly`]).  Rows
    /// with unsorted or duplicate columns are normalized exactly as
    /// `Csr::from_triplets` would.
    pub fn from_partitioned(
        comm: Arc<dyn Communicator>,
        part: &RowPartition,
        local_block: Csr,
    ) -> Self {
        assert_eq!(
            part.nranks(),
            comm.size(),
            "partition has {} ranks but the communicator has {}",
            part.nranks(),
            comm.size()
        );
        let n = part.nrows();
        let rank = comm.rank();
        let (lo, hi) = part.range(rank);
        assert_eq!(
            local_block.nrows(),
            hi - lo,
            "rank {rank} owns rows {lo}..{hi} but the local block has {} rows",
            local_block.nrows()
        );
        assert_eq!(
            local_block.ncols(),
            n,
            "the local block must carry global column indices (ncols = {n})"
        );
        let ghosts = local_ghosts(&local_block, lo, hi);
        let plan = plan_halo_exchange(comm.as_ref(), part, ghosts);
        let local = normalize_local_block(local_block, lo, plan.ghost_globals());
        Self {
            comm,
            global_rows: n,
            row_offset: lo,
            local,
            plan,
        }
    }

    /// Build the distributed matrix by streaming this rank's rows from a
    /// [`RowSource`] — a stencil/surrogate generator or any operator that
    /// can produce rows on demand.  The local block is assembled with
    /// [`sparse::rows::assemble_rows`] (two passes: count, then fill into
    /// exactly-sized arrays); the global matrix is never materialized
    /// anywhere.
    pub fn from_row_source<S: RowSource>(
        comm: Arc<dyn Communicator>,
        part: &RowPartition,
        source: &S,
    ) -> Self {
        let n = part.nrows();
        assert_eq!(source.nrows(), n, "partition does not cover the matrix");
        assert_eq!(
            source.ncols(),
            n,
            "1D block-row distribution needs a square operator"
        );
        let (lo, hi) = part.range(comm.rank());
        let local = sparse::rows::assemble_rows(source, lo..hi);
        Self::from_partitioned(comm, part, local)
    }

    /// Build the distributed matrix from an iterator over this rank's rows
    /// (in row order, one `(columns, values)` pair per owned row, columns
    /// global) — the constructor for rows arriving from an external
    /// producer that can be consumed only once.
    pub fn from_row_stream<I>(comm: Arc<dyn Communicator>, part: &RowPartition, rows: I) -> Self
    where
        I: IntoIterator<Item = (Vec<usize>, Vec<f64>)>,
    {
        let n = part.nrows();
        let (lo, hi) = part.range(comm.rank());
        let nloc = hi - lo;
        let mut rowptr = Vec::with_capacity(nloc + 1);
        rowptr.push(0usize);
        let mut colind = Vec::new();
        let mut vals = Vec::new();
        for (row_cols, row_vals) in rows {
            assert_eq!(
                row_cols.len(),
                row_vals.len(),
                "row {}: columns and values must have equal length",
                rowptr.len() - 1
            );
            colind.extend_from_slice(&row_cols);
            vals.extend_from_slice(&row_vals);
            rowptr.push(colind.len());
        }
        assert_eq!(
            rowptr.len() - 1,
            nloc,
            "rank {} owns {nloc} rows but the stream produced {}",
            comm.rank(),
            rowptr.len() - 1
        );
        let local = Csr::from_raw(nloc, n, rowptr, colind, vals);
        Self::from_partitioned(comm, part, local)
    }

    /// Build the distributed matrix from the replicated global matrix `a`
    /// and the row partition `part` (one entry per rank of `comm`).
    ///
    /// Thin wrapper over [`DistCsr::from_row_source`]: the replicated
    /// matrix acts as the row provider for this rank's block, so every
    /// call site exercises the streamed assembly path and produces exactly
    /// the storage and exchange plan a streamed construction would.
    pub fn from_global(comm: Arc<dyn Communicator>, a: &Csr, part: &RowPartition) -> Self {
        assert_eq!(
            part.nrows(),
            a.nrows(),
            "partition does not cover the matrix"
        );
        Self::from_row_source(comm, part, a)
    }

    /// The communicator this matrix lives on.
    pub fn comm(&self) -> &Arc<dyn Communicator> {
        &self.comm
    }

    /// Global row count.
    pub fn global_rows(&self) -> usize {
        self.global_rows
    }

    /// First global row owned by this rank.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// The local row block (columns `0..local_rows()` owned, then ghosts).
    pub fn local_matrix(&self) -> &Csr {
        &self.local
    }

    /// Rows owned by this rank.
    pub fn local_rows(&self) -> usize {
        self.local.nrows()
    }

    /// Number of ghost columns this rank receives per SpMV.
    pub fn num_ghosts(&self) -> usize {
        self.plan.recv_words()
    }

    /// The halo-exchange plan (ghost list, per-peer send/receive volumes) —
    /// what the performance model's message-volume terms are validated
    /// against.
    pub fn halo_plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// Distributed `y = A·x` on the local blocks: halo exchange
    /// (point-to-point, counted) followed by the local SpMV.
    pub fn spmv(&self, x_local: &[f64], y_local: &mut [f64]) {
        let nloc = self.local.nrows();
        assert_eq!(x_local.len(), nloc, "spmv: x length mismatch");
        assert_eq!(y_local.len(), nloc, "spmv: y length mismatch");
        if self.comm.size() == 1 {
            let _span = trace::span1("spmv", "local", "rows", nloc as u64);
            self.local.spmv(x_local, y_local);
            return;
        }
        // Post all sends first (mailboxes are non-blocking), then receive.
        {
            let _span = trace::span1(
                "spmv",
                "halo_pack_send",
                "peers",
                self.plan.send.len() as u64,
            );
            for block in &self.plan.send {
                let payload: Vec<f64> = block.local_indices.iter().map(|&i| x_local[i]).collect();
                self.comm.send(block.peer, &payload);
            }
        }
        let mut x_ext = vec![0.0; nloc + self.plan.recv_words()];
        x_ext[..nloc].copy_from_slice(x_local);
        {
            let _span = trace::span1("spmv", "halo_wait", "peers", self.plan.recv.len() as u64);
            for block in &self.plan.recv {
                let data = self.comm.recv(block.peer);
                assert_eq!(
                    data.len(),
                    block.len,
                    "halo exchange: peer {} sent {} values, expected {}",
                    block.peer,
                    data.len(),
                    block.len
                );
                x_ext[nloc + block.start..nloc + block.start + block.len].copy_from_slice(&data);
            }
        }
        let _span = trace::span1("spmv", "local", "rows", nloc as u64);
        self.local.spmv(&x_ext, y_local);
    }

    /// [`spmv`](Self::spmv) with an optional checksummed halo exchange.
    ///
    /// With `guard` absent (or halo checksums disabled by its policy) this
    /// is exactly [`spmv`](Self::spmv).  Otherwise every halo message is
    /// framed with a per-peer sequence number and checksum
    /// ([`crate::guard::encode_halo_frame`]): corrupted frames, dropped
    /// messages (sequence gaps or receive timeouts) and duplicates are
    /// detected at the receiver.  Duplicates are discarded exactly; an
    /// unrecoverable message poisons the affected ghost values with NaN,
    /// which cascades into the next Gram reduce as a breakdown and hands
    /// the cycle to the solver's rollback ladder.
    pub fn spmv_guarded(
        &self,
        x_local: &[f64],
        y_local: &mut [f64],
        guard: Option<&crate::guard::GuardContext>,
    ) {
        let ctx = match guard {
            Some(ctx) if ctx.policy().halo_checksum && self.comm.size() > 1 => ctx,
            _ => return self.spmv(x_local, y_local),
        };
        let nloc = self.local.nrows();
        assert_eq!(x_local.len(), nloc, "spmv: x length mismatch");
        assert_eq!(y_local.len(), nloc, "spmv: y length mismatch");
        {
            let _span = trace::span1(
                "spmv",
                "halo_pack_send",
                "peers",
                self.plan.send.len() as u64,
            );
            for block in &self.plan.send {
                let payload: Vec<f64> = block.local_indices.iter().map(|&i| x_local[i]).collect();
                ctx.send_halo(self.comm.as_ref(), block.peer, &payload);
            }
        }
        let mut x_ext = vec![0.0; nloc + self.plan.recv_words()];
        x_ext[..nloc].copy_from_slice(x_local);
        {
            let _span = trace::span1("spmv", "halo_wait", "peers", self.plan.recv.len() as u64);
            for block in &self.plan.recv {
                let ghosts = &mut x_ext[nloc + block.start..nloc + block.start + block.len];
                match ctx.recv_halo(self.comm.as_ref(), block.peer, block.len) {
                    Some(data) => ghosts.copy_from_slice(&data),
                    None => ghosts.fill(f64::NAN),
                }
            }
        }
        let _span = trace::span1("spmv", "local", "rows", nloc as u64);
        self.local.spmv(&x_ext, y_local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialComm;
    use crate::thread::run_ranks;
    use sparse::{block_row_partition, laplace2d_5pt, laplace2d_9pt, Laplace2d9ptRows};

    #[test]
    fn serial_dist_csr_is_the_global_matrix() {
        let a = laplace2d_9pt(8, 8);
        let part = block_row_partition(a.nrows(), 1);
        let dist = DistCsr::from_global(SerialComm::new(), &a, &part);
        assert_eq!(dist.global_rows(), a.nrows());
        assert_eq!(dist.row_offset(), 0);
        assert_eq!(dist.num_ghosts(), 0);
        assert_eq!(dist.local_matrix(), &a, "serial local block is the matrix");
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y = vec![0.0; a.nrows()];
        dist.spmv(&x, &mut y);
        assert_eq!(y, a.spmv_alloc(&x));
    }

    #[test]
    fn distributed_spmv_matches_serial_on_laplace2d_9pt() {
        let a = laplace2d_9pt(13, 11);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 19) as f64) * 0.25 - 1.0).collect();
        let y_ref = a.spmv_alloc(&x);
        for nranks in [2usize, 3, 5] {
            let part = block_row_partition(n, nranks);
            let pieces = run_ranks(nranks, |comm| {
                let rank = comm.rank();
                let (lo, hi) = part.range(rank);
                let dist = DistCsr::from_global(comm, &a, &part);
                let mut y = vec![0.0; hi - lo];
                dist.spmv(&x[lo..hi], &mut y);
                (lo, y)
            });
            let mut y = vec![0.0; n];
            for (lo, block) in &pieces {
                y[*lo..lo + block.len()].copy_from_slice(block);
            }
            for (p, q) in y.iter().zip(&y_ref) {
                assert!((p - q).abs() < 1e-13, "nranks {nranks}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn streamed_construction_from_a_generator_matches_from_global() {
        // The headline property: a rank building its block straight from
        // the stencil row source (never holding the global matrix) gets
        // bitwise the same local matrix, ghosts and SpMV as the replicated
        // path.
        let (nx, ny) = (12, 9);
        let source = Laplace2d9ptRows { nx, ny };
        let a = laplace2d_9pt(nx, ny);
        let n = a.nrows();
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 11 % 23) as f64) * 0.17 - 1.5)
            .collect();
        for nranks in [1usize, 3, 4] {
            let part = block_row_partition(n, nranks);
            let pairs = run_ranks(nranks, |comm| {
                let (lo, hi) = part.range(comm.rank());
                let replicated = DistCsr::from_global(comm.clone(), &a, &part);
                let streamed = DistCsr::from_row_source(comm, &part, &source);
                assert_eq!(
                    streamed.local_matrix(),
                    replicated.local_matrix(),
                    "local blocks must be bitwise identical"
                );
                assert_eq!(streamed.halo_plan(), replicated.halo_plan());
                let mut y_s = vec![0.0; hi - lo];
                let mut y_r = vec![0.0; hi - lo];
                streamed.spmv(&x[lo..hi], &mut y_s);
                replicated.spmv(&x[lo..hi], &mut y_r);
                (y_s, y_r)
            });
            for (y_s, y_r) in pairs {
                assert_eq!(y_s, y_r, "nranks {nranks}: SpMV must be bitwise equal");
            }
        }
    }

    #[test]
    fn from_row_stream_consumes_an_iterator_once() {
        let a = laplace2d_5pt(9, 7);
        let n = a.nrows();
        let part = block_row_partition(n, 3);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
        let same = run_ranks(3, |comm| {
            let (lo, hi) = part.range(comm.rank());
            // A one-shot iterator handing out owned rows, as an external
            // producer (file reader, network stream) would.
            let rows = (lo..hi).map(|i| {
                let (c, v) = a.row(i);
                (c.to_vec(), v.to_vec())
            });
            let dist = DistCsr::from_row_stream(comm.clone(), &part, rows);
            let reference = DistCsr::from_global(comm, &a, &part);
            let mut y = vec![0.0; hi - lo];
            let mut y_ref = vec![0.0; hi - lo];
            dist.spmv(&x[lo..hi], &mut y);
            reference.spmv(&x[lo..hi], &mut y_ref);
            dist.local_matrix() == reference.local_matrix()
                && dist.halo_plan() == reference.halo_plan()
                && y == y_ref
        });
        assert!(
            same.into_iter().all(|s| s),
            "streamed rows must reproduce the replicated construction bitwise"
        );
    }

    #[test]
    fn from_partitioned_accepts_a_preassembled_block() {
        let a = laplace2d_5pt(8, 8);
        let n = a.nrows();
        let part = block_row_partition(n, 4);
        let results = run_ranks(4, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let block = a.row_block(lo, hi); // global columns
            let dist = DistCsr::from_partitioned(comm.clone(), &part, block);
            let reference = DistCsr::from_global(comm, &a, &part);
            dist.local_matrix() == reference.local_matrix()
                && dist.halo_plan() == reference.halo_plan()
        });
        assert!(results.into_iter().all(|same| same));
    }

    #[test]
    fn halo_exchange_message_counts_match_the_stencil_neighborhood() {
        // 5-point stencil, block rows: interior ranks talk to exactly the
        // two neighboring ranks, one message each way per SpMV.
        let a = laplace2d_5pt(12, 12);
        let n = a.nrows();
        let nranks = 4;
        let part = block_row_partition(n, nranks);
        let stats = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let dist = DistCsr::from_global(comm.clone(), &a, &part);
            let x = vec![1.0; hi - lo];
            let mut y = vec![0.0; hi - lo];
            let before = comm.stats().snapshot();
            dist.spmv(&x, &mut y);
            (rank, comm.stats().snapshot().since(&before))
        });
        for (rank, delta) in stats {
            let neighbors = if rank == 0 || rank == nranks - 1 {
                1
            } else {
                2
            };
            assert_eq!(delta.p2p_messages, neighbors, "rank {rank}");
            assert_eq!(delta.allreduces, 0, "SpMV must not use global reductions");
            // One grid row (12 values) exchanged per neighbor.
            assert_eq!(delta.p2p_words, neighbors * 12, "rank {rank}");
        }
    }

    #[test]
    fn repeated_spmv_reuses_the_plan() {
        let a = laplace2d_5pt(10, 10);
        let n = a.nrows();
        let part = block_row_partition(n, 2);
        let results = run_ranks(2, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let dist = DistCsr::from_global(comm, &a, &part);
            let mut x: Vec<f64> = (lo..hi).map(|i| i as f64).collect();
            let mut y = vec![0.0; hi - lo];
            // Power-iteration style repeated products.
            for _ in 0..3 {
                dist.spmv(&x, &mut y);
                std::mem::swap(&mut x, &mut y);
            }
            (lo, x)
        });
        // Serial reference.
        let mut x_ref: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for _ in 0..3 {
            x_ref = a.spmv_alloc(&x_ref);
        }
        for (lo, block) in &results {
            for (k, v) in block.iter().enumerate() {
                assert!((v - x_ref[lo + k]).abs() < 1e-10 * x_ref[lo + k].abs().max(1.0));
            }
        }
    }
}
