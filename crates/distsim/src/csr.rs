//! The 1D block-row distributed CSR matrix with halo-exchange SpMV.
//!
//! The paper distributes matrices "among MPI processes in 1D block row
//! format"; before each local SpMV a rank must receive the ghost entries of
//! `x` its off-diagonal couplings reference (the neighborhood exchange of
//! the matrix-powers kernel).  [`DistCsr::from_global`] builds the local
//! block with its columns remapped to `[owned | ghost]`, plus a static
//! exchange plan; [`DistCsr::spmv`] executes the plan with point-to-point
//! messages (counted in [`CommStats`](crate::CommStats)) and then runs the
//! purely local CSR SpMV.

use crate::comm::Communicator;
use sparse::{halo_columns, Csr, RowPartition, Triplet};
use std::sync::Arc;

/// Ghost values to receive from one peer: they land in
/// `ghost[start..start + len]`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RecvBlock {
    peer: usize,
    start: usize,
    len: usize,
}

/// Owned `x` entries one peer needs: local indices into this rank's block.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SendBlock {
    peer: usize,
    local_indices: Vec<usize>,
}

/// A CSR matrix distributed over a communicator in 1D block-row layout.
#[derive(Debug)]
pub struct DistCsr {
    comm: Arc<dyn Communicator>,
    global_rows: usize,
    row_offset: usize,
    /// Local row block; columns `0..local_rows` are owned, columns
    /// `local_rows..` are ghosts in the order of `ghost_globals`.
    local: Csr,
    /// Global indices of the ghost columns (sorted ascending).
    ghost_globals: Vec<usize>,
    recv_plan: Vec<RecvBlock>,
    send_plan: Vec<SendBlock>,
}

impl DistCsr {
    /// Build the distributed matrix from the replicated global matrix `a`
    /// and the row partition `part` (one entry per rank of `comm`).
    ///
    /// Every rank passes the same `a` and `part`; each keeps only its own
    /// row block and derives the halo-exchange plan locally, so
    /// construction needs no communication.
    pub fn from_global(comm: Arc<dyn Communicator>, a: &Csr, part: &RowPartition) -> Self {
        assert_eq!(
            part.nranks(),
            comm.size(),
            "partition has {} ranks but the communicator has {}",
            part.nranks(),
            comm.size()
        );
        assert_eq!(
            part.nrows(),
            a.nrows(),
            "partition does not cover the matrix"
        );
        let rank = comm.rank();
        let (lo, hi) = part.range(rank);
        let nloc = hi - lo;

        if comm.size() == 1 {
            return Self {
                comm,
                global_rows: a.nrows(),
                row_offset: 0,
                local: a.clone(),
                ghost_globals: Vec::new(),
                recv_plan: Vec::new(),
                send_plan: Vec::new(),
            };
        }

        // Ghost columns this rank needs, and the column remap
        // global -> [owned | ghost].
        let ghost_globals = halo_columns(a, lo, hi);
        let local_col = |c: usize| -> usize {
            if (lo..hi).contains(&c) {
                c - lo
            } else {
                nloc + ghost_globals
                    .binary_search(&c)
                    .expect("ghost column missing from halo")
            }
        };
        let mut triplets = Vec::new();
        for i in lo..hi {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push(Triplet {
                    row: i - lo,
                    col: local_col(c),
                    val: v,
                });
            }
        }
        let local = Csr::from_triplets(nloc, nloc + ghost_globals.len(), &triplets);

        // Receive plan: ghosts grouped by owning rank (ghosts are sorted by
        // global index and ownership is monotone, so groups are contiguous).
        let mut recv_plan: Vec<RecvBlock> = Vec::new();
        for (pos, &g) in ghost_globals.iter().enumerate() {
            let owner = part.owner(g);
            debug_assert_ne!(owner, rank, "owned column listed as ghost");
            match recv_plan.last_mut() {
                Some(block) if block.peer == owner => block.len += 1,
                _ => recv_plan.push(RecvBlock {
                    peer: owner,
                    start: pos,
                    len: 1,
                }),
            }
        }

        // Send plan: because `a` is replicated, this rank can compute every
        // peer's halo and keep the part it owns.
        let mut send_plan = Vec::new();
        for peer in 0..part.nranks() {
            if peer == rank {
                continue;
            }
            let (plo, phi) = part.range(peer);
            let needed: Vec<usize> = halo_columns(a, plo, phi)
                .into_iter()
                .filter(|&c| (lo..hi).contains(&c))
                .map(|c| c - lo)
                .collect();
            if !needed.is_empty() {
                send_plan.push(SendBlock {
                    peer,
                    local_indices: needed,
                });
            }
        }

        Self {
            comm,
            global_rows: a.nrows(),
            row_offset: lo,
            local,
            ghost_globals,
            recv_plan,
            send_plan,
        }
    }

    /// The communicator this matrix lives on.
    pub fn comm(&self) -> &Arc<dyn Communicator> {
        &self.comm
    }

    /// Global row count.
    pub fn global_rows(&self) -> usize {
        self.global_rows
    }

    /// First global row owned by this rank.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// The local row block (columns `0..local_rows()` owned, then ghosts).
    pub fn local_matrix(&self) -> &Csr {
        &self.local
    }

    /// Rows owned by this rank.
    pub fn local_rows(&self) -> usize {
        self.local.nrows()
    }

    /// Number of ghost columns this rank receives per SpMV.
    pub fn num_ghosts(&self) -> usize {
        self.ghost_globals.len()
    }

    /// Distributed `y = A·x` on the local blocks: halo exchange
    /// (point-to-point, counted) followed by the local SpMV.
    pub fn spmv(&self, x_local: &[f64], y_local: &mut [f64]) {
        let nloc = self.local.nrows();
        assert_eq!(x_local.len(), nloc, "spmv: x length mismatch");
        assert_eq!(y_local.len(), nloc, "spmv: y length mismatch");
        if self.comm.size() == 1 {
            self.local.spmv(x_local, y_local);
            return;
        }
        // Post all sends first (mailboxes are non-blocking), then receive.
        for block in &self.send_plan {
            let payload: Vec<f64> = block.local_indices.iter().map(|&i| x_local[i]).collect();
            self.comm.send(block.peer, &payload);
        }
        let mut x_ext = vec![0.0; nloc + self.ghost_globals.len()];
        x_ext[..nloc].copy_from_slice(x_local);
        for block in &self.recv_plan {
            let data = self.comm.recv(block.peer);
            assert_eq!(
                data.len(),
                block.len,
                "halo exchange: peer {} sent {} values, expected {}",
                block.peer,
                data.len(),
                block.len
            );
            x_ext[nloc + block.start..nloc + block.start + block.len].copy_from_slice(&data);
        }
        self.local.spmv(&x_ext, y_local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialComm;
    use crate::thread::run_ranks;
    use sparse::{block_row_partition, laplace2d_5pt, laplace2d_9pt};

    #[test]
    fn serial_dist_csr_is_the_global_matrix() {
        let a = laplace2d_9pt(8, 8);
        let part = block_row_partition(a.nrows(), 1);
        let dist = DistCsr::from_global(SerialComm::new(), &a, &part);
        assert_eq!(dist.global_rows(), a.nrows());
        assert_eq!(dist.row_offset(), 0);
        assert_eq!(dist.num_ghosts(), 0);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y = vec![0.0; a.nrows()];
        dist.spmv(&x, &mut y);
        assert_eq!(y, a.spmv_alloc(&x));
    }

    #[test]
    fn distributed_spmv_matches_serial_on_laplace2d_9pt() {
        let a = laplace2d_9pt(13, 11);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 19) as f64) * 0.25 - 1.0).collect();
        let y_ref = a.spmv_alloc(&x);
        for nranks in [2usize, 3, 5] {
            let part = block_row_partition(n, nranks);
            let pieces = run_ranks(nranks, |comm| {
                let rank = comm.rank();
                let (lo, hi) = part.range(rank);
                let dist = DistCsr::from_global(comm, &a, &part);
                let mut y = vec![0.0; hi - lo];
                dist.spmv(&x[lo..hi], &mut y);
                (lo, y)
            });
            let mut y = vec![0.0; n];
            for (lo, block) in &pieces {
                y[*lo..lo + block.len()].copy_from_slice(block);
            }
            for (p, q) in y.iter().zip(&y_ref) {
                assert!((p - q).abs() < 1e-13, "nranks {nranks}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn halo_exchange_message_counts_match_the_stencil_neighborhood() {
        // 5-point stencil, block rows: interior ranks talk to exactly the
        // two neighboring ranks, one message each way per SpMV.
        let a = laplace2d_5pt(12, 12);
        let n = a.nrows();
        let nranks = 4;
        let part = block_row_partition(n, nranks);
        let stats = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let (lo, hi) = part.range(rank);
            let dist = DistCsr::from_global(comm.clone(), &a, &part);
            let x = vec![1.0; hi - lo];
            let mut y = vec![0.0; hi - lo];
            let before = comm.stats().snapshot();
            dist.spmv(&x, &mut y);
            (rank, comm.stats().snapshot().since(&before))
        });
        for (rank, delta) in stats {
            let neighbors = if rank == 0 || rank == nranks - 1 {
                1
            } else {
                2
            };
            assert_eq!(delta.p2p_messages, neighbors, "rank {rank}");
            assert_eq!(delta.allreduces, 0, "SpMV must not use global reductions");
            // One grid row (12 values) exchanged per neighbor.
            assert_eq!(delta.p2p_words, neighbors * 12, "rank {rank}");
        }
    }

    #[test]
    fn repeated_spmv_reuses_the_plan() {
        let a = laplace2d_5pt(10, 10);
        let n = a.nrows();
        let part = block_row_partition(n, 2);
        let results = run_ranks(2, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let dist = DistCsr::from_global(comm, &a, &part);
            let mut x: Vec<f64> = (lo..hi).map(|i| i as f64).collect();
            let mut y = vec![0.0; hi - lo];
            // Power-iteration style repeated products.
            for _ in 0..3 {
                dist.spmv(&x, &mut y);
                std::mem::swap(&mut x, &mut y);
            }
            (lo, x)
        });
        // Serial reference.
        let mut x_ref: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for _ in 0..3 {
            x_ref = a.spmv_alloc(&x_ref);
        }
        for (lo, block) in &results {
            for (k, v) in block.iter().enumerate() {
                assert!((v - x_ref[lo + k]).abs() < 1e-10 * x_ref[lo + k].abs().max(1.0));
            }
        }
    }
}
