//! Thread-backed rank groups: [`run_ranks`] and [`ThreadComm`].
//!
//! Each simulated rank is one scoped thread holding an
//! `Arc<dyn Communicator>` backed by a shared collective-state block.
//! Collectives are barrier-synchronized: every rank deposits its
//! contribution, the last arrival combines them **in rank order** (so a
//! given rank count is bitwise deterministic across runs), and no rank can
//! start the next collective before every rank has picked up the current
//! result.  Point-to-point messages go through FIFO mailboxes, one queue
//! per (sender, receiver) pair, which is exactly the ordering guarantee the
//! halo exchange of [`DistCsr`](crate::DistCsr) needs.

use crate::comm::{default_recv_timeout, CommError, Communicator};
use crate::stats::CommStats;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which collective a rank is participating in; used to assert that every
/// rank of the group issues the same sequence of collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollKind {
    AllreduceSum,
    Broadcast { root: usize },
    Allgather,
    Barrier,
}

/// State of the collective rendezvous shared by all ranks of a group.
#[derive(Debug)]
struct CollState {
    /// Completed collective rounds (generation counter).
    round: u64,
    /// Ranks that have deposited a contribution this round.
    arrived: usize,
    /// Ranks that still have to pick up the result of the finished round.
    departed: usize,
    /// The collective being executed this round.
    kind: Option<CollKind>,
    /// Per-rank contributions, indexed by rank.
    contributions: Vec<Vec<f64>>,
    /// Combined result of the finished round.
    result: Vec<f64>,
}

/// One receiver's mailboxes: a FIFO queue per sender.
#[derive(Debug)]
struct Mailbox {
    queues: Mutex<Vec<VecDeque<Vec<f64>>>>,
    cvar: Condvar,
}

/// State shared by every rank of one [`run_ranks`] group.
#[derive(Debug)]
pub(crate) struct Shared {
    nranks: usize,
    coll: Mutex<CollState>,
    coll_cvar: Condvar,
    mailboxes: Vec<Mailbox>,
}

impl Shared {
    fn new(nranks: usize) -> Self {
        Self {
            nranks,
            coll: Mutex::new(CollState {
                round: 0,
                arrived: 0,
                departed: 0,
                kind: None,
                contributions: vec![Vec::new(); nranks],
                result: Vec::new(),
            }),
            coll_cvar: Condvar::new(),
            mailboxes: (0..nranks)
                .map(|_| Mailbox {
                    queues: Mutex::new(vec![VecDeque::new(); nranks]),
                    cvar: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Combine the contributions of a finished round in rank order.
    fn combine(kind: CollKind, contributions: &[Vec<f64>]) -> Vec<f64> {
        match kind {
            CollKind::AllreduceSum => {
                let len = contributions[0].len();
                let mut result = vec![0.0; len];
                for c in contributions {
                    assert_eq!(c.len(), len, "allreduce_sum: buffer length mismatch");
                    for (acc, x) in result.iter_mut().zip(c) {
                        *acc += x;
                    }
                }
                result
            }
            CollKind::Broadcast { root } => contributions[root].clone(),
            CollKind::Allgather => {
                let len = contributions[0].len();
                let mut result = Vec::with_capacity(len * contributions.len());
                for c in contributions {
                    assert_eq!(c.len(), len, "allgather: contribution length mismatch");
                    result.extend_from_slice(c);
                }
                result
            }
            CollKind::Barrier => Vec::new(),
        }
    }

    /// Execute one collective for `rank`; blocks until every rank of the
    /// group has participated, then writes the combined result into `out`.
    fn collective(&self, rank: usize, kind: CollKind, contribution: &[f64], out: &mut [f64]) {
        let mut st = self.coll.lock().expect("collective state poisoned");
        // Wait for every rank to have picked up the previous round's result.
        while st.departed != 0 {
            st = self.coll_cvar.wait(st).expect("collective state poisoned");
        }
        if st.arrived == 0 {
            st.kind = Some(kind);
        } else {
            assert_eq!(
                st.kind,
                Some(kind),
                "rank {rank} issued a different collective than the rest of the group"
            );
        }
        st.contributions[rank].clear();
        st.contributions[rank].extend_from_slice(contribution);
        st.arrived += 1;
        let my_round = st.round;
        if st.arrived == self.nranks {
            st.result = Self::combine(kind, &st.contributions);
            st.departed = self.nranks;
            st.arrived = 0;
            st.round += 1;
            self.coll_cvar.notify_all();
        } else {
            while st.round == my_round {
                st = self.coll_cvar.wait(st).expect("collective state poisoned");
            }
        }
        out.copy_from_slice(&st.result[..out.len()]);
        st.departed -= 1;
        if st.departed == 0 {
            self.coll_cvar.notify_all();
        }
    }

    fn post(&self, from: usize, to: usize, data: Vec<f64>) {
        let mailbox = &self.mailboxes[to];
        let mut queues = mailbox.queues.lock().expect("mailbox poisoned");
        queues[from].push_back(data);
        mailbox.cvar.notify_all();
    }

    /// Take the next message from `from`'s queue, waiting at most
    /// `timeout`; `Err` carries the who/whom/how-long diagnosis.
    fn take_timeout(
        &self,
        from: usize,
        me: usize,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        let deadline = Instant::now() + timeout;
        let mailbox = &self.mailboxes[me];
        let mut queues = mailbox.queues.lock().expect("mailbox poisoned");
        loop {
            if let Some(msg) = queues[from].pop_front() {
                return Ok(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::RecvTimeout {
                    rank: me,
                    from,
                    waited: timeout,
                });
            }
            let (guard, _) = mailbox
                .cvar
                .wait_timeout(queues, deadline - now)
                .expect("mailbox poisoned");
            queues = guard;
        }
    }
}

/// One rank's endpoint of a thread-backed rank group.
#[derive(Debug)]
pub struct ThreadComm {
    rank: usize,
    shared: Arc<Shared>,
    stats: CommStats,
    /// Patience of a plain `recv` (from `DISTSIM_RECV_TIMEOUT_MS`, read
    /// once at construction); a stalled peer surfaces as a diagnosable
    /// panic instead of a hung run.
    recv_timeout: Duration,
}

impl ThreadComm {
    fn new(rank: usize, shared: Arc<Shared>) -> Self {
        Self {
            rank,
            shared,
            stats: CommStats::new(),
            recv_timeout: default_recv_timeout(),
        }
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.nranks
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        let _span = trace::span1("comm", "allreduce", "words", buf.len() as u64);
        self.stats.record_allreduce(buf.len());
        let contribution = buf.to_vec();
        self.shared
            .collective(self.rank, CollKind::AllreduceSum, &contribution, buf);
    }

    fn allreduce_sum_retry(&self, buf: &mut [f64]) {
        let _span = trace::span1("comm", "allreduce_retry", "words", buf.len() as u64);
        self.stats.record_allreduce_retry(buf.len());
        let contribution = buf.to_vec();
        self.shared
            .collective(self.rank, CollKind::AllreduceSum, &contribution, buf);
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        assert!(root < self.size(), "broadcast root {root} out of range");
        let _span = trace::span1("comm", "broadcast", "words", buf.len() as u64);
        self.stats.record_broadcast(buf.len());
        let contribution = buf.to_vec();
        self.shared
            .collective(self.rank, CollKind::Broadcast { root }, &contribution, buf);
    }

    fn allgather(&self, send: &[f64], recv: &mut [f64]) {
        assert_eq!(
            recv.len(),
            send.len() * self.size(),
            "allgather: recv must hold one contribution per rank"
        );
        let _span = trace::span1("comm", "allgather", "words", send.len() as u64);
        self.stats.record_allgather(send.len());
        self.shared
            .collective(self.rank, CollKind::Allgather, send, recv);
    }

    fn barrier(&self) {
        let _span = trace::span("comm", "barrier");
        self.stats.record_barrier();
        self.shared
            .collective(self.rank, CollKind::Barrier, &[], &mut []);
    }

    fn send(&self, to: usize, data: &[f64]) {
        assert!(to < self.size(), "send: rank {to} out of range");
        assert_ne!(to, self.rank, "send: cannot message self");
        let _span = trace::span2(
            "comm",
            "send",
            "peer",
            to as u64,
            "words",
            data.len() as u64,
        );
        self.stats.record_p2p(to, data.len());
        self.shared.post(self.rank, to, data.to_vec());
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        match self.recv_timeout(from, self.recv_timeout) {
            Ok(msg) => msg,
            Err(e) => panic!("{e}"),
        }
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Vec<f64>, CommError> {
        assert!(from < self.size(), "recv: rank {from} out of range");
        assert_ne!(from, self.rank, "recv: cannot message self");
        let _span = trace::span1("comm", "recv", "peer", from as u64);
        self.shared.take_timeout(from, self.rank, timeout)
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

/// Run `f` once per rank on `nranks` scoped threads, each with its own
/// [`ThreadComm`] endpoint of a fresh group, and return the per-rank
/// results in rank order.
///
/// The closure may capture references to the caller's data (the group runs
/// inside `std::thread::scope`).  A panic on any rank propagates to the
/// caller after the scope unwinds.
pub fn run_ranks<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Arc<dyn Communicator>) -> T + Send + Sync,
{
    assert!(nranks >= 1, "need at least one rank");
    let shared = Arc::new(Shared::new(nranks));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                let f = &f;
                scope.spawn(move || {
                    if trace::enabled() {
                        trace::set_thread_label(&format!("rank {rank}"));
                    }
                    let comm: Arc<dyn Communicator> = Arc::new(ThreadComm::new(rank, shared));
                    f(comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        for nranks in [1usize, 2, 4, 7] {
            let results = run_ranks(nranks, |comm| {
                let mut buf = vec![comm.rank() as f64 + 1.0, 10.0];
                comm.allreduce_sum(&mut buf);
                buf
            });
            let expect0 = (nranks * (nranks + 1) / 2) as f64;
            for r in &results {
                assert_eq!(r[0], expect0);
                assert_eq!(r[1], 10.0 * nranks as f64);
            }
        }
    }

    #[test]
    fn allreduce_is_deterministic_in_rank_order() {
        // Values chosen so floating-point summation order matters; the
        // rank-ordered combine must give the same bits on every run.
        let run = || {
            run_ranks(3, |comm| {
                let vals = [1.0e16, 1.0, -1.0e16];
                let mut buf = [vals[comm.rank()]];
                comm.allreduce_sum(&mut buf);
                buf[0]
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x == a[0]));
    }

    #[test]
    fn broadcast_takes_roots_value() {
        let results = run_ranks(4, |comm| {
            let mut buf = vec![comm.rank() as f64; 3];
            comm.broadcast(2, &mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, vec![2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let results = run_ranks(3, |comm| {
            let send = [comm.rank() as f64, -(comm.rank() as f64)];
            let mut recv = vec![0.0; 6];
            comm.allgather(&send, &mut recv);
            recv
        });
        for r in results {
            assert_eq!(r, vec![0.0, -0.0, 1.0, -1.0, 2.0, -2.0]);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_interleave() {
        // Stress the round draining logic: many collectives in a row with
        // rank-dependent timing.
        let results = run_ranks(4, |comm| {
            let mut acc = 0.0;
            for i in 0..200 {
                if (i + comm.rank()) % 3 == 0 {
                    std::thread::yield_now();
                }
                let mut buf = [comm.rank() as f64 + i as f64];
                comm.allreduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        });
        assert!(results.iter().all(|&x| x == results[0]));
    }

    #[test]
    fn p2p_is_fifo_per_pair() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, &[1.0]);
                comm.send(1, &[2.0, 3.0]);
                Vec::new()
            } else {
                let first = comm.recv(0);
                let second = comm.recv(0);
                vec![first, second]
            }
        });
        assert_eq!(results[1], vec![vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn stats_are_per_rank() {
        let counts = run_ranks(3, |comm| {
            let mut buf = [comm.rank() as f64];
            comm.allreduce_sum(&mut buf);
            if comm.rank() == 0 {
                comm.send(1, &[5.0]);
            }
            if comm.rank() == 1 {
                comm.recv(0);
            }
            comm.barrier();
            comm.stats().snapshot()
        });
        for (rank, s) in counts.iter().enumerate() {
            assert_eq!(s.allreduces, 1);
            assert_eq!(s.barriers, 1);
            assert_eq!(s.p2p_messages, usize::from(rank == 0));
        }
    }

    #[test]
    fn recv_timeout_surfaces_a_stall_as_a_diagnosable_error() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 1 {
                // Rank 0 never sends: the bounded receive must give up and
                // say who was waiting on whom.
                let err = comm
                    .recv_timeout(0, Duration::from_millis(50))
                    .expect_err("no message is coming");
                let msg = err.to_string();
                assert!(msg.contains("rank 1"), "missing waiter context: {msg}");
                assert!(msg.contains("from rank 0"), "missing peer context: {msg}");
                true
            } else {
                false
            }
        });
        assert_eq!(results, vec![false, true]);
    }

    #[test]
    fn recv_timeout_returns_a_message_that_arrives_in_time() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
                comm.send(1, &[7.5]);
                Vec::new()
            } else {
                comm.recv_timeout(0, Duration::from_secs(5))
                    .expect("message arrives well within the bound")
            }
        });
        assert_eq!(results[1], vec![7.5]);
    }

    #[test]
    fn allreduce_retry_counts_separately_and_still_reduces() {
        let results = run_ranks(3, |comm| {
            let mut buf = [comm.rank() as f64 + 1.0];
            comm.allreduce_sum(&mut buf);
            let first = buf[0];
            let mut again = [comm.rank() as f64 + 1.0];
            comm.allreduce_sum_retry(&mut again);
            (first, again[0], comm.stats().snapshot())
        });
        for (first, retried, s) in &results {
            assert_eq!(*first, 6.0);
            assert_eq!(*retried, 6.0, "a retry is a real re-execution");
            assert_eq!(s.allreduces, 1, "the audit count must not inflate");
            assert_eq!(s.allreduce_retries, 1);
            assert_eq!(s.allreduce_retry_words, 1);
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates() {
        run_ranks(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 returns immediately; no collective is pending, so the
            // scope unwinds cleanly.
        });
    }
}
