//! Seeded, rank-deterministic sparse sketch operator for distributed
//! multivectors.
//!
//! A [`SketchOp`] is a fixed random matrix `S ∈ R^{c×n}` in the
//! CountSketch/sparse-sign family: each of the `c` sketch rows is the
//! signed sum of [`SKETCH_NNZ_PER_ROW`] sampled global rows, scaled by
//! `1/√nnz`.  The sample table is derived *per sketch row* from a seeded
//! [`rand_shim`] stream keyed on the global row count, so every rank
//! reconstructs the identical operator from `(seed, n, c)` alone — no
//! setup communication, no dependence on the partition.
//!
//! Applying `S` to a column panel of a [`DistMultiVector`] is local except
//! for **one small allreduce** (Θ(c·s) words, counted in [`CommStats`]
//! like every collective): each rank fills the slots of the samples it
//! owns, the reduce merges the slot table, and every rank then combines
//! the slots into the replicated `c×s` sketched panel `S·V` in a fixed
//! order.  Because every slot has exactly one owning rank the reduce adds
//! each value to zeros only, which makes the sketched panel **bitwise
//! identical across rank counts and thread counts** — a stronger guarantee
//! than the to-rounding agreement of the Gram kernels, and the property
//! `crates/distsim/tests/sketch_properties.rs` pins.
//!
//! [`CommStats`]: crate::stats::CommStats

use rand::{rngs::StdRng, SeedableRng};

/// Nonzero samples per sketch row.  Four signed samples per row is the
/// usual sparse-sign operating point (Tropp et al.); the slot-exchange
/// payload grows linearly in this constant.
pub const SKETCH_NNZ_PER_ROW: usize = 4;

/// Configuration surface of the sketched orthogonalization family: how
/// many sketch rows to allocate per basis column, and the seed of the
/// operator.  Wired through `GmresConfig` so solver runs are replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Sketch rows allocated per basis column (`c = rows_per_col · cols`).
    /// Higher values tighten the embedding distortion `~√(cols/c)` at the
    /// cost of a proportionally larger (but still tiny) allreduce.
    pub rows_per_col: usize,
    /// Seed of the sketch operator.  Fixing it makes every sketched run
    /// bitwise replayable.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            rows_per_col: 8,
            seed: 0x5EED_C0DE_2024,
        }
    }
}

/// A realized sparse sketch operator `S ∈ R^{c×n}` (see module docs).
#[derive(Debug, Clone)]
pub struct SketchOp {
    global_rows: usize,
    rows: usize,
    seed: u64,
    scale: f64,
    /// `(global_row, sign)` per slot, `SKETCH_NNZ_PER_ROW` slots per
    /// sketch row, row-major by sketch row.
    samples: Vec<(usize, f64)>,
}

impl SketchOp {
    /// Realize the operator with `rows` sketch rows over `global_rows`
    /// input rows from `seed`.  Deterministic: the same arguments produce
    /// the same operator on every rank and platform.
    pub fn new(global_rows: usize, rows: usize, seed: u64) -> Self {
        assert!(global_rows >= 1, "sketch needs at least one input row");
        assert!(rows >= 1, "sketch needs at least one sketch row");
        let mut samples = Vec::with_capacity(rows * SKETCH_NNZ_PER_ROW);
        for j in 0..rows {
            // One independent stream per sketch row, keyed on the row index
            // and the input dimension so different layouts decorrelate.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (global_rows as u64).rotate_left(32),
            );
            for _ in 0..SKETCH_NNZ_PER_ROW {
                let w = rng.next_u64();
                let row = ((w >> 1) % global_rows as u64) as usize;
                let sign = if w & 1 == 0 { 1.0 } else { -1.0 };
                samples.push((row, sign));
            }
        }
        Self {
            global_rows,
            rows,
            seed,
            scale: 1.0 / (SKETCH_NNZ_PER_ROW as f64).sqrt(),
            samples,
        }
    }

    /// Size the operator for a basis of `total_cols` columns over
    /// `global_rows` rows: `c = rows_per_col · total_cols` sketch rows, so
    /// the whole-basis embedding distortion is `~√(1/rows_per_col)`.
    pub fn for_basis(config: &SketchConfig, global_rows: usize, total_cols: usize) -> Self {
        let rows = config.rows_per_col.max(1) * total_cols.max(1);
        Self::new(global_rows, rows, config.seed)
    }

    /// Number of sketch rows `c`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimension `n` the operator was realized for.
    pub fn global_rows(&self) -> usize {
        self.global_rows
    }

    /// The seed the operator was realized from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Slots in the exchange payload (`c · SKETCH_NNZ_PER_ROW`).
    pub fn slots(&self) -> usize {
        self.rows * SKETCH_NNZ_PER_ROW
    }

    /// Words one sketched-panel allreduce moves for an `s`-column panel —
    /// the closed form `perfmodel::sketch_reduce_words` mirrors.
    pub fn reduce_words(&self, s: usize) -> usize {
        self.slots() * s
    }

    /// Fill the slot table for the local row block `local` (whose first
    /// row is global row `row_offset`) of an `s`-column panel into `buf`
    /// (length `slots()·s`, column-major by panel column).  Serial by
    /// design: the fill must not depend on the compute pool width.
    pub(crate) fn fill_slots(
        &self,
        buf: &mut [f64],
        local: &dense::MatView<'_>,
        row_offset: usize,
    ) {
        let s = local.ncols();
        let slots = self.slots();
        debug_assert_eq!(buf.len(), slots * s);
        let local_rows = local.nrows();
        for (slot, &(row, sign)) in self.samples.iter().enumerate() {
            if row < row_offset || row >= row_offset + local_rows {
                continue;
            }
            let i = row - row_offset;
            for col in 0..s {
                let v = local.col(col)[i];
                // Avoid writing -0.0: a negative-zero slot would flip to
                // +0.0 when other ranks' zeros are added, breaking the
                // bitwise partition-invariance guarantee.
                buf[col * slots + slot] = if v == 0.0 { 0.0 } else { sign * v };
            }
        }
    }

    /// Combine a reduced slot table into the replicated `c×s` sketched
    /// panel, summing each sketch row's slots in fixed slot order.
    pub(crate) fn combine_slots(&self, buf: &[f64], s: usize) -> dense::Matrix {
        let slots = self.slots();
        debug_assert_eq!(buf.len(), slots * s);
        dense::Matrix::from_fn(self.rows, s, |j, col| {
            let base = col * slots + j * SKETCH_NNZ_PER_ROW;
            let mut acc = 0.0;
            for t in 0..SKETCH_NNZ_PER_ROW {
                acc += buf[base + t];
            }
            acc * self.scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_is_deterministic_and_seed_sensitive() {
        let a = SketchOp::new(100, 16, 7);
        let b = SketchOp::new(100, 16, 7);
        assert_eq!(a.samples, b.samples);
        let c = SketchOp::new(100, 16, 8);
        assert_ne!(a.samples, c.samples);
        for &(row, sign) in &a.samples {
            assert!(row < 100);
            assert!(sign == 1.0 || sign == -1.0);
        }
    }

    #[test]
    fn for_basis_sizes_rows_per_column() {
        let cfg = SketchConfig {
            rows_per_col: 6,
            seed: 1,
        };
        let op = SketchOp::for_basis(&cfg, 500, 13);
        assert_eq!(op.rows(), 78);
        assert_eq!(op.slots(), 78 * SKETCH_NNZ_PER_ROW);
        assert_eq!(op.reduce_words(5), 78 * SKETCH_NNZ_PER_ROW * 5);
    }

    #[test]
    fn sketch_preserves_norms_approximately() {
        // JL property smoke test: ‖S·x‖ ≈ ‖x‖ for a dense vector.
        let n = 400;
        let op = SketchOp::new(n, 128, 3);
        let x = dense::Matrix::from_fn(n, 1, |i, _| ((i * 37 + 11) % 83) as f64 * 0.07 - 2.5);
        let mut buf = vec![0.0; op.slots()];
        op.fill_slots(&mut buf, &x.cols(0..1), 0);
        let sx = op.combine_slots(&buf, 1);
        let norm_x = dense::nrm2(x.col(0));
        let norm_sx = dense::nrm2(sx.col(0));
        let ratio = norm_sx / norm_x;
        assert!(
            (0.5..2.0).contains(&ratio),
            "sketched norm off by {ratio}× (c=128)"
        );
    }
}
