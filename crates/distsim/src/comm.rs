//! The object-safe communicator interface.

use crate::stats::CommStats;

/// Collective and point-to-point communication among a fixed group of
/// ranks, modeled on the MPI subset the paper's solver needs.
///
/// Implementations are held as `Arc<dyn Communicator>` and shared freely;
/// every operation takes `&self`.  All collectives are *blocking* and must
/// be called by every rank of the group in the same order with compatible
/// arguments (as in MPI); the thread-backed implementation asserts this.
///
/// Every operation is recorded in [`stats`](Communicator::stats) — on the
/// single-rank [`SerialComm`](crate::SerialComm) the data movement is a
/// no-op but the counts are identical to a multi-rank run, which is what
/// lets a serial run audit the paper's reduction counts.
pub trait Communicator: Send + Sync + std::fmt::Debug {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn size(&self) -> usize;

    /// Element-wise global sum of `buf` across all ranks; every rank
    /// receives the result in place.  One global reduction.
    fn allreduce_sum(&self, buf: &mut [f64]);

    /// Convenience scalar all-reduce (still one global reduction of one
    /// word).
    fn allreduce_sum_scalar(&self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Replace `buf` on every rank with its contents on rank `root`.
    fn broadcast(&self, root: usize, buf: &mut [f64]);

    /// Gather `send` from every rank into `recv` in rank order.  Every rank
    /// must pass the same `send` length and `recv.len() == size() *
    /// send.len()`.
    fn allgather(&self, send: &[f64], recv: &mut [f64]);

    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// Post `data` to rank `to` (non-blocking, FIFO per sender/receiver
    /// pair).  Used for the halo exchange of the distributed SpMV.
    fn send(&self, to: usize, data: &[f64]);

    /// Receive the next message from rank `from` (blocking).
    fn recv(&self, from: usize) -> Vec<f64>;

    /// This rank's communication counters.
    fn stats(&self) -> &CommStats;
}
