//! The object-safe communicator interface.

use crate::stats::CommStats;
use std::time::Duration;

/// A diagnosable communication failure.
///
/// The simulated runtime historically had exactly two failure modes: panic
/// or hang.  A hang is the worst outcome for a test suite — an injected (or
/// real) rank stall used to block `recv` forever.  [`Communicator::recv_timeout`]
/// turns that into this error, carrying enough context (who was waiting, on
/// whom, for how long) to diagnose the stall from the message alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A blocking receive gave up waiting.
    RecvTimeout {
        /// The rank that was waiting.
        rank: usize,
        /// The rank it was waiting on.
        from: usize,
        /// How long it waited before giving up.
        waited: Duration,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RecvTimeout { rank, from, waited } => write!(
                f,
                "rank {rank}: recv from rank {from} timed out after {:.1}s \
                 (peer stalled, message dropped, or mismatched op order)",
                waited.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Default patience of a plain [`Communicator::recv`] on the thread-backed
/// communicator, overridable through the `DISTSIM_RECV_TIMEOUT_MS`
/// environment variable.  Generous enough that no legitimate exchange ever
/// trips it; small enough that a stalled rank surfaces as a diagnosable
/// panic instead of a hung test run.
pub fn default_recv_timeout() -> Duration {
    let ms = std::env::var("DISTSIM_RECV_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30_000);
    Duration::from_millis(ms)
}

/// Collective and point-to-point communication among a fixed group of
/// ranks, modeled on the MPI subset the paper's solver needs.
///
/// Implementations are held as `Arc<dyn Communicator>` and shared freely;
/// every operation takes `&self`.  All collectives are *blocking* and must
/// be called by every rank of the group in the same order with compatible
/// arguments (as in MPI); the thread-backed implementation asserts this.
///
/// Every operation is recorded in [`stats`](Communicator::stats) — on the
/// single-rank [`SerialComm`](crate::SerialComm) the data movement is a
/// no-op but the counts are identical to a multi-rank run, which is what
/// lets a serial run audit the paper's reduction counts.
pub trait Communicator: Send + Sync + std::fmt::Debug {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn size(&self) -> usize;

    /// Element-wise global sum of `buf` across all ranks; every rank
    /// receives the result in place.  One global reduction.
    fn allreduce_sum(&self, buf: &mut [f64]);

    /// Re-execute an all-reduce as a fault-recovery **retry**.  The data
    /// movement is identical to [`allreduce_sum`](Self::allreduce_sum), but
    /// the operation is recorded in the separate retry counters of
    /// [`CommStats`] so the reduce-count audits stay exact.  Collective:
    /// every rank that retries must do so together, in the same order.
    fn allreduce_sum_retry(&self, buf: &mut [f64]) {
        self.allreduce_sum(buf);
    }

    /// Convenience scalar all-reduce (still one global reduction of one
    /// word).
    fn allreduce_sum_scalar(&self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Replace `buf` on every rank with its contents on rank `root`.
    fn broadcast(&self, root: usize, buf: &mut [f64]);

    /// Gather `send` from every rank into `recv` in rank order.  Every rank
    /// must pass the same `send` length and `recv.len() == size() *
    /// send.len()`.
    fn allgather(&self, send: &[f64], recv: &mut [f64]);

    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// Post `data` to rank `to` (non-blocking, FIFO per sender/receiver
    /// pair).  Used for the halo exchange of the distributed SpMV.
    fn send(&self, to: usize, data: &[f64]);

    /// Receive the next message from rank `from` (blocking; on the
    /// thread-backed communicator, bounded by [`default_recv_timeout`] and
    /// panicking with a [`CommError`] diagnosis when it expires).
    fn recv(&self, from: usize) -> Vec<f64>;

    /// Receive the next message from rank `from`, waiting at most
    /// `timeout`.  The default implementation delegates to the blocking
    /// [`recv`](Self::recv) (appropriate for implementations that cannot
    /// stall); the thread-backed communicator honors the bound and returns
    /// [`CommError::RecvTimeout`] with rank/op context when it expires.
    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Vec<f64>, CommError> {
        let _ = timeout;
        Ok(self.recv(from))
    }

    /// This rank's communication counters.
    fn stats(&self) -> &CommStats;
}
