//! Deterministic fault injection: [`FaultyComm`] and [`FaultPlan`].
//!
//! The paper's premise is that s-step methods trade synchronization for
//! larger unprotected compute/communication epochs — exactly the window
//! where soft errors do the most damage.  Studying that experimentally
//! requires *injecting* faults, and injecting them **deterministically**:
//! a campaign keyed on a seed must be replayable bitwise, independent of
//! thread interleaving.
//!
//! [`FaultyComm`] wraps any [`Communicator`] and perturbs operations
//! according to a [`FaultPlan`]:
//!
//! * every operation kind carries a per-rank **sequence number** (collective
//!   sequences are identical on every rank by the collective-order
//!   contract, point-to-point sequences are per-rank);
//! * **explicit** injections name their victim by `(rank, op-kind,
//!   sequence-number)` — plus optional solver-phase and payload-size
//!   filters — so a single targeted fault can be placed on, say, "the 2nd
//!   Gram all-reduce of the ortho phase on rank 0";
//! * **sampled** injections draw from a seeded, counter-keyed hash
//!   (`hash(seed, salt, rank, seq)`), so rates compose with bitwise
//!   replayability: the same seed always corrupts the same operations.
//!
//! Fault model (chosen so that detection verdicts are *replicated* and
//! recovery never deadlocks — see [`crate::guard`]):
//!
//! * [`FaultKind::BitFlip`] on a **collective** corrupts this rank's
//!   *contribution* (the transmitted payload).  The corrupted word is
//!   combined into every rank's result, so all ranks observe the same
//!   corrupted value and reach the same detection verdict — a collective
//!   retry is then itself a safe collective.  Result-delivery corruption
//!   (which would diverge per rank) is modeled on point-to-point ops
//!   instead, where recovery is local (checksum → poison → cycle rollback);
//! * [`FaultKind::OpFail`] poisons a collective's result on **every** rank
//!   (a failed reduction), again keeping verdicts replicated — plans with a
//!   rank-targeted `OpFail` are rejected;
//! * [`FaultKind::DropMessage`] / [`FaultKind::DuplicateMessage`] /
//!   point-to-point `BitFlip` perturb the halo-exchange messages of one
//!   rank pair;
//! * [`FaultKind::Stall`] delays an operation, which the receive timeout of
//!   [`Communicator::recv_timeout`] converts from a hang into a
//!   diagnosable [`crate::CommError`].
//!
//! Every injected event is recorded (see [`FaultyComm::events`]), counted,
//! and emitted as a trace instant so injections are visible in timelines
//! next to the spans they perturb.

use crate::comm::{CommError, Communicator};
use crate::stats::CommStats;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The operation kinds a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `allreduce_sum` (including guard retries).
    Allreduce,
    /// `broadcast`.
    Broadcast,
    /// `allgather`.
    Allgather,
    /// Point-to-point `send`.
    Send,
    /// Point-to-point `recv` / `recv_timeout`.
    Recv,
}

impl OpKind {
    /// Stable label used in event records and trace instants.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Allreduce => "allreduce",
            OpKind::Broadcast => "broadcast",
            OpKind::Allgather => "allgather",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
        }
    }

    fn index(&self) -> usize {
        match self {
            OpKind::Allreduce => 0,
            OpKind::Broadcast => 1,
            OpKind::Allgather => 2,
            OpKind::Send => 3,
            OpKind::Recv => 4,
        }
    }

    fn is_collective(&self) -> bool {
        matches!(
            self,
            OpKind::Allreduce | OpKind::Broadcast | OpKind::Allgather
        )
    }
}

/// What an injection does to its victim operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Flip one bit of one payload word (silent data corruption).  `word`
    /// is reduced modulo the payload length; `None` picks a seeded
    /// pseudo-random word.  On collectives the *contribution* is corrupted
    /// (see the module docs for why); on `send`/`recv` the message payload.
    BitFlip {
        /// Payload word to corrupt (`None` = seeded choice).
        word: Option<usize>,
        /// Bit to flip, `0..64`.
        bit: u32,
    },
    /// Swallow a point-to-point message: the sender believes it sent (the
    /// send is still tallied in [`CommStats`]), the receiver never sees it.
    DropMessage,
    /// Deliver a point-to-point message twice.
    DuplicateMessage,
    /// A transient collective failure: the result is poisoned with NaN on
    /// every rank.
    OpFail,
    /// Delay the operation, simulating a stalled rank or link.
    Stall {
        /// Delay in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// Stable label used in event records and trace instants.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BitFlip { .. } => "bitflip",
            FaultKind::DropMessage => "drop",
            FaultKind::DuplicateMessage => "duplicate",
            FaultKind::OpFail => "opfail",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

/// Which operation an explicit [`Injection`] fires on.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Rank the fault occurs on (`None` = every rank; required `None` for
    /// [`FaultKind::OpFail`], which must stay replicated).
    pub rank: Option<usize>,
    /// Operation kind.
    pub op: OpKind,
    /// Only operations issued while this solver phase tag (see
    /// [`set_phase`]) is active; `None` = any phase.
    pub phase: Option<&'static str>,
    /// Only operations with at least this many payload words (lets a plan
    /// say "a Gram reduce, not the one-word norm reduce").
    pub min_words: usize,
    /// Index among the operations matching all other criteria (per rank,
    /// 0-based): the fault fires on the `seq`-th match.
    pub seq: u64,
}

impl Target {
    /// Target the `seq`-th operation of kind `op` on every rank.
    pub fn nth(op: OpKind, seq: u64) -> Self {
        Self {
            rank: None,
            op,
            phase: None,
            min_words: 0,
            seq,
        }
    }

    /// Restrict to one rank.
    pub fn on_rank(mut self, rank: usize) -> Self {
        self.rank = Some(rank);
        self
    }

    /// Restrict to one solver phase tag.
    pub fn in_phase(mut self, phase: &'static str) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Restrict to payloads of at least `words` words.
    pub fn with_min_words(mut self, words: usize) -> Self {
        self.min_words = words;
        self
    }
}

/// One planned fault: a [`Target`] plus the [`FaultKind`] to apply.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Which operation to hit.
    pub target: Target,
    /// What to do to it.
    pub kind: FaultKind,
}

/// Per-operation injection probabilities for seeded random campaigns.
/// Each rate is the probability (in `[0, 1]`) that an *applicable*
/// operation is hit; draws are keyed on `(seed, salt, rank, seq)` so a
/// campaign replays bitwise from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Bit-flip probability per collective contribution / p2p message.
    pub bitflip: f64,
    /// Transient-failure probability per collective (replicated: keyed
    /// without the rank).
    pub opfail: f64,
    /// Drop probability per p2p send.
    pub drop: f64,
    /// Duplicate probability per p2p send.
    pub duplicate: f64,
    /// Stall probability per operation.
    pub stall: f64,
    /// Stall duration in milliseconds (applies to sampled stalls).
    pub stall_millis: u64,
}

/// A seeded, replayable fault schedule, shared by (a replica on) every
/// rank's [`FaultyComm`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the sampled draws.
    pub seed: u64,
    /// Sampled injection rates (all zero = explicit injections only).
    pub rates: FaultRates,
    /// Phase filter for the sampled rates (`None` = all phases).
    pub rate_phase: Option<&'static str>,
    /// Minimum payload words for sampled bit-flips/op-failures.
    pub rate_min_words: usize,
    /// Explicitly targeted injections.
    pub explicit: Vec<Injection>,
}

impl FaultPlan {
    /// The empty plan: a [`FaultyComm`] driven by it is bitwise identical
    /// to its inner communicator.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with seeded random injection at the given rates.
    pub fn from_seed(seed: u64, rates: FaultRates) -> Self {
        Self {
            seed,
            rates,
            ..Self::default()
        }
    }

    /// Add one explicit injection (builder style).
    pub fn with(mut self, target: Target, kind: FaultKind) -> Self {
        self.explicit.push(Injection { target, kind });
        self
    }

    /// Whether the plan can ever fire.
    pub fn is_empty(&self) -> bool {
        let r = &self.rates;
        self.explicit.is_empty()
            && r.bitflip == 0.0
            && r.opfail == 0.0
            && r.drop == 0.0
            && r.duplicate == 0.0
            && r.stall == 0.0
    }

    fn validate(&self) {
        for inj in &self.explicit {
            if matches!(inj.kind, FaultKind::OpFail) {
                assert!(
                    inj.target.rank.is_none(),
                    "OpFail must not be rank-targeted: a collective failure is observed \
                     by every rank, and a divergent injection would deadlock recovery"
                );
                assert!(
                    inj.target.op.is_collective(),
                    "OpFail applies to collectives only"
                );
            }
            if matches!(
                inj.kind,
                FaultKind::DropMessage | FaultKind::DuplicateMessage
            ) {
                assert!(
                    inj.target.op == OpKind::Send,
                    "drop/duplicate apply to sends"
                );
            }
        }
    }
}

thread_local! {
    /// The solver-phase tag of the current rank thread (each simulated rank
    /// is one thread, so a thread-local is exactly per-rank state).
    static PHASE: Cell<&'static str> = const { Cell::new("") };
}

/// Tag subsequent operations on this rank thread with a solver phase
/// (e.g. `"mpk"`, `"ortho"`, `"residual"`); plans filter on it.
pub fn set_phase(phase: &'static str) {
    PHASE.with(|p| p.set(phase));
}

/// The phase tag currently in effect on this thread (`""` = none).
pub fn current_phase() -> &'static str {
    PHASE.with(|p| p.get())
}

/// One injected fault, as it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Rank the event occurred on.
    pub rank: usize,
    /// Operation kind hit.
    pub op: OpKind,
    /// Per-kind sequence number of the victim operation on this rank.
    pub seq: u64,
    /// Solver phase tag in effect.
    pub phase: &'static str,
    /// What was done.
    pub kind: FaultKind,
    /// Payload words of the victim operation.
    pub words: usize,
}

/// splitmix64 — the draw keyed on `(seed, salt, rank, seq)`; execution-order
/// independent, so sampled campaigns replay bitwise.
fn mix(seed: u64, salt: u64, rank: u64, seq: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(rank.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(seq);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a draw to `[0, 1)` (53 mantissa bits, like the rand shim).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_BITFLIP: u64 = 1;
const SALT_OPFAIL: u64 = 2;
const SALT_DROP: u64 = 3;
const SALT_DUP: u64 = 4;
const SALT_STALL: u64 = 5;
const SALT_WORD: u64 = 6;
const SALT_BIT: u64 = 7;
/// Rank key for draws that must be identical on every rank.
const ALL_RANKS: u64 = u64::MAX;

/// A fault-injecting wrapper over any [`Communicator`].
///
/// Pass [`FaultyComm::wrap`]'s result wherever an `Arc<dyn Communicator>`
/// goes; keep a clone of the concrete `Arc<FaultyComm>` to read
/// [`events`](Self::events) afterwards.  With [`FaultPlan::none`] the
/// wrapper is bitwise transparent (asserted by the workspace's
/// fault-tolerance property tests).
#[derive(Debug)]
pub struct FaultyComm {
    inner: Arc<dyn Communicator>,
    plan: FaultPlan,
    /// Per-[`OpKind`] sequence counters (index by `OpKind::index`).
    seqs: [AtomicU64; 5],
    /// Per-explicit-injection match counters (aligned with `plan.explicit`).
    matches: Vec<AtomicU64>,
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultyComm {
    /// Wrap `inner` with the given plan.  Panics on plans that could
    /// produce divergent collective verdicts (rank-targeted `OpFail`).
    pub fn wrap(inner: Arc<dyn Communicator>, plan: FaultPlan) -> Arc<FaultyComm> {
        plan.validate();
        let matches = plan.explicit.iter().map(|_| AtomicU64::new(0)).collect();
        Arc::new(FaultyComm {
            inner,
            plan,
            seqs: Default::default(),
            matches,
            events: Mutex::new(Vec::new()),
        })
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &Arc<dyn Communicator> {
        &self.inner
    }

    /// Every fault injected so far on this rank, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events
            .lock()
            .expect("fault event log poisoned")
            .clone()
    }

    /// Number of faults injected so far on this rank.
    pub fn injected(&self) -> usize {
        self.events.lock().expect("fault event log poisoned").len()
    }

    fn record(&self, op: OpKind, seq: u64, kind: FaultKind, words: usize) {
        trace::instant2("fault", kind.label(), "op", op.index() as u64, "seq", seq);
        self.events
            .lock()
            .expect("fault event log poisoned")
            .push(FaultEvent {
                rank: self.inner.rank(),
                op,
                seq,
                phase: current_phase(),
                kind,
                words,
            });
    }

    /// Collect the faults applicable to the current operation, in a fixed
    /// deterministic order (explicit entries first, then sampled draws).
    fn faults_for(&self, op: OpKind, seq: u64, words: usize) -> Vec<FaultKind> {
        let mut fired = Vec::new();
        if self.plan.is_empty() {
            return fired;
        }
        let rank = self.inner.rank();
        let phase = current_phase();
        for (inj, count) in self.plan.explicit.iter().zip(&self.matches) {
            let t = &inj.target;
            if t.op != op
                || t.rank.is_some_and(|r| r != rank)
                || t.phase.is_some_and(|p| p != phase)
                || words < t.min_words
            {
                continue;
            }
            let match_idx = count.fetch_add(1, Ordering::Relaxed);
            if match_idx == t.seq {
                fired.push(inj.kind);
            }
        }
        let rates = &self.plan.rates;
        let phase_ok = self.plan.rate_phase.is_none_or(|p| p == phase);
        if phase_ok {
            let s = self.plan.seed;
            let r = rank as u64;
            if op.is_collective() && words >= self.plan.rate_min_words {
                if rates.bitflip > 0.0 && unit(mix(s, SALT_BITFLIP, r, seq)) < rates.bitflip {
                    fired.push(self.sampled_flip(seq));
                }
                // Replicated draw: every rank sees the same failed collective.
                if rates.opfail > 0.0 && unit(mix(s, SALT_OPFAIL, ALL_RANKS, seq)) < rates.opfail {
                    fired.push(FaultKind::OpFail);
                }
            }
            if op == OpKind::Send {
                if rates.bitflip > 0.0 && unit(mix(s, SALT_BITFLIP, r, seq)) < rates.bitflip {
                    fired.push(self.sampled_flip(seq));
                }
                if rates.drop > 0.0 && unit(mix(s, SALT_DROP, r, seq)) < rates.drop {
                    fired.push(FaultKind::DropMessage);
                }
                if rates.duplicate > 0.0 && unit(mix(s, SALT_DUP, r, seq)) < rates.duplicate {
                    fired.push(FaultKind::DuplicateMessage);
                }
            }
            if rates.stall > 0.0 && unit(mix(s, SALT_STALL, r, seq)) < rates.stall {
                fired.push(FaultKind::Stall {
                    millis: rates.stall_millis,
                });
            }
        }
        fired
    }

    fn sampled_flip(&self, seq: u64) -> FaultKind {
        let rank = self.inner.rank() as u64;
        FaultKind::BitFlip {
            word: Some(mix(self.plan.seed, SALT_WORD, rank, seq) as usize),
            bit: (mix(self.plan.seed, SALT_BIT, rank, seq) % 64) as u32,
        }
    }

    fn next_seq(&self, op: OpKind) -> u64 {
        self.seqs[op.index()].fetch_add(1, Ordering::Relaxed)
    }

    fn flip(buf: &mut [f64], word: Option<usize>, bit: u32, seq: u64) {
        if buf.is_empty() {
            return;
        }
        let w = word.unwrap_or(seq as usize) % buf.len();
        buf[w] = f64::from_bits(buf[w].to_bits() ^ (1u64 << (bit % 64)));
    }

    /// Apply pre-collective faults (stall, contribution bit-flips); returns
    /// whether an OpFail must poison the result afterwards.
    fn before_collective(&self, op: OpKind, seq: u64, buf: &mut [f64]) -> bool {
        let faults = self.faults_for(op, seq, buf.len());
        let mut poison = false;
        for kind in faults {
            match kind {
                FaultKind::Stall { millis } => {
                    self.record(op, seq, kind, buf.len());
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultKind::BitFlip { word, bit } => {
                    self.record(op, seq, kind, buf.len());
                    Self::flip(buf, word, bit, seq);
                }
                FaultKind::OpFail => {
                    self.record(op, seq, kind, buf.len());
                    poison = true;
                }
                // Drop/duplicate have no collective meaning.
                FaultKind::DropMessage | FaultKind::DuplicateMessage => {}
            }
        }
        poison
    }
}

impl Communicator for FaultyComm {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allreduce_sum(&self, buf: &mut [f64]) {
        let seq = self.next_seq(OpKind::Allreduce);
        let poison = self.before_collective(OpKind::Allreduce, seq, buf);
        self.inner.allreduce_sum(buf);
        if poison {
            buf.fill(f64::NAN);
        }
    }

    fn allreduce_sum_retry(&self, buf: &mut [f64]) {
        // Retries are operations like any other: they advance the sequence
        // counter and are themselves injectable.
        let seq = self.next_seq(OpKind::Allreduce);
        let poison = self.before_collective(OpKind::Allreduce, seq, buf);
        self.inner.allreduce_sum_retry(buf);
        if poison {
            buf.fill(f64::NAN);
        }
    }

    fn broadcast(&self, root: usize, buf: &mut [f64]) {
        let seq = self.next_seq(OpKind::Broadcast);
        // Only the root's contribution reaches anyone, so the flip is
        // replicated (or invisible) by construction.
        let poison = self.before_collective(OpKind::Broadcast, seq, buf);
        self.inner.broadcast(root, buf);
        if poison {
            buf.fill(f64::NAN);
        }
    }

    fn allgather(&self, send: &[f64], recv: &mut [f64]) {
        let seq = self.next_seq(OpKind::Allgather);
        let mut contribution = send.to_vec();
        let poison = self.before_collective(OpKind::Allgather, seq, &mut contribution);
        self.inner.allgather(&contribution, recv);
        if poison {
            recv.fill(f64::NAN);
        }
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn send(&self, to: usize, data: &[f64]) {
        let seq = self.next_seq(OpKind::Send);
        let faults = self.faults_for(OpKind::Send, seq, data.len());
        let mut payload = data.to_vec();
        let mut copies = 1usize;
        for kind in faults {
            match kind {
                FaultKind::Stall { millis } => {
                    self.record(OpKind::Send, seq, kind, data.len());
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultKind::BitFlip { word, bit } => {
                    self.record(OpKind::Send, seq, kind, data.len());
                    Self::flip(&mut payload, word, bit, seq);
                }
                FaultKind::DropMessage => {
                    self.record(OpKind::Send, seq, kind, data.len());
                    copies = 0;
                }
                FaultKind::DuplicateMessage => {
                    self.record(OpKind::Send, seq, kind, data.len());
                    if copies > 0 {
                        copies = 2;
                    }
                }
                FaultKind::OpFail => {}
            }
        }
        if copies == 0 {
            // The sender believes it sent: keep the audit trail identical
            // to a successful send, the network just ate the message.
            self.inner.stats().record_p2p(to, data.len());
            return;
        }
        for _ in 0..copies {
            self.inner.send(to, &payload);
        }
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        let seq = self.next_seq(OpKind::Recv);
        let mut msg = self.inner.recv(from);
        self.after_recv(seq, &mut msg);
        msg
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Vec<f64>, CommError> {
        let seq = self.next_seq(OpKind::Recv);
        let mut msg = self.inner.recv_timeout(from, timeout)?;
        self.after_recv(seq, &mut msg);
        Ok(msg)
    }

    fn stats(&self) -> &CommStats {
        self.inner.stats()
    }
}

impl FaultyComm {
    /// Receiver-side perturbations (stalls before delivery are modeled on
    /// the send side; here a flip models corruption detected at the
    /// receiver, and a stall models a slow local delivery path).
    fn after_recv(&self, seq: u64, msg: &mut [f64]) {
        for kind in self.faults_for(OpKind::Recv, seq, msg.len()) {
            match kind {
                FaultKind::Stall { millis } => {
                    self.record(OpKind::Recv, seq, kind, msg.len());
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultKind::BitFlip { word, bit } => {
                    self.record(OpKind::Recv, seq, kind, msg.len());
                    Self::flip(msg, word, bit, seq);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialComm;
    use crate::thread::run_ranks;

    #[test]
    fn empty_plan_is_transparent() {
        let comm = FaultyComm::wrap(SerialComm::new(), FaultPlan::none());
        let mut buf = [1.0, 2.0, 3.0];
        comm.allreduce_sum(&mut buf);
        assert_eq!(buf, [1.0, 2.0, 3.0]);
        assert_eq!(comm.injected(), 0);
        assert_eq!(comm.stats().snapshot().allreduces, 1);
    }

    #[test]
    fn explicit_bitflip_hits_exactly_the_targeted_op() {
        let plan = FaultPlan::none().with(
            Target::nth(OpKind::Allreduce, 1),
            FaultKind::BitFlip {
                word: Some(0),
                bit: 63,
            },
        );
        let comm = FaultyComm::wrap(SerialComm::new(), plan);
        let mut a = [2.0];
        comm.allreduce_sum(&mut a);
        assert_eq!(a, [2.0], "op 0 untouched");
        let mut b = [2.0];
        comm.allreduce_sum(&mut b);
        assert_eq!(b, [-2.0], "op 1 sign-flipped");
        let mut c = [2.0];
        comm.allreduce_sum(&mut c);
        assert_eq!(c, [2.0], "op 2 untouched");
        let events = comm.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, OpKind::Allreduce);
        assert_eq!(events[0].seq, 1);
    }

    #[test]
    fn phase_filter_counts_only_matching_ops() {
        let plan = FaultPlan::none().with(
            Target::nth(OpKind::Allreduce, 0).in_phase("ortho"),
            FaultKind::BitFlip {
                word: Some(0),
                bit: 63,
            },
        );
        let comm = FaultyComm::wrap(SerialComm::new(), plan);
        set_phase("mpk");
        let mut a = [1.0];
        comm.allreduce_sum(&mut a);
        assert_eq!(a, [1.0], "wrong phase is not counted or hit");
        set_phase("ortho");
        let mut b = [1.0];
        comm.allreduce_sum(&mut b);
        assert_eq!(b, [-1.0], "first ortho-phase reduce is hit");
        set_phase("");
    }

    #[test]
    fn min_words_filter_skips_small_payloads() {
        let plan = FaultPlan::none().with(
            Target::nth(OpKind::Allreduce, 0).with_min_words(4),
            FaultKind::BitFlip {
                word: Some(2),
                bit: 63,
            },
        );
        let comm = FaultyComm::wrap(SerialComm::new(), plan);
        let mut small = [1.0];
        comm.allreduce_sum(&mut small);
        assert_eq!(small, [1.0]);
        let mut big = [1.0; 5];
        comm.allreduce_sum(&mut big);
        assert_eq!(big[2], -1.0, "first big-enough reduce is hit");
    }

    #[test]
    fn contribution_flip_is_replicated_across_ranks() {
        // A flipped contribution on rank 0 must produce the *same*
        // corrupted sum on every rank — the property the collective
        // retry protocol relies on.
        let results = run_ranks(3, |comm| {
            let plan = FaultPlan::none().with(
                Target::nth(OpKind::Allreduce, 0).on_rank(0),
                FaultKind::BitFlip {
                    word: Some(0),
                    bit: 63,
                },
            );
            let faulty = FaultyComm::wrap(comm, plan);
            let mut buf = [1.0];
            faulty.allreduce_sum(&mut buf);
            buf[0]
        });
        assert!(results.iter().all(|&x| x == results[0]));
        assert_eq!(results[0], 1.0, "3 - corrupted 1 + 1 + 1 = 1");
    }

    #[test]
    fn opfail_poisons_every_rank() {
        let results = run_ranks(2, |comm| {
            let plan = FaultPlan::none().with(Target::nth(OpKind::Allreduce, 0), FaultKind::OpFail);
            let faulty = FaultyComm::wrap(comm, plan);
            let mut buf = [1.0, 2.0];
            faulty.allreduce_sum(&mut buf);
            buf
        });
        for r in &results {
            assert!(r.iter().all(|v| v.is_nan()));
        }
    }

    #[test]
    #[should_panic(expected = "OpFail must not be rank-targeted")]
    fn rank_targeted_opfail_is_rejected() {
        FaultyComm::wrap(
            SerialComm::new(),
            FaultPlan::none().with(
                Target::nth(OpKind::Allreduce, 0).on_rank(1),
                FaultKind::OpFail,
            ),
        );
    }

    #[test]
    fn dropped_message_never_arrives_but_is_tallied() {
        let results = run_ranks(2, |comm| {
            let plan = FaultPlan::none().with(
                Target::nth(OpKind::Send, 0).on_rank(0),
                FaultKind::DropMessage,
            );
            let faulty = FaultyComm::wrap(comm, plan);
            if faulty.rank() == 0 {
                faulty.send(1, &[1.0]); // dropped
                faulty.send(1, &[2.0]); // delivered
                (faulty.stats().snapshot().p2p_messages, Vec::new())
            } else {
                (0, faulty.recv(0))
            }
        });
        assert_eq!(results[0].0, 2, "the sender's audit trail sees both sends");
        assert_eq!(results[1].1, vec![2.0], "only the second message arrives");
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let results = run_ranks(2, |comm| {
            let plan = FaultPlan::none().with(
                Target::nth(OpKind::Send, 0).on_rank(0),
                FaultKind::DuplicateMessage,
            );
            let faulty = FaultyComm::wrap(comm, plan);
            if faulty.rank() == 0 {
                faulty.send(1, &[1.0]);
                Vec::new()
            } else {
                vec![faulty.recv(0), faulty.recv(0)]
            }
        });
        assert_eq!(results[1], vec![vec![1.0], vec![1.0]]);
    }

    #[test]
    fn sampled_campaign_replays_bitwise_from_its_seed() {
        let run = || {
            let comm = FaultyComm::wrap(
                SerialComm::new(),
                FaultPlan::from_seed(
                    42,
                    FaultRates {
                        bitflip: 0.5,
                        ..FaultRates::default()
                    },
                ),
            );
            let mut outs = Vec::new();
            for i in 0..32 {
                let mut buf = [i as f64, -(i as f64)];
                comm.allreduce_sum(&mut buf);
                outs.push(buf);
            }
            (outs, comm.injected())
        };
        let (a, na) = run();
        let (b, nb) = run();
        assert_eq!(a, b, "same seed, same corruption, bit for bit");
        assert_eq!(na, nb);
        assert!(na > 0, "rate 0.5 over 32 ops must fire");
        assert!(na < 32, "rate 0.5 over 32 ops must also miss");
        // A different seed gives a different schedule.
        let comm = FaultyComm::wrap(
            SerialComm::new(),
            FaultPlan::from_seed(
                43,
                FaultRates {
                    bitflip: 0.5,
                    ..FaultRates::default()
                },
            ),
        );
        let mut outs = Vec::new();
        for i in 0..32 {
            let mut buf = [i as f64, -(i as f64)];
            comm.allreduce_sum(&mut buf);
            outs.push(buf);
        }
        assert_ne!(a, outs);
    }
}
