//! Streamed per-rank matrix assembly: the halo-exchange planner and the
//! local-block normalization shared by every [`DistCsr`](crate::DistCsr)
//! constructor.
//!
//! The replicated construction path (`DistCsr::from_global`) needs the full
//! matrix on every rank — `O(nnz)` per rank — which is the top scaling
//! blocker for simulating the paper's problem sizes.  The streamed path
//! inverts the dependency: each rank produces (or reads) only its own row
//! block with *global* column indices, `O(nnz/P)`, and the pieces of the
//! exchange plan that used to be derived from replicated knowledge are
//! negotiated with two all-gathers of halo-sized metadata:
//!
//! 1. every rank locally derives its **ghost list** (the sorted non-owned
//!    global columns its rows reference) and groups it by owning rank —
//!    that is the receive plan, no communication needed;
//! 2. ghost-list lengths are all-gathered (one word per rank), then the
//!    ghost lists themselves, padded to the longest (`O(P·max_halo)` words
//!    — halo-sized, not matrix-sized);
//! 3. each rank scans the other ranks' ghost lists for indices it owns —
//!    that is the send plan, and because every list is sorted the send
//!    order matches the receiver's ghost order by construction.
//!
//! [`normalize_local_block`] then remaps the local block's columns to the
//! `[owned | ghost]` layout.  Both steps are deterministic and independent
//! of how the rows were produced, so a streamed matrix is **bitwise
//! identical** to a replicated one (`tests/assembly_properties.rs` pins
//! this, including SpMV results and `CommStats` counts).

use crate::comm::Communicator;
use sparse::{Csr, RowPartition};

/// Ghost values to receive from one peer: they land in
/// `ghost[start..start + len]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RecvBlock {
    pub(crate) peer: usize,
    pub(crate) start: usize,
    pub(crate) len: usize,
}

/// Owned `x` entries one peer needs: local indices into this rank's block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SendBlock {
    pub(crate) peer: usize,
    pub(crate) local_indices: Vec<usize>,
}

/// The static halo-exchange plan of one rank: which ghost values to receive
/// from whom, and which owned values to send to whom, for every SpMV on the
/// same matrix.
#[derive(Debug, PartialEq, Eq)]
pub struct HaloPlan {
    /// Global indices of the ghost columns (sorted ascending).
    pub(crate) ghost_globals: Vec<usize>,
    pub(crate) recv: Vec<RecvBlock>,
    pub(crate) send: Vec<SendBlock>,
}

impl HaloPlan {
    /// Number of ghost values this rank imports per SpMV (the analytic
    /// halo-volume term of the performance model, in words).
    pub fn recv_words(&self) -> usize {
        self.ghost_globals.len()
    }

    /// Number of owned values this rank exports per SpMV (counted by
    /// `CommStats` as sent point-to-point words).
    pub fn send_words(&self) -> usize {
        self.send.iter().map(|b| b.local_indices.len()).sum()
    }

    /// Number of peers this rank receives from per SpMV.
    pub fn recv_neighbors(&self) -> usize {
        self.recv.len()
    }

    /// Number of peers this rank sends to per SpMV (the per-rank message
    /// count of the halo exchange).
    pub fn send_neighbors(&self) -> usize {
        self.send.len()
    }

    /// The sorted global indices of the ghost columns.
    pub fn ghost_globals(&self) -> &[usize] {
        &self.ghost_globals
    }
}

/// Derive the halo-exchange plan from this rank's ghost list alone.
///
/// Collective: every rank of `comm` must call it (construction-time
/// synchronization), with `ghost_globals` sorted, duplicate-free and
/// disjoint from the caller's own row range.  Costs **two all-gathers** of
/// halo-sized metadata on multi-rank groups and nothing on a single rank.
pub fn plan_halo_exchange(
    comm: &dyn Communicator,
    part: &RowPartition,
    ghost_globals: Vec<usize>,
) -> HaloPlan {
    let rank = comm.rank();
    let (lo, hi) = part.range(rank);
    // Hard check (O(halo)): the recv plan's block contiguity and the send
    // order both depend on sortedness; violating it silently would scatter
    // ghost values into the wrong slots.
    assert!(
        ghost_globals.windows(2).all(|w| w[0] < w[1]),
        "ghost list must be sorted and duplicate-free"
    );

    // Receive plan: ghosts grouped by owning rank (ghosts are sorted by
    // global index and ownership is monotone, so groups are contiguous).
    let mut recv: Vec<RecvBlock> = Vec::new();
    for (pos, &g) in ghost_globals.iter().enumerate() {
        assert!(
            !(lo..hi).contains(&g),
            "owned column {g} listed as ghost on rank {rank}"
        );
        let owner = part.owner(g);
        match recv.last_mut() {
            Some(block) if block.peer == owner => block.len += 1,
            _ => recv.push(RecvBlock {
                peer: owner,
                start: pos,
                len: 1,
            }),
        }
    }

    if comm.size() == 1 {
        assert!(
            ghost_globals.is_empty(),
            "a single rank owns every column; ghosts are impossible"
        );
        return HaloPlan {
            ghost_globals,
            recv,
            send: Vec::new(),
        };
    }

    // Send plan: all-gather the ghost lists (lengths first, then the lists
    // padded to the longest) and keep the indices this rank owns.  Every
    // list is sorted, so each send block's local indices are ascending —
    // exactly the order the receiving rank's ghost buffer expects.
    let nranks = comm.size();
    let mut counts = vec![0.0f64; nranks];
    comm.allgather(&[ghost_globals.len() as f64], &mut counts);
    let max_ghosts = counts.iter().fold(0.0f64, |a, &b| a.max(b)) as usize;
    let mut send = Vec::new();
    if max_ghosts > 0 {
        let mut send_buf = vec![-1.0f64; max_ghosts];
        for (slot, &g) in send_buf.iter_mut().zip(&ghost_globals) {
            *slot = g as f64;
        }
        let mut recv_buf = vec![0.0f64; max_ghosts * nranks];
        comm.allgather(&send_buf, &mut recv_buf);
        for peer in 0..nranks {
            if peer == rank {
                continue;
            }
            let peer_len = counts[peer] as usize;
            let peer_list = &recv_buf[peer * max_ghosts..peer * max_ghosts + peer_len];
            let needed: Vec<usize> = peer_list
                .iter()
                .map(|&g| g as usize)
                .filter(|&g| (lo..hi).contains(&g))
                .map(|g| g - lo)
                .collect();
            if !needed.is_empty() {
                send.push(SendBlock {
                    peer,
                    local_indices: needed,
                });
            }
        }
    }

    HaloPlan {
        ghost_globals,
        recv,
        send,
    }
}

/// Extract the sorted, duplicate-free list of non-owned global columns the
/// local block references — the rank's ghost list.
pub(crate) fn local_ghosts(local: &Csr, lo: usize, hi: usize) -> Vec<usize> {
    let mut ghosts: Vec<usize> = local
        .colind()
        .iter()
        .copied()
        .filter(|c| !(lo..hi).contains(c))
        .collect();
    ghosts.sort_unstable();
    ghosts.dedup();
    ghosts
}

/// Remap a local row block from global column indices to the
/// `[owned | ghost]` layout (`0..nloc` owned, then ghosts in
/// `ghost_globals` order), re-sorting each row by its new column index and
/// summing any duplicate entries — the exact normalization
/// `Csr::from_triplets` applies on the replicated path, so the two paths
/// produce identical storage (and therefore bitwise-identical SpMV sums).
pub(crate) fn normalize_local_block(local: Csr, lo: usize, ghost_globals: &[usize]) -> Csr {
    let (nloc, _global_cols, rowptr, mut colind, mut vals) = local.into_raw();
    let hi = lo + nloc;
    for c in colind.iter_mut() {
        *c = if (lo..hi).contains(c) {
            *c - lo
        } else {
            nloc + ghost_globals
                .binary_search(c)
                .expect("ghost column missing from halo list")
        };
    }
    // Per-row stable sort by the remapped column, merging duplicates.
    let mut out_rowptr = vec![0usize; nloc + 1];
    let mut write = 0usize;
    let mut row_buf: Vec<(usize, f64)> = Vec::new();
    for i in 0..nloc {
        let (start, end) = (rowptr[i], rowptr[i + 1]);
        row_buf.clear();
        row_buf.extend(
            colind[start..end]
                .iter()
                .copied()
                .zip(vals[start..end].iter().copied()),
        );
        row_buf.sort_by_key(|&(c, _)| c);
        let mut k = 0;
        while k < row_buf.len() {
            let col = row_buf[k].0;
            let mut acc = 0.0;
            while k < row_buf.len() && row_buf[k].0 == col {
                acc += row_buf[k].1;
                k += 1;
            }
            colind[write] = col;
            vals[write] = acc;
            write += 1;
        }
        out_rowptr[i + 1] = write;
    }
    colind.truncate(write);
    vals.truncate(write);
    Csr::from_raw(nloc, nloc + ghost_globals.len(), out_rowptr, colind, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialComm;
    use crate::thread::run_ranks;
    use sparse::{block_row_partition, laplace2d_5pt, Triplet};

    #[test]
    fn serial_plan_is_empty() {
        let part = block_row_partition(10, 1);
        let comm = SerialComm::new();
        let plan = plan_halo_exchange(comm.as_ref(), &part, Vec::new());
        assert_eq!(plan.recv_words(), 0);
        assert_eq!(plan.send_words(), 0);
        assert_eq!(plan.recv_neighbors(), 0);
        assert_eq!(plan.send_neighbors(), 0);
    }

    #[test]
    fn negotiated_send_plan_mirrors_the_recv_plans() {
        // 5-pt Laplacian on a 6x6 grid over 3 ranks: interior rank talks to
        // both neighbours, edge ranks to one.
        let a = laplace2d_5pt(6, 6);
        let part = block_row_partition(a.nrows(), 3);
        let plans = run_ranks(3, |comm| {
            let (lo, hi) = part.range(comm.rank());
            let local = a.row_block(lo, hi);
            let ghosts = local_ghosts(&local, lo, hi);
            let plan = plan_halo_exchange(comm.as_ref(), &part, ghosts);
            (
                plan.recv_words(),
                plan.send_words(),
                plan.recv_neighbors(),
                plan.send_neighbors(),
            )
        });
        // Each boundary between adjacent ranks exchanges one grid row (6
        // values) each way.
        assert_eq!(plans[0], (6, 6, 1, 1));
        assert_eq!(plans[1], (12, 12, 2, 2));
        assert_eq!(plans[2], (6, 6, 1, 1));
        // Conservation: total words received == total words sent.
        let recv_total: usize = plans.iter().map(|p| p.0).sum();
        let send_total: usize = plans.iter().map(|p| p.1).sum();
        assert_eq!(recv_total, send_total);
    }

    #[test]
    fn normalize_sorts_rows_and_sums_duplicates() {
        // A 2-row local block (global rows 2..4 of a 6-column matrix) with
        // unsorted columns and a duplicate entry.
        let local = Csr::from_raw(
            2,
            6,
            vec![0, 3, 5],
            vec![5, 2, 0, 3, 3],
            vec![1.0, 2.0, 4.0, 8.0, 16.0],
        );
        let ghosts = local_ghosts(&local, 2, 4);
        assert_eq!(ghosts, vec![0, 5]);
        let norm = normalize_local_block(local, 2, &ghosts);
        assert_eq!(norm.nrows(), 2);
        assert_eq!(norm.ncols(), 4); // 2 owned + 2 ghost columns
        let (c0, v0) = norm.row(0);
        // global 2 -> 0 (owned), global 0 -> 2 (ghost 0), global 5 -> 3.
        assert_eq!(c0, &[0, 2, 3]);
        assert_eq!(v0, &[2.0, 4.0, 1.0]);
        let (c1, v1) = norm.row(1);
        assert_eq!(c1, &[1]);
        assert_eq!(v1, &[24.0]); // duplicates summed
    }

    #[test]
    #[should_panic(expected = "listed as ghost")]
    fn owned_column_in_ghost_list_is_rejected() {
        let part = block_row_partition(4, 1);
        let comm = SerialComm::new();
        plan_halo_exchange(comm.as_ref(), &part, vec![1]);
    }

    #[test]
    fn normalize_matches_from_triplets_remap() {
        // The replicated path's normalization (triplet remap + from_triplets)
        // and the streamed path's must produce identical storage.
        let a = laplace2d_5pt(5, 5);
        let (lo, hi) = (10, 15);
        let nloc = hi - lo;
        let local = a.row_block(lo, hi);
        let ghosts = local_ghosts(&local, lo, hi);
        let streamed = normalize_local_block(local, lo, &ghosts);
        let mut triplets = Vec::new();
        for i in lo..hi {
            let (cols, vals) = a.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let col = if (lo..hi).contains(&c) {
                    c - lo
                } else {
                    nloc + ghosts.binary_search(&c).unwrap()
                };
                triplets.push(Triplet {
                    row: i - lo,
                    col,
                    val: v,
                });
            }
        }
        let replicated = Csr::from_triplets(nloc, nloc + ghosts.len(), &triplets);
        assert_eq!(streamed, replicated);
    }
}
