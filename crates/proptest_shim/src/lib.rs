//! Minimal deterministic stand-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment is offline, so the real `proptest` crate cannot be
//! fetched.  This shim keeps the property-test sources unmodified: the
//! [`proptest!`] macro expands each property into a plain `#[test]` that
//! samples its range strategies a configurable number of times from a
//! generator seeded by the test's name — deterministic across runs and
//! platforms, so failures are reproducible (there is no shrinking; the
//! failing case's values are reported instead).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Configuration of a property block (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A failed property case (returned by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Value generators; implemented for the range strategies the workspace
/// uses (`lo..hi` over integers and `f64`).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.random::<u64>() % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

/// Deterministic per-test generator, seeded by the test's name.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything the test sources import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Expand properties into plain `#[test]` functions (subset of proptest's
/// macro: named arguments bound with `name in strategy`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case} with {}: {e}",
                            stringify!($name),
                            [$( format!("{} = {:?}", stringify!($arg), $arg) ),+].join(", "),
                        );
                    }
                }
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident $rest:tt $body:block )* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name $rest $body )*
        }
    };
}

/// Fallible assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fallible equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, "{left:?} != {right:?}");
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn sampled_values_stay_in_range(
            x in 3u64..10,
            y in -2.0f64..2.0,
            s in 1usize..4,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
            prop_assert!((1..4).contains(&s));
            prop_assert_eq!(s, s);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::rng_for_test("some_test");
        let mut b = crate::rng_for_test("some_test");
        for _ in 0..10 {
            assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_reports_case_values() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..5) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
