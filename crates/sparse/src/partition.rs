//! 1D block-row partitioning and halo analysis.
//!
//! The paper distributes matrices and vectors "among MPI processes in 1D
//! block row format".  This module computes the contiguous row ranges owned
//! by each rank (balanced either by rows or by nonzeros — the latter is what
//! a graph partitioner like ParMETIS effectively achieves for the stencil
//! and stencil-like matrices used in the evaluation) and, for a given local
//! row block, the set of non-owned columns whose values must be received
//! from neighbouring ranks before a local SpMV (the "halo"/ghost exchange).

use crate::csr::Csr;
use crate::rows::RowSource;

/// A 1D block-row partition of `n` rows over `nranks` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    /// `offsets[r]..offsets[r+1]` is the row range owned by rank `r`.
    pub offsets: Vec<usize>,
}

impl RowPartition {
    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of rows.
    pub fn nrows(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Row range `[start, end)` owned by rank `r`.
    pub fn range(&self, r: usize) -> (usize, usize) {
        (self.offsets[r], self.offsets[r + 1])
    }

    /// Number of rows owned by rank `r`.
    pub fn local_rows(&self, r: usize) -> usize {
        self.offsets[r + 1] - self.offsets[r]
    }

    /// The rank that owns global row `i`.
    ///
    /// Well-defined even when some ranks own empty ranges (repeated
    /// offsets): the returned rank's range always *contains* `i` —
    /// `binary_search` would be ambiguous about which of the equal offsets
    /// it lands on, which matters because the halo planner must never
    /// attribute a ghost column to a rank that owns nothing.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.nrows(), "row {i} out of range");
        // Index of the last offset ≤ i: that rank's range is non-empty at i.
        self.offsets.partition_point(|&o| o <= i) - 1
    }
}

/// Partition `n` rows over `nranks` ranks into contiguous blocks of nearly
/// equal row counts.
pub fn block_row_partition(n: usize, nranks: usize) -> RowPartition {
    assert!(nranks >= 1, "need at least one rank");
    let ranges = parkit::chunk_ranges(n, nranks);
    let mut offsets = Vec::with_capacity(nranks + 1);
    offsets.push(0);
    let mut covered = 0;
    for r in &ranges {
        covered = r.end;
        offsets.push(r.end);
    }
    // `chunk_ranges` never produces more chunks than rows; pad empty ranks.
    while offsets.len() < nranks + 1 {
        offsets.push(covered);
    }
    RowPartition { offsets }
}

/// Partition rows so each rank owns (approximately) the same number of
/// nonzeros; this is the load balance a graph partitioner would deliver for
/// the matrices in the paper's evaluation.
pub fn nnz_balanced_partition(a: &Csr, nranks: usize) -> RowPartition {
    // The per-row counts of a CSR are just row-pointer differences; the
    // partitioning logic is shared with the streamed path.
    let counts: Vec<usize> = (0..a.nrows())
        .map(|i| a.rowptr()[i + 1] - a.rowptr()[i])
        .collect();
    nnz_balanced_partition_from_counts(&counts, nranks)
}

/// One cheap streaming pass over a [`RowSource`]: the number of nonzeros of
/// every row, without materializing any of them beyond a reused scratch
/// buffer.  Peak memory is `O(n)` for the counts plus `O(max row nnz)`
/// scratch — this is the counting pass that lets a distributed solve derive
/// an nnz-balanced [`RowPartition`] *before* any rank assembles its block
/// (`distsim::DistCsr::from_row_source` then streams exactly the rows the
/// derived partition assigns it).
pub fn nnz_counting_pass(source: &impl RowSource) -> Vec<usize> {
    let n = source.nrows();
    let mut counts = Vec::with_capacity(n);
    let mut scratch_c = Vec::new();
    let mut scratch_v = Vec::new();
    for i in 0..n {
        scratch_c.clear();
        scratch_v.clear();
        source.emit_row(i, &mut scratch_c, &mut scratch_v);
        counts.push(scratch_c.len());
    }
    counts
}

/// Build an nnz-balanced contiguous block-row partition from per-row
/// nonzero counts (as produced by [`nnz_counting_pass`] or a CSR's row
/// pointers): blocks close when the running count crosses the next
/// multiple of `total/nranks`.
pub fn nnz_balanced_partition_from_counts(counts: &[usize], nranks: usize) -> RowPartition {
    assert!(nranks >= 1, "need at least one rank");
    let n = counts.len();
    let total: usize = counts.iter().sum();
    let target = (total as f64 / nranks as f64).max(1.0);
    let mut offsets = vec![0usize];
    let mut acc = 0usize;
    let mut next_target = target;
    for (i, &c) in counts.iter().enumerate() {
        acc += c;
        // Close the block when the running nnz crosses the next target, but
        // never create more than nranks blocks.
        if (acc as f64) >= next_target && offsets.len() < nranks {
            offsets.push(i + 1);
            next_target += target;
        }
    }
    while offsets.len() < nranks + 1 {
        offsets.push(n);
    }
    RowPartition { offsets }
}

/// For the local row block `[row_start, row_end)` of `a`, the sorted list of
/// non-owned global columns referenced by the block — i.e. the ghost values
/// a rank must receive before computing its local part of `A·x`.
pub fn halo_columns(a: &Csr, row_start: usize, row_end: usize) -> Vec<usize> {
    let mut ghost: Vec<usize> = Vec::new();
    for i in row_start..row_end {
        let (cols, _) = a.row(i);
        for &c in cols {
            if c < row_start || c >= row_end {
                ghost.push(c);
            }
        }
    }
    ghost.sort_unstable();
    ghost.dedup();
    ghost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{laplace2d_5pt, laplace3d_7pt};

    #[test]
    fn block_partition_covers_all_rows() {
        let p = block_row_partition(103, 8);
        assert_eq!(p.nranks(), 8);
        assert_eq!(p.nrows(), 103);
        let mut total = 0;
        for r in 0..8 {
            total += p.local_rows(r);
        }
        assert_eq!(total, 103);
    }

    #[test]
    fn more_ranks_than_rows_leaves_empty_ranks() {
        let p = block_row_partition(3, 5);
        assert_eq!(p.nranks(), 5);
        assert_eq!(p.nrows(), 3);
        assert_eq!(p.local_rows(4), 0);
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let p = block_row_partition(100, 7);
        for r in 0..7 {
            let (lo, hi) = p.range(r);
            for i in lo..hi {
                assert_eq!(p.owner(i), r, "row {i}");
            }
        }
    }

    #[test]
    fn owner_skips_empty_middle_ranks() {
        // Rank 1 owns nothing (offsets repeat): every row must be
        // attributed to a rank whose range actually contains it.
        let p = RowPartition {
            offsets: vec![0, 2, 2, 4],
        };
        for i in 0..4 {
            let r = p.owner(i);
            let (lo, hi) = p.range(r);
            assert!(
                (lo..hi).contains(&i),
                "row {i} attributed to empty rank {r}"
            );
        }
        assert_eq!(p.owner(2), 2);
        // Trailing empty ranks as produced by block_row_partition.
        let q = block_row_partition(3, 5);
        for i in 0..3 {
            let (lo, hi) = q.range(q.owner(i));
            assert!((lo..hi).contains(&i));
        }
    }

    #[test]
    fn nnz_balanced_partition_balances_within_tolerance() {
        let a = laplace3d_7pt(12, 12, 12);
        let p = nnz_balanced_partition(&a, 6);
        assert_eq!(p.nrows(), a.nrows());
        let mut sizes = Vec::new();
        for r in 0..6 {
            let (lo, hi) = p.range(r);
            let nnz = a.rowptr()[hi] - a.rowptr()[lo];
            sizes.push(nnz);
        }
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.5, "imbalance {sizes:?}");
    }

    #[test]
    fn counting_pass_matches_csr_row_pointers() {
        let a = laplace2d_5pt(9, 7);
        let counts = nnz_counting_pass(&a);
        assert_eq!(counts.len(), a.nrows());
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, a.rowptr()[i + 1] - a.rowptr()[i]);
        }
        // And the partition derived from the streamed counts is identical
        // to the one derived from the assembled matrix.
        for nranks in [1, 3, 8] {
            assert_eq!(
                nnz_balanced_partition_from_counts(&counts, nranks),
                nnz_balanced_partition(&a, nranks)
            );
        }
    }

    #[test]
    fn streamed_nnz_partition_balances_the_suitelike_surrogate() {
        // The ROADMAP item: derive an nnz-balanced partition from one cheap
        // counting pass over a RowSource (no global assembly), and keep the
        // per-rank nnz imbalance within 1.2x on the SuiteSparse surrogate.
        let spec = crate::suitelike::SUITE_SPARSE_SET
            .iter()
            .find(|s| s.name == "atmosmodl")
            .unwrap();
        let rows = crate::suitelike::SuiteLikeRows::new(spec, Some(4_000), 7);
        let counts = nnz_counting_pass(&rows);
        let total: usize = counts.iter().sum();
        for nranks in [2, 4, 8] {
            let p = nnz_balanced_partition_from_counts(&counts, nranks);
            assert_eq!(p.nranks(), nranks);
            assert_eq!(p.nrows(), rows.nrows());
            let mean = total as f64 / nranks as f64;
            for r in 0..nranks {
                let (lo, hi) = p.range(r);
                let nnz: usize = counts[lo..hi].iter().sum();
                assert!(
                    nnz as f64 <= 1.2 * mean,
                    "rank {r}/{nranks}: nnz {nnz} vs mean {mean:.0} (> 1.2x)"
                );
            }
        }
    }

    #[test]
    fn counting_pass_handles_empty_rows_and_single_rank() {
        use crate::csr::Triplet;
        let a = Csr::from_triplets(
            5,
            5,
            &[
                Triplet {
                    row: 1,
                    col: 0,
                    val: 1.0,
                },
                Triplet {
                    row: 1,
                    col: 2,
                    val: 2.0,
                },
                Triplet {
                    row: 4,
                    col: 4,
                    val: 3.0,
                },
            ],
        );
        assert_eq!(nnz_counting_pass(&a), vec![0, 2, 0, 0, 1]);
        let p = nnz_balanced_partition_from_counts(&nnz_counting_pass(&a), 1);
        assert_eq!(p.offsets, vec![0, 5]);
        // All-empty matrix still partitions.
        let p0 = nnz_balanced_partition_from_counts(&[0, 0, 0], 2);
        assert_eq!(p0.nrows(), 3);
        assert_eq!(p0.nranks(), 2);
    }

    #[test]
    fn halo_of_interior_block_is_the_stencil_boundary() {
        // 2D 5-pt Laplacian on a 10x10 grid, rows 30..60 (3 grid rows): the
        // halo is exactly the grid rows directly above and below the block.
        let a = laplace2d_5pt(10, 10);
        let ghosts = halo_columns(&a, 30, 60);
        let expect: Vec<usize> = (20..30).chain(60..70).collect();
        assert_eq!(ghosts, expect);
    }

    #[test]
    fn halo_of_whole_matrix_is_empty() {
        let a = laplace2d_5pt(6, 6);
        assert!(halo_columns(&a, 0, 36).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        block_row_partition(10, 0);
    }
}
