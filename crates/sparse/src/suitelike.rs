//! Synthetic surrogates for the SuiteSparse matrices used in the paper.
//!
//! The evaluation (Table IV, Fig. 9) uses seven matrices from the
//! SuiteSparse Matrix Collection.  Those files are not redistributable with
//! this repository, so we generate *surrogates* that match the properties
//! the experiments actually exercise — dimension, average nonzeros per row,
//! symmetry class and rough conditioning — so the SpMV cost, the
//! orthogonalization workload and the MPK condition-number growth are
//! representative.  The [`crate::mm`] reader can load the real files when
//! they are available, and the experiment harness will use them instead.
//!
//! Each surrogate is a banded random matrix: row `i` couples to a fixed set
//! of pseudo-random neighbour offsets (the same for every row, so the
//! pattern resembles a stencil/graph Laplacian with long-range connections)
//! plus a dominant diagonal.  The `spd` flag symmetrizes the values and
//! shifts the diagonal to make the matrix positive definite; otherwise a
//! mild skew term keeps it non-symmetric.

use crate::csr::Csr;
use crate::rows::{assemble, RowSource};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Specification of a SuiteSparse-like synthetic matrix.
#[derive(Debug, Clone)]
pub struct SuiteLikeSpec {
    /// Name (matches the SuiteSparse name it stands in for).
    pub name: &'static str,
    /// Dimension `n`.
    pub n: usize,
    /// Target average nonzeros per row.
    pub nnz_per_row: f64,
    /// Whether the surrogate should be symmetric positive definite.
    pub spd: bool,
    /// Short description quoted from the paper's Table IV.
    pub description: &'static str,
}

/// The seven matrices of Table IV plus the two extra matrices of Fig. 9,
/// with the dimensions and densities reported in the paper (scaled-down
/// dimensions can be requested at generation time).
pub const SUITE_SPARSE_SET: &[SuiteLikeSpec] = &[
    SuiteLikeSpec {
        name: "atmosmodl",
        n: 1_489_752,
        nnz_per_row: 6.9,
        spd: false,
        description: "CFD, numerically non-symmetric",
    },
    SuiteLikeSpec {
        name: "dielFilterV2real",
        n: 1_157_456,
        nnz_per_row: 41.9,
        spd: false,
        description: "Electromagnetics, symmetric indefinite",
    },
    SuiteLikeSpec {
        name: "ecology2",
        n: 999_999,
        nnz_per_row: 5.0,
        spd: true,
        description: "Circuit, SPD",
    },
    SuiteLikeSpec {
        name: "ML_Geer",
        n: 1_504_002,
        nnz_per_row: 73.7,
        spd: false,
        description: "Structural, numerically non-symmetric",
    },
    SuiteLikeSpec {
        name: "thermal2",
        n: 1_228_045,
        nnz_per_row: 7.0,
        spd: true,
        description: "Unstructured thermal FEM, SPD",
    },
    SuiteLikeSpec {
        name: "HTC_336_4438",
        n: 226_340,
        nnz_per_row: 3.5,
        spd: false,
        description: "Fig. 9 matrix with ill-conditioned MPK basis",
    },
    SuiteLikeSpec {
        name: "Ga41As41H72",
        n: 268_096,
        nnz_per_row: 68.6,
        spd: false,
        description: "Fig. 9 matrix with ill-conditioned MPK basis",
    },
];

/// Streaming row source for a SuiteSparse-like surrogate.
///
/// Every row is generated independently from a per-row RNG seeded by
/// `(seed, row)`, so any row can be produced on demand in any order — the
/// property the streamed distributed assembly
/// (`distsim::DistCsr::from_row_source`) needs to build a rank's block
/// without materializing the global matrix.  The pattern offsets are drawn
/// once at construction (they are shared by all rows, like a stencil with
/// long-range couplings).
#[derive(Debug, Clone)]
pub struct SuiteLikeRows {
    n: usize,
    spd: bool,
    seed: u64,
    offsets: Vec<i64>,
}

impl SuiteLikeRows {
    /// Build the row source for `spec`, optionally overriding the dimension
    /// (the paper-scale dimensions are large; tests and laptop runs pass a
    /// smaller `n_override`).
    pub fn new(spec: &SuiteLikeSpec, n_override: Option<usize>, seed: u64) -> Self {
        let n = n_override.unwrap_or(spec.n);
        assert!(n >= 8, "surrogate dimension too small");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
        // Off-diagonal couplings per row (pattern offsets shared by all rows).
        let offdiag_per_row = (spec.nnz_per_row.round() as usize).saturating_sub(1).max(2);
        let mut offsets: Vec<i64> = Vec::with_capacity(offdiag_per_row + 1);
        if spec.spd {
            // Symmetric pattern: mirrored ± offsets, half short-range
            // (stencil-like), half long-range (unstructured fill).
            let half = offdiag_per_row.div_ceil(2).max(1);
            for k in 0..half {
                let d = if k % 2 == 0 {
                    1 + (k / 2) as i64
                } else {
                    let span = (n / 7).max(2) as u64;
                    (rng.random::<u64>() % span) as i64 + 2
                };
                offsets.push(d);
                offsets.push(-d);
            }
        } else {
            for k in 0..offdiag_per_row {
                if k % 2 == 0 {
                    let short = 1 + (k / 2) as i64;
                    offsets.push(if k % 4 == 0 { -short } else { short });
                } else {
                    let span = (n / 7).max(2) as u64;
                    let r = (rng.random::<u64>() % span) as i64 + 2;
                    offsets.push(if k % 4 == 1 { r } else { -r });
                }
            }
        }
        offsets.sort_unstable();
        offsets.dedup();
        Self {
            n,
            spd: spec.spd,
            seed,
            offsets,
        }
    }
}

impl RowSource for SuiteLikeRows {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn emit_row(&self, i: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        let n = self.n;
        // Per-row generator: splitmix-style mixing of (seed, row) so rows
        // are independent and reproducible in any order.
        let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.seed ^ 0x5eed_0001;
        h ^= h >> 31;
        let mut rng = StdRng::seed_from_u64(h);
        let below = cols.len();
        let mut row_abs_sum = 0.0;
        let mut diag_at = below;
        for &d in &self.offsets {
            let j = i as i64 + d;
            if j < 0 || j as usize >= n {
                continue;
            }
            let j = j as usize;
            let mag: f64 = 0.1 + 0.9 * rng.random::<f64>();
            let val = if self.spd {
                // Symmetric value determined by the unordered pair (i, j).
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                let h = (a
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(b.wrapping_mul(0x85EB_CA6B))) as u64;
                -(0.1 + 0.9 * ((h % 1000) as f64 / 1000.0))
            } else {
                // Non-symmetric: random magnitude with a skew sign pattern.
                if d > 0 {
                    -mag
                } else {
                    -0.8 * mag
                }
            };
            row_abs_sum += val.abs();
            if d < 0 {
                diag_at += 1;
            }
            cols.push(j);
            vals.push(val);
        }
        // Diagonal: dominant for SPD (guarantees positive definiteness);
        // mildly dominant otherwise so GMRES converges without a
        // preconditioner on the surrogate, as it does on the originals.
        let diag = if self.spd {
            row_abs_sum + 1.0
        } else {
            row_abs_sum * (1.05 + 0.1 * rng.random::<f64>())
        };
        // The offsets are ascending, so entries below the diagonal came
        // first; splice the diagonal in between to keep the row sorted.
        cols.insert(diag_at, i);
        vals.insert(diag_at, diag);
        debug_assert!(cols[below..].windows(2).all(|w| w[0] < w[1]));
    }
}

/// Generate a surrogate for `spec`, optionally overriding the dimension
/// (the paper-scale dimensions are large; tests and laptop runs pass a
/// smaller `n_override`).
///
/// This is [`rows::assemble`](crate::rows::assemble) over
/// [`SuiteLikeRows`], so a replicated surrogate and a streamed per-rank
/// block of the same spec/seed agree bitwise.
pub fn suitesparse_surrogate(spec: &SuiteLikeSpec, n_override: Option<usize>, seed: u64) -> Csr {
    assemble(&SuiteLikeRows::new(spec, n_override, seed))
}

/// Find a spec by (SuiteSparse) name.
pub fn spec_by_name(name: &str) -> Option<&'static SuiteLikeSpec> {
    SUITE_SPARSE_SET.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_the_papers_matrices() {
        for name in [
            "atmosmodl",
            "dielFilterV2real",
            "ecology2",
            "ML_Geer",
            "thermal2",
            "HTC_336_4438",
            "Ga41As41H72",
        ] {
            assert!(spec_by_name(name).is_some(), "{name} missing");
        }
        assert!(spec_by_name("does_not_exist").is_none());
    }

    #[test]
    fn surrogate_has_requested_dimension_and_density() {
        let spec = spec_by_name("atmosmodl").unwrap();
        let a = suitesparse_surrogate(spec, Some(5_000), 1);
        assert_eq!(a.nrows(), 5_000);
        let density = a.nnz() as f64 / a.nrows() as f64;
        assert!(
            (density - spec.nnz_per_row).abs() < 2.5,
            "density {density} vs target {}",
            spec.nnz_per_row
        );
    }

    #[test]
    fn spd_surrogate_is_symmetric_positive_definite() {
        let spec = spec_by_name("ecology2").unwrap();
        let a = suitesparse_surrogate(spec, Some(200), 3);
        assert!(a.is_symmetric(1e-12));
        let vals = dense::sym_eigvals(&a.to_dense());
        assert!(vals[0] > 0.0, "min eigenvalue {}", vals[0]);
    }

    #[test]
    fn nonsymmetric_surrogate_is_nonsymmetric_and_nonsingular() {
        let spec = spec_by_name("atmosmodl").unwrap();
        let a = suitesparse_surrogate(spec, Some(200), 4);
        assert!(!a.is_symmetric(1e-12));
        // Diagonal dominance implies nonsingularity.
        let d = a.diagonal();
        for (i, &di) in d.iter().enumerate() {
            let (cols, vals) = a.row(i);
            let off: f64 = cols
                .iter()
                .zip(vals)
                .filter(|(c, _)| **c != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(di > off * 0.999, "row {i} not dominant");
        }
    }

    #[test]
    fn surrogate_is_seed_deterministic() {
        let spec = spec_by_name("thermal2").unwrap();
        let a = suitesparse_surrogate(spec, Some(300), 7);
        let b = suitesparse_surrogate(spec, Some(300), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn rows_can_be_emitted_out_of_order_and_match_the_assembled_matrix() {
        let spec = spec_by_name("atmosmodl").unwrap();
        let src = SuiteLikeRows::new(spec, Some(300), 11);
        let a = suitesparse_surrogate(spec, Some(300), 11);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        // Visit rows backwards: each must match the assembled matrix exactly.
        for i in (0..300).rev() {
            cols.clear();
            vals.clear();
            src.emit_row(i, &mut cols, &mut vals);
            let (rc, rv) = a.row(i);
            assert_eq!(cols, rc, "row {i} pattern");
            assert_eq!(vals, rv, "row {i} values");
        }
    }

    #[test]
    fn dense_surrogates_have_more_nnz_per_row() {
        let geer = suitesparse_surrogate(spec_by_name("ML_Geer").unwrap(), Some(2_000), 5);
        let eco = suitesparse_surrogate(spec_by_name("ecology2").unwrap(), Some(2_000), 5);
        assert!(geer.nnz() > 5 * eco.nnz());
    }
}
