//! Row/column scaling applied to the SuiteSparse matrices in Section VI.
//!
//! The paper scales "the columns and then rows of the matrices by the
//! maximum nonzero entries in the columns and rows (hence, all the resulting
//! matrices are non-symmetric)".  This equilibration keeps the monomial
//! s-step basis from overflowing and is applied before the matrix-powers
//! kernel runs.

use crate::csr::Csr;

/// Scale the columns of `a` by the reciprocal of their maximum absolute
/// entry, then the rows likewise.  Returns the scaled matrix together with
/// the column and row scaling factors that were applied (useful for
/// un-scaling solutions).
///
/// Columns or rows whose maximum entry is zero are left unscaled.
pub fn scale_rows_cols_by_max(a: &Csr) -> (Csr, Vec<f64>, Vec<f64>) {
    let nrows = a.nrows();
    let ncols = a.ncols();
    // Column maxima.
    let mut col_max = vec![0.0f64; ncols];
    for i in 0..nrows {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            col_max[*c] = col_max[*c].max(v.abs());
        }
    }
    let col_scale: Vec<f64> = col_max
        .iter()
        .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
        .collect();
    // Apply column scaling, then compute row maxima of the column-scaled
    // matrix and apply row scaling.
    let mut scaled = a.clone();
    {
        let rowptr = scaled.rowptr().to_vec();
        let colind = scaled.colind().to_vec();
        let vals = scaled.vals_mut();
        for i in 0..nrows {
            for p in rowptr[i]..rowptr[i + 1] {
                vals[p] *= col_scale[colind[p]];
            }
        }
    }
    let mut row_scale = vec![1.0f64; nrows];
    {
        let rowptr = scaled.rowptr().to_vec();
        let vals = scaled.vals_mut();
        for i in 0..nrows {
            let row_vals = &mut vals[rowptr[i]..rowptr[i + 1]];
            let m = row_vals.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            let s = if m > 0.0 { 1.0 / m } else { 1.0 };
            row_scale[i] = s;
            for v in row_vals {
                *v *= s;
            }
        }
    }
    (scaled, row_scale, col_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Triplet;
    use crate::stencil::laplace2d_5pt;

    #[test]
    fn scaled_matrix_has_unit_row_maxima() {
        let a = laplace2d_5pt(6, 6);
        let (s, _, _) = scale_rows_cols_by_max(&a);
        for i in 0..s.nrows() {
            let (_, vals) = s.row(i);
            let m = vals.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            assert!((m - 1.0).abs() < 1e-14, "row {i} max {m}");
        }
    }

    #[test]
    fn scaling_makes_symmetric_matrix_nonsymmetric() {
        // As noted in the paper, the two-sided max scaling destroys symmetry
        // whenever the row/column maxima differ (true for the SuiteSparse
        // matrices; a constant-coefficient Laplacian is the degenerate case
        // where all maxima coincide and symmetry happens to survive).
        let a = Csr::from_triplets(
            2,
            2,
            &[
                Triplet {
                    row: 0,
                    col: 0,
                    val: 4.0,
                },
                Triplet {
                    row: 1,
                    col: 1,
                    val: 9.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    val: 2.0,
                },
                Triplet {
                    row: 1,
                    col: 0,
                    val: 2.0,
                },
            ],
        );
        assert!(a.is_symmetric(0.0));
        let (s, _, _) = scale_rows_cols_by_max(&a);
        assert!(!s.is_symmetric(1e-14));
    }

    #[test]
    fn scaling_factors_reproduce_scaled_matrix() {
        let a = Csr::from_triplets(
            2,
            2,
            &[
                Triplet {
                    row: 0,
                    col: 0,
                    val: 4.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    val: 2.0,
                },
                Triplet {
                    row: 1,
                    col: 1,
                    val: 8.0,
                },
            ],
        );
        let (s, row_scale, col_scale) = scale_rows_cols_by_max(&a);
        // Check S[i][j] == row_scale[i] * A[i][j] * col_scale[j].
        let ad = a.to_dense();
        let sd = s.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                let expect = row_scale[i] * ad[(i, j)] * col_scale[j];
                assert!((sd[(i, j)] - expect).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn zero_rows_and_columns_are_left_alone() {
        let a = Csr::from_triplets(
            3,
            3,
            &[Triplet {
                row: 0,
                col: 0,
                val: 5.0,
            }],
        );
        let (s, row_scale, col_scale) = scale_rows_cols_by_max(&a);
        assert_eq!(s.to_dense()[(0, 0)], 1.0);
        assert_eq!(row_scale[1], 1.0);
        assert_eq!(col_scale[2], 1.0);
    }
}
