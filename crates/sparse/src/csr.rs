//! Compressed sparse row (CSR) matrices and the parallel SpMV kernel.

use parkit::{chunk_ranges, num_threads_for};

/// A `(row, col, value)` entry used to assemble a [`Csr`] matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value.
    pub val: f64,
}

/// Compressed sparse row matrix with `f64` values.
///
/// Invariants: `rowptr.len() == nrows + 1`, `rowptr` is non-decreasing,
/// column indices within each row are sorted and unique, and every column
/// index is `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Assemble a CSR matrix from triplets; duplicate `(row, col)` entries
    /// are summed.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[Triplet]) -> Self {
        for t in triplets {
            assert!(
                t.row < nrows && t.col < ncols,
                "triplet ({}, {}) out of bounds for {}x{}",
                t.row,
                t.col,
                nrows,
                ncols
            );
        }
        // Count entries per row.
        let mut counts = vec![0usize; nrows];
        for t in triplets {
            counts[t.row] += 1;
        }
        let mut rowptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            rowptr[i + 1] = rowptr[i] + counts[i];
        }
        let nnz = rowptr[nrows];
        let mut colind = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut next = rowptr.clone();
        for t in triplets {
            let p = next[t.row];
            colind[p] = t.col;
            vals[p] = t.val;
            next[t.row] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_rowptr = vec![0usize; nrows + 1];
        let mut out_colind = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        for i in 0..nrows {
            let lo = rowptr[i];
            let hi = rowptr[i + 1];
            let mut row: Vec<(usize, f64)> = colind[lo..hi]
                .iter()
                .copied()
                .zip(vals[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < row.len() {
                let col = row[k].0;
                let mut acc = 0.0;
                while k < row.len() && row[k].0 == col {
                    acc += row[k].1;
                    k += 1;
                }
                out_colind.push(col);
                out_vals.push(acc);
            }
            out_rowptr[i + 1] = out_colind.len();
        }
        Self {
            nrows,
            ncols,
            rowptr: out_rowptr,
            colind: out_colind,
            vals: out_vals,
        }
    }

    /// Build a CSR matrix directly from its raw arrays.
    ///
    /// Panics if the arrays are inconsistent (wrong lengths, non-monotone
    /// `rowptr`, out-of-range column index).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr length mismatch");
        assert_eq!(colind.len(), vals.len(), "colind/vals length mismatch");
        assert_eq!(*rowptr.last().unwrap(), colind.len(), "rowptr end mismatch");
        for w in rowptr.windows(2) {
            assert!(w[0] <= w[1], "rowptr must be non-decreasing");
        }
        for &c in &colind {
            assert!(c < ncols, "column index {c} out of bounds {ncols}");
        }
        Self {
            nrows,
            ncols,
            rowptr,
            colind,
            vals,
        }
    }

    /// Decompose the matrix into its raw arrays
    /// `(nrows, ncols, rowptr, colind, vals)` without copying — the inverse
    /// of [`Csr::from_raw`], used by consumers that transform the storage
    /// in place (e.g. the distributed assembly's column remap).
    pub fn into_raw(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<f64>) {
        (self.nrows, self.ncols, self.rowptr, self.colind, self.vals)
    }

    /// The `n × n` identity matrix in CSR form.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colind: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    pub fn colind(&self) -> &[usize] {
        &self.colind
    }

    /// Value array.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array (pattern is fixed).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// The `(colind, vals)` pairs of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        (&self.colind[lo..hi], &self.vals[lo..hi])
    }

    /// The diagonal of the matrix (zeros where no entry is stored).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows.min(self.ncols)];
        for (i, entry) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals.iter()) {
                if *c == i {
                    *entry = *v;
                }
            }
        }
        d
    }

    /// Sparse matrix–vector product `y = A·x` (parallel over row blocks).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        let rowptr = &self.rowptr;
        let colind = &self.colind;
        let vals = &self.vals;
        parkit::parallel_for_chunks(y, |ychunk, offset| {
            for (k, yi) in ychunk.iter_mut().enumerate() {
                let i = offset + k;
                let lo = rowptr[i];
                let hi = rowptr[i + 1];
                let mut acc = 0.0;
                for p in lo..hi {
                    acc += vals[p] * x[colind[p]];
                }
                *yi = acc;
            }
        });
    }

    /// `y = A·x` returning a freshly allocated vector.
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// Transpose (used by scaling and by symmetry checks in tests).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.colind {
            counts[c] += 1;
        }
        let mut rowptr = vec![0usize; self.ncols + 1];
        for i in 0..self.ncols {
            rowptr[i + 1] = rowptr[i] + counts[i];
        }
        let mut colind = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = rowptr.clone();
        for i in 0..self.nrows {
            let (cols, rvals) = self.row(i);
            for (c, v) in cols.iter().zip(rvals) {
                let p = next[*c];
                colind[p] = i;
                vals[p] = *v;
                next[*c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colind,
            vals,
        }
    }

    /// Extract the sub-matrix of rows `row_start..row_end` (all columns),
    /// keeping global column indices.  This is how a 1D block-row
    /// distribution stores its local part.
    pub fn row_block(&self, row_start: usize, row_end: usize) -> Csr {
        assert!(
            row_start <= row_end && row_end <= self.nrows,
            "row block out of range"
        );
        let lo = self.rowptr[row_start];
        let hi = self.rowptr[row_end];
        let rowptr: Vec<usize> = self.rowptr[row_start..=row_end]
            .iter()
            .map(|p| p - lo)
            .collect();
        Csr {
            nrows: row_end - row_start,
            ncols: self.ncols,
            rowptr,
            colind: self.colind[lo..hi].to_vec(),
            vals: self.vals[lo..hi].to_vec(),
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        let nthreads = num_threads_for(self.nrows);
        let ranges = chunk_ranges(self.nrows, nthreads);
        let mut best = 0.0f64;
        for r in ranges {
            for i in r.start..r.end {
                let (_, vals) = self.row(i);
                let s: f64 = vals.iter().map(|v| v.abs()).sum();
                best = best.max(s);
            }
        }
        best
    }

    /// Whether the sparsity pattern and values are numerically symmetric to
    /// within `tol` (used to classify the SuiteSparse surrogates).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.rowptr != self.rowptr || t.colind != self.colind {
            return false;
        }
        self.vals
            .iter()
            .zip(&t.vals)
            .all(|(a, b)| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0))
    }

    /// Dense copy (for small-matrix tests only).
    pub fn to_dense(&self) -> dense::Matrix {
        let mut m = dense::Matrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                m[(i, *c)] += *v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        Csr::from_triplets(
            3,
            3,
            &[
                Triplet {
                    row: 0,
                    col: 0,
                    val: 2.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    val: -1.0,
                },
                Triplet {
                    row: 1,
                    col: 0,
                    val: -1.0,
                },
                Triplet {
                    row: 1,
                    col: 1,
                    val: 2.0,
                },
                Triplet {
                    row: 1,
                    col: 2,
                    val: -1.0,
                },
                Triplet {
                    row: 2,
                    col: 1,
                    val: -1.0,
                },
                Triplet {
                    row: 2,
                    col: 2,
                    val: 2.0,
                },
            ],
        )
    }

    #[test]
    fn assembly_sorts_and_sums_duplicates() {
        let a = Csr::from_triplets(
            2,
            2,
            &[
                Triplet {
                    row: 0,
                    col: 1,
                    val: 1.0,
                },
                Triplet {
                    row: 0,
                    col: 0,
                    val: 2.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    val: 3.0,
                },
                Triplet {
                    row: 1,
                    col: 1,
                    val: 5.0,
                },
            ],
        );
        assert_eq!(a.nnz(), 3);
        let (cols, vals) = a.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, 4.0]);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.spmv_alloc(&x);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_large_matches_dense() {
        // Random-ish banded matrix, compare against dense product.
        let n = 500;
        let mut trip = Vec::new();
        for i in 0..n {
            for d in -2i64..=2 {
                let j = i as i64 + d;
                if j >= 0 && (j as usize) < n {
                    trip.push(Triplet {
                        row: i,
                        col: j as usize,
                        val: ((i * 3 + j as usize) % 7) as f64 - 3.0,
                    });
                }
            }
        }
        let a = Csr::from_triplets(n, n, &trip);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y = a.spmv_alloc(&x);
        let ad = a.to_dense();
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += ad[(i, j)] * x[j];
            }
            assert!((y[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_spmv_is_copy() {
        let a = Csr::identity(10);
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(a.spmv_alloc(&x), x);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(small().diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn transpose_of_symmetric_matrix_is_identical() {
        let a = small();
        assert_eq!(a.transpose(), a);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn transpose_round_trip_nonsymmetric() {
        let a = Csr::from_triplets(
            2,
            3,
            &[
                Triplet {
                    row: 0,
                    col: 2,
                    val: 1.0,
                },
                Triplet {
                    row: 1,
                    col: 0,
                    val: 4.0,
                },
            ],
        );
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.transpose(), a);
        assert!(!a.is_symmetric(0.0));
    }

    #[test]
    fn row_block_keeps_global_columns() {
        let a = small();
        let b = a.row_block(1, 3);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 3);
        let (cols, vals) = b.row(0);
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[-1.0, 2.0, -1.0]);
    }

    #[test]
    fn norms() {
        let a = small();
        assert!((a.frobenius_norm() - (4.0 * 3.0 + 1.0 * 4.0f64).sqrt()).abs() < 1e-14);
        assert_eq!(a.inf_norm(), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        Csr::from_triplets(
            2,
            2,
            &[Triplet {
                row: 2,
                col: 0,
                val: 1.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "rowptr must be non-decreasing")]
    fn from_raw_validates_rowptr() {
        Csr::from_raw(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn from_raw_accepts_valid_input() {
        let a = Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![3.0, 4.0]);
        assert_eq!(a.diagonal(), vec![3.0, 4.0]);
    }
}
