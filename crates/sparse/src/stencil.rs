//! Model-problem generators used in the paper's evaluation.
//!
//! * 2D Laplace on a 5-point stencil (Table II) and on a 9-point stencil
//!   (Table III / Figs. 10–13), on an `nx × ny` grid with Dirichlet
//!   boundary conditions;
//! * 3D Laplace on a 7-point stencil (`Laplace3D`, Table IV);
//! * a 3-dof-per-node elasticity-like operator on a 3D grid
//!   (`Elasticity3D`, Table IV) — a vector Laplacian with weak coupling
//!   between the displacement components, matching the size
//!   (`n = 3·nx·ny·nz`) and sparsity (≈ 5.7 nnz/row after boundary
//!   truncation) of the paper's structured elasticity problem.
//!
//! Every operator exists in two forms: a *row source* (`…Rows` struct
//! implementing [`RowSource`]) that produces any row on demand without
//! materializing the matrix — this is what the streamed distributed
//! assembly (`distsim::DistCsr::from_row_source`) consumes, keeping peak
//! per-rank memory at `O(nnz/P + halo)` — and the classic replicated
//! constructor, which is now just [`rows::assemble`] over the row source
//! (so the two forms are bitwise identical by construction).

use crate::csr::Csr;
use crate::rows::{assemble, RowSource};

/// Row source of the 2D 5-point Laplace operator on an `nx × ny` grid
/// (Dirichlet boundaries), `n = nx·ny` unknowns.
#[derive(Debug, Clone, Copy)]
pub struct Laplace2d5ptRows {
    /// Grid points in the x direction.
    pub nx: usize,
    /// Grid points in the y direction.
    pub ny: usize,
}

impl RowSource for Laplace2d5ptRows {
    fn nrows(&self) -> usize {
        self.nx * self.ny
    }
    fn ncols(&self) -> usize {
        self.nx * self.ny
    }
    fn emit_row(&self, row: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        let (nx, ny) = (self.nx, self.ny);
        let i = row % nx;
        let j = row / nx;
        debug_assert!(j < ny);
        let mut push = |c: usize, v: f64| {
            cols.push(c);
            vals.push(v);
        };
        // Ascending column order: (i, j-1), (i-1, j), diag, (i+1, j), (i, j+1).
        if j > 0 {
            push(row - nx, -1.0);
        }
        if i > 0 {
            push(row - 1, -1.0);
        }
        push(row, 4.0);
        if i + 1 < nx {
            push(row + 1, -1.0);
        }
        if j + 1 < ny {
            push(row + nx, -1.0);
        }
    }
}

/// 2D Laplace operator on a 5-point stencil over an `nx × ny` grid
/// (Dirichlet boundaries), `n = nx·ny` unknowns.
pub fn laplace2d_5pt(nx: usize, ny: usize) -> Csr {
    assemble(&Laplace2d5ptRows { nx, ny })
}

/// Row source of the 2D 9-point Laplace operator on an `nx × ny` grid
/// (Dirichlet boundaries) — the operator of the paper's strong-scaling
/// study (Table III).
#[derive(Debug, Clone, Copy)]
pub struct Laplace2d9ptRows {
    /// Grid points in the x direction.
    pub nx: usize,
    /// Grid points in the y direction.
    pub ny: usize,
}

impl RowSource for Laplace2d9ptRows {
    fn nrows(&self) -> usize {
        self.nx * self.ny
    }
    fn ncols(&self) -> usize {
        self.nx * self.ny
    }
    fn emit_row(&self, row: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        let (nx, ny) = (self.nx, self.ny);
        let i = (row % nx) as i64;
        let j = (row / nx) as i64;
        // Row-major grid ordering: scanning dj then di visits columns in
        // ascending order, with the diagonal at (di, dj) = (0, 0).
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                let ii = i + di;
                let jj = j + dj;
                if ii < 0 || jj < 0 || ii as usize >= nx || jj as usize >= ny {
                    continue;
                }
                cols.push(ii as usize + (jj as usize) * nx);
                vals.push(if di == 0 && dj == 0 { 8.0 } else { -1.0 });
            }
        }
    }
}

/// 2D Laplace operator on a 9-point stencil over an `nx × ny` grid
/// (Dirichlet boundaries), `n = nx·ny` unknowns.  This is the operator of
/// the paper's strong-scaling study (Table III).
pub fn laplace2d_9pt(nx: usize, ny: usize) -> Csr {
    assemble(&Laplace2d9ptRows { nx, ny })
}

/// Row source of the 3D 7-point Laplace operator on an `nx × ny × nz` grid
/// (Dirichlet boundaries), `n = nx·ny·nz` unknowns (`Laplace3D` in
/// Table IV).
#[derive(Debug, Clone, Copy)]
pub struct Laplace3d7ptRows {
    /// Grid points in the x direction.
    pub nx: usize,
    /// Grid points in the y direction.
    pub ny: usize,
    /// Grid points in the z direction.
    pub nz: usize,
}

impl RowSource for Laplace3d7ptRows {
    fn nrows(&self) -> usize {
        self.nx * self.ny * self.nz
    }
    fn ncols(&self) -> usize {
        self.nx * self.ny * self.nz
    }
    fn emit_row(&self, row: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let i = row % nx;
        let j = (row / nx) % ny;
        let k = row / (nx * ny);
        debug_assert!(k < nz);
        let mut push = |c: usize, v: f64| {
            cols.push(c);
            vals.push(v);
        };
        // Ascending column order: k-1, j-1, i-1, diag, i+1, j+1, k+1.
        if k > 0 {
            push(row - nx * ny, -1.0);
        }
        if j > 0 {
            push(row - nx, -1.0);
        }
        if i > 0 {
            push(row - 1, -1.0);
        }
        push(row, 6.0);
        if i + 1 < nx {
            push(row + 1, -1.0);
        }
        if j + 1 < ny {
            push(row + nx, -1.0);
        }
        if k + 1 < nz {
            push(row + nx * ny, -1.0);
        }
    }
}

/// 3D Laplace operator on a 7-point stencil over an `nx × ny × nz` grid
/// (Dirichlet boundaries), `n = nx·ny·nz` unknowns (`Laplace3D` in
/// Table IV).
pub fn laplace3d_7pt(nx: usize, ny: usize, nz: usize) -> Csr {
    assemble(&Laplace3d7ptRows { nx, ny, nz })
}

/// Row source of the 3-dof-per-node elasticity-like operator on an
/// `nx × ny × nz` grid, `n = 3·nx·ny·nz` unknowns (`Elasticity3D` in
/// Table IV).
#[derive(Debug, Clone, Copy)]
pub struct Elasticity3dRows {
    /// Grid nodes in the x direction.
    pub nx: usize,
    /// Grid nodes in the y direction.
    pub ny: usize,
    /// Grid nodes in the z direction.
    pub nz: usize,
}

/// Inter-component coupling of the elasticity-like operator.
const ELASTICITY_GAMMA: f64 = 0.25;

impl RowSource for Elasticity3dRows {
    fn nrows(&self) -> usize {
        3 * self.nx * self.ny * self.nz
    }
    fn ncols(&self) -> usize {
        3 * self.nx * self.ny * self.nz
    }
    fn emit_row(&self, row: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let gamma = ELASTICITY_GAMMA;
        let node = row / 3;
        let c = row % 3;
        let base = 3 * node;
        let i = node % nx;
        let j = (node / nx) % ny;
        let k = node / (nx * ny);
        debug_assert!(k < nz);
        let mut push = |col: usize, v: f64| {
            cols.push(col);
            vals.push(v);
        };
        // Spatial neighbours sit 3, 3·nx or 3·nx·ny columns away; the
        // same-node block spans `base..base + 3` (within 2 of the row), so
        // ascending order is: k-1, j-1, i-1, node block, i+1, j+1, k+1.
        if k > 0 {
            push(row - 3 * nx * ny, -1.0);
        }
        if j > 0 {
            push(row - 3 * nx, -1.0);
        }
        if i > 0 {
            push(row - 3, -1.0);
        }
        for c2 in 0..3 {
            if c2 == c {
                // Diagonal: Laplacian weight + coupling shift to keep SPD.
                push(base + c2, 6.0 + 2.0 * gamma);
            } else {
                // Couple to the other two components of the same node.
                push(base + c2, -gamma);
            }
        }
        if i + 1 < nx {
            push(row + 3, -1.0);
        }
        if j + 1 < ny {
            push(row + 3 * nx, -1.0);
        }
        if k + 1 < nz {
            push(row + 3 * nx * ny, -1.0);
        }
    }
}

/// 3-dof-per-node elasticity-like operator on an `nx × ny × nz` grid,
/// `n = 3·nx·ny·nz` unknowns (`Elasticity3D` in Table IV).
///
/// Each displacement component carries a 7-point vector-Laplacian stencil
/// and the three components of a node are weakly coupled (off-diagonal
/// blocks `γ`), giving an SPD operator with roughly the nnz/row the paper
/// reports for its structured elasticity problem.
pub fn elasticity3d(nx: usize, ny: usize, nz: usize) -> Csr {
    assemble(&Elasticity3dRows { nx, ny, nz })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace2d_5pt_dimensions_and_row_sums() {
        let a = laplace2d_5pt(4, 3);
        assert_eq!(a.nrows(), 12);
        assert_eq!(a.ncols(), 12);
        // Interior row: 5 entries summing to 0; boundary rows sum > 0.
        let (cols, vals) = a.row(5); // (1,1) is interior for 4x3
        assert_eq!(cols.len(), 5);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn laplace2d_5pt_matches_paper_density() {
        // nnz/n ≈ 5 for large grids.
        let a = laplace2d_5pt(50, 50);
        let density = a.nnz() as f64 / a.nrows() as f64;
        assert!(density > 4.8 && density <= 5.0, "density {density}");
    }

    #[test]
    fn laplace2d_9pt_interior_row_has_nine_entries() {
        let a = laplace2d_9pt(5, 5);
        let (cols, vals) = a.row(12); // centre of 5x5
        assert_eq!(cols.len(), 9);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn laplace3d_dimensions_and_symmetry() {
        let a = laplace3d_7pt(4, 3, 2);
        assert_eq!(a.nrows(), 24);
        assert!(a.is_symmetric(0.0));
        let density = laplace3d_7pt(20, 20, 20).nnz() as f64 / 8000.0;
        assert!(density > 6.5 && density <= 7.0, "density {density}");
    }

    #[test]
    fn laplace_matrices_are_positive_definite_small() {
        // All eigenvalues of the dense copy must be positive.
        let a = laplace2d_5pt(4, 4).to_dense();
        let vals = dense::sym_eigvals(&a);
        assert!(vals[0] > 0.0, "smallest eigenvalue {}", vals[0]);
        let b = laplace3d_7pt(3, 3, 3).to_dense();
        let valsb = dense::sym_eigvals(&b);
        assert!(valsb[0] > 0.0);
    }

    #[test]
    fn elasticity_dimensions_coupling_and_spd() {
        let a = elasticity3d(3, 3, 3);
        assert_eq!(a.nrows(), 81);
        assert!(a.is_symmetric(1e-14));
        let vals = dense::sym_eigvals(&a.to_dense());
        assert!(
            vals[0] > 0.0,
            "elasticity operator must be SPD, min eig {}",
            vals[0]
        );
        // Each row couples to the two other components of its node.
        let (cols, _) = a.row(0);
        assert!(cols.contains(&1) && cols.contains(&2));
    }

    #[test]
    fn elasticity_density_close_to_paper() {
        // Paper reports nnz/n = 5.7 for Elasticity3D with n = 3*100^3; for a
        // smaller grid the boundary effect is stronger, so just check the
        // plausible range (interior rows have 9 entries: 7-pt + 2 couplings).
        let a = elasticity3d(10, 10, 10);
        let density = a.nnz() as f64 / a.nrows() as f64;
        assert!(density > 7.0 && density < 9.5, "density {density}");
    }

    #[test]
    fn row_sources_emit_sorted_columns_on_every_row() {
        let sources: Vec<Box<dyn RowSource>> = vec![
            Box::new(Laplace2d5ptRows { nx: 7, ny: 5 }),
            Box::new(Laplace2d9ptRows { nx: 6, ny: 4 }),
            Box::new(Laplace3d7ptRows {
                nx: 4,
                ny: 3,
                nz: 3,
            }),
            Box::new(Elasticity3dRows {
                nx: 3,
                ny: 2,
                nz: 2,
            }),
        ];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for s in &sources {
            for i in 0..s.nrows() {
                cols.clear();
                vals.clear();
                s.emit_row(i, &mut cols, &mut vals);
                assert_eq!(cols.len(), vals.len());
                assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted");
                assert!(cols.iter().all(|&c| c < s.ncols()));
            }
        }
    }

    #[test]
    fn degenerate_grids_still_assemble() {
        // Single-column and single-row grids exercise the boundary guards.
        assert_eq!(laplace2d_5pt(1, 6).nrows(), 6);
        assert_eq!(laplace2d_9pt(6, 1).nrows(), 6);
        assert_eq!(laplace3d_7pt(1, 1, 5).nrows(), 5);
        assert_eq!(elasticity3d(1, 1, 2).nrows(), 6);
    }
}
