//! Model-problem generators used in the paper's evaluation.
//!
//! * 2D Laplace on a 5-point stencil (Table II) and on a 9-point stencil
//!   (Table III / Figs. 10–13), on an `nx × ny` grid with Dirichlet
//!   boundary conditions;
//! * 3D Laplace on a 7-point stencil (`Laplace3D`, Table IV);
//! * a 3-dof-per-node elasticity-like operator on a 3D grid
//!   (`Elasticity3D`, Table IV) — a vector Laplacian with weak coupling
//!   between the displacement components, matching the size
//!   (`n = 3·nx·ny·nz`) and sparsity (≈ 5.7 nnz/row after boundary
//!   truncation) of the paper's structured elasticity problem.

use crate::csr::{Csr, Triplet};

/// 2D Laplace operator on a 5-point stencil over an `nx × ny` grid
/// (Dirichlet boundaries), `n = nx·ny` unknowns.
pub fn laplace2d_5pt(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut t = Vec::with_capacity(5 * n);
    let idx = |i: usize, j: usize| i + j * nx;
    for j in 0..ny {
        for i in 0..nx {
            let row = idx(i, j);
            t.push(Triplet {
                row,
                col: row,
                val: 4.0,
            });
            if i > 0 {
                t.push(Triplet {
                    row,
                    col: idx(i - 1, j),
                    val: -1.0,
                });
            }
            if i + 1 < nx {
                t.push(Triplet {
                    row,
                    col: idx(i + 1, j),
                    val: -1.0,
                });
            }
            if j > 0 {
                t.push(Triplet {
                    row,
                    col: idx(i, j - 1),
                    val: -1.0,
                });
            }
            if j + 1 < ny {
                t.push(Triplet {
                    row,
                    col: idx(i, j + 1),
                    val: -1.0,
                });
            }
        }
    }
    Csr::from_triplets(n, n, &t)
}

/// 2D Laplace operator on a 9-point stencil over an `nx × ny` grid
/// (Dirichlet boundaries), `n = nx·ny` unknowns.  This is the operator of
/// the paper's strong-scaling study (Table III).
pub fn laplace2d_9pt(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut t = Vec::with_capacity(9 * n);
    let idx = |i: usize, j: usize| i + j * nx;
    for j in 0..ny {
        for i in 0..nx {
            let row = idx(i, j);
            t.push(Triplet {
                row,
                col: row,
                val: 8.0,
            });
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let ii = i as i64 + di;
                    let jj = j as i64 + dj;
                    if ii >= 0 && jj >= 0 && (ii as usize) < nx && (jj as usize) < ny {
                        t.push(Triplet {
                            row,
                            col: idx(ii as usize, jj as usize),
                            val: -1.0,
                        });
                    }
                }
            }
        }
    }
    Csr::from_triplets(n, n, &t)
}

/// 3D Laplace operator on a 7-point stencil over an `nx × ny × nz` grid
/// (Dirichlet boundaries), `n = nx·ny·nz` unknowns (`Laplace3D` in
/// Table IV).
pub fn laplace3d_7pt(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut t = Vec::with_capacity(7 * n);
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let row = idx(i, j, k);
                t.push(Triplet {
                    row,
                    col: row,
                    val: 6.0,
                });
                if i > 0 {
                    t.push(Triplet {
                        row,
                        col: idx(i - 1, j, k),
                        val: -1.0,
                    });
                }
                if i + 1 < nx {
                    t.push(Triplet {
                        row,
                        col: idx(i + 1, j, k),
                        val: -1.0,
                    });
                }
                if j > 0 {
                    t.push(Triplet {
                        row,
                        col: idx(i, j - 1, k),
                        val: -1.0,
                    });
                }
                if j + 1 < ny {
                    t.push(Triplet {
                        row,
                        col: idx(i, j + 1, k),
                        val: -1.0,
                    });
                }
                if k > 0 {
                    t.push(Triplet {
                        row,
                        col: idx(i, j, k - 1),
                        val: -1.0,
                    });
                }
                if k + 1 < nz {
                    t.push(Triplet {
                        row,
                        col: idx(i, j, k + 1),
                        val: -1.0,
                    });
                }
            }
        }
    }
    Csr::from_triplets(n, n, &t)
}

/// 3-dof-per-node elasticity-like operator on an `nx × ny × nz` grid,
/// `n = 3·nx·ny·nz` unknowns (`Elasticity3D` in Table IV).
///
/// Each displacement component carries a 7-point vector-Laplacian stencil
/// and the three components of a node are weakly coupled (off-diagonal
/// blocks `γ`), giving an SPD operator with roughly the nnz/row the paper
/// reports for its structured elasticity problem.
pub fn elasticity3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let nodes = nx * ny * nz;
    let n = 3 * nodes;
    let gamma = 0.25; // inter-component coupling
    let mut t = Vec::with_capacity(10 * n);
    let node = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let base = 3 * node(i, j, k);
                for c in 0..3 {
                    let row = base + c;
                    // Diagonal: Laplacian weight + coupling shift to keep SPD.
                    t.push(Triplet {
                        row,
                        col: row,
                        val: 6.0 + 2.0 * gamma,
                    });
                    // Couple to the other two components of the same node.
                    for c2 in 0..3 {
                        if c2 != c {
                            t.push(Triplet {
                                row,
                                col: base + c2,
                                val: -gamma,
                            });
                        }
                    }
                    // Component-wise Laplacian neighbours (same component).
                    let mut push_nbr = |ii: i64, jj: i64, kk: i64| {
                        if ii >= 0
                            && jj >= 0
                            && kk >= 0
                            && (ii as usize) < nx
                            && (jj as usize) < ny
                            && (kk as usize) < nz
                        {
                            t.push(Triplet {
                                row,
                                col: 3 * node(ii as usize, jj as usize, kk as usize) + c,
                                val: -1.0,
                            });
                        }
                    };
                    push_nbr(i as i64 - 1, j as i64, k as i64);
                    push_nbr(i as i64 + 1, j as i64, k as i64);
                    push_nbr(i as i64, j as i64 - 1, k as i64);
                    push_nbr(i as i64, j as i64 + 1, k as i64);
                    push_nbr(i as i64, j as i64, k as i64 - 1);
                    push_nbr(i as i64, j as i64, k as i64 + 1);
                }
            }
        }
    }
    Csr::from_triplets(n, n, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace2d_5pt_dimensions_and_row_sums() {
        let a = laplace2d_5pt(4, 3);
        assert_eq!(a.nrows(), 12);
        assert_eq!(a.ncols(), 12);
        // Interior row: 5 entries summing to 0; boundary rows sum > 0.
        let (cols, vals) = a.row(5); // (1,1) is interior for 4x3
        assert_eq!(cols.len(), 5);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn laplace2d_5pt_matches_paper_density() {
        // nnz/n ≈ 5 for large grids.
        let a = laplace2d_5pt(50, 50);
        let density = a.nnz() as f64 / a.nrows() as f64;
        assert!(density > 4.8 && density <= 5.0, "density {density}");
    }

    #[test]
    fn laplace2d_9pt_interior_row_has_nine_entries() {
        let a = laplace2d_9pt(5, 5);
        let (cols, vals) = a.row(12); // centre of 5x5
        assert_eq!(cols.len(), 9);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn laplace3d_dimensions_and_symmetry() {
        let a = laplace3d_7pt(4, 3, 2);
        assert_eq!(a.nrows(), 24);
        assert!(a.is_symmetric(0.0));
        let density = laplace3d_7pt(20, 20, 20).nnz() as f64 / 8000.0;
        assert!(density > 6.5 && density <= 7.0, "density {density}");
    }

    #[test]
    fn laplace_matrices_are_positive_definite_small() {
        // All eigenvalues of the dense copy must be positive.
        let a = laplace2d_5pt(4, 4).to_dense();
        let vals = dense::sym_eigvals(&a);
        assert!(vals[0] > 0.0, "smallest eigenvalue {}", vals[0]);
        let b = laplace3d_7pt(3, 3, 3).to_dense();
        let valsb = dense::sym_eigvals(&b);
        assert!(valsb[0] > 0.0);
    }

    #[test]
    fn elasticity_dimensions_coupling_and_spd() {
        let a = elasticity3d(3, 3, 3);
        assert_eq!(a.nrows(), 81);
        assert!(a.is_symmetric(1e-14));
        let vals = dense::sym_eigvals(&a.to_dense());
        assert!(
            vals[0] > 0.0,
            "elasticity operator must be SPD, min eig {}",
            vals[0]
        );
        // Each row couples to the two other components of its node.
        let (cols, _) = a.row(0);
        assert!(cols.contains(&1) && cols.contains(&2));
    }

    #[test]
    fn elasticity_density_close_to_paper() {
        // Paper reports nnz/n = 5.7 for Elasticity3D with n = 3*100^3; for a
        // smaller grid the boundary effect is stronger, so just check the
        // plausible range (interior rows have 9 entries: 7-pt + 2 couplings).
        let a = elasticity3d(10, 10, 10);
        let density = a.nnz() as f64 / a.nrows() as f64;
        assert!(density > 7.0 && density < 9.5, "density {density}");
    }
}
