//! # sparse — CSR matrices, SpMV and the paper's sparse workloads
//!
//! The sparse-matrix substrate of the two-stage GMRES reproduction:
//!
//! * [`csr::Csr`] — compressed sparse row storage with a parallel
//!   sparse-matrix–vector product ([`csr::Csr::spmv`]), the only sparse
//!   kernel the s-step GMRES matrix-powers kernel needs;
//! * [`stencil`] — generators for the model problems of the evaluation
//!   section: 2D Laplace on 5-point and 9-point stencils, 3D Laplace on a
//!   7-point stencil, and a 3-dof 3D elasticity-like operator;
//! * [`suitelike`] — synthetic surrogates for the SuiteSparse matrices used
//!   in Table IV and Fig. 9 (same dimensions, nnz/row, symmetry class), plus
//!   the row/column max-scaling the paper applies before running MPK;
//! * [`rows`] — the streaming [`rows::RowSource`] interface: any operator
//!   that can produce its rows on demand (stencils, surrogates, the
//!   streaming Matrix Market reader, or a replicated CSR) feeds the
//!   distributed per-rank assembly without materializing the global matrix;
//! * [`mm`] — Matrix Market I/O so the real SuiteSparse files can be dropped
//!   in when available, including a streaming row-block reader
//!   ([`mm::read_matrix_market_row_block`]) that scans the file once and
//!   keeps only one rank's rows;
//! * [`coloring`] — greedy multicoloring (the Kokkos-Kernels multicolor
//!   Gauss–Seidel surrogate used by the preconditioner in Fig. 13);
//! * [`partition`] — 1D block-row partitioning (the distribution the paper
//!   uses across MPI ranks) and halo/ghost-column analysis for the
//!   neighborhood exchange of a distributed SpMV.

pub mod coloring;
pub mod csr;
pub mod mm;
pub mod partition;
pub mod rows;
pub mod scaling;
pub mod stencil;
pub mod suitelike;

pub use coloring::{greedy_coloring, Coloring};
pub use csr::{Csr, Triplet};
pub use mm::{
    read_matrix_market, read_matrix_market_info, read_matrix_market_row_block, write_matrix_market,
    MmInfo,
};
pub use partition::{
    block_row_partition, halo_columns, nnz_balanced_partition, nnz_balanced_partition_from_counts,
    nnz_counting_pass, RowPartition,
};
pub use rows::{assemble, assemble_rows, RowSource};
pub use scaling::scale_rows_cols_by_max;
pub use stencil::{
    elasticity3d, laplace2d_5pt, laplace2d_9pt, laplace3d_7pt, Elasticity3dRows, Laplace2d5ptRows,
    Laplace2d9ptRows, Laplace3d7ptRows,
};
pub use suitelike::{suitesparse_surrogate, SuiteLikeRows, SuiteLikeSpec, SUITE_SPARSE_SET};
