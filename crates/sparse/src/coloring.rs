//! Greedy distance-1 graph coloring.
//!
//! The paper's Fig. 13 uses the multicolor Gauss–Seidel smoother from
//! Kokkos-Kernels as a local preconditioner: rows of the same color have no
//! mutual couplings, so a Gauss–Seidel sweep can update all rows of one
//! color in parallel, color by color.  This module provides the coloring;
//! the preconditioner itself lives in the `ssgmres` crate.

use crate::csr::Csr;

/// A vertex coloring of the sparsity graph of a square matrix.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Color of each row (0-based, contiguous).
    pub color_of: Vec<usize>,
    /// Rows grouped by color: `rows_by_color[c]` lists the rows with color `c`.
    pub rows_by_color: Vec<Vec<usize>>,
}

impl Coloring {
    /// Number of colors used.
    pub fn num_colors(&self) -> usize {
        self.rows_by_color.len()
    }
}

/// Greedy first-fit coloring of the (symmetrized) sparsity graph of `a`.
///
/// Two rows `i ≠ j` receive different colors whenever `a[i][j] ≠ 0` or
/// `a[j][i] ≠ 0`.  The diagonal is ignored.
pub fn greedy_coloring(a: &Csr) -> Coloring {
    assert_eq!(a.nrows(), a.ncols(), "coloring requires a square matrix");
    let n = a.nrows();
    // Symmetrize the adjacency structure so the coloring is valid for both
    // A and Aᵀ couplings (Gauss–Seidel needs this for correctness of the
    // parallel sweep).
    let at = a.transpose();
    let mut color_of = vec![usize::MAX; n];
    let mut max_color = 0usize;
    let mut forbidden = vec![usize::MAX; 1]; // forbidden[c] == i means color c is taken by a neighbour of i
    for i in 0..n {
        // Mark colors of already-colored neighbours.
        for source in [a, &at] {
            let (cols, _) = source.row(i);
            for &j in cols {
                if j != i && color_of[j] != usize::MAX {
                    let c = color_of[j];
                    if c >= forbidden.len() {
                        forbidden.resize(c + 1, usize::MAX);
                    }
                    forbidden[c] = i;
                }
            }
        }
        // Pick the smallest non-forbidden color.
        let mut c = 0;
        while c < forbidden.len() && forbidden[c] == i {
            c += 1;
        }
        color_of[i] = c;
        max_color = max_color.max(c);
    }
    let mut rows_by_color = vec![Vec::new(); max_color + 1];
    for (i, &c) in color_of.iter().enumerate() {
        rows_by_color[c].push(i);
    }
    Coloring {
        color_of,
        rows_by_color,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Triplet;
    use crate::stencil::{laplace2d_5pt, laplace2d_9pt};

    fn assert_valid(a: &Csr, coloring: &Coloring) {
        let at = a.transpose();
        for i in 0..a.nrows() {
            for source in [a, &at] {
                let (cols, _) = source.row(i);
                for &j in cols {
                    if j != i {
                        assert_ne!(
                            coloring.color_of[i], coloring.color_of[j],
                            "rows {i} and {j} are coupled but share a color"
                        );
                    }
                }
            }
        }
        // Every row appears exactly once in the grouping.
        let total: usize = coloring.rows_by_color.iter().map(|v| v.len()).sum();
        assert_eq!(total, a.nrows());
    }

    #[test]
    fn five_point_laplacian_is_two_colorable() {
        let a = laplace2d_5pt(8, 8);
        let c = greedy_coloring(&a);
        assert_valid(&a, &c);
        assert_eq!(c.num_colors(), 2, "red-black ordering of the 5-pt stencil");
    }

    #[test]
    fn nine_point_laplacian_needs_four_colors() {
        let a = laplace2d_9pt(8, 8);
        let c = greedy_coloring(&a);
        assert_valid(&a, &c);
        assert!(
            c.num_colors() <= 5,
            "greedy should stay near 4 colors, got {}",
            c.num_colors()
        );
        assert!(c.num_colors() >= 4);
    }

    #[test]
    fn diagonal_matrix_uses_one_color() {
        let a = Csr::identity(10);
        let c = greedy_coloring(&a);
        assert_eq!(c.num_colors(), 1);
    }

    #[test]
    fn nonsymmetric_couplings_are_respected() {
        // 0 -> 1 coupling only in one direction must still force different colors.
        let a = Csr::from_triplets(
            2,
            2,
            &[
                Triplet {
                    row: 0,
                    col: 0,
                    val: 1.0,
                },
                Triplet {
                    row: 1,
                    col: 1,
                    val: 1.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    val: 0.5,
                },
            ],
        );
        let c = greedy_coloring(&a);
        assert_valid(&a, &c);
        assert_eq!(c.num_colors(), 2);
    }
}
