//! Streaming row access to sparse matrices — the *row provider* interface
//! of the distributed assembly path.
//!
//! The paper's experiments run at scales where no rank can hold the global
//! matrix, so a distributed matrix must be assembled from rows produced
//! on demand rather than from a replicated CSR.  A [`RowSource`] yields any
//! row of the operator independently of the others; generators (stencils,
//! SuiteSparse surrogates, a streaming Matrix Market reader) implement it
//! directly, and a replicated [`Csr`] implements it trivially so the
//! replicated construction path becomes a special case of the streamed one.
//!
//! Rows must be emitted with **strictly increasing column indices and no
//! duplicates** — the invariant [`Csr`] itself maintains — so that a matrix
//! assembled row-by-row ([`assemble`]) is bitwise identical to one built
//! from the equivalent triplet set.

use crate::csr::Csr;

/// A matrix whose rows can be produced on demand, one at a time, without
/// materializing the whole operator.
///
/// `emit_row` must append the entries of row `i` in strictly increasing
/// column order (no duplicate columns), exactly the per-row invariant of
/// [`Csr`].  Implementations must be deterministic: emitting the same row
/// twice yields the same entries, which lets consumers make a cheap
/// counting pass before an exactly-sized filling pass.
pub trait RowSource {
    /// Global number of rows.
    fn nrows(&self) -> usize;

    /// Global number of columns.
    fn ncols(&self) -> usize;

    /// Append the `(column, value)` entries of row `i` to `cols`/`vals`
    /// (sorted by column, no duplicates).
    fn emit_row(&self, i: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>);
}

impl<S: RowSource + ?Sized> RowSource for &S {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }
    fn ncols(&self) -> usize {
        (**self).ncols()
    }
    fn emit_row(&self, i: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        (**self).emit_row(i, cols, vals)
    }
}

/// A replicated CSR matrix is trivially a row source (row slices are copied
/// out verbatim, so assembly from it is bitwise lossless).
impl RowSource for Csr {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }
    fn ncols(&self) -> usize {
        Csr::ncols(self)
    }
    fn emit_row(&self, i: usize, cols: &mut Vec<usize>, vals: &mut Vec<f64>) {
        let (c, v) = self.row(i);
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
    }
}

/// Assemble the full matrix from a row source in two passes (count, then
/// fill into exactly-sized arrays).
///
/// For the stencil generators this is the assembly path of the public
/// constructors, so `assemble(&Laplace2d5ptRows { nx, ny })` is *the same
/// object* as [`crate::laplace2d_5pt`]`(nx, ny)` — bitwise.
pub fn assemble<S: RowSource>(source: &S) -> Csr {
    assemble_rows(source, 0..source.nrows())
}

/// Assemble the row block `rows` of a row source (columns stay global) in
/// two passes — count, then fill into exactly-sized arrays.  This is the
/// per-rank assembly step of the streamed distributed construction
/// (`distsim::DistCsr::from_row_source`); [`assemble`] is the full-range
/// special case.
pub fn assemble_rows<S: RowSource>(source: &S, rows: std::ops::Range<usize>) -> Csr {
    assert!(
        rows.end <= source.nrows(),
        "row block {}..{} out of bounds for {} rows",
        rows.start,
        rows.end,
        source.nrows()
    );
    let nloc = rows.end - rows.start;
    let mut rowptr = Vec::with_capacity(nloc + 1);
    rowptr.push(0usize);
    let mut scratch_c = Vec::new();
    let mut scratch_v = Vec::new();
    // Counting pass.
    let mut nnz = 0usize;
    for i in rows.clone() {
        scratch_c.clear();
        scratch_v.clear();
        source.emit_row(i, &mut scratch_c, &mut scratch_v);
        nnz += scratch_c.len();
        rowptr.push(nnz);
    }
    // Filling pass into exact allocations.
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for i in rows {
        scratch_c.clear();
        scratch_v.clear();
        source.emit_row(i, &mut scratch_c, &mut scratch_v);
        cols.extend_from_slice(&scratch_c);
        vals.extend_from_slice(&scratch_v);
    }
    assert_eq!(
        cols.len(),
        nnz,
        "row source emitted different entry counts on the two passes"
    );
    Csr::from_raw(nloc, source.ncols(), rowptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Triplet;

    #[test]
    fn csr_round_trips_through_its_own_rows() {
        let a = Csr::from_triplets(
            3,
            4,
            &[
                Triplet {
                    row: 0,
                    col: 3,
                    val: 1.5,
                },
                Triplet {
                    row: 2,
                    col: 0,
                    val: -2.0,
                },
                Triplet {
                    row: 2,
                    col: 2,
                    val: 4.0,
                },
            ],
        );
        assert_eq!(assemble(&a), a);
        // Through a reference too (the blanket impl).
        assert_eq!(assemble(&&a), a);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let a = Csr::from_triplets(
            4,
            4,
            &[Triplet {
                row: 1,
                col: 1,
                val: 7.0,
            }],
        );
        let b = assemble(&a);
        assert_eq!(b, a);
        assert_eq!(b.row(0).0.len(), 0);
        assert_eq!(b.row(3).0.len(), 0);
    }
}
