//! Minimal Matrix Market (`.mtx`) I/O.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` formats, which covers the
//! SuiteSparse matrices the paper uses.  Symmetric files are expanded to
//! full storage on read (as Trilinos does when it ingests them).
//!
//! Two readers are provided:
//!
//! * [`read_matrix_market`] materializes the whole matrix (what a
//!   single-rank run wants);
//! * [`read_matrix_market_row_block`] streams the file once and keeps only
//!   the entries of a contiguous row range — the per-rank path of the
//!   streamed distributed assembly.  A rank reading its own block needs
//!   `O(nnz(block))` memory regardless of the file size, and the block it
//!   reads is bitwise identical to `read_matrix_market(..).row_block(..)`.
//!
//! Coordinate files carry entries in arbitrary order, so "seeking" a row
//! block still scans every data line; what the streaming reader avoids is
//! *storing* anything outside the requested rows.

use crate::csr::{Csr, Triplet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::ops::Range;
use std::path::Path;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a Matrix Market file or uses an unsupported variant.
    Format(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Format(msg) => write!(f, "Matrix Market format error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Header and size information of a Matrix Market file (everything a rank
/// needs to build its partition before streaming its row block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmInfo {
    /// Global number of rows.
    pub nrows: usize,
    /// Global number of columns.
    pub ncols: usize,
    /// Number of stored entries in the file (before symmetric expansion).
    pub stored_entries: usize,
    /// Field type: `"real"`, `"integer"` or `"pattern"`.
    pub field: String,
    /// Symmetry: `"general"` or `"symmetric"`.
    pub symmetry: String,
}

impl MmInfo {
    /// Whether the file stores only one triangle (entries are mirrored on
    /// read).
    pub fn is_symmetric(&self) -> bool {
        self.symmetry == "symmetric"
    }
}

/// Parser state after the header and size lines have been consumed.
struct MmParser<R: BufRead> {
    lines: std::io::Lines<R>,
    info: MmInfo,
}

impl<R: BufRead> MmParser<R> {
    fn new(reader: R) -> Result<Self, MmError> {
        let mut lines = reader.lines();
        // Header line.
        let header = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    if !line.trim().is_empty() {
                        break line;
                    }
                }
                None => return Err(MmError::Format("empty file".into())),
            }
        };
        let header_lower = header.to_lowercase();
        if !header_lower.starts_with("%%matrixmarket") {
            return Err(MmError::Format("missing %%MatrixMarket header".into()));
        }
        let tokens: Vec<&str> = header_lower.split_whitespace().collect();
        if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
            return Err(MmError::Format(format!("unsupported header: {header}")));
        }
        let field = tokens[3];
        if field != "real" && field != "pattern" && field != "integer" {
            return Err(MmError::Format(format!("unsupported field type: {field}")));
        }
        let symmetry = tokens[4];
        if symmetry != "general" && symmetry != "symmetric" {
            return Err(MmError::Format(format!("unsupported symmetry: {symmetry}")));
        }
        // Size line (skipping comments).
        let size_line = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    let t = line.trim();
                    if t.is_empty() || t.starts_with('%') {
                        continue;
                    }
                    break line;
                }
                None => return Err(MmError::Format("missing size line".into())),
            }
        };
        let dims: Vec<usize> = size_line
            .split_whitespace()
            .map(|t| t.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|e| MmError::Format(format!("bad size line: {e}")))?;
        if dims.len() != 3 {
            return Err(MmError::Format("size line must have 3 fields".into()));
        }
        Ok(Self {
            lines,
            info: MmInfo {
                nrows: dims[0],
                ncols: dims[1],
                stored_entries: dims[2],
                field: field.to_string(),
                symmetry: symmetry.to_string(),
            },
        })
    }

    /// Stream every stored entry to `sink` as 0-based `(row, col, value)`
    /// (symmetric mirroring is the caller's concern), validating bounds and
    /// the entry count.
    fn for_each_entry(self, mut sink: impl FnMut(usize, usize, f64)) -> Result<MmInfo, MmError> {
        let info = self.info;
        let pattern = info.field == "pattern";
        let mut read = 0usize;
        for line in self.lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let i: usize = it
                .next()
                .ok_or_else(|| MmError::Format("missing row index".into()))?
                .parse()
                .map_err(|e| MmError::Format(format!("bad row index: {e}")))?;
            let j: usize = it
                .next()
                .ok_or_else(|| MmError::Format("missing col index".into()))?
                .parse()
                .map_err(|e| MmError::Format(format!("bad col index: {e}")))?;
            let v: f64 = match it.next() {
                Some(tok) => tok
                    .parse()
                    .map_err(|e| MmError::Format(format!("bad value: {e}")))?,
                None => {
                    if pattern {
                        1.0
                    } else {
                        return Err(MmError::Format("missing value".into()));
                    }
                }
            };
            if i == 0 || j == 0 || i > info.nrows || j > info.ncols {
                return Err(MmError::Format(format!("entry ({i}, {j}) out of bounds")));
            }
            sink(i - 1, j - 1, v);
            read += 1;
        }
        if read != info.stored_entries {
            return Err(MmError::Format(format!(
                "expected {} entries, found {read}",
                info.stored_entries
            )));
        }
        Ok(info)
    }
}

/// Read only the header and size line of a Matrix Market file — what each
/// rank needs to derive the row partition before streaming its own block.
pub fn read_matrix_market_info(path: &Path) -> Result<MmInfo, MmError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_info_from(BufReader::new(file))
}

/// Header/size reader over any buffered input (exposed for tests).
pub fn read_matrix_market_info_from<R: BufRead>(reader: R) -> Result<MmInfo, MmError> {
    Ok(MmParser::new(reader)?.info)
}

/// Read a Matrix Market coordinate file into CSR form.
pub fn read_matrix_market(path: &Path) -> Result<Csr, MmError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Read Matrix Market data from any buffered reader (exposed for tests).
pub fn read_matrix_market_from<R: BufRead>(reader: R) -> Result<Csr, MmError> {
    let parser = MmParser::new(reader)?;
    let symmetric = parser.info.is_symmetric();
    let mut triplets = Vec::with_capacity(if symmetric {
        2 * parser.info.stored_entries
    } else {
        parser.info.stored_entries
    });
    let info = parser.for_each_entry(|i, j, v| {
        triplets.push(Triplet {
            row: i,
            col: j,
            val: v,
        });
        if symmetric && i != j {
            triplets.push(Triplet {
                row: j,
                col: i,
                val: v,
            });
        }
    })?;
    Ok(Csr::from_triplets(info.nrows, info.ncols, &triplets))
}

/// Stream a Matrix Market file and keep only the rows `rows` (0-based,
/// half-open), returned as a CSR block of `rows.len()` rows with **global**
/// column indices — the storage the 1D block-row distribution wants.
///
/// Peak memory is `O(nnz(block))`, independent of the file's total entry
/// count; the result is bitwise identical to
/// `read_matrix_market(path)?.row_block(rows.start, rows.end)`.
pub fn read_matrix_market_row_block(path: &Path, rows: Range<usize>) -> Result<Csr, MmError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_row_block_from(BufReader::new(file), rows)
}

/// Streaming row-block reader over any buffered input (exposed for tests).
pub fn read_matrix_market_row_block_from<R: BufRead>(
    reader: R,
    rows: Range<usize>,
) -> Result<Csr, MmError> {
    let parser = MmParser::new(reader)?;
    let info = &parser.info;
    if rows.start > rows.end || rows.end > info.nrows {
        return Err(MmError::Format(format!(
            "row block {}..{} out of bounds for {} rows",
            rows.start, rows.end, info.nrows
        )));
    }
    let symmetric = info.is_symmetric();
    let ncols = info.ncols;
    let (lo, hi) = (rows.start, rows.end);
    let mut triplets = Vec::new();
    parser.for_each_entry(|i, j, v| {
        if (lo..hi).contains(&i) {
            triplets.push(Triplet {
                row: i - lo,
                col: j,
                val: v,
            });
        }
        // A symmetric file stores one triangle; the mirrored entry may land
        // in this block even when the stored one does not.
        if symmetric && i != j && (lo..hi).contains(&j) {
            triplets.push(Triplet {
                row: j - lo,
                col: i,
                val: v,
            });
        }
    })?;
    Ok(Csr::from_triplets(hi - lo, ncols, &triplets))
}

/// Write a CSR matrix as a `matrix coordinate real general` Matrix Market
/// file.
pub fn write_matrix_market(path: &Path, a: &Csr) -> Result<(), MmError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by the two-stage GMRES reproduction")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", i + 1, c + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::laplace2d_5pt;
    use std::io::Cursor;

    #[test]
    fn parses_general_real_file() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 4\n1 1 2.0\n2 2 3.0\n3 3 4.0\n1 3 -1.0\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.to_dense()[(0, 2)], -1.0);
    }

    #[test]
    fn symmetric_files_are_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 2.0\n2 1 -1.0\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.to_dense()[(0, 1)], -1.0);
        assert_eq!(a.to_dense()[(1, 0)], -1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn pattern_files_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.to_dense()[(0, 1)], 1.0);
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market_from(Cursor::new("not a header\n1 1 0\n")).is_err());
        assert!(read_matrix_market_from(Cursor::new(
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n"
        ))
        .is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market_from(Cursor::new(short)).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn rejects_out_of_bounds_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
    }

    #[test]
    fn info_reports_header_without_reading_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n% c\n5 5 7\n";
        let info = read_matrix_market_info_from(Cursor::new(text)).unwrap();
        assert_eq!(info.nrows, 5);
        assert_eq!(info.ncols, 5);
        assert_eq!(info.stored_entries, 7);
        assert_eq!(info.field, "real");
        assert!(info.is_symmetric());
    }

    #[test]
    fn row_block_matches_full_read_row_block() {
        let a = laplace2d_5pt(6, 5);
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real general\n{} {} {}\n",
            a.nrows(),
            a.ncols(),
            a.nnz()
        );
        for i in 0..a.nrows() {
            let (cols, vals) = a.row(i);
            for (c, v) in cols.iter().zip(vals) {
                text.push_str(&format!("{} {} {v:.17e}\n", i + 1, c + 1));
            }
        }
        for (lo, hi) in [(0usize, 30usize), (7, 19), (12, 12), (29, 30)] {
            let block = read_matrix_market_row_block_from(Cursor::new(&text), lo..hi).unwrap();
            assert_eq!(block, a.row_block(lo, hi), "block {lo}..{hi}");
        }
    }

    #[test]
    fn symmetric_row_block_gets_mirrored_entries() {
        // Only the lower triangle is stored; the block owning row 0 must
        // still see the (0, 1) entry.
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 2.0\n2 1 -1.0\n3 3 4.0\n";
        let block = read_matrix_market_row_block_from(Cursor::new(text), 0..1).unwrap();
        assert_eq!(block.nrows(), 1);
        let (cols, vals) = block.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, -1.0]);
    }

    #[test]
    fn row_block_out_of_bounds_is_an_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n";
        assert!(read_matrix_market_row_block_from(Cursor::new(text), 0..3).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let a = laplace2d_5pt(5, 4);
        let dir = std::env::temp_dir().join("two_stage_gmres_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("laplace.mtx");
        write_matrix_market(&path, &a).unwrap();
        let b = read_matrix_market(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
