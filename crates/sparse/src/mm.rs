//! Minimal Matrix Market (`.mtx`) I/O.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` formats, which covers the
//! SuiteSparse matrices the paper uses.  Symmetric files are expanded to
//! full storage on read (as Trilinos does when it ingests them).

use crate::csr::{Csr, Triplet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a Matrix Market file or uses an unsupported variant.
    Format(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Format(msg) => write!(f, "Matrix Market format error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Read a Matrix Market coordinate file into CSR form.
pub fn read_matrix_market(path: &Path) -> Result<Csr, MmError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Read Matrix Market data from any buffered reader (exposed for tests).
pub fn read_matrix_market_from<R: BufRead>(reader: R) -> Result<Csr, MmError> {
    let mut lines = reader.lines();
    // Header line.
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(MmError::Format("empty file".into())),
        }
    };
    let header_lower = header.to_lowercase();
    if !header_lower.starts_with("%%matrixmarket") {
        return Err(MmError::Format("missing %%MatrixMarket header".into()));
    }
    let tokens: Vec<&str> = header_lower.split_whitespace().collect();
    if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(MmError::Format(format!("unsupported header: {header}")));
    }
    let field = tokens[3];
    if field != "real" && field != "pattern" && field != "integer" {
        return Err(MmError::Format(format!("unsupported field type: {field}")));
    }
    let symmetry = tokens[4];
    if symmetry != "general" && symmetry != "symmetric" {
        return Err(MmError::Format(format!("unsupported symmetry: {symmetry}")));
    }
    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(MmError::Format("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| MmError::Format(format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(MmError::Format("size line must have 3 fields".into()));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    let mut triplets = Vec::with_capacity(if symmetry == "symmetric" {
        2 * nnz
    } else {
        nnz
    });
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| MmError::Format("missing row index".into()))?
            .parse()
            .map_err(|e| MmError::Format(format!("bad row index: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| MmError::Format("missing col index".into()))?
            .parse()
            .map_err(|e| MmError::Format(format!("bad col index: {e}")))?;
        let v: f64 = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| MmError::Format(format!("bad value: {e}")))?,
            None => {
                if field == "pattern" {
                    1.0
                } else {
                    return Err(MmError::Format("missing value".into()));
                }
            }
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(MmError::Format(format!("entry ({i}, {j}) out of bounds")));
        }
        triplets.push(Triplet {
            row: i - 1,
            col: j - 1,
            val: v,
        });
        if symmetry == "symmetric" && i != j {
            triplets.push(Triplet {
                row: j - 1,
                col: i - 1,
                val: v,
            });
        }
        read += 1;
    }
    if read != nnz {
        return Err(MmError::Format(format!(
            "expected {nnz} entries, found {read}"
        )));
    }
    Ok(Csr::from_triplets(nrows, ncols, &triplets))
}

/// Write a CSR matrix as a `matrix coordinate real general` Matrix Market
/// file.
pub fn write_matrix_market(path: &Path, a: &Csr) -> Result<(), MmError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by the two-stage GMRES reproduction")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", i + 1, c + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::laplace2d_5pt;
    use std::io::Cursor;

    #[test]
    fn parses_general_real_file() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 4\n1 1 2.0\n2 2 3.0\n3 3 4.0\n1 3 -1.0\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.to_dense()[(0, 2)], -1.0);
    }

    #[test]
    fn symmetric_files_are_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 2.0\n2 1 -1.0\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.to_dense()[(0, 1)], -1.0);
        assert_eq!(a.to_dense()[(1, 0)], -1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn pattern_files_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let a = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(a.to_dense()[(0, 1)], 1.0);
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market_from(Cursor::new("not a header\n1 1 0\n")).is_err());
        assert!(read_matrix_market_from(Cursor::new(
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n"
        ))
        .is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market_from(Cursor::new(short)).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn rejects_out_of_bounds_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let a = laplace2d_5pt(5, 4);
        let dir = std::env::temp_dir().join("two_stage_gmres_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("laplace.mtx");
        write_matrix_market(&path, &a).unwrap();
        let b = read_matrix_market(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
