//! File-backed Matrix Market tests: round trips, format variants,
//! malformed-header diagnostics, and the streaming row-block reader's
//! equivalence with the materializing reader.
//!
//! Fixtures are real files in a per-process temp directory (the offline
//! stand-in for `tempfile`), so the `Path`-taking entry points — the ones a
//! rank uses in production — are what gets exercised, not just the
//! `BufRead` test hooks.

use sparse::mm::{
    read_matrix_market, read_matrix_market_info, read_matrix_market_row_block, write_matrix_market,
    MmError,
};
use sparse::{block_row_partition, laplace2d_9pt, suitesparse_surrogate, Csr, SUITE_SPARSE_SET};
use std::path::PathBuf;

/// A fresh fixture directory per test, keyed by process id so parallel
/// `cargo test` processes cannot collide.
struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(test: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "two_stage_gmres_mm_stream_{}_{test}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self { dir }
    }

    fn write(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn general_real_file_round_trips_and_streams() {
    let fx = Fixture::new("general");
    let a = laplace2d_9pt(9, 7);
    let path = fx.dir.join("laplace.mtx");
    write_matrix_market(&path, &a).unwrap();

    let info = read_matrix_market_info(&path).unwrap();
    assert_eq!((info.nrows, info.ncols), (63, 63));
    assert_eq!(info.stored_entries, a.nnz());
    assert!(!info.is_symmetric());

    let full = read_matrix_market(&path).unwrap();
    assert_eq!(full, a, "write → read must be lossless");

    // Streamed row blocks equal the materializing reader's row blocks —
    // bitwise — for every rank of a 4-way partition (including the uneven
    // trailing block).
    let part = block_row_partition(a.nrows(), 4);
    for r in 0..4 {
        let (lo, hi) = part.range(r);
        let block = read_matrix_market_row_block(&path, lo..hi).unwrap();
        assert_eq!(block, full.row_block(lo, hi), "rank {r} block");
    }
}

#[test]
fn symmetric_file_streams_with_mirrored_entries() {
    let fx = Fixture::new("symmetric");
    // Store only the lower triangle of a symmetric matrix.
    let a = laplace2d_9pt(6, 6);
    let mut text = String::from("%%MatrixMarket matrix coordinate real symmetric\n");
    let mut stored = 0;
    let mut body = String::new();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            if *c <= i {
                body.push_str(&format!("{} {} {v:.17e}\n", i + 1, c + 1));
                stored += 1;
            }
        }
    }
    text.push_str(&format!("{} {} {stored}\n{body}", a.nrows(), a.ncols()));
    let path = fx.write("sym.mtx", &text);

    let full = read_matrix_market(&path).unwrap();
    assert_eq!(full, a, "symmetric expansion must rebuild the full matrix");

    // A block in the upper half of the row range sees entries whose stored
    // form lives in other blocks' rows — the mirroring path.
    for (lo, hi) in [(0usize, 9usize), (9, 20), (20, 36), (0, 36)] {
        let block = read_matrix_market_row_block(&path, lo..hi).unwrap();
        assert_eq!(block, full.row_block(lo, hi), "block {lo}..{hi}");
    }
}

#[test]
fn pattern_file_streams_unit_values() {
    let fx = Fixture::new("pattern");
    let path = fx.write(
        "pattern.mtx",
        "%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n1 1\n3 2\n4 4\n",
    );
    let full = read_matrix_market(&path).unwrap();
    assert_eq!(full.nnz(), 4); // (3,2) mirrored to (2,3)
    let block = read_matrix_market_row_block(&path, 1..3).unwrap();
    assert_eq!(block, full.row_block(1, 3));
    let (cols, vals) = block.row(0); // global row 1 holds the mirrored (2,3)
    assert_eq!(cols, &[2]);
    assert_eq!(vals, &[1.0]);
}

#[test]
fn malformed_headers_are_rejected_with_diagnostics() {
    let fx = Fixture::new("malformed");
    let cases: [(&str, &str, &str); 6] = [
        ("empty.mtx", "", "empty file"),
        ("noheader.mtx", "1 1 1\n1 1 2.0\n", "missing %%MatrixMarket"),
        (
            "array.mtx",
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
            "unsupported header",
        ),
        (
            "field.mtx",
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n",
            "unsupported field type",
        ),
        (
            "symmetry.mtx",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n",
            "unsupported symmetry",
        ),
        (
            "sizeline.mtx",
            "%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1.0\n",
            "size line",
        ),
    ];
    for (name, contents, needle) in cases {
        let path = fx.write(name, contents);
        for result in [
            read_matrix_market(&path).map(|_| ()),
            read_matrix_market_row_block(&path, 0..0).map(|_| ()),
            read_matrix_market_info(&path).map(|_| ()),
        ] {
            let err = result.expect_err(name);
            assert!(
                matches!(err, MmError::Format(_)),
                "{name}: expected a format error, got {err}"
            );
            assert!(
                err.to_string().contains(needle),
                "{name}: diagnostic {err:?} should mention {needle:?}"
            );
        }
    }
}

#[test]
fn truncated_and_out_of_bounds_bodies_fail_in_both_readers() {
    let fx = Fixture::new("badbody");
    let short = fx.write(
        "short.mtx",
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
    );
    assert!(read_matrix_market(&short).is_err());
    // The streaming reader validates the global entry count even when the
    // requested block holds none of the entries.
    assert!(read_matrix_market_row_block(&short, 1..2).is_err());
    let oob = fx.write(
        "oob.mtx",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
    );
    assert!(read_matrix_market(&oob).is_err());
    assert!(read_matrix_market_row_block(&oob, 0..1).is_err());
    // An out-of-range block request is rejected before any parsing work.
    let ok = fx.write(
        "ok.mtx",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n",
    );
    assert!(read_matrix_market_row_block(&ok, 0..5).is_err());
}

#[test]
fn streamed_blocks_of_a_surrogate_cover_the_matrix() {
    // End-to-end: dump a SuiteSparse surrogate, stream it back rank by
    // rank, and reassemble — the concatenation must equal the original.
    let fx = Fixture::new("surrogate");
    let spec = &SUITE_SPARSE_SET[0];
    let a = suitesparse_surrogate(spec, Some(500), 3);
    let path = fx.dir.join("surrogate.mtx");
    write_matrix_market(&path, &a).unwrap();
    let part = block_row_partition(a.nrows(), 5);
    let mut rowptr = vec![0usize];
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    for r in 0..5 {
        let (lo, hi) = part.range(r);
        let block = read_matrix_market_row_block(&path, lo..hi).unwrap();
        let base = colind.len();
        for w in block.rowptr().windows(2) {
            rowptr.push(base + w[1]);
        }
        colind.extend_from_slice(block.colind());
        vals.extend_from_slice(block.vals());
    }
    let reassembled = Csr::from_raw(a.nrows(), a.ncols(), rowptr, colind, vals);
    assert_eq!(reassembled, a);
}
