//! Chrome trace-event / Perfetto JSON export.
//!
//! The emitted object follows the Trace Event Format's "JSON Object Format":
//! a `traceEvents` array of complete (`"ph":"X"`), counter (`"ph":"C"`),
//! instant (`"ph":"i"`) and thread-name metadata (`"ph":"M"`) events.
//! Timestamps and durations are microseconds (fractional, so nanosecond
//! resolution survives).  Open the file at <https://ui.perfetto.dev> or in
//! `chrome://tracing`.

use crate::{Event, EventKind, Trace};
use std::fmt::Write as _;

/// Append `value` as a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Microseconds with nanosecond resolution, as a JSON number.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_args(out: &mut String, ev: &Event) {
    out.push_str(",\"args\":{");
    for (i, (key, value)) in ev.args.iter().take(ev.nargs as usize).enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, key);
        let _ = write!(out, ":{value}");
    }
    out.push('}');
}

fn push_event(out: &mut String, tid: u64, ev: &Event) {
    match ev.kind {
        EventKind::Span { dur_ns } => {
            let _ = write!(out, "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":");
            push_us(out, ev.ts_ns);
            out.push_str(",\"dur\":");
            push_us(out, dur_ns);
            out.push_str(",\"cat\":");
            push_json_str(out, ev.cat);
            out.push_str(",\"name\":");
            push_json_str(out, ev.name);
            if ev.nargs > 0 {
                push_args(out, ev);
            }
            out.push('}');
        }
        EventKind::Counter { value } => {
            let _ = write!(out, "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":");
            push_us(out, ev.ts_ns);
            out.push_str(",\"name\":");
            push_json_str(out, ev.name);
            out.push_str(",\"args\":{");
            push_json_str(out, ev.cat);
            if value.is_finite() {
                let _ = write!(out, ":{value}");
            } else {
                out.push_str(":null");
            }
            out.push_str("}}");
        }
        EventKind::Instant => {
            let _ = write!(out, "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":");
            push_us(out, ev.ts_ns);
            out.push_str(",\"s\":\"t\",\"cat\":");
            push_json_str(out, ev.cat);
            out.push_str(",\"name\":");
            push_json_str(out, ev.name);
            if ev.nargs > 0 {
                push_args(out, ev);
            }
            out.push('}');
        }
    }
}

impl Trace {
    /// Serialize the trace as Chrome trace-event JSON (see module docs).
    pub fn to_chrome_json(&self) -> String {
        let total: usize = self.threads.iter().map(|t| t.events.len() + 1).sum();
        let mut out = String::with_capacity(128 * total + 64);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for thread in &self.threads {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
                thread.tid
            );
            push_json_str(&mut out, &thread.label);
            out.push_str("}}");
            for ev in &thread.events {
                out.push(',');
                push_event(&mut out, thread.tid, ev);
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use crate::{clear, collect, instant, set_enabled, span2, test_lock, validate_json};

    #[test]
    fn chrome_export_is_valid_json_with_expected_phases() {
        let _guard = test_lock();
        set_enabled(false);
        clear();
        set_enabled(true);
        {
            let _s = span2("comm", "send", "peer", 3, "words", 640);
        }
        crate::counter("pool", "lanes", 8.0);
        instant("solver", "restart \"quoted\"\n");
        set_enabled(false);
        let json = collect().to_chrome_json();
        validate_json(&json).expect("chrome export must parse");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"peer\":3"));
        assert!(json.contains("\\\"quoted\\\""));
        clear();
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let _guard = test_lock();
        set_enabled(false);
        clear();
        let json = collect().to_chrome_json();
        validate_json(&json).expect("empty export must parse");
    }
}
