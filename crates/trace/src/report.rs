//! Flat aggregated views over a collected [`Trace`].
//!
//! The ring buffers bound timeline memory, but the per-thread aggregate
//! tables are exact; these helpers merge them across threads so harnesses
//! (e.g. `bench --bin profile`) can report totals, category fractions, and
//! model-vs-measured joins without replaying events.

use crate::Trace;

/// Exact aggregate for one `(cat, name)` span kind.
#[derive(Clone, Debug, PartialEq)]
pub struct AggRow {
    pub cat: String,
    pub name: String,
    /// Closed spans recorded.
    pub count: u64,
    /// Summed span duration.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Exact aggregate for one `(cat, name)` counter.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterRow {
    pub cat: String,
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of sampled values.
    pub sum: f64,
    /// Most recent sample.
    pub last: f64,
}

impl Trace {
    /// Span aggregates summed across threads, sorted by descending total
    /// time (ties by `(cat, name)` for determinism).
    pub fn merged_spans(&self) -> Vec<AggRow> {
        let mut rows: Vec<AggRow> = Vec::new();
        for thread in &self.threads {
            for row in &thread.spans {
                if let Some(merged) = rows
                    .iter_mut()
                    .find(|r| r.cat == row.cat && r.name == row.name)
                {
                    merged.count += row.count;
                    merged.total_ns += row.total_ns;
                    merged.max_ns = merged.max_ns.max(row.max_ns);
                } else {
                    rows.push(row.clone());
                }
            }
        }
        rows.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| a.cat.cmp(&b.cat))
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// Counter aggregates summed across threads, sorted by `(cat, name)`.
    pub fn merged_counters(&self) -> Vec<CounterRow> {
        let mut rows: Vec<CounterRow> = Vec::new();
        for thread in &self.threads {
            for row in &thread.counters {
                if let Some(merged) = rows
                    .iter_mut()
                    .find(|r| r.cat == row.cat && r.name == row.name)
                {
                    merged.count += row.count;
                    merged.sum += row.sum;
                    merged.last = row.last;
                } else {
                    rows.push(row.clone());
                }
            }
        }
        rows.sort_by(|a, b| a.cat.cmp(&b.cat).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Total span time in category `cat`, summed across all threads.
    pub fn category_ns(&self, cat: &str) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.spans.iter())
            .filter(|r| r.cat == cat)
            .map(|r| r.total_ns)
            .sum()
    }

    /// Events dropped to ring wrap-around, summed across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use crate::{clear, collect, set_enabled, span, test_lock};

    #[test]
    fn merged_rows_sum_across_threads() {
        let _guard = test_lock();
        set_enabled(false);
        clear();
        set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        let _s = span("merge", "work");
                    }
                });
            }
        });
        {
            let _s = span("merge", "work");
        }
        set_enabled(false);
        let trace = collect();
        let rows = trace.merged_spans();
        let row = rows
            .iter()
            .find(|r| r.cat == "merge" && r.name == "work")
            .expect("merged row present");
        assert_eq!(row.count, 11);
        assert!(row.total_ns >= row.max_ns);
        assert!(trace.category_ns("merge") >= row.total_ns);
        clear();
    }
}
