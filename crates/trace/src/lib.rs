//! # trace — zero-dependency span/counter tracing
//!
//! A minimal instrumentation layer for the two-stage GMRES workspace.  The
//! paper's core claim is that *synchronization*, not flops, dominates s-step
//! GMRES at scale; this crate is what lets the repo measure that claim
//! instead of merely counting reductions (`CommStats`) and words
//! (`perfmodel::ortho_cycle_words`).
//!
//! Design:
//!
//! * **Thread-local ring buffers.**  Each recording thread owns a
//!   fixed-capacity ring of [`Event`]s behind an uncontended mutex; a global
//!   registry keeps one handle per thread so [`collect`] can drain every
//!   timeline at once.  When a ring wraps, the oldest events are overwritten
//!   and counted in `dropped` — recording never blocks and never allocates
//!   after the first event on a thread.
//! * **Always-exact aggregates.**  Every span closure also updates a small
//!   per-thread `(cat, name) → {count, total_ns, max_ns}` table, so the
//!   aggregated report ([`Trace::merged_spans`], [`thread_category_ns`]) is
//!   exact even when the timeline ring dropped events.
//! * **Complete events.**  Spans are recorded at *close* as a single event
//!   carrying start timestamp + duration (Chrome `"ph":"X"`), halving event
//!   volume versus begin/end pairs.  A per-thread open-span counter still
//!   makes balance checkable: [`stats`] reports `open_spans`, which must be
//!   zero whenever no region is in flight.
//! * **Provably zero-cost when off.**  At runtime a single relaxed atomic
//!   load guards every entry point: a disabled [`span`] never reads the
//!   clock, never touches thread-local state, and returns an inert guard.
//!   With the `off` cargo feature, [`enabled`] is a `const false` and the
//!   optimizer deletes the instrumentation entirely.
//!
//! Timestamps come from one process-wide monotonic epoch
//! ([`std::time::Instant`]), so spans from different threads (pool lanes,
//! simulated ranks) share a comparable timeline.
//!
//! ```
//! trace::set_enabled(true);
//! {
//!     let _s = trace::span("demo", "work");
//!     // ... traced work ...
//! }
//! trace::set_enabled(false);
//! let t = trace::collect();
//! let json = t.to_chrome_json();
//! assert!(trace::validate_json(&json).is_ok());
//! ```

mod chrome;
mod json;
mod report;

pub use json::validate_json;
pub use report::{AggRow, CounterRow};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events).  Each event is ~100 bytes, so
/// the default bounds a thread's timeline memory at a few megabytes.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Whether recording is active.  The hot-path guard: one relaxed atomic
/// load, or a compile-time `false` with the `off` feature.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// True when the `off` cargo feature compiled all recording out.
pub const fn compiled_out() -> bool {
    cfg!(feature = "off")
}

/// Turn recording on or off at runtime.  A no-op under the `off` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Set the per-thread ring capacity (in events) used by buffers created
/// *after* this call; [`clear`] re-sizes existing buffers to the new value.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(16), Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first clock use).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// What a timeline [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A closed span: `ts_ns` is the open time, `dur_ns` the length.
    Span { dur_ns: u64 },
    /// A sampled numeric value (Chrome counter track).
    Counter { value: f64 },
    /// A point-in-time marker.
    Instant,
}

/// One timeline event, as stored in a thread's ring buffer.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    pub cat: &'static str,
    pub name: &'static str,
    /// Up to two named integer arguments (`nargs` are valid).
    pub args: [(&'static str, u64); 2],
    pub nargs: u8,
}

struct AggCell {
    cat: &'static str,
    name: &'static str,
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

struct CounterCell {
    cat: &'static str,
    name: &'static str,
    count: u64,
    sum: f64,
    last: f64,
}

struct Inner {
    label: String,
    ring: Vec<Event>,
    capacity: usize,
    /// Total events ever pushed since the last [`clear`]; `min(pushed,
    /// capacity)` live events end at index `pushed % capacity`.
    pushed: u64,
    agg: Vec<AggCell>,
    counters: Vec<CounterCell>,
}

impl Inner {
    fn push(&mut self, ev: Event) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            let idx = (self.pushed % self.capacity as u64) as usize;
            self.ring[idx] = ev;
        }
        self.pushed += 1;
    }

    fn dropped(&self) -> u64 {
        self.pushed.saturating_sub(self.ring.len() as u64)
    }

    /// Live events in timestamp order (ring unrolled from the oldest slot).
    fn ordered_events(&self) -> Vec<Event> {
        if self.pushed <= self.capacity as u64 {
            return self.ring.clone();
        }
        let split = (self.pushed % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[split..]);
        out.extend_from_slice(&self.ring[..split]);
        out
    }

    fn record_span(&mut self, ev: Event, dur_ns: u64) {
        self.push(ev);
        if let Some(cell) = self
            .agg
            .iter_mut()
            .find(|c| c.cat == ev.cat && c.name == ev.name)
        {
            cell.count += 1;
            cell.total_ns += dur_ns;
            cell.max_ns = cell.max_ns.max(dur_ns);
        } else {
            self.agg.push(AggCell {
                cat: ev.cat,
                name: ev.name,
                count: 1,
                total_ns: dur_ns,
                max_ns: dur_ns,
            });
        }
    }

    fn record_counter(&mut self, ev: Event, value: f64) {
        self.push(ev);
        if let Some(cell) = self
            .counters
            .iter_mut()
            .find(|c| c.cat == ev.cat && c.name == ev.name)
        {
            cell.count += 1;
            cell.sum += value;
            cell.last = value;
        } else {
            self.counters.push(CounterCell {
                cat: ev.cat,
                name: ev.name,
                count: 1,
                sum: value,
                last: value,
            });
        }
    }
}

struct ThreadBuf {
    tid: u64,
    /// Spans currently open on this thread (balance check).
    depth: AtomicU64,
    inner: Mutex<Inner>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static BUF: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

fn with_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let capacity = CAPACITY.load(Ordering::Relaxed);
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                depth: AtomicU64::new(0),
                inner: Mutex::new(Inner {
                    label,
                    ring: Vec::new(),
                    capacity,
                    pushed: 0,
                    agg: Vec::new(),
                    counters: Vec::new(),
                }),
            });
            registry()
                .lock()
                .expect("trace registry poisoned")
                .push(buf.clone());
            buf
        });
        f(buf)
    })
}

/// Name the current thread's timeline track (e.g. `"rank 3"`).  Overrides
/// the OS thread name captured when the thread first recorded.
pub fn set_thread_label(label: &str) {
    if compiled_out() {
        return;
    }
    with_buf(|buf| {
        buf.inner.lock().expect("trace buffer poisoned").label = label.to_string();
    });
}

/// RAII span guard: created by [`span`]/[`span1`]/[`span2`], records one
/// complete event when dropped.  Must be dropped on the thread that created
/// it (enforced by `!Send`).
pub struct Span {
    t0: u64,
    cat: &'static str,
    name: &'static str,
    args: [(&'static str, u64); 2],
    nargs: u8,
    armed: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Span {
    #[inline]
    fn open(
        cat: &'static str,
        name: &'static str,
        args: [(&'static str, u64); 2],
        nargs: u8,
    ) -> Self {
        if !enabled() {
            return Span {
                t0: 0,
                cat,
                name,
                args,
                nargs,
                armed: false,
                _not_send: std::marker::PhantomData,
            };
        }
        with_buf(|buf| {
            buf.depth.fetch_add(1, Ordering::Relaxed);
        });
        Span {
            t0: now_ns(),
            cat,
            name,
            args,
            nargs,
            armed: true,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.t0);
        with_buf(|buf| {
            buf.depth.fetch_sub(1, Ordering::Relaxed);
            let mut inner = buf.inner.lock().expect("trace buffer poisoned");
            inner.record_span(
                Event {
                    kind: EventKind::Span { dur_ns },
                    ts_ns: self.t0,
                    cat: self.cat,
                    name: self.name,
                    args: self.args,
                    nargs: self.nargs,
                },
                dur_ns,
            );
        });
    }
}

/// Open a span; it closes (and records) when the returned guard drops.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    Span::open(cat, name, [("", 0); 2], 0)
}

/// [`span`] with one named integer argument (shown in the timeline UI).
#[inline]
pub fn span1(cat: &'static str, name: &'static str, key: &'static str, value: u64) -> Span {
    Span::open(cat, name, [(key, value), ("", 0)], 1)
}

/// [`span`] with two named integer arguments.
#[inline]
pub fn span2(
    cat: &'static str,
    name: &'static str,
    k0: &'static str,
    v0: u64,
    k1: &'static str,
    v1: u64,
) -> Span {
    Span::open(cat, name, [(k0, v0), (k1, v1)], 2)
}

/// Record an already-closed span from an explicit start timestamp (taken
/// earlier with [`now_ns`]).  Useful when a span's arguments (e.g. how many
/// chunks a pool lane claimed) are only known at close; does not touch the
/// open-span depth counter.
#[inline]
pub fn complete_span2(
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    k0: &'static str,
    v0: u64,
    k1: &'static str,
    v1: u64,
) {
    if !enabled() {
        return;
    }
    let dur_ns = now_ns().saturating_sub(start_ns);
    with_buf(|buf| {
        let mut inner = buf.inner.lock().expect("trace buffer poisoned");
        inner.record_span(
            Event {
                kind: EventKind::Span { dur_ns },
                ts_ns: start_ns,
                cat,
                name,
                args: [(k0, v0), (k1, v1)],
                nargs: 2,
            },
            dur_ns,
        );
    });
}

/// One-argument variant of [`complete_span2`].
#[inline]
pub fn complete_span1(
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    key: &'static str,
    value: u64,
) {
    if !enabled() {
        return;
    }
    let dur_ns = now_ns().saturating_sub(start_ns);
    with_buf(|buf| {
        let mut inner = buf.inner.lock().expect("trace buffer poisoned");
        inner.record_span(
            Event {
                kind: EventKind::Span { dur_ns },
                ts_ns: start_ns,
                cat,
                name,
                args: [(key, value), ("", 0)],
                nargs: 1,
            },
            dur_ns,
        );
    });
}

/// Record a sampled numeric value (rendered as a counter track).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    with_buf(|buf| {
        let mut inner = buf.inner.lock().expect("trace buffer poisoned");
        inner.record_counter(
            Event {
                kind: EventKind::Counter { value },
                ts_ns,
                cat,
                name,
                args: [("", 0); 2],
                nargs: 0,
            },
            value,
        );
    });
}

/// Record a point-in-time marker with up to two named integer arguments.
#[inline]
pub fn instant2(
    cat: &'static str,
    name: &'static str,
    k0: &'static str,
    v0: u64,
    k1: &'static str,
    v1: u64,
) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    with_buf(|buf| {
        let mut inner = buf.inner.lock().expect("trace buffer poisoned");
        inner.push(Event {
            kind: EventKind::Instant,
            ts_ns,
            cat,
            name,
            args: [(k0, v0), (k1, v1)],
            nargs: 2,
        });
    });
}

/// Record a point-in-time marker.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    with_buf(|buf| {
        let mut inner = buf.inner.lock().expect("trace buffer poisoned");
        inner.push(Event {
            kind: EventKind::Instant,
            ts_ns,
            cat,
            name,
            args: [("", 0); 2],
            nargs: 0,
        });
    });
}

/// Total nanoseconds the *current thread* has spent in closed spans of
/// category `cat` since the last [`clear`].  Exact even when the timeline
/// ring dropped events.  Cheap enough to diff around solver phases: the
/// solver uses deltas of `thread_category_ns("comm")` per cycle to attribute
/// synchronization time.  Returns 0 while disabled (the accumulator simply
/// stops growing).
pub fn thread_category_ns(cat: &str) -> u64 {
    if compiled_out() {
        return 0;
    }
    with_buf(|buf| {
        let inner = buf.inner.lock().expect("trace buffer poisoned");
        inner
            .agg
            .iter()
            .filter(|c| c.cat == cat)
            .map(|c| c.total_ns)
            .sum()
    })
}

/// Global recorder statistics, summed across every registered thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events currently held in ring buffers.
    pub events: usize,
    /// Events overwritten because a ring wrapped.
    pub dropped: u64,
    /// Spans currently open (non-zero only while a region is in flight).
    pub open_spans: u64,
}

/// Snapshot recorder statistics (see [`TraceStats`]).
pub fn stats() -> TraceStats {
    let mut out = TraceStats::default();
    for buf in registry().lock().expect("trace registry poisoned").iter() {
        out.open_spans += buf.depth.load(Ordering::Relaxed);
        let inner = buf.inner.lock().expect("trace buffer poisoned");
        out.events += inner.ring.len();
        out.dropped += inner.dropped();
    }
    out
}

/// Discard all recorded events, aggregates, and drop counts on every
/// thread.  Open spans stay open; their eventual close records normally.
pub fn clear() {
    let capacity = CAPACITY.load(Ordering::Relaxed);
    for buf in registry().lock().expect("trace registry poisoned").iter() {
        let mut inner = buf.inner.lock().expect("trace buffer poisoned");
        inner.ring = Vec::new();
        inner.capacity = capacity;
        inner.pushed = 0;
        inner.agg.clear();
        inner.counters.clear();
    }
}

/// One thread's drained timeline plus its exact aggregates.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    pub tid: u64,
    pub label: String,
    /// Live events in timestamp order (oldest may be missing; see `dropped`).
    pub events: Vec<Event>,
    /// Events overwritten because the ring wrapped.
    pub dropped: u64,
    /// Exact per-(cat, name) span aggregates (immune to ring drops).
    pub spans: Vec<AggRow>,
    /// Exact per-(cat, name) counter aggregates.
    pub counters: Vec<CounterRow>,
}

/// A full trace: every thread's timeline, collected by [`collect`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub threads: Vec<ThreadTrace>,
}

/// Copy out every thread's timeline and aggregates.  Non-destructive:
/// buffers keep recording afterwards (use [`clear`] to reset).
pub fn collect() -> Trace {
    let mut threads = Vec::new();
    for buf in registry().lock().expect("trace registry poisoned").iter() {
        let inner = buf.inner.lock().expect("trace buffer poisoned");
        if inner.pushed == 0 && inner.agg.is_empty() && inner.counters.is_empty() {
            continue;
        }
        threads.push(ThreadTrace {
            tid: buf.tid,
            label: inner.label.clone(),
            events: inner.ordered_events(),
            dropped: inner.dropped(),
            spans: inner
                .agg
                .iter()
                .map(|c| AggRow {
                    cat: c.cat.to_string(),
                    name: c.name.to_string(),
                    count: c.count,
                    total_ns: c.total_ns,
                    max_ns: c.max_ns,
                })
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|c| CounterRow {
                    cat: c.cat.to_string(),
                    name: c.name.to_string(),
                    count: c.count,
                    sum: c.sum,
                    last: c.last,
                })
                .collect(),
        });
    }
    threads.sort_by_key(|t| t.tid);
    Trace { threads }
}

#[cfg(all(test, not(feature = "off")))]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod off_tests {
    #[test]
    fn compiled_out_matches_feature() {
        assert_eq!(super::compiled_out(), cfg!(feature = "off"));
        #[cfg(feature = "off")]
        {
            super::set_enabled(true);
            assert!(!super::enabled());
            super::set_enabled(false);
        }
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    fn reset() {
        set_enabled(false);
        clear();
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = test_lock();
        reset();
        {
            let _s = span("t", "noop");
        }
        counter("t", "c", 1.0);
        instant("t", "i");
        assert_eq!(stats(), TraceStats::default());
    }

    #[test]
    fn spans_record_and_balance() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("t", "outer");
            assert_eq!(stats().open_spans, 1);
            let _inner = span1("t", "inner", "k", 7);
            assert_eq!(stats().open_spans, 2);
        }
        set_enabled(false);
        let st = stats();
        assert_eq!(st.open_spans, 0);
        assert_eq!(st.events, 2);
        let trace = collect();
        let me: Vec<_> = trace.threads.iter().flat_map(|t| t.events.iter()).collect();
        // Inner closes before outer, so it appears first.
        assert_eq!(me[0].name, "inner");
        assert_eq!(me[0].args[0], ("k", 7));
        assert_eq!(me[1].name, "outer");
        match (me[0].kind, me[1].kind) {
            (EventKind::Span { dur_ns: d0 }, EventKind::Span { dur_ns: d1 }) => {
                // Outer contains inner.
                assert!(me[1].ts_ns <= me[0].ts_ns);
                assert!(me[1].ts_ns + d1 >= me[0].ts_ns + d0);
            }
            other => panic!("expected two spans, got {other:?}"),
        }
        reset();
    }

    #[test]
    fn aggregates_survive_ring_wrap() {
        let _guard = test_lock();
        reset();
        set_capacity(16);
        clear();
        set_enabled(true);
        for _ in 0..100 {
            let _s = span("wrap", "tick");
        }
        set_enabled(false);
        let st = stats();
        assert_eq!(st.events, 16);
        assert_eq!(st.dropped, 84);
        let trace = collect();
        let agg: u64 = trace
            .threads
            .iter()
            .flat_map(|t| t.spans.iter())
            .filter(|r| r.cat == "wrap")
            .map(|r| r.count)
            .sum();
        assert_eq!(agg, 100);
        set_capacity(DEFAULT_CAPACITY);
        reset();
    }

    #[test]
    fn category_time_accumulates_on_this_thread() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        let before = thread_category_ns("cat-a");
        {
            let _s = span("cat-a", "sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let after = thread_category_ns("cat-a");
        assert!(after >= before + 1_000_000, "{after} vs {before}");
        reset();
    }

    #[test]
    fn counters_and_instants_are_recorded() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        counter("c", "queue", 3.0);
        counter("c", "queue", 5.0);
        instant("c", "mark");
        instant2("c", "mark2", "peer", 1, "words", 64);
        set_enabled(false);
        let trace = collect();
        let counters: Vec<_> = trace
            .threads
            .iter()
            .flat_map(|t| t.counters.iter())
            .filter(|c| c.name == "queue")
            .collect();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].count, 2);
        assert_eq!(counters[0].sum, 8.0);
        assert_eq!(counters[0].last, 5.0);
        let instants = trace
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.kind == EventKind::Instant)
            .count();
        assert_eq!(instants, 2);
        reset();
    }

    #[test]
    fn multi_thread_timelines_are_separate_tracks() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        std::thread::scope(|scope| {
            for r in 0..3u64 {
                scope.spawn(move || {
                    set_thread_label(&format!("worker {r}"));
                    let _s = span1("mt", "lane", "lane", r);
                });
            }
        });
        set_enabled(false);
        let trace = collect();
        let labels: Vec<_> = trace
            .threads
            .iter()
            .filter(|t| t.label.starts_with("worker "))
            .map(|t| t.label.clone())
            .collect();
        assert_eq!(labels.len(), 3);
        reset();
    }
}
