//! A minimal JSON *syntax* validator (no value tree is built).
//!
//! Used by tests and the `bench --bin profile` harness to assert that the
//! hand-rolled Chrome trace export and report files are well-formed without
//! pulling in a JSON dependency.

/// Validate that `input` is a single well-formed JSON value (with optional
/// surrounding whitespace).  Returns the byte offset and a message on error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(&c) => Err(fail(*pos, &format!("unexpected byte {:?}", c as char))),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(fail(*pos, "invalid literal"))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(fail(*pos, "expected object key string"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(fail(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(fail(*pos, "invalid \\u escape")),
                            }
                        }
                    }
                    _ => return Err(fail(*pos, "invalid escape")),
                }
            }
            0x00..=0x1f => return Err(fail(*pos, "unescaped control character")),
            _ => *pos += 1,
        }
    }
    Err(fail(*pos, "unterminated string"))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(fail(start, "number without digits"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(fail(*pos, "number with empty fraction"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(fail(*pos, "number with empty exponent"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e-3",
            "\"a\\n\\u00e9\"",
            "[]",
            "{}",
            "[1, 2, [3], {\"k\": \"v\"}]",
            "{\"a\": {\"b\": [1.0, false, null]}, \"c\": \"\"}",
            "  {\"ws\" : 1}  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"k\":}",
            "{\"k\" 1}",
            "{'k': 1}",
            "01abc",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "[1] trailing",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} was accepted");
        }
    }
}
