//! Householder QR factorization of tall-skinny panels.
//!
//! This is the "HHQR" intra-block orthogonalization of the paper
//! (Fig. 2b, Line 8).  It is unconditionally stable but BLAS-1/BLAS-2 bound,
//! which is exactly why the paper prefers CholQR-based kernels on GPUs; we
//! keep it both as the stability reference in tests and as the baseline
//! "BCGS2 with HHQR" algorithm.

use crate::matrix::Matrix;

/// Householder QR of `V ∈ R^{n×s}` (`n ≥ s`): returns `(Q, R)` with
/// `Q ∈ R^{n×s}` having orthonormal columns, `R ∈ R^{s×s}` upper triangular
/// with non-negative diagonal, and `Q·R = V`.
pub fn householder_qr(v: &Matrix) -> (Matrix, Matrix) {
    let n = v.nrows();
    let s = v.ncols();
    assert!(n >= s, "householder_qr requires n >= s (got {n} x {s})");
    let mut a = v.clone();
    // Householder vectors are stored below the diagonal of `a`; `taus[k]` is
    // the scalar of the k-th reflector.
    let mut taus = vec![0.0f64; s];
    for k in 0..s {
        // Compute the reflector for column k, rows k..n.
        let mut alpha = a[(k, k)];
        let mut normx2 = 0.0;
        for i in (k + 1)..n {
            normx2 += a[(i, k)] * a[(i, k)];
        }
        let normx = (alpha * alpha + normx2).sqrt();
        if normx == 0.0 {
            taus[k] = 0.0;
            continue;
        }
        let beta = if alpha >= 0.0 { -normx } else { normx };
        let tau = (beta - alpha) / beta;
        let scale = 1.0 / (alpha - beta);
        for i in (k + 1)..n {
            a[(i, k)] *= scale;
        }
        alpha = beta;
        taus[k] = tau;
        a[(k, k)] = alpha;
        // Apply the reflector to the trailing columns.
        for j in (k + 1)..s {
            let mut dot = a[(k, j)];
            for i in (k + 1)..n {
                dot += a[(i, k)] * a[(i, j)];
            }
            let t = tau * dot;
            a[(k, j)] -= t;
            for i in (k + 1)..n {
                let h = a[(i, k)];
                a[(i, j)] -= t * h;
            }
        }
    }
    // Extract R (upper triangle of `a`).
    let mut r = Matrix::zeros(s, s);
    for j in 0..s {
        for i in 0..=j {
            r[(i, j)] = a[(i, j)];
        }
    }
    // Form Q explicitly by applying the reflectors to the first s columns of
    // the identity, in reverse order.
    let mut q = Matrix::zeros(n, s);
    for j in 0..s {
        q[(j, j)] = 1.0;
    }
    for k in (0..s).rev() {
        let tau = taus[k];
        if tau == 0.0 {
            continue;
        }
        for j in 0..s {
            let mut dot = q[(k, j)];
            for i in (k + 1)..n {
                dot += a[(i, k)] * q[(i, j)];
            }
            let t = tau * dot;
            q[(k, j)] -= t;
            for i in (k + 1)..n {
                let h = a[(i, k)];
                q[(i, j)] -= t * h;
            }
        }
    }
    // Normalize so the diagonal of R is non-negative (paper convention).
    for j in 0..s {
        if r[(j, j)] < 0.0 {
            for c in j..s {
                r[(j, c)] = -r[(j, c)];
            }
            for i in 0..n {
                q[(i, j)] = -q[(i, j)];
            }
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_nn;
    use crate::measure::orthogonality_error;

    fn panel(n: usize, s: usize) -> Matrix {
        Matrix::from_fn(n, s, |i, j| {
            ((i * 7 + j * 13) % 23) as f64 * 0.1 - 1.0 + if i == j { 3.0 } else { 0.0 }
        })
    }

    #[test]
    fn qr_reconstructs_input() {
        let v = panel(200, 6);
        let (q, r) = householder_qr(&v);
        let back = gemm_nn(&q, &r);
        for j in 0..6 {
            for i in 0..200 {
                assert!((back[(i, j)] - v[(i, j)]).abs() < 1e-11 * v.max_abs());
            }
        }
    }

    #[test]
    fn q_is_orthonormal() {
        let v = panel(500, 8);
        let (q, _) = householder_qr(&v);
        assert!(orthogonality_error(&q.view()) < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular_with_nonnegative_diagonal() {
        let v = panel(100, 5);
        let (_, r) = householder_qr(&v);
        for i in 0..5 {
            assert!(r[(i, i)] >= 0.0);
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn handles_rank_deficient_input_gracefully() {
        // Third column is the sum of the first two: rank 2.
        let mut v = panel(50, 3);
        for i in 0..50 {
            let s = v[(i, 0)] + v[(i, 1)];
            v[(i, 2)] = s;
        }
        let (q, r) = householder_qr(&v);
        // QR still reconstructs V even though R is singular.
        let back = gemm_nn(&q, &r);
        for i in 0..50 {
            for j in 0..3 {
                assert!((back[(i, j)] - v[(i, j)]).abs() < 1e-10 * v.max_abs());
            }
        }
        assert!(r[(2, 2)].abs() < 1e-10 * v.max_abs());
    }

    #[test]
    fn square_and_single_column_cases() {
        let v = panel(4, 4);
        let (q, r) = householder_qr(&v);
        let back = gemm_nn(&q, &r);
        for i in 0..4 {
            for j in 0..4 {
                assert!((back[(i, j)] - v[(i, j)]).abs() < 1e-12 * v.max_abs());
            }
        }
        let w = panel(10, 1);
        let (q1, r1) = householder_qr(&w);
        assert!((crate::blas1::nrm2(q1.col(0)) - 1.0).abs() < 1e-14);
        assert!((r1[(0, 0)] - crate::blas1::nrm2(w.col(0))).abs() < 1e-12);
    }

    #[test]
    fn ill_conditioned_panel_still_orthogonal() {
        // Columns with widely varying scales: HHQR must stay O(eps) orthogonal
        // (this is the property CholQR loses — see the chol tests).
        let n = 300;
        let v = Matrix::from_fn(n, 4, |i, j| {
            let base = ((i * 11 + j) % 17) as f64 - 8.0;
            base * 10f64.powi(-(4 * j as i32))
        });
        let (q, _) = householder_qr(&v);
        assert!(orthogonality_error(&q.view()) < 1e-12);
    }
}
