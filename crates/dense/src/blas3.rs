//! Level-3 kernels used by the block orthogonalization schemes.
//!
//! These are the four workhorses of every algorithm in the paper:
//!
//! * [`gram`]: `G = VᵀV` (the Gram matrix CholQR factorizes),
//! * [`gemm_tn`]: `C = QᵀV` (the BCGS dot-product GEMM),
//! * [`gemm_nn_minus`]: `V ← V − Q·R` (the BCGS vector-update GEMM),
//! * [`trsm_right_upper`]: `Q ← V·R⁻¹` (the CholQR normalization TRSM),
//!
//! plus the fused [`fused_update_proj_gram`] (`V ← V − Q·P` together with
//! `QᵀV` and `VᵀV` of the updated panel) that the two-sync BCGS schemes are
//! built on.
//!
//! # Blocking strategy
//!
//! All kernels stream the tall `n×s` operands in **row panels** of
//! [`ROW_BLOCK`] rows, and within a row panel compute **register tiles** of
//! [`TILE`]×[`TILE`] output entries.  A row panel (`ROW_BLOCK × s` doubles)
//! fits in L1/L2, so every tile of the small output consumes it from cache
//! and each tall operand is read from memory once per kernel call — versus
//! once per *column pair* for the naive dot-product formulation (retained
//! as [`naive_gram`] etc. for benchmarks and property tests).
//!
//! The tile inner loops live in [`crate::simd`] and are explicit
//! `std::arch` AVX2+FMA kernels with a portable scalar fallback, selected
//! once at runtime.  Accumulation kernels ([`gram`], [`gemm_tn`], the
//! projection half of [`fused_update_proj_gram`]) may use FMA and vector
//! lane accumulators — they are pinned to the oracles within `1e-10·n` —
//! while the element-update kernels ([`gemm_nn_minus`],
//! [`trsm_right_upper`], the update half of the fused kernel) perform the
//! exact scalar operation sequence per element and stay **bitwise
//! identical** to the naive sweeps on every backend.
//!
//! Parallelization is over contiguous row ranges via `parkit`, with chunk
//! sizes derived from the bytes each row traverses
//! ([`parkit::num_threads_for_bytes`] — cache geometry, not lane count);
//! the small `s×s`/`k×s` partial results are reduced deterministically in
//! chunk order (one code path: [`parkit::parallel_reduce_ranges_bytes`]),
//! so repeated runs give bitwise-identical results for a given thread
//! count.

use crate::matrix::{MatView, MatViewMut, Matrix};
use crate::simd;
use parkit::{parallel_for_range_bytes, parallel_reduce_ranges_bytes};

/// Register-tile width: each inner loop produces a `TILE×TILE` block of the
/// output in scalar accumulators.
pub const TILE: usize = 4;

/// Rows per cache panel: a `ROW_BLOCK × s` panel of doubles (16 KiB at
/// `s = 8`) stays resident while every register tile consumes it.
pub const ROW_BLOCK: usize = 256;

/// Shared-allocation column pointer handed to row-parallel workers; each
/// worker only touches its own disjoint row range of each column.
struct ColPtr(*mut f64);

// SAFETY: workers dereference disjoint row ranges only (the same guarantee
// `split_at_mut` encodes), and columns of a column-major matrix never
// overlap.
unsafe impl Sync for ColPtr {}

impl ColPtr {
    /// Mutable slice of rows `r0..r1` of column `col` (leading dimension `n`).
    ///
    /// # Safety
    /// The caller must guarantee no other live reference overlaps the
    /// requested segment.
    #[allow(clippy::mut_from_ref)]
    unsafe fn col_seg_mut(&self, n: usize, col: usize, r0: usize, r1: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.0.add(col * n + r0), r1 - r0)
    }

    /// Read-only slice of rows `r0..r1` of column `col`.
    ///
    /// # Safety
    /// The caller must guarantee no live mutable reference overlaps the
    /// requested segment.
    unsafe fn col_seg(&self, n: usize, col: usize, r0: usize, r1: usize) -> &[f64] {
        std::slice::from_raw_parts(self.0.add(col * n + r0), r1 - r0)
    }
}

/// Read-side column-major operand source for the tile kernels: rows
/// `r0..r1` of one column at a time, never a reference spanning rows the
/// caller does not own.
///
/// Two implementations, chosen by monomorphization:
///
/// * [`SliceCols`] — backed by a real `&[f64]`; segments are ordinary
///   subslices, so LLVM keeps the `noalias`/`readonly` facts of the
///   original reference (this is the fast path for [`gram`]/[`gemm_tn`],
///   whose operands are never concurrently mutated);
/// * [`RawCols`] — backed by a raw pointer, for
///   [`fused_update_proj_gram`], where a whole-matrix shared slice would
///   alias the in-place update (same worker) and other workers' disjoint
///   row writes; each segment is materialized only for rows the worker
///   owns, after its own mutable segments are dropped.
trait ColSource: Copy {
    /// Rows `r0..r1` of column `col` as a slice.
    fn seg(&self, col: usize, r0: usize, r1: usize) -> &[f64];
}

/// Safe, slice-backed [`ColSource`] with leading dimension `n`.
#[derive(Clone, Copy)]
struct SliceCols<'a> {
    data: &'a [f64],
    n: usize,
}

impl ColSource for SliceCols<'_> {
    #[inline]
    fn seg(&self, col: usize, r0: usize, r1: usize) -> &[f64] {
        &self.data[col * self.n + r0..col * self.n + r1]
    }
}

/// Raw-pointer-backed [`ColSource`] over `len` elements.
#[derive(Clone, Copy)]
struct RawCols<'a> {
    ptr: *const f64,
    n: usize,
    len: usize,
    _life: std::marker::PhantomData<&'a [f64]>,
}

impl<'a> RawCols<'a> {
    /// # Safety
    /// For the lifetime `'a`, every row range later passed to `seg` must
    /// be readable without a live overlapping `&mut`: the fused kernel
    /// guarantees this by having each worker read only the row ranges it
    /// owns, after its own mutable segments are dropped.
    unsafe fn from_ptr(ptr: *const f64, n: usize, len: usize) -> Self {
        Self {
            ptr,
            n,
            len,
            _life: std::marker::PhantomData,
        }
    }
}

impl ColSource for RawCols<'_> {
    #[inline]
    fn seg(&self, col: usize, r0: usize, r1: usize) -> &[f64] {
        debug_assert!(r0 <= r1 && col * self.n + r1 <= self.len);
        // SAFETY: in-bounds per the constructor contract; no overlapping
        // `&mut` is live for rows the caller owns (see `from_ptr`).
        unsafe { std::slice::from_raw_parts(self.ptr.add(col * self.n + r0), r1 - r0) }
    }
}

/// Accumulate the register tile
/// `out[i0..i0+iw, j0..j0+jw] += A[r0..r1, i0..]ᵀ · B[r0..r1, j0..]`
/// where `A`/`B` are column-major with leading dimension `n` and `out` is
/// `lda_out`-major (column-major with `lda_out` rows).
///
/// The full `4×4` tile is specialized with 16 explicit scalar accumulators;
/// ragged edges take a generic two-way-unrolled path.
#[inline]
#[allow(clippy::too_many_arguments)] // leaf kernel: scalars beat a params struct here
fn tn_tile<A: ColSource, B: ColSource>(
    a: A,
    b: B,
    r0: usize,
    r1: usize,
    i0: usize,
    iw: usize,
    j0: usize,
    jw: usize,
    out: &mut [f64],
    lda_out: usize,
    // Output offsets: tile entry (ii, jj) lands at
    // out[(oj0 + jj) * lda_out + oi0 + ii] (0, 0 for a scratch tile).
    oi0: usize,
    oj0: usize,
) {
    if iw == TILE && jw == TILE {
        let a_segs = [
            a.seg(i0, r0, r1),
            a.seg(i0 + 1, r0, r1),
            a.seg(i0 + 2, r0, r1),
            a.seg(i0 + 3, r0, r1),
        ];
        let b_segs = [
            b.seg(j0, r0, r1),
            b.seg(j0 + 1, r0, r1),
            b.seg(j0 + 2, r0, r1),
            b.seg(j0 + 3, r0, r1),
        ];
        let mut tile = [0.0f64; TILE * TILE];
        simd::tn_tile4x4(&a_segs, &b_segs, &mut tile);
        for jj in 0..TILE {
            for ii in 0..TILE {
                out[(oj0 + jj) * lda_out + oi0 + ii] += tile[jj * TILE + ii];
            }
        }
    } else {
        for jj in 0..jw {
            let bj = b.seg(j0 + jj, r0, r1);
            for ii in 0..iw {
                let ai = a.seg(i0 + ii, r0, r1);
                out[(oj0 + jj) * lda_out + oi0 + ii] += simd::dot(ai, bj);
            }
        }
    }
}

/// Accumulate the upper triangle of the symmetric diagonal tile
/// `out[j0..j0+4, j0..j0+4] += A[r0..r1, j0..]ᵀ · A[r0..r1, j0..]`
/// with 10 scalar accumulators (the Gram diagonal-block case — computing
/// the full square and discarding the lower half would waste 6/16 of the
/// tile's flops).
#[inline]
fn sym_tile4<A: ColSource>(a: A, r0: usize, r1: usize, j0: usize, out: &mut [f64], lda: usize) {
    let segs = [
        a.seg(j0, r0, r1),
        a.seg(j0 + 1, r0, r1),
        a.seg(j0 + 2, r0, r1),
        a.seg(j0 + 3, r0, r1),
    ];
    let mut tri = [0.0f64; 10];
    simd::sym_tile4(&segs, &mut tri);
    out[j0 * lda + j0] += tri[0];
    out[(j0 + 1) * lda + j0] += tri[1];
    out[(j0 + 1) * lda + j0 + 1] += tri[2];
    out[(j0 + 2) * lda + j0] += tri[3];
    out[(j0 + 2) * lda + j0 + 1] += tri[4];
    out[(j0 + 2) * lda + j0 + 2] += tri[5];
    out[(j0 + 3) * lda + j0] += tri[6];
    out[(j0 + 3) * lda + j0 + 1] += tri[7];
    out[(j0 + 3) * lda + j0 + 2] += tri[8];
    out[(j0 + 3) * lda + j0 + 3] += tri[9];
}

/// Accumulate `out += A[rows, :ka]ᵀ · B[rows, :kb]` for one row block,
/// tiling both output dimensions.  With `upper_only` set (the Gram case,
/// `A == B`), only tiles on or above the block diagonal are visited and
/// only entries `i ≤ j` are stored.
#[inline]
#[allow(clippy::too_many_arguments)] // leaf kernel: scalars beat a params struct here
fn tn_row_block<A: ColSource, B: ColSource>(
    a: A,
    b: B,
    r0: usize,
    r1: usize,
    ka: usize,
    kb: usize,
    out: &mut [f64],
    upper_only: bool,
) {
    let mut jb = 0;
    while jb < kb {
        let jw = TILE.min(kb - jb);
        let ib_end = if upper_only { jb + jw } else { ka };
        let mut ib = 0;
        while ib < ib_end {
            let iw = TILE.min(ka - ib);
            if upper_only && ib == jb && iw == TILE && jw == TILE {
                // Full diagonal tile: symmetric accumulation, upper half only.
                sym_tile4(a, r0, r1, jb, out, ka);
            } else if upper_only && ib + iw > jb {
                // Ragged diagonal tile: compute into a scratch tile, keep i ≤ j.
                let mut scratch = [0.0f64; TILE * TILE];
                tn_tile(a, b, r0, r1, ib, iw, jb, jw, &mut scratch, TILE, 0, 0);
                for jj in 0..jw {
                    for ii in 0..iw {
                        if ib + ii <= jb + jj {
                            out[(jb + jj) * ka + ib + ii] += scratch[jj * TILE + ii];
                        }
                    }
                }
            } else {
                tn_tile(a, b, r0, r1, ib, iw, jb, jw, out, ka, ib, jb);
            }
            ib += TILE;
        }
        jb += TILE;
    }
}

/// Gram matrix `G = VᵀV` of a tall-skinny panel `V ∈ R^{n×s}`.
///
/// Single pass over `V` per call (row-panel blocked, `TILE`-wide register
/// tiles); parallelized over row ranges with the partial Gram matrices
/// reduced in deterministic chunk order.  Only the upper triangle is
/// computed during the reduction; the result is symmetrized before
/// returning.
pub fn gram(v: &MatView<'_>) -> Matrix {
    let n = v.nrows();
    let s = v.ncols();
    let _span = trace::span2("blas3", "gram", "n", n as u64, "s", s as u64);
    if s == 0 {
        return Matrix::zeros(0, 0);
    }
    let data = v.data();
    let partial = parallel_reduce_ranges_bytes(
        n,
        8 * s,
        vec![0.0f64; s * s],
        |start, end| {
            let cols = SliceCols { data, n };
            let mut g = vec![0.0f64; s * s];
            let mut rb = start;
            while rb < end {
                let re = (rb + ROW_BLOCK).min(end);
                tn_row_block(cols, cols, rb, re, s, s, &mut g, true);
                rb = re;
            }
            g
        },
        |mut acc, p| {
            for (dst, src) in acc.iter_mut().zip(&p) {
                *dst += src;
            }
            acc
        },
    );
    let mut g = Matrix::from_col_major(s, s, partial);
    // Symmetrize: copy upper triangle to lower.
    for j in 0..s {
        for i in 0..j {
            let val = g[(i, j)];
            g[(j, i)] = val;
        }
    }
    g
}

/// `C = AᵀB` for tall-skinny `A ∈ R^{n×k}`, `B ∈ R^{n×s}` (`k`, `s` small).
///
/// This is the "dot-products" GEMM of BCGS (`R_{1:j−1,j} = Qᵀ_{1:j−1} V_j`).
/// Row-panel blocked and register-tiled like [`gram`]; each tall operand is
/// streamed once per call.
pub fn gemm_tn(a: &MatView<'_>, b: &MatView<'_>) -> Matrix {
    assert_eq!(a.nrows(), b.nrows(), "gemm_tn: row mismatch");
    let n = a.nrows();
    let k = a.ncols();
    let s = b.ncols();
    let _span = trace::span2("blas3", "gemm_tn", "n", n as u64, "k", k as u64);
    if k == 0 || s == 0 {
        return Matrix::zeros(k, s);
    }
    let adata = a.data();
    let bdata = b.data();
    let partial = parallel_reduce_ranges_bytes(
        n,
        8 * (k + s),
        vec![0.0f64; k * s],
        |start, end| {
            let a_cols = SliceCols { data: adata, n };
            let b_cols = SliceCols { data: bdata, n };
            let mut c = vec![0.0f64; k * s];
            let mut rb = start;
            while rb < end {
                let re = (rb + ROW_BLOCK).min(end);
                tn_row_block(a_cols, b_cols, rb, re, k, s, &mut c, false);
                rb = re;
            }
            c
        },
        |mut acc, p| {
            for (dst, src) in acc.iter_mut().zip(&p) {
                *dst += src;
            }
            acc
        },
    );
    Matrix::from_col_major(k, s, partial)
}

/// Update one row block of `V ← V − Q·R`: column tiles of `V` stay hot in
/// L1 while the matching `Q` tiles stream through.
///
/// Per element the subtraction runs over `k` in index order with a single
/// accumulator, so the result is bitwise-identical to the naive column
/// sweep ([`naive_gemm_nn_minus`]).
///
/// # Safety
/// `vcols` must point into an `n`-row column-major matrix with at least
/// `r.ncols()` columns, and rows `r0..r1` of it must not be aliased.
#[inline]
#[allow(clippy::too_many_arguments)] // leaf kernel: scalars beat a params struct here
unsafe fn update_cols_generic(
    vcols: &ColPtr,
    qdata: &[f64],
    r: &Matrix,
    n: usize,
    r0: usize,
    r1: usize,
    jb: usize,
    jw: usize,
    kb: usize,
    kend: usize,
) {
    for jj in 0..jw {
        let vj = vcols.col_seg_mut(n, jb + jj, r0, r1);
        for kk in kb..kend {
            let alpha = r[(kk, jb + jj)];
            if alpha != 0.0 {
                let qk = &qdata[kk * n + r0..kk * n + r1];
                simd::axpy_minus(alpha, qk, vj);
            }
        }
    }
}

unsafe fn update_row_block(
    vcols: &ColPtr,
    qdata: &[f64],
    r: &Matrix,
    n: usize,
    r0: usize,
    r1: usize,
) {
    let k = r.nrows();
    let s = r.ncols();
    let mut jb = 0;
    while jb < s {
        let jw = TILE.min(s - jb);
        if jw == TILE {
            let mut kb = 0;
            while kb < k {
                let kw = TILE.min(k - kb);
                // A zero coefficient must be *skipped* (not multiplied) to
                // stay bitwise-faithful to the naive sweep: x - 0.0*q can
                // flip a -0.0 and poisons V when q is Inf/NaN.  Zero
                // coefficients only appear in structured R blocks, so the
                // fast tile requires all 16 to be nonzero.
                let tile_ok = kw == TILE
                    && (0..TILE).all(|jj| (0..TILE).all(|kk| r[(kb + kk, jb + jj)] != 0.0));
                if tile_ok {
                    let mut v = [
                        vcols.col_seg_mut(n, jb, r0, r1),
                        vcols.col_seg_mut(n, jb + 1, r0, r1),
                        vcols.col_seg_mut(n, jb + 2, r0, r1),
                        vcols.col_seg_mut(n, jb + 3, r0, r1),
                    ];
                    let q = [
                        &qdata[kb * n + r0..kb * n + r1],
                        &qdata[(kb + 1) * n + r0..(kb + 1) * n + r1],
                        &qdata[(kb + 2) * n + r0..(kb + 2) * n + r1],
                        &qdata[(kb + 3) * n + r0..(kb + 3) * n + r1],
                    ];
                    let c =
                        std::array::from_fn(|jj| std::array::from_fn(|kk| r[(kb + kk, jb + jj)]));
                    simd::update_tile4(&mut v, &q, &c);
                } else {
                    // Ragged k remainder or a tile containing zero
                    // coefficients: per-column axpy sweep with the naive
                    // skip, still in increasing-k order.
                    update_cols_generic(
                        vcols,
                        qdata,
                        r,
                        n,
                        r0,
                        r1,
                        jb,
                        TILE,
                        kb,
                        (kb + TILE).min(k),
                    );
                }
                kb += TILE;
            }
        } else {
            update_cols_generic(vcols, qdata, r, n, r0, r1, jb, jw, 0, k);
        }
        jb += TILE;
    }
}

/// `V ← V − Q·R` for tall-skinny `Q ∈ R^{n×k}`, small `R ∈ R^{k×s}` and
/// tall-skinny `V ∈ R^{n×s}` updated in place.
///
/// This is the "vector-update" GEMM of BCGS
/// (`V̂_j = V_j − Q_{1:j−1} R_{1:j−1,j}`).  Row-parallel and row-panel
/// blocked: each worker streams its rows of `Q` once while its `V` panel
/// stays in cache.
pub fn gemm_nn_minus(v: &mut MatViewMut<'_>, q: &MatView<'_>, r: &Matrix) {
    let n = v.nrows();
    assert_eq!(q.nrows(), n, "gemm_nn_minus: row mismatch");
    assert_eq!(q.ncols(), r.nrows(), "gemm_nn_minus: inner dim mismatch");
    assert_eq!(r.ncols(), v.ncols(), "gemm_nn_minus: col mismatch");
    let k = q.ncols();
    if k == 0 || v.ncols() == 0 || n == 0 {
        return;
    }
    let _span = trace::span2("blas3", "gemm_nn_minus", "n", n as u64, "k", k as u64);
    let qdata = q.data();
    let s = v.ncols();
    let vcols = ColPtr(v.data_mut().as_mut_ptr());
    parallel_for_range_bytes(n, 8 * (k + s), |start, end| {
        let mut rb = start;
        while rb < end {
            let re = (rb + ROW_BLOCK).min(end);
            // SAFETY: row ranges of different workers are disjoint.
            unsafe { update_row_block(&vcols, qdata, r, n, rb, re) };
            rb = re;
        }
    });
}

/// `V ← V·R⁻¹` for tall-skinny `V ∈ R^{n×s}` and upper-triangular
/// `R ∈ R^{s×s}` (the CholQR normalization TRSM).
///
/// Every row of `V` solves independently against `R`, so the sweep is
/// row-parallel and makes a **single pass** over `V`: workers own disjoint
/// row ranges and process them in `ROW_BLOCK`-row panels that stay in cache
/// for the whole `s²/2` column recurrence (the previous implementation was
/// a serial column sweep with `s` full passes over `V`).  The per-element
/// operation order matches the naive sweep, so results are
/// bitwise-identical to [`naive_trsm_right_upper`].
///
/// Panics if `R` has a zero diagonal entry.
pub fn trsm_right_upper(v: &mut MatViewMut<'_>, r: &Matrix) {
    let n = v.nrows();
    let s = v.ncols();
    assert_eq!(r.nrows(), s, "trsm_right_upper: dimension mismatch");
    assert_eq!(r.ncols(), s, "trsm_right_upper: R must be square");
    for j in 0..s {
        assert!(r[(j, j)] != 0.0, "trsm_right_upper: zero diagonal at {j}");
    }
    if n == 0 || s == 0 {
        return;
    }
    let _span = trace::span2("blas3", "trsm", "n", n as u64, "s", s as u64);
    let vcols = ColPtr(v.data_mut().as_mut_ptr());
    parallel_for_range_bytes(n, 8 * s, |start, end| {
        let mut rb = start;
        while rb < end {
            let re = (rb + ROW_BLOCK).min(end);
            // Column recurrence on one resident row panel:
            //   q_j = (v_j − Σ_{i<j} q_i r_{ij}) / r_{jj}
            for j in 0..s {
                // SAFETY: this worker owns rows rb..re exclusively; the
                // mutable column j and read columns i < j are disjoint.
                let vj = unsafe { vcols.col_seg_mut(n, j, rb, re) };
                for i in 0..j {
                    let alpha = r[(i, j)];
                    if alpha != 0.0 {
                        let qi = unsafe { vcols.col_seg(n, i, rb, re) };
                        simd::axpy_minus(alpha, qi, vj);
                    }
                }
                simd::scal(1.0 / r[(j, j)], vj);
            }
            rb = re;
        }
    });
}

/// Fused `V ← V − Q·P` **plus** `C = QᵀV` and `G = VᵀV` of the *updated*
/// panel, in one pass over the tall operands.
///
/// This is the local compute of the two-sync BCGS reorthogonalization step
/// (BCGS-IRO-2S): the projected panel `W = V − Q·P` is written and the
/// inner products `[Q W]ᵀW` needed by the next Cholesky are accumulated
/// while each row panel is still in cache, instead of re-reading `W` from
/// memory in a separate `proj_and_gram` sweep.  Returns `(C, G)` with
/// `C ∈ R^{k×s}`, `G ∈ R^{s×s}` (`G` symmetrized).
pub fn fused_update_proj_gram(
    v: &mut MatViewMut<'_>,
    q: &MatView<'_>,
    p: &Matrix,
) -> (Matrix, Matrix) {
    let n = v.nrows();
    let s = v.ncols();
    let k = q.ncols();
    assert_eq!(q.nrows(), n, "fused_update_proj_gram: row mismatch");
    assert_eq!(p.nrows(), k, "fused_update_proj_gram: inner dim mismatch");
    assert_eq!(p.ncols(), s, "fused_update_proj_gram: col mismatch");
    let _span = trace::span2(
        "blas3",
        "fused_update_proj_gram",
        "n",
        n as u64,
        "k",
        k as u64,
    );
    let qdata = q.data();
    let vcols = ColPtr(v.data_mut().as_mut_ptr());
    let vlen = n * s;
    let buf = parallel_reduce_ranges_bytes(
        n,
        8 * (k + 2 * s),
        vec![0.0f64; k * s + s * s],
        |start, end| {
            let mut acc = vec![0.0f64; k * s + s * s];
            let q_cols = SliceCols { data: qdata, n };
            // SAFETY: `Cols::seg` below reads only rows start..end, which
            // this worker owns exclusively, and only after the mutable
            // segments inside `update_row_block` have been dropped — never
            // a reference spanning rows another worker writes.
            let v_read = unsafe { RawCols::from_ptr(vcols.0, n, vlen) };
            let (c_acc, g_acc) = acc.split_at_mut(k * s);
            let mut rb = start;
            while rb < end {
                let re = (rb + ROW_BLOCK).min(end);
                if k > 0 {
                    // SAFETY: row ranges of different workers are disjoint.
                    unsafe { update_row_block(&vcols, qdata, p, n, rb, re) };
                    tn_row_block(q_cols, v_read, rb, re, k, s, c_acc, false);
                }
                tn_row_block(v_read, v_read, rb, re, s, s, g_acc, true);
                rb = re;
            }
            acc
        },
        |mut acc, partial| {
            for (dst, src) in acc.iter_mut().zip(&partial) {
                *dst += src;
            }
            acc
        },
    );
    let c = Matrix::from_col_major(k, s, buf[..k * s].to_vec());
    let mut g = Matrix::from_col_major(s, s, buf[k * s..].to_vec());
    for j in 0..s {
        for i in 0..j {
            let val = g[(i, j)];
            g[(j, i)] = val;
        }
    }
    (c, g)
}

/// Serial reference Gram matrix (the pre-blocking dot-product formulation);
/// baseline for the `kernels` bench and oracle for the property tests.
pub fn naive_gram(v: &MatView<'_>) -> Matrix {
    let n = v.nrows();
    let s = v.ncols();
    let data = v.data();
    let mut g = Matrix::zeros(s, s);
    for j in 0..s {
        let cj = &data[j * n..(j + 1) * n];
        for i in 0..=j {
            let ci = &data[i * n..(i + 1) * n];
            let mut acc = 0.0;
            for (a, b) in ci.iter().zip(cj) {
                acc += a * b;
            }
            g[(i, j)] = acc;
        }
    }
    for j in 0..s {
        for i in 0..j {
            let val = g[(i, j)];
            g[(j, i)] = val;
        }
    }
    g
}

/// Serial reference `C = AᵀB` (pre-blocking dot-product formulation).
pub fn naive_gemm_tn(a: &MatView<'_>, b: &MatView<'_>) -> Matrix {
    assert_eq!(a.nrows(), b.nrows(), "naive_gemm_tn: row mismatch");
    let n = a.nrows();
    let k = a.ncols();
    let s = b.ncols();
    let mut c = Matrix::zeros(k, s);
    for j in 0..s {
        let bj = &b.data()[j * n..(j + 1) * n];
        for i in 0..k {
            let ai = &a.data()[i * n..(i + 1) * n];
            let mut acc = 0.0;
            for (x, y) in ai.iter().zip(bj) {
                acc += x * y;
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Serial reference `V ← V − Q·R` (column-at-a-time axpy sweep).
pub fn naive_gemm_nn_minus(v: &mut MatViewMut<'_>, q: &MatView<'_>, r: &Matrix) {
    let n = v.nrows();
    assert_eq!(q.nrows(), n, "naive_gemm_nn_minus: row mismatch");
    assert_eq!(
        q.ncols(),
        r.nrows(),
        "naive_gemm_nn_minus: inner dim mismatch"
    );
    assert_eq!(r.ncols(), v.ncols(), "naive_gemm_nn_minus: col mismatch");
    let k = q.ncols();
    for j in 0..v.ncols() {
        let vj = v.col_mut(j);
        for kk in 0..k {
            let alpha = r[(kk, j)];
            if alpha != 0.0 {
                let qk = q.col(kk);
                for (o, x) in vj.iter_mut().zip(qk) {
                    *o -= alpha * x;
                }
            }
        }
    }
}

/// Serial reference `V ← V·R⁻¹` (the pre-blocking serial column sweep).
pub fn naive_trsm_right_upper(v: &mut MatViewMut<'_>, r: &Matrix) {
    let n = v.nrows();
    let s = v.ncols();
    assert_eq!(r.nrows(), s, "naive_trsm_right_upper: dimension mismatch");
    assert_eq!(r.ncols(), s, "naive_trsm_right_upper: R must be square");
    for j in 0..s {
        assert!(
            r[(j, j)] != 0.0,
            "naive_trsm_right_upper: zero diagonal at {j}"
        );
    }
    let data = v.data_mut();
    for j in 0..s {
        let (done, rest) = data.split_at_mut(j * n);
        let vj = &mut rest[..n];
        for i in 0..j {
            let alpha = r[(i, j)];
            if alpha != 0.0 {
                let qi = &done[i * n..(i + 1) * n];
                crate::blas1::axpy(-alpha, qi, vj);
            }
        }
        crate::blas1::scal(1.0 / r[(j, j)], vj);
    }
}

/// General dense product `C = A·B` (serial, intended for small/medium
/// matrices such as `R`-factor updates and test references).
pub fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm_nn: inner dimension mismatch");
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        for l in 0..k {
            let blj = b[(l, j)];
            if blj != 0.0 {
                for i in 0..m {
                    c[(i, j)] += a[(i, l)] * blj;
                }
            }
        }
    }
    c
}

/// Alias of [`gemm_nn`] kept for call-site readability when both operands
/// are small (`s×s`-sized) matrices.
pub fn gemm_small(a: &Matrix, b: &Matrix) -> Matrix {
    gemm_nn(a, b)
}

/// `y ← y + A·x` for tall `A ∈ R^{n×k}` and small `x ∈ R^k`
/// (used for the solution update `x ← x + V_m ŷ`).
pub fn gemv_plus(a: &MatView<'_>, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len(), "gemv_plus: inner dimension mismatch");
    assert_eq!(a.nrows(), y.len(), "gemv_plus: output length mismatch");
    for (j, &xj) in x.iter().enumerate() {
        if xj != 0.0 {
            crate::blas1::axpy(xj, a.col(j), y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn test_panel(n: usize, s: usize) -> Matrix {
        Matrix::from_fn(n, s, |i, j| {
            let x = (i as f64 * 0.37 + j as f64 * 1.3).sin();
            x + if i == j { 2.0 } else { 0.0 }
        })
    }

    fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut acc = 0.0;
                for k in 0..a.ncols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() <= tol,
                    "entry ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gram_matches_reference_and_is_symmetric() {
        let v = test_panel(2_003, 5);
        let g = gram(&v.view());
        let reference = gemm_reference(&v.transpose(), &v);
        assert_close(&g, &reference, 1e-9);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn gram_matches_naive_reference() {
        for (n, s) in [(0, 3), (1, 1), (255, 4), (257, 9), (1_023, 8)] {
            let v = test_panel(n, s);
            let g = gram(&v.view());
            let reference = naive_gram(&v.view());
            assert_close(&g, &reference, 1e-10 * (n.max(1) as f64));
        }
    }

    #[test]
    fn gemm_tn_matches_reference() {
        let a = test_panel(1_501, 4);
        let b = test_panel(1_501, 6);
        let c = gemm_tn(&a.view(), &b.view());
        let reference = gemm_reference(&a.transpose(), &b);
        assert_close(&c, &reference, 1e-9);
    }

    #[test]
    fn gemm_tn_matches_naive_on_awkward_shapes() {
        for (n, k, s) in [
            (1, 1, 1),
            (3, 5, 2),
            (255, 3, 7),
            (258, 6, 1),
            (1_025, 5, 5),
        ] {
            let a = test_panel(n, k);
            let b = test_panel(n, s);
            let c = gemm_tn(&a.view(), &b.view());
            let reference = naive_gemm_tn(&a.view(), &b.view());
            assert_close(&c, &reference, 1e-10 * (n as f64));
        }
    }

    #[test]
    fn gemm_tn_with_empty_operand() {
        let a = Matrix::zeros(100, 0);
        let b = test_panel(100, 3);
        let c = gemm_tn(&a.view(), &b.view());
        assert_eq!(c.nrows(), 0);
        assert_eq!(c.ncols(), 3);
    }

    #[test]
    fn gemm_nn_minus_matches_reference() {
        let q = test_panel(1_777, 3);
        let r = Matrix::from_fn(3, 4, |i, j| (i + j) as f64 * 0.25 + 0.1);
        let mut v = test_panel(1_777, 4);
        let reference = v.sub(&gemm_reference(&q, &r));
        gemm_nn_minus(&mut v.view_mut(), &q.view(), &r);
        assert_close(&v, &reference, 1e-10);
    }

    #[test]
    fn gemm_nn_minus_is_bitwise_naive() {
        for (n, k, s) in [(1, 1, 1), (100, 5, 4), (257, 4, 4), (511, 7, 9)] {
            let q = test_panel(n, k);
            let r = Matrix::from_fn(k, s, |i, j| ((i * 3 + j) % 5) as f64 * 0.2 - 0.3);
            let mut a = test_panel(n, s);
            let mut b = a.clone();
            gemm_nn_minus(&mut a.view_mut(), &q.view(), &r);
            naive_gemm_nn_minus(&mut b.view_mut(), &q.view(), &r);
            assert_eq!(a, b, "blocked update must match naive bitwise");
        }
    }

    #[test]
    fn gemm_nn_minus_skips_zero_coefficients_like_naive() {
        // A zero R entry must *skip* its column (naive semantics): with an
        // Inf in the skipped Q column, multiplying instead of skipping
        // would poison V with NaNs; with -0.0 values it would flip signs.
        let n = 600;
        let k = 4; // full 4x4 tile path
        let s = 4;
        let mut q = test_panel(n, k);
        q[(5, 2)] = f64::INFINITY;
        q[(7, 2)] = f64::NAN;
        let mut r = Matrix::from_fn(k, s, |i, j| (i + j + 1) as f64 * 0.25);
        for j in 0..s {
            r[(2, j)] = 0.0; // Q column 2 must never be touched
        }
        let mut v = test_panel(n, s);
        for i in 0..n {
            v[(i, 1)] = -0.0;
        }
        let mut v_ref = v.clone();
        gemm_nn_minus(&mut v.view_mut(), &q.view(), &r);
        naive_gemm_nn_minus(&mut v_ref.view_mut(), &q.view(), &r);
        for j in 0..s {
            for i in 0..n {
                assert!(
                    v[(i, j)].to_bits() == v_ref[(i, j)].to_bits(),
                    "({i},{j}): {:e} vs {:e}",
                    v[(i, j)],
                    v_ref[(i, j)]
                );
            }
        }
        assert!(v.data().iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn gemm_nn_minus_with_empty_q_is_noop() {
        let q = Matrix::zeros(50, 0);
        let r = Matrix::zeros(0, 2);
        let mut v = test_panel(50, 2);
        let orig = v.clone();
        gemm_nn_minus(&mut v.view_mut(), &q.view(), &r);
        assert_eq!(v, orig);
    }

    #[test]
    fn trsm_right_upper_inverts_r() {
        // Build V = Q·R with orthonormal-ish Q unknown; instead verify that
        // (V·R⁻¹)·R == V.
        let r = Matrix::from_rows(&[&[2.0, 0.5, -1.0], &[0.0, 1.5, 0.25], &[0.0, 0.0, 3.0]]);
        let v = test_panel(901, 3);
        let mut q = v.clone();
        trsm_right_upper(&mut q.view_mut(), &r);
        let back = gemm_reference(&q, &r);
        assert_close(&back, &v, 1e-10);
    }

    #[test]
    fn trsm_is_bitwise_naive() {
        let r = Matrix::from_fn(6, 6, |i, j| {
            if i > j {
                0.0
            } else if i == j {
                (i + 2) as f64 * 0.5
            } else {
                ((i + j) % 3) as f64 * 0.4 - 0.2
            }
        });
        for n in [1usize, 100, 255, 257, 1_025] {
            let mut a = test_panel(n, 6);
            let mut b = a.clone();
            trsm_right_upper(&mut a.view_mut(), &r);
            naive_trsm_right_upper(&mut b.view_mut(), &r);
            assert_eq!(a, b, "row-parallel TRSM must match naive bitwise");
        }
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn trsm_rejects_singular_r() {
        let r = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        let mut v = test_panel(10, 2);
        trsm_right_upper(&mut v.view_mut(), &r);
    }

    #[test]
    fn fused_update_proj_gram_matches_separate_kernels() {
        for (n, k, s) in [(300, 3, 4), (1_027, 5, 6), (100, 0, 3), (257, 4, 1)] {
            let q = test_panel(n, k);
            let p = Matrix::from_fn(k, s, |i, j| (i as f64 - j as f64) * 0.15 + 0.05);
            let mut v = test_panel(n, s);
            let mut v_ref = v.clone();
            let (c, g) = fused_update_proj_gram(&mut v.view_mut(), &q.view(), &p);
            gemm_nn_minus(&mut v_ref.view_mut(), &q.view(), &p);
            assert_eq!(v, v_ref, "fused update must equal separate update");
            let c_ref = gemm_tn(&q.view(), &v_ref.view());
            let g_ref = gram(&v_ref.view());
            assert_close(&c, &c_ref, 1e-10 * (n as f64));
            assert_close(&g, &g_ref, 1e-10 * (n as f64));
        }
    }

    #[test]
    fn gemm_nn_matches_reference() {
        let a = Matrix::from_fn(7, 5, |i, j| (i as f64 - j as f64) * 0.3);
        let b = Matrix::from_fn(5, 6, |i, j| (i * j) as f64 * 0.1 + 1.0);
        assert_close(&gemm_nn(&a, &b), &gemm_reference(&a, &b), 1e-12);
    }

    #[test]
    fn gemv_plus_matches_reference() {
        let a = test_panel(1_234, 4);
        let x = [0.5, -1.0, 2.0, 0.0];
        let mut y = vec![1.0; 1_234];
        let x_mat = Matrix::from_col_major(4, 1, x.to_vec());
        let mut reference = gemm_reference(&a, &x_mat);
        for i in 0..1_234 {
            reference[(i, 0)] += 1.0;
        }
        gemv_plus(&a.view(), &x, &mut y);
        for i in 0..1_234 {
            assert!((y[i] - reference[(i, 0)]).abs() < 1e-10);
        }
    }
}
