//! Level-3 kernels used by the block orthogonalization schemes.
//!
//! These are the four workhorses of every algorithm in the paper:
//!
//! * [`gram`]: `G = VᵀV` (the Gram matrix CholQR factorizes),
//! * [`gemm_tn`]: `C = QᵀV` (the BCGS dot-product GEMM),
//! * [`gemm_nn_minus`]: `V ← V − Q·R` (the BCGS vector-update GEMM),
//! * [`trsm_right_upper`]: `Q ← V·R⁻¹` (the CholQR normalization TRSM).
//!
//! All four are parallelized over contiguous row chunks of the tall operand;
//! the small `s×s`/`k×s` results are reduced deterministically in chunk
//! order so repeated runs give bitwise-identical results.

use crate::matrix::{MatView, MatViewMut, Matrix};
use parkit::parallel_for_chunks;

/// Gram matrix `G = VᵀV` of a tall-skinny panel `V ∈ R^{n×s}`.
///
/// Only the upper triangle is computed during the reduction; the result is
/// symmetrized before returning.
pub fn gram(v: &MatView<'_>) -> Matrix {
    let n = v.nrows();
    let s = v.ncols();
    let data = v.data();
    // Reduce over explicit row blocks (chunking the flat column-major data
    // would split columns across workers).
    let nthreads = parkit::num_threads_for(n);
    let ranges = parkit::chunk_ranges(n, nthreads);
    let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let (start, end) = (r.start, r.end);
                scope.spawn(move || {
                    let mut g = vec![0.0f64; s * s];
                    for j in 0..s {
                        let cj = &data[j * n + start..j * n + end];
                        for i in 0..=j {
                            let ci = &data[i * n + start..i * n + end];
                            let mut acc = 0.0;
                            for (a, b) in ci.iter().zip(cj) {
                                acc += a * b;
                            }
                            g[j * s + i] += acc;
                        }
                    }
                    g
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gram worker panicked"))
            .collect()
    });
    let mut g = Matrix::zeros(s, s);
    for p in partials {
        for (dst, src) in g.data_mut().iter_mut().zip(&p) {
            *dst += src;
        }
    }
    // Symmetrize: copy upper triangle to lower.
    for j in 0..s {
        for i in 0..j {
            let val = g[(i, j)];
            g[(j, i)] = val;
        }
    }
    g
}

/// `C = AᵀB` for tall-skinny `A ∈ R^{n×k}`, `B ∈ R^{n×s}` (`k`, `s` small).
///
/// This is the "dot-products" GEMM of BCGS (`R_{1:j−1,j} = Qᵀ_{1:j−1} V_j`).
pub fn gemm_tn(a: &MatView<'_>, b: &MatView<'_>) -> Matrix {
    assert_eq!(a.nrows(), b.nrows(), "gemm_tn: row mismatch");
    let n = a.nrows();
    let k = a.ncols();
    let s = b.ncols();
    if k == 0 || s == 0 {
        return Matrix::zeros(k, s);
    }
    let adata = a.data();
    let bdata = b.data();
    let nthreads = parkit::num_threads_for(n);
    let ranges = parkit::chunk_ranges(n, nthreads);
    let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let (start, end) = (r.start, r.end);
                scope.spawn(move || {
                    let mut c = vec![0.0f64; k * s];
                    for j in 0..s {
                        let bj = &bdata[j * n + start..j * n + end];
                        for i in 0..k {
                            let ai = &adata[i * n + start..i * n + end];
                            let mut acc = 0.0;
                            for (x, y) in ai.iter().zip(bj) {
                                acc += x * y;
                            }
                            c[j * k + i] += acc;
                        }
                    }
                    c
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gemm_tn worker panicked"))
            .collect()
    });
    let mut c = Matrix::zeros(k, s);
    for p in partials {
        for (dst, src) in c.data_mut().iter_mut().zip(&p) {
            *dst += src;
        }
    }
    c
}

/// `V ← V − Q·R` for tall-skinny `Q ∈ R^{n×k}`, small `R ∈ R^{k×s}` and
/// tall-skinny `V ∈ R^{n×s}` updated in place.
///
/// This is the "vector-update" GEMM of BCGS
/// (`V̂_j = V_j − Q_{1:j−1} R_{1:j−1,j}`).
pub fn gemm_nn_minus(v: &mut MatViewMut<'_>, q: &MatView<'_>, r: &Matrix) {
    let n = v.nrows();
    assert_eq!(q.nrows(), n, "gemm_nn_minus: row mismatch");
    assert_eq!(q.ncols(), r.nrows(), "gemm_nn_minus: inner dim mismatch");
    assert_eq!(r.ncols(), v.ncols(), "gemm_nn_minus: col mismatch");
    let k = q.ncols();
    if k == 0 || v.ncols() == 0 || n == 0 {
        return;
    }
    let qdata = q.data();
    // Parallelize over flat chunks of V's column-major storage; each chunk is
    // processed column-segment by column-segment so that both V and Q are
    // accessed contiguously.
    parallel_for_chunks(v.data_mut(), |chunk, offset| {
        let mut pos = 0usize;
        while pos < chunk.len() {
            let flat = offset + pos;
            let col = flat / n;
            let row0 = flat % n;
            let seg = (n - row0).min(chunk.len() - pos);
            let out = &mut chunk[pos..pos + seg];
            for kk in 0..k {
                let alpha = r[(kk, col)];
                if alpha != 0.0 {
                    let qseg = &qdata[kk * n + row0..kk * n + row0 + seg];
                    for (o, qv) in out.iter_mut().zip(qseg) {
                        *o -= alpha * qv;
                    }
                }
            }
            pos += seg;
        }
    });
}

/// `V ← V·R⁻¹` for tall-skinny `V ∈ R^{n×s}` and upper-triangular
/// `R ∈ R^{s×s}` (the CholQR normalization TRSM).
///
/// Panics if `R` has a zero diagonal entry.
pub fn trsm_right_upper(v: &mut MatViewMut<'_>, r: &Matrix) {
    let n = v.nrows();
    let s = v.ncols();
    assert_eq!(r.nrows(), s, "trsm_right_upper: dimension mismatch");
    assert_eq!(r.ncols(), s, "trsm_right_upper: R must be square");
    for j in 0..s {
        assert!(r[(j, j)] != 0.0, "trsm_right_upper: zero diagonal at {j}");
    }
    // Column j of the result uses the already-updated columns 0..j:
    //   q_j = (v_j − Σ_{i<j} q_i r_{ij}) / r_{jj}
    let data = v.data_mut();
    for j in 0..s {
        let (done, rest) = data.split_at_mut(j * n);
        let vj = &mut rest[..n];
        for i in 0..j {
            let alpha = r[(i, j)];
            if alpha != 0.0 {
                let qi = &done[i * n..(i + 1) * n];
                crate::blas1::axpy(-alpha, qi, vj);
            }
        }
        crate::blas1::scal(1.0 / r[(j, j)], vj);
    }
}

/// General dense product `C = A·B` (serial, intended for small/medium
/// matrices such as `R`-factor updates and test references).
pub fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm_nn: inner dimension mismatch");
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        for l in 0..k {
            let blj = b[(l, j)];
            if blj != 0.0 {
                for i in 0..m {
                    c[(i, j)] += a[(i, l)] * blj;
                }
            }
        }
    }
    c
}

/// Alias of [`gemm_nn`] kept for call-site readability when both operands
/// are small (`s×s`-sized) matrices.
pub fn gemm_small(a: &Matrix, b: &Matrix) -> Matrix {
    gemm_nn(a, b)
}

/// `y ← y + A·x` for tall `A ∈ R^{n×k}` and small `x ∈ R^k`
/// (used for the solution update `x ← x + V_m ŷ`).
pub fn gemv_plus(a: &MatView<'_>, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len(), "gemv_plus: inner dimension mismatch");
    assert_eq!(a.nrows(), y.len(), "gemv_plus: output length mismatch");
    for (j, &xj) in x.iter().enumerate() {
        if xj != 0.0 {
            crate::blas1::axpy(xj, a.col(j), y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn test_panel(n: usize, s: usize) -> Matrix {
        Matrix::from_fn(n, s, |i, j| {
            let x = (i as f64 * 0.37 + j as f64 * 1.3).sin();
            x + if i == j { 2.0 } else { 0.0 }
        })
    }

    fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut acc = 0.0;
                for k in 0..a.ncols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() <= tol,
                    "entry ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gram_matches_reference_and_is_symmetric() {
        let v = test_panel(2_003, 5);
        let g = gram(&v.view());
        let reference = gemm_reference(&v.transpose(), &v);
        assert_close(&g, &reference, 1e-9);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn gemm_tn_matches_reference() {
        let a = test_panel(1_501, 4);
        let b = test_panel(1_501, 6);
        let c = gemm_tn(&a.view(), &b.view());
        let reference = gemm_reference(&a.transpose(), &b);
        assert_close(&c, &reference, 1e-9);
    }

    #[test]
    fn gemm_tn_with_empty_operand() {
        let a = Matrix::zeros(100, 0);
        let b = test_panel(100, 3);
        let c = gemm_tn(&a.view(), &b.view());
        assert_eq!(c.nrows(), 0);
        assert_eq!(c.ncols(), 3);
    }

    #[test]
    fn gemm_nn_minus_matches_reference() {
        let q = test_panel(1_777, 3);
        let r = Matrix::from_fn(3, 4, |i, j| (i + j) as f64 * 0.25 + 0.1);
        let mut v = test_panel(1_777, 4);
        let reference = v.sub(&gemm_reference(&q, &r));
        gemm_nn_minus(&mut v.view_mut(), &q.view(), &r);
        assert_close(&v, &reference, 1e-10);
    }

    #[test]
    fn gemm_nn_minus_with_empty_q_is_noop() {
        let q = Matrix::zeros(50, 0);
        let r = Matrix::zeros(0, 2);
        let mut v = test_panel(50, 2);
        let orig = v.clone();
        gemm_nn_minus(&mut v.view_mut(), &q.view(), &r);
        assert_eq!(v, orig);
    }

    #[test]
    fn trsm_right_upper_inverts_r() {
        // Build V = Q·R with orthonormal-ish Q unknown; instead verify that
        // (V·R⁻¹)·R == V.
        let r = Matrix::from_rows(&[&[2.0, 0.5, -1.0], &[0.0, 1.5, 0.25], &[0.0, 0.0, 3.0]]);
        let v = test_panel(901, 3);
        let mut q = v.clone();
        trsm_right_upper(&mut q.view_mut(), &r);
        let back = gemm_reference(&q, &r);
        assert_close(&back, &v, 1e-10);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn trsm_rejects_singular_r() {
        let r = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        let mut v = test_panel(10, 2);
        trsm_right_upper(&mut v.view_mut(), &r);
    }

    #[test]
    fn gemm_nn_matches_reference() {
        let a = Matrix::from_fn(7, 5, |i, j| (i as f64 - j as f64) * 0.3);
        let b = Matrix::from_fn(5, 6, |i, j| (i * j) as f64 * 0.1 + 1.0);
        assert_close(&gemm_nn(&a, &b), &gemm_reference(&a, &b), 1e-12);
    }

    #[test]
    fn gemv_plus_matches_reference() {
        let a = test_panel(1_234, 4);
        let x = [0.5, -1.0, 2.0, 0.0];
        let mut y = vec![1.0; 1_234];
        let x_mat = Matrix::from_col_major(4, 1, x.to_vec());
        let mut reference = gemm_reference(&a, &x_mat);
        for i in 0..1_234 {
            reference[(i, 0)] += 1.0;
        }
        gemv_plus(&a.view(), &x, &mut y);
        for i in 0..1_234 {
            assert!((y[i] - reference[(i, 0)]).abs() < 1e-10);
        }
    }
}
