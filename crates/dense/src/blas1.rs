//! Level-1 vector kernels (dot, nrm2, axpy, scal).
//!
//! The long-vector kernels are parallelized over contiguous chunks with
//! `parkit`; the reductions are deterministic (chunk order is fixed).

use parkit::{parallel_for_chunks, parallel_reduce_chunks, parallel_zip_chunks};

/// Dot product `xᵀ y`.
///
/// Panics if the vectors have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    parallel_reduce_chunks(
        x,
        0.0,
        |chunk, offset| {
            let ychunk = &y[offset..offset + chunk.len()];
            chunk.iter().zip(ychunk).map(|(a, b)| a * b).sum::<f64>()
        },
        |a, b| a + b,
    )
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow/underflow
/// for very large or very small entries.
pub fn nrm2(x: &[f64]) -> f64 {
    let maxabs = parallel_reduce_chunks(
        x,
        0.0f64,
        |chunk, _| chunk.iter().fold(0.0f64, |m, &v| m.max(v.abs())),
        f64::max,
    );
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let inv = 1.0 / maxabs;
    let sumsq = parallel_reduce_chunks(
        x,
        0.0,
        |chunk, _| chunk.iter().map(|&v| (v * inv) * (v * inv)).sum::<f64>(),
        |a, b| a + b,
    );
    maxabs * sumsq.sqrt()
}

/// `y ← y + alpha·x`.
///
/// Panics if the vectors have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    parallel_zip_chunks(y, x, |ychunk, xchunk, _| {
        for (yi, xi) in ychunk.iter_mut().zip(xchunk) {
            *yi += alpha * xi;
        }
    });
}

/// `x ← alpha·x`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    parallel_for_chunks(x, |chunk, _| {
        for v in chunk.iter_mut() {
            *v *= alpha;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.5).collect()
    }

    #[test]
    fn dot_matches_serial() {
        let x = seq(10_007);
        let y: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
        let serial: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let par = dot(&x, &y);
        assert!((par - serial).abs() <= 1e-10 * serial.abs().max(1.0));
    }

    #[test]
    fn dot_of_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn nrm2_matches_definition() {
        let x = seq(5_001);
        let expect = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((nrm2(&x) - expect).abs() <= 1e-12 * expect);
    }

    #[test]
    fn nrm2_handles_extreme_scales() {
        let big = vec![1e200, 1e200];
        assert!((nrm2(&big) - 1e200 * 2f64.sqrt()).abs() < 1e188);
        let small = vec![1e-200, 1e-200];
        assert!((nrm2(&small) - 1e-200 * 2f64.sqrt()).abs() < 1e-212);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = seq(4_096);
        let mut y = vec![1.0; 4_096];
        axpy(2.0, &x, &mut y);
        for (yi, xi) in y.iter().zip(&x) {
            assert_eq!(*yi, 1.0 + 2.0 * xi);
        }
    }

    #[test]
    fn scal_scales_every_entry() {
        let mut x = seq(3_000);
        let orig = x.clone();
        scal(-0.5, &mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert_eq!(*a, -0.5 * b);
        }
    }
}
