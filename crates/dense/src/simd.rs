//! Runtime-dispatched SIMD backends for the [`crate::blas3`] tile kernels.
//!
//! Every entry point here is a *safe* function that picks between an
//! explicit AVX2(+FMA) `std::arch` implementation and a portable scalar
//! fallback at runtime ([`simd_level`]), so the same binary runs at full
//! width on an AVX2 x86_64 host and correctly everywhere else.  The
//! selection is cached after the first query; `DENSE_SIMD=scalar` in the
//! environment or [`set_simd_override`] (tests, benchmarks) force the
//! fallback.
//!
//! # Numerical contracts
//!
//! The kernels fall into two classes, matching the guarantees the blocked
//! BLAS-3 layer makes against its `naive_*` oracles:
//!
//! * **Bitwise-faithful** — [`update_tile4`], [`axpy_minus`], [`scal`]:
//!   these implement the `V ← V − Q·R` / TRSM element updates, which the
//!   property batteries pin bitwise against the naive column sweeps.  The
//!   vector code performs *exactly* the scalar operation sequence per
//!   element (multiply then subtract — never FMA, which would contract the
//!   rounding — in ascending-`k` order), only on four rows per lane at a
//!   time, so every output bit matches the scalar path.
//! * **Tolerance-pinned** — [`tn_tile4x4`], [`sym_tile4`], [`dot`]: the
//!   Gram/projection accumulations are pinned to the oracles within
//!   `1e-10·n`, so the AVX2 path may use FMA and four parallel lane
//!   accumulators.  Results differ from the scalar path by the usual
//!   reassociation rounding (an ulp envelope of a few `ulp·√n`), but are
//!   fully deterministic for a fixed backend and thread count: lanes are
//!   reduced in a fixed order and the row tail is folded in last.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set level the tile kernels dispatch to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// Portable scalar fallback (always available).
    Scalar,
    /// x86_64 AVX2 + FMA, verified present at runtime.
    Avx2,
}

const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

/// Cached detection result.
static DETECTED: AtomicU8 = AtomicU8::new(UNSET);
/// Test/bench override; [`UNSET`] means "no override".
static OVERRIDE: AtomicU8 = AtomicU8::new(UNSET);

fn hardware_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

fn detect() -> SimdLevel {
    if std::env::var("DENSE_SIMD").is_ok_and(|v| v.eq_ignore_ascii_case("scalar")) {
        return SimdLevel::Scalar;
    }
    hardware_level()
}

/// The SIMD backend the tile kernels currently dispatch to.
pub fn simd_level() -> SimdLevel {
    match OVERRIDE.load(Ordering::Relaxed) {
        SCALAR => return SimdLevel::Scalar,
        // An AVX2 override still requires hardware support.
        AVX2 => return hardware_level(),
        _ => {}
    }
    match DETECTED.load(Ordering::Relaxed) {
        SCALAR => SimdLevel::Scalar,
        AVX2 => SimdLevel::Avx2,
        _ => {
            let level = detect();
            DETECTED.store(
                match level {
                    SimdLevel::Scalar => SCALAR,
                    SimdLevel::Avx2 => AVX2,
                },
                Ordering::Relaxed,
            );
            level
        }
    }
}

/// Force a backend (`None` restores automatic detection).  Intended for
/// property tests and benchmarks that exercise both code paths in one
/// process; requesting [`SimdLevel::Avx2`] on hardware without AVX2+FMA
/// silently stays scalar.
pub fn set_simd_override(level: Option<SimdLevel>) {
    OVERRIDE.store(
        match level {
            None => UNSET,
            Some(SimdLevel::Scalar) => SCALAR,
            Some(SimdLevel::Avx2) => AVX2,
        },
        Ordering::Relaxed,
    );
}

/// Human-readable backend name, recorded in `BENCH_kernels.json`.
pub fn simd_label() -> &'static str {
    match simd_level() {
        SimdLevel::Scalar => "scalar",
        SimdLevel::Avx2 => "avx2",
    }
}

#[inline]
fn use_avx2() -> bool {
    simd_level() == SimdLevel::Avx2
}

/// `tile[j*4+i] += Σ_r a[i][r]·b[j][r]` for a full 4×4 register tile
/// (tolerance-pinned: the AVX2 path uses FMA and lane accumulators).
#[inline]
pub fn tn_tile4x4(a: &[&[f64]; 4], b: &[&[f64]; 4], tile: &mut [f64; 16]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2+FMA presence was verified by `simd_level`.
        unsafe { avx2::tn_tile4x4(a, b, tile) };
        return;
    }
    tn_tile4x4_scalar(a, b, tile);
}

fn tn_tile4x4_scalar(a: &[&[f64]; 4], b: &[&[f64]; 4], tile: &mut [f64; 16]) {
    let len = a[0].len();
    let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
    let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
    let (mut c00, mut c10, mut c20, mut c30) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c01, mut c11, mut c21, mut c31) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c02, mut c12, mut c22, mut c32) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c03, mut c13, mut c23, mut c33) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for r in 0..len {
        let (x0, x1, x2, x3) = (a0[r], a1[r], a2[r], a3[r]);
        let (y0, y1, y2, y3) = (b0[r], b1[r], b2[r], b3[r]);
        c00 += x0 * y0;
        c10 += x1 * y0;
        c20 += x2 * y0;
        c30 += x3 * y0;
        c01 += x0 * y1;
        c11 += x1 * y1;
        c21 += x2 * y1;
        c31 += x3 * y1;
        c02 += x0 * y2;
        c12 += x1 * y2;
        c22 += x2 * y2;
        c32 += x3 * y2;
        c03 += x0 * y3;
        c13 += x1 * y3;
        c23 += x2 * y3;
        c33 += x3 * y3;
    }
    let cols = [
        [c00, c10, c20, c30],
        [c01, c11, c21, c31],
        [c02, c12, c22, c32],
        [c03, c13, c23, c33],
    ];
    for (jj, col) in cols.iter().enumerate() {
        for (ii, &v) in col.iter().enumerate() {
            tile[jj * 4 + ii] += v;
        }
    }
}

/// Upper triangle of the symmetric 4×4 tile `Σ_r a[i][r]·a[j][r]`, packed
/// as `[(0,0),(0,1),(1,1),(0,2),(1,2),(2,2),(0,3),(1,3),(2,3),(3,3)]`
/// (tolerance-pinned).
#[inline]
pub fn sym_tile4(a: &[&[f64]; 4], tri: &mut [f64; 10]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2+FMA presence was verified by `simd_level`.
        unsafe { avx2::sym_tile4(a, tri) };
        return;
    }
    sym_tile4_scalar(a, tri);
}

fn sym_tile4_scalar(a: &[&[f64]; 4], tri: &mut [f64; 10]) {
    let len = a[0].len();
    let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
    let (mut c00, mut c01, mut c11, mut c02, mut c12) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let (mut c22, mut c03, mut c13, mut c23, mut c33) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for r in 0..len {
        let (x0, x1, x2, x3) = (a0[r], a1[r], a2[r], a3[r]);
        c00 += x0 * x0;
        c01 += x0 * x1;
        c11 += x1 * x1;
        c02 += x0 * x2;
        c12 += x1 * x2;
        c22 += x2 * x2;
        c03 += x0 * x3;
        c13 += x1 * x3;
        c23 += x2 * x3;
        c33 += x3 * x3;
    }
    for (slot, v) in tri
        .iter_mut()
        .zip([c00, c01, c11, c02, c12, c22, c03, c13, c23, c33])
    {
        *slot += v;
    }
}

/// Dot product of two equal-length columns (the ragged-tile path;
/// tolerance-pinned).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2+FMA presence was verified by `simd_level`.
        return unsafe { avx2::dot(x, y) };
    }
    dot_scalar(x, y)
}

fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let len = x.len();
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    let mut r = 0;
    while r + 1 < len {
        s0 += x[r] * y[r];
        s1 += x[r + 1] * y[r + 1];
        r += 2;
    }
    if r < len {
        s0 += x[r] * y[r];
    }
    s0 + s1
}

/// `v[j] ← v[j] − Σ_k c[j][k]·q[k]` for four resident columns against four
/// streamed columns (bitwise-faithful: per element the four
/// multiply-then-subtract steps run in ascending `k` order with no FMA,
/// exactly like the scalar sweep).
///
/// All eight slices must have equal length; `c[j][k]` multiplies `q[k]`
/// into column `j`.  The caller guarantees every coefficient is nonzero
/// (zero coefficients must take the skipping path instead — see the
/// blocked-update kernel).
#[inline]
pub fn update_tile4(v: &mut [&mut [f64]; 4], q: &[&[f64]; 4], c: &[[f64; 4]; 4]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence was verified by `simd_level`.
        unsafe { avx2::update_tile4(v, q, c) };
        return;
    }
    update_tile4_scalar(v, q, c);
}

fn update_tile4_scalar(v: &mut [&mut [f64]; 4], q: &[&[f64]; 4], c: &[[f64; 4]; 4]) {
    let len = v[0].len();
    for (vj, cj) in v.iter_mut().zip(c) {
        for r in 0..len {
            let mut acc = vj[r];
            acc -= q[0][r] * cj[0];
            acc -= q[1][r] * cj[1];
            acc -= q[2][r] * cj[2];
            acc -= q[3][r] * cj[3];
            vj[r] = acc;
        }
    }
}

/// `y ← y − alpha·x` (bitwise-faithful: multiply then subtract per
/// element, no FMA).
#[inline]
pub fn axpy_minus(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence was verified by `simd_level`.
        unsafe { avx2::axpy_minus(alpha, x, y) };
        return;
    }
    for (o, q) in y.iter_mut().zip(x) {
        *o -= alpha * q;
    }
}

/// `y ← d·y` (bitwise-faithful: one multiply per element).
#[inline]
pub fn scal(d: f64, y: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence was verified by `simd_level`.
        unsafe { avx2::scal(d, y) };
        return;
    }
    for o in y.iter_mut() {
        *o *= d;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Fixed-order horizontal sum `(v0+v2)+(v1+v3)` — deterministic lane
    /// reduction.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum4(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let pair = _mm_add_pd(lo, hi);
        let swapped = _mm_unpackhi_pd(pair, pair);
        _mm_cvtsd_f64(_mm_add_sd(pair, swapped))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tn_tile4x4(a: &[&[f64]; 4], b: &[&[f64]; 4], tile: &mut [f64; 16]) {
        let len = a[0].len();
        let body = len & !3;
        // Two passes of 2 A-columns x 4 B-columns keep the 8 accumulators
        // plus 6 live loads inside the 16 ymm registers.
        for ip in 0..2 {
            let a0 = a[2 * ip].as_ptr();
            let a1 = a[2 * ip + 1].as_ptr();
            let mut acc0 = [_mm256_setzero_pd(); 4];
            let mut acc1 = [_mm256_setzero_pd(); 4];
            let mut r = 0;
            while r < body {
                let va0 = _mm256_loadu_pd(a0.add(r));
                let va1 = _mm256_loadu_pd(a1.add(r));
                for j in 0..4 {
                    let vb = _mm256_loadu_pd(b[j].as_ptr().add(r));
                    acc0[j] = _mm256_fmadd_pd(va0, vb, acc0[j]);
                    acc1[j] = _mm256_fmadd_pd(va1, vb, acc1[j]);
                }
                r += 4;
            }
            for j in 0..4 {
                let mut s0 = hsum4(acc0[j]);
                let mut s1 = hsum4(acc1[j]);
                for rr in body..len {
                    s0 += a[2 * ip][rr] * b[j][rr];
                    s1 += a[2 * ip + 1][rr] * b[j][rr];
                }
                tile[j * 4 + 2 * ip] += s0;
                tile[j * 4 + 2 * ip + 1] += s1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sym_tile4(a: &[&[f64]; 4], tri: &mut [f64; 10]) {
        let len = a[0].len();
        let body = len & !3;
        let (p0, p1, p2, p3) = (a[0].as_ptr(), a[1].as_ptr(), a[2].as_ptr(), a[3].as_ptr());
        let mut acc = [_mm256_setzero_pd(); 10];
        let mut r = 0;
        while r < body {
            let x0 = _mm256_loadu_pd(p0.add(r));
            let x1 = _mm256_loadu_pd(p1.add(r));
            let x2 = _mm256_loadu_pd(p2.add(r));
            let x3 = _mm256_loadu_pd(p3.add(r));
            acc[0] = _mm256_fmadd_pd(x0, x0, acc[0]);
            acc[1] = _mm256_fmadd_pd(x0, x1, acc[1]);
            acc[2] = _mm256_fmadd_pd(x1, x1, acc[2]);
            acc[3] = _mm256_fmadd_pd(x0, x2, acc[3]);
            acc[4] = _mm256_fmadd_pd(x1, x2, acc[4]);
            acc[5] = _mm256_fmadd_pd(x2, x2, acc[5]);
            acc[6] = _mm256_fmadd_pd(x0, x3, acc[6]);
            acc[7] = _mm256_fmadd_pd(x1, x3, acc[7]);
            acc[8] = _mm256_fmadd_pd(x2, x3, acc[8]);
            acc[9] = _mm256_fmadd_pd(x3, x3, acc[9]);
            r += 4;
        }
        const PAIRS: [(usize, usize); 10] = [
            (0, 0),
            (0, 1),
            (1, 1),
            (0, 2),
            (1, 2),
            (2, 2),
            (0, 3),
            (1, 3),
            (2, 3),
            (3, 3),
        ];
        for (slot, (av, (i, j))) in tri.iter_mut().zip(acc.iter().zip(PAIRS)) {
            let mut s = hsum4(*av);
            for (&ai, &aj) in a[i][body..len].iter().zip(&a[j][body..len]) {
                s += ai * aj;
            }
            *slot += s;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let len = x.len();
        let body = len & !7;
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut r = 0;
        while r < body {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(px.add(r)), _mm256_loadu_pd(py.add(r)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(px.add(r + 4)),
                _mm256_loadu_pd(py.add(r + 4)),
                acc1,
            );
            r += 8;
        }
        let mut s = hsum4(_mm256_add_pd(acc0, acc1));
        for rr in body..len {
            s += x[rr] * y[rr];
        }
        s
    }

    /// Bitwise-faithful 4-column update: per element, multiply-then-subtract
    /// in ascending `k` order — `_mm256_mul_pd` + `_mm256_sub_pd`, never
    /// FMA, so every lane reproduces the scalar sweep exactly.
    #[target_feature(enable = "avx2")]
    pub unsafe fn update_tile4(v: &mut [&mut [f64]; 4], q: &[&[f64]; 4], c: &[[f64; 4]; 4]) {
        let len = v[0].len();
        let body = len & !3;
        let (q0, q1, q2, q3) = (q[0].as_ptr(), q[1].as_ptr(), q[2].as_ptr(), q[3].as_ptr());
        for (vj, cj) in v.iter_mut().zip(c) {
            let pv = vj.as_mut_ptr();
            let c0 = _mm256_set1_pd(cj[0]);
            let c1 = _mm256_set1_pd(cj[1]);
            let c2 = _mm256_set1_pd(cj[2]);
            let c3 = _mm256_set1_pd(cj[3]);
            let mut r = 0;
            while r < body {
                let mut acc = _mm256_loadu_pd(pv.add(r));
                acc = _mm256_sub_pd(acc, _mm256_mul_pd(c0, _mm256_loadu_pd(q0.add(r))));
                acc = _mm256_sub_pd(acc, _mm256_mul_pd(c1, _mm256_loadu_pd(q1.add(r))));
                acc = _mm256_sub_pd(acc, _mm256_mul_pd(c2, _mm256_loadu_pd(q2.add(r))));
                acc = _mm256_sub_pd(acc, _mm256_mul_pd(c3, _mm256_loadu_pd(q3.add(r))));
                _mm256_storeu_pd(pv.add(r), acc);
                r += 4;
            }
            for rr in body..len {
                let mut acc = vj[rr];
                acc -= q[0][rr] * cj[0];
                acc -= q[1][rr] * cj[1];
                acc -= q[2][rr] * cj[2];
                acc -= q[3][rr] * cj[3];
                vj[rr] = acc;
            }
        }
    }

    /// Bitwise-faithful `y ← y − alpha·x` (multiply then subtract, no FMA).
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_minus(alpha: f64, x: &[f64], y: &mut [f64]) {
        let len = y.len();
        let body = len & !3;
        let va = _mm256_set1_pd(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut r = 0;
        while r < body {
            let prod = _mm256_mul_pd(va, _mm256_loadu_pd(px.add(r)));
            _mm256_storeu_pd(py.add(r), _mm256_sub_pd(_mm256_loadu_pd(py.add(r)), prod));
            r += 4;
        }
        for rr in body..len {
            y[rr] -= alpha * x[rr];
        }
    }

    /// Bitwise-faithful `y ← d·y`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scal(d: f64, y: &mut [f64]) {
        let len = y.len();
        let body = len & !3;
        let vd = _mm256_set1_pd(d);
        let py = y.as_mut_ptr();
        let mut r = 0;
        while r < body {
            _mm256_storeu_pd(py.add(r), _mm256_mul_pd(vd, _mm256_loadu_pd(py.add(r))));
            r += 4;
        }
        for yr in &mut y[body..len] {
            *yr *= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 7 + seed * 13) % 23) as f64 * 0.37 - 3.1)
            .collect()
    }

    /// Serialize tests that flip the global backend override.
    fn override_lock() -> std::sync::MutexGuard<'static, ()> {
        use std::sync::{Mutex, OnceLock};
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .expect("simd override lock poisoned")
    }

    #[test]
    fn level_is_resolvable_and_labelled() {
        let _guard = override_lock();
        set_simd_override(None);
        let level = simd_level();
        assert!(matches!(level, SimdLevel::Scalar | SimdLevel::Avx2));
        assert!(matches!(simd_label(), "scalar" | "avx2"));
        set_simd_override(Some(SimdLevel::Scalar));
        assert_eq!(simd_level(), SimdLevel::Scalar);
        set_simd_override(None);
        assert_eq!(simd_level(), level);
    }

    #[test]
    fn tn_tile_backends_agree_within_tolerance() {
        let _guard = override_lock();
        for n in [1usize, 4, 7, 64, 251] {
            let cols: Vec<Vec<f64>> = (0..8).map(|s| col(n, s)).collect();
            let a = [&cols[0][..], &cols[1][..], &cols[2][..], &cols[3][..]];
            let b = [&cols[4][..], &cols[5][..], &cols[6][..], &cols[7][..]];
            let mut scalar_tile = [0.0f64; 16];
            tn_tile4x4_scalar(&a, &b, &mut scalar_tile);
            set_simd_override(None);
            let mut auto_tile = [0.0f64; 16];
            tn_tile4x4(&a, &b, &mut auto_tile);
            for (x, y) in auto_tile.iter().zip(&scalar_tile) {
                assert!((x - y).abs() <= 1e-10 * (n as f64).max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn update_and_axpy_are_bitwise_across_backends() {
        let _guard = override_lock();
        for n in [1usize, 3, 4, 63, 257] {
            let q: Vec<Vec<f64>> = (0..4).map(|s| col(n, s + 9)).collect();
            let qr = [&q[0][..], &q[1][..], &q[2][..], &q[3][..]];
            let c = [[0.3, -1.2, 0.7, 2.5]; 4];
            let mut v_scalar: Vec<Vec<f64>> = (0..4).map(|s| col(n, s + 40)).collect();
            let mut v_simd = v_scalar.clone();
            {
                let [v0, v1, v2, v3] = &mut v_scalar[..] else {
                    unreachable!()
                };
                update_tile4_scalar(&mut [v0, v1, v2, v3], &qr, &c);
            }
            set_simd_override(None);
            {
                let [v0, v1, v2, v3] = &mut v_simd[..] else {
                    unreachable!()
                };
                update_tile4(&mut [v0, v1, v2, v3], &qr, &c);
            }
            assert_eq!(v_scalar, v_simd, "update_tile4 must be bitwise stable");

            let x = col(n, 77);
            let mut y_scalar = col(n, 78);
            let mut y_simd = y_scalar.clone();
            set_simd_override(Some(SimdLevel::Scalar));
            axpy_minus(0.825, &x, &mut y_scalar);
            scal(1.0 / 3.0, &mut y_scalar);
            set_simd_override(None);
            axpy_minus(0.825, &x, &mut y_simd);
            scal(1.0 / 3.0, &mut y_simd);
            set_simd_override(None);
            assert_eq!(y_scalar, y_simd, "axpy/scal must be bitwise stable");
        }
    }

    #[test]
    fn dot_backends_agree_within_tolerance() {
        let _guard = override_lock();
        for n in [0usize, 1, 7, 8, 9, 255, 1024] {
            let x = col(n, 3);
            let y = col(n, 5);
            let scalar = dot_scalar(&x, &y);
            set_simd_override(None);
            let auto = dot(&x, &y);
            assert!((scalar - auto).abs() <= 1e-10 * (n as f64).max(1.0));
        }
    }
}
