//! # dense — column-major dense linear algebra kernels
//!
//! The BLAS/LAPACK subset required by the block-orthogonalization schemes of
//! the paper *"Two-Stage Block Orthogonalization to Improve Performance of
//! s-step GMRES"* (IPDPS 2024), implemented from scratch:
//!
//! * a column-major [`Matrix`] type with cheap column-block views
//!   ([`MatView`], [`MatViewMut`]) — the natural layout for the tall-skinny
//!   "multivector" panels `V_j ∈ R^{n×(s+1)}` the solver manipulates;
//! * level-1 kernels (dot, nrm2, axpy, scal) in [`blas1`];
//! * the level-3 kernels the orthogonalization needs (`Gram = VᵀV`,
//!   `C = AᵀB`, the block vector update `V ← V − Q·R`, the triangular
//!   normalization `Q ← V·R⁻¹`, and the fused update+Gram of the two-sync
//!   schemes) in [`blas3`] — row-panel blocked, register-tiled, and
//!   parallelized over row chunks on the [`parkit`] worker pool, with the
//!   pre-blocking `naive_*` formulations retained as benchmark baselines
//!   and property-test oracles;
//! * Cholesky factorization (plain and shifted) in [`chol`];
//! * Householder QR for tall-skinny panels in [`qr`];
//! * a cyclic Jacobi symmetric eigensolver in [`eig`] used to measure
//!   condition numbers and orthogonality errors exactly as the paper's
//!   MATLAB experiments do, plus a double-shift QR eigensolver for the real
//!   Hessenberg matrices the Newton-shift harvester extracts Ritz values
//!   from;
//! * small upper-triangular utilities in [`tri`] and Givens/least-squares
//!   helpers for the Hessenberg solve in [`lsq`].
//!
//! Everything is `f64`; the mixed-precision (double-double) Gram
//! accumulation lives in the `blockortho` crate where it is used.

pub mod blas1;
pub mod blas3;
pub mod chol;
pub mod eig;
pub mod lsq;
pub mod matrix;
pub mod measure;
pub mod qr;
pub mod simd;
pub mod svd;
pub mod tri;

pub use blas1::{axpy, dot, nrm2, scal};
pub use blas3::{
    fused_update_proj_gram, gemm_nn, gemm_nn_minus, gemm_small, gemm_tn, gemv_plus, gram,
    naive_gemm_nn_minus, naive_gemm_tn, naive_gram, naive_trsm_right_upper, trsm_right_upper,
    ROW_BLOCK, TILE,
};
pub use chol::{cholesky_upper, shifted_cholesky_upper, CholeskyError};
pub use eig::{hessenberg_eigvals, sym_eig_jacobi, sym_eigvals, HessEigError};
pub use lsq::{givens_rotation, hessenberg_lsq, qr_lsq};
pub use matrix::{MatView, MatViewMut, Matrix};
pub use measure::{
    cond_2, frobenius_norm, orthogonality_error, singular_values, spectral_norm_sym,
};
pub use qr::householder_qr;
pub use simd::{set_simd_override, simd_label, simd_level, SimdLevel};
pub use svd::svdvals_jacobi;
pub use tri::{tri_inverse_upper, tri_matmul_upper, tri_solve_upper, tri_solve_upper_transpose};

/// Machine epsilon for `f64`, exposed for readability in stability bounds.
pub const EPS: f64 = f64::EPSILON;
