//! Measurement helpers used by the paper's numerical study:
//! condition numbers and orthogonality errors.

use crate::blas3::gram;
use crate::eig::sym_eigvals;
use crate::matrix::{MatView, Matrix};

/// Frobenius norm of a matrix.
pub fn frobenius_norm(a: &Matrix) -> f64 {
    crate::blas1::nrm2(a.data())
}

/// Spectral (2-)norm of a **symmetric** matrix, computed via its eigenvalues.
pub fn spectral_norm_sym(a: &Matrix) -> f64 {
    let vals = sym_eigvals(a);
    vals.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Orthogonality error `‖I − QᵀQ‖₂` of a tall-skinny panel `Q ∈ R^{n×s}`.
///
/// This is the quantity plotted in Figs. 6–9 of the paper.
pub fn orthogonality_error(q: &MatView<'_>) -> f64 {
    let s = q.ncols();
    if s == 0 {
        return 0.0;
    }
    let mut g = gram(q);
    for i in 0..s {
        g[(i, i)] -= 1.0;
    }
    g.scale(-1.0); // I − QᵀQ (sign does not affect the norm, kept for clarity)
    spectral_norm_sym(&g)
}

/// Singular values (descending) of a tall-skinny panel `V ∈ R^{n×s}`.
///
/// The panel is first reduced with Householder QR (backward stable); the
/// singular values of the small triangular factor are then computed with the
/// one-sided Jacobi method, so tiny singular values are resolved far more
/// accurately than a Gram-matrix/eigenvalue approach would allow.  This
/// mirrors how MATLAB's `cond`, used in the paper's numerical study,
/// measures conditioning.
pub fn singular_values(v: &MatView<'_>) -> Vec<f64> {
    let s = v.ncols();
    if s == 0 {
        return Vec::new();
    }
    if v.nrows() >= s {
        let (_, r) = crate::qr::householder_qr(&v.to_owned_matrix());
        crate::svd::svdvals_jacobi(&r)
    } else {
        // Wide panel: work on the transpose (same singular values).
        crate::svd::svdvals_jacobi(&v.to_owned_matrix().transpose())
    }
}

/// Two-norm condition number `κ₂(V) = σ_max(V)/σ_min(V)` of a tall-skinny
/// panel.
///
/// Returns `f64::INFINITY` when the smallest singular value is numerically
/// zero (the panel is numerically rank-deficient).
pub fn cond_2(v: &MatView<'_>) -> f64 {
    let s = v.ncols();
    if s == 0 {
        return 1.0;
    }
    let sv = singular_values(v);
    let max = sv[0];
    let min = sv[sv.len() - 1];
    if max == 0.0 || min <= 0.0 {
        return f64::INFINITY;
    }
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::qr::householder_qr;

    #[test]
    fn frobenius_of_identity() {
        assert!((frobenius_norm(&Matrix::identity(9)) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn spectral_norm_of_symmetric_matrix() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]);
        assert!((spectral_norm_sym(&a) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn orthogonality_error_of_orthonormal_panel_is_tiny() {
        let v = Matrix::from_fn(300, 5, |i, j| ((i * 17 + j * 29) % 31) as f64 - 15.0);
        let (q, _) = householder_qr(&v);
        assert!(orthogonality_error(&q.view()) < 1e-13);
    }

    #[test]
    fn orthogonality_error_detects_non_orthogonality() {
        // Two identical unit columns: QᵀQ = [[1,1],[1,1]], error = 1.
        let mut m = Matrix::zeros(10, 2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 1.0;
        assert!((orthogonality_error(&m.view()) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn cond_of_orthonormal_panel_is_one() {
        let v = Matrix::from_fn(200, 4, |i, j| ((i * 13 + j * 7) % 19) as f64 * 0.4 - 3.0);
        let (q, _) = householder_qr(&v);
        let kappa = cond_2(&q.view());
        assert!((kappa - 1.0).abs() < 1e-10, "kappa = {kappa}");
    }

    #[test]
    fn cond_matches_prescribed_singular_values() {
        // Diagonal panel with singular values 10 and 0.1 → κ = 100.
        let mut v = Matrix::zeros(50, 2);
        v[(0, 0)] = 10.0;
        v[(1, 1)] = 0.1;
        let kappa = cond_2(&v.view());
        assert!((kappa - 100.0).abs() < 1e-8 * 100.0);
    }

    #[test]
    fn rank_deficient_panel_has_infinite_cond() {
        let mut v = Matrix::zeros(20, 2);
        v[(0, 0)] = 1.0;
        v[(0, 1)] = 1.0; // second column identical → rank 1
        assert!(cond_2(&v.view()).is_infinite());
    }

    #[test]
    fn empty_panel_edge_cases() {
        let v = Matrix::zeros(10, 0);
        assert_eq!(orthogonality_error(&v.view()), 0.0);
        assert_eq!(cond_2(&v.view()), 1.0);
    }
}
