//! Small upper-triangular utilities (solves, inverse, products).
//!
//! These operate on the `s×s` / `(m+1)×(m+1)` R-factors the solver keeps
//! redundantly on every rank; they are serial on purpose.

use crate::matrix::Matrix;

/// Solve `R·x = b` for upper-triangular `R` (back substitution).
///
/// Panics if `R` has a zero diagonal entry.
pub fn tri_solve_upper(r: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = r.nrows();
    assert_eq!(r.ncols(), n, "tri_solve_upper: R must be square");
    assert_eq!(b.len(), n, "tri_solve_upper: rhs length mismatch");
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        assert!(d != 0.0, "tri_solve_upper: zero diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Solve `Rᵀ·x = b` for upper-triangular `R` (forward substitution on the
/// transpose).
pub fn tri_solve_upper_transpose(r: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = r.nrows();
    assert_eq!(r.ncols(), n, "tri_solve_upper_transpose: R must be square");
    assert_eq!(b.len(), n, "tri_solve_upper_transpose: rhs length mismatch");
    let mut x = b.to_vec();
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= r[(j, i)] * x[j];
        }
        let d = r[(i, i)];
        assert!(d != 0.0, "tri_solve_upper_transpose: zero diagonal at {i}");
        x[i] = acc / d;
    }
    x
}

/// Inverse of an upper-triangular matrix (the result is upper triangular).
pub fn tri_inverse_upper(r: &Matrix) -> Matrix {
    let n = r.nrows();
    assert_eq!(r.ncols(), n, "tri_inverse_upper: R must be square");
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        // Solve R · x = e_j; x has zeros below row j.
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let x = tri_solve_upper(r, &e);
        for i in 0..=j {
            inv[(i, j)] = x[i];
        }
    }
    inv
}

/// Product `A·B` of two upper-triangular matrices (result is upper
/// triangular); used for the R-factor updates `R ← T·R` of the
/// reorthogonalized schemes.
pub fn tri_matmul_upper(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "tri_matmul_upper: A must be square");
    assert_eq!(b.nrows(), n, "tri_matmul_upper: dimension mismatch");
    assert_eq!(b.ncols(), n, "tri_matmul_upper: B must be square");
    let mut c = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..=j {
            let mut acc = 0.0;
            for k in i..=j {
                acc += a[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_nn;

    fn upper(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i > j {
                0.0
            } else if i == j {
                (i + 2) as f64
            } else {
                ((i + j) % 3) as f64 * 0.5 - 0.25
            }
        })
    }

    #[test]
    fn solve_upper_matches_direct_product() {
        let r = upper(6);
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64 - 2.5) * 0.7).collect();
        let mut b = vec![0.0; 6];
        for i in 0..6 {
            for j in 0..6 {
                b[i] += r[(i, j)] * x_true[j];
            }
        }
        let x = tri_solve_upper(&r, &b);
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_upper_transpose_matches_direct_product() {
        let r = upper(5);
        let x_true: Vec<f64> = (0..5).map(|i| (i as f64) * 0.3 + 1.0).collect();
        let mut b = vec![0.0; 5];
        for i in 0..5 {
            for j in 0..5 {
                b[i] += r[(j, i)] * x_true[j];
            }
        }
        let x = tri_solve_upper_transpose(&r, &b);
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn solve_rejects_singular_matrix() {
        let mut r = upper(3);
        r[(1, 1)] = 0.0;
        tri_solve_upper(&r, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let r = upper(7);
        let inv = tri_inverse_upper(&r);
        let prod = gemm_nn(&r, &inv);
        for i in 0..7 {
            for j in 0..7 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
        // Inverse of an upper-triangular matrix is upper triangular.
        for i in 0..7 {
            for j in 0..i {
                assert_eq!(inv[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn tri_matmul_matches_general_gemm() {
        let a = upper(6);
        let b = upper(6);
        let fast = tri_matmul_upper(&a, &b);
        let reference = gemm_nn(&a, &b);
        for i in 0..6 {
            for j in 0..6 {
                assert!((fast[(i, j)] - reference[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn one_by_one_cases() {
        let r = Matrix::from_rows(&[&[4.0]]);
        assert_eq!(tri_solve_upper(&r, &[8.0]), vec![2.0]);
        assert_eq!(tri_inverse_upper(&r)[(0, 0)], 0.25);
        assert_eq!(tri_matmul_upper(&r, &r)[(0, 0)], 16.0);
    }
}
