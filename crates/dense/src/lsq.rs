//! Small least-squares solvers for the GMRES projected problem.
//!
//! Every GMRES restart cycle ends with the minimization
//! `ŷ = argmin_y ‖γ e₁ − H_{1:m+1,1:m} y‖₂` over the (m+1)×m upper-Hessenberg
//! matrix (Fig. 1, Line 16 of the paper).  The standard approach — applied
//! redundantly on every rank since `H` is tiny — is a QR factorization of
//! `H` by Givens rotations.  A general dense QR least-squares solver is also
//! provided for the s-step variant where the projected matrix is formed as
//! `H = R T R⁻¹` and need not be exactly Hessenberg in finite precision.

use crate::matrix::Matrix;
use crate::qr::householder_qr;
use crate::tri::tri_solve_upper;

/// Compute the Givens rotation `(c, s)` such that
/// `[c s; -s c]ᵀ [a; b] = [r; 0]` with `r ≥ 0`.
pub fn givens_rotation(a: f64, b: f64) -> (f64, f64, f64) {
    if b == 0.0 {
        if a >= 0.0 {
            (1.0, 0.0, a)
        } else {
            (-1.0, 0.0, -a)
        }
    } else if a == 0.0 {
        if b >= 0.0 {
            (0.0, 1.0, b)
        } else {
            (0.0, -1.0, -b)
        }
    } else {
        let r = a.hypot(b);
        (a / r, b / r, r)
    }
}

/// Solve the Hessenberg least-squares problem
/// `min_y ‖beta·e₁ − H y‖₂` where `H` is `(k+1)×k` upper Hessenberg.
///
/// Returns `(y, residual_norm)`.  This is the standard GMRES update; the
/// residual norm equals the absolute value of the last entry of the rotated
/// right-hand side, which GMRES uses as its convergence estimate without
/// forming the residual vector.
pub fn hessenberg_lsq(h: &Matrix, beta: f64) -> (Vec<f64>, f64) {
    let k = h.ncols();
    assert_eq!(h.nrows(), k + 1, "hessenberg_lsq: H must be (k+1) x k");
    let mut r = h.clone();
    let mut g = vec![0.0; k + 1];
    g[0] = beta;
    // Reduce H to upper-triangular form with Givens rotations applied to g.
    for j in 0..k {
        let (c, s, rho) = givens_rotation(r[(j, j)], r[(j + 1, j)]);
        r[(j, j)] = rho;
        r[(j + 1, j)] = 0.0;
        for col in (j + 1)..k {
            let a = r[(j, col)];
            let b = r[(j + 1, col)];
            r[(j, col)] = c * a + s * b;
            r[(j + 1, col)] = -s * a + c * b;
        }
        let ga = g[j];
        let gb = g[j + 1];
        g[j] = c * ga + s * gb;
        g[j + 1] = -s * ga + c * gb;
    }
    let residual = g[k].abs();
    // Back substitution on the leading k×k triangle.
    let mut rtop = Matrix::zeros(k, k);
    for j in 0..k {
        for i in 0..=j {
            rtop[(i, j)] = r[(i, j)];
        }
    }
    let y = tri_solve_upper(&rtop, &g[..k]);
    (y, residual)
}

/// General dense least squares `min_y ‖b − A y‖₂` via Householder QR
/// (for `A ∈ R^{p×q}`, `p ≥ q`, full column rank).
///
/// Returns `(y, residual_norm)`.
pub fn qr_lsq(a: &Matrix, b: &[f64]) -> (Vec<f64>, f64) {
    let p = a.nrows();
    let q = a.ncols();
    assert!(p >= q, "qr_lsq: need at least as many rows as columns");
    assert_eq!(b.len(), p, "qr_lsq: rhs length mismatch");
    let (qmat, rmat) = householder_qr(a);
    // y solves R y = Qᵀ b.
    let mut qtb = vec![0.0; q];
    for (j, entry) in qtb.iter_mut().enumerate() {
        *entry = crate::blas1::dot(qmat.col(j), b);
    }
    let y = tri_solve_upper(&rmat, &qtb);
    // Residual norm: ‖b − A y‖.
    let mut resid = b.to_vec();
    for (j, &yj) in y.iter().enumerate() {
        crate::blas1::axpy(-yj, a.col(j), &mut resid);
    }
    (y, crate::blas1::nrm2(&resid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn givens_zeroes_second_entry() {
        for (a, b) in [
            (3.0, 4.0),
            (-3.0, 4.0),
            (0.0, 2.0),
            (2.0, 0.0),
            (-5.0, 0.0),
            (0.0, -1.0),
        ] {
            let (c, s, r) = givens_rotation(a, b);
            assert!((c * c + s * s - 1.0).abs() < 1e-14);
            assert!(r >= 0.0);
            assert!((c * a + s * b - r).abs() < 1e-12);
            assert!((-s * a + c * b).abs() < 1e-12);
        }
    }

    #[test]
    fn hessenberg_lsq_exact_system_has_zero_residual() {
        // Square-ish consistent system: H (3+1)x3 with last row ~ 0 so an
        // exact solution exists.
        let h = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0],
            &[1.0, 3.0, 1.0],
            &[0.0, 1.0, 2.0],
            &[0.0, 0.0, 0.0],
        ]);
        let y_true = [1.0, -1.0, 2.0];
        // beta e1 must equal H y for an exact solve; instead build b = H y and
        // check through the general solver for consistency.
        let mut b = vec![0.0; 4];
        for i in 0..4 {
            for j in 0..3 {
                b[i] += h[(i, j)] * y_true[j];
            }
        }
        let (y, res) = qr_lsq(&h, &b);
        assert!(res < 1e-12);
        for (a, e) in y.iter().zip(&y_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn hessenberg_lsq_matches_general_qr_solver() {
        // Random-ish Hessenberg matrix.
        let k = 6;
        let h = Matrix::from_fn(k + 1, k, |i, j| {
            if i > j + 1 {
                0.0
            } else {
                ((i * 7 + j * 3) % 11) as f64 * 0.2 + if i == j { 2.0 } else { 0.0 }
            }
        });
        let beta = 1.7;
        let mut b = vec![0.0; k + 1];
        b[0] = beta;
        let (y_fast, res_fast) = hessenberg_lsq(&h, beta);
        let (y_ref, res_ref) = qr_lsq(&h, &b);
        for (a, e) in y_fast.iter().zip(&y_ref) {
            assert!((a - e).abs() < 1e-10, "{a} vs {e}");
        }
        assert!((res_fast - res_ref).abs() < 1e-10);
    }

    #[test]
    fn residual_is_minimal_compared_to_perturbed_solutions() {
        let k = 4;
        let h = Matrix::from_fn(k + 1, k, |i, j| {
            if i > j + 1 {
                0.0
            } else {
                1.0 / (1.0 + (i + 2 * j) as f64)
            }
        });
        let beta = 1.0;
        let (y, res) = hessenberg_lsq(&h, beta);
        let resid_norm = |yv: &[f64]| {
            let mut r = vec![0.0; k + 1];
            r[0] = beta;
            for i in 0..k + 1 {
                for j in 0..k {
                    r[i] -= h[(i, j)] * yv[j];
                }
            }
            crate::blas1::nrm2(&r)
        };
        assert!((resid_norm(&y) - res).abs() < 1e-12);
        // Any perturbation must not reduce the residual.
        for p in 0..k {
            let mut y2 = y.clone();
            y2[p] += 1e-3;
            assert!(resid_norm(&y2) >= res - 1e-12);
        }
    }

    #[test]
    fn single_column_hessenberg() {
        let h = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let (y, res) = hessenberg_lsq(&h, 5.0);
        // min over y of ||(5,0) - (3,4) y||: y = 15/25 = 0.6, residual = |5*4/5| = 4? compute:
        // optimal y = (3*5)/(9+16) = 0.6; residual vector = (5-1.8, -2.4) = (3.2, -2.4), norm 4.0.
        assert!((y[0] - 0.6).abs() < 1e-12);
        assert!((res - 4.0).abs() < 1e-12);
    }
}
