//! One-sided Jacobi SVD (singular values only) for small matrices.
//!
//! The paper's numerical study tracks condition numbers up to ~10¹⁶.
//! Measuring `κ(V)` through the Gram matrix `VᵀV` squares the condition
//! number and cannot resolve anything beyond ~10⁸ in double precision, so we
//! instead reduce the tall panel with Householder QR (backward stable) and
//! run a one-sided Jacobi sweep on the small triangular factor, which
//! computes its singular values to high relative accuracy.

use crate::matrix::Matrix;

const MAX_SWEEPS: usize = 60;

/// Singular values (descending) of a small dense matrix `A ∈ R^{p×q}` with
/// `p ≥ q`, computed by one-sided Jacobi rotations.
pub fn svdvals_jacobi(a: &Matrix) -> Vec<f64> {
    let p = a.nrows();
    let q = a.ncols();
    assert!(p >= q, "svdvals_jacobi: need nrows >= ncols");
    if q == 0 {
        return Vec::new();
    }
    let mut u = a.clone();
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for i in 0..q - 1 {
            for j in (i + 1)..q {
                // Column moments.
                let (mut alpha, mut beta, mut gamma) = (0.0f64, 0.0f64, 0.0f64);
                for r in 0..p {
                    let ui = u[(r, i)];
                    let uj = u[(r, j)];
                    alpha += ui * ui;
                    beta += uj * uj;
                    gamma += ui * uj;
                }
                if gamma.abs() <= f64::EPSILON * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..p {
                    let ui = u[(r, i)];
                    let uj = u[(r, j)];
                    u[(r, i)] = c * ui - s * uj;
                    u[(r, j)] = s * ui + c * uj;
                }
            }
        }
        if !rotated {
            break;
        }
    }
    let mut sv: Vec<f64> = (0..q)
        .map(|j| {
            let mut acc = 0.0;
            for r in 0..p {
                acc += u[(r, j)] * u[(r, j)];
            }
            acc.sqrt()
        })
        .collect();
    sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_singular_values() {
        let mut a = Matrix::zeros(4, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1e-12;
        a[(2, 2)] = 0.5;
        let sv = svdvals_jacobi(&a);
        assert!((sv[0] - 3.0).abs() < 1e-14);
        assert!((sv[1] - 0.5).abs() < 1e-15);
        assert!(
            (sv[2] - 1e-12).abs() < 1e-24,
            "tiny value resolved to high relative accuracy"
        );
    }

    #[test]
    fn orthogonal_matrix_has_unit_singular_values() {
        // 2x2 rotation.
        let theta: f64 = 0.7;
        let a = Matrix::from_rows(&[&[theta.cos(), -theta.sin()], &[theta.sin(), theta.cos()]]);
        let sv = svdvals_jacobi(&a);
        assert!((sv[0] - 1.0).abs() < 1e-14);
        assert!((sv[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn matches_eigenvalues_of_gram_for_moderate_conditioning() {
        let a = Matrix::from_fn(20, 5, |i, j| {
            ((i * 3 + j * 5) % 7) as f64 - 3.0 + if i == j { 4.0 } else { 0.0 }
        });
        let sv = svdvals_jacobi(&a);
        let gram = crate::blas3::gram(&a.view());
        let mut eig = crate::eig::sym_eigvals(&gram);
        eig.reverse();
        for (s, l) in sv.iter().zip(&eig) {
            assert!((s * s - l).abs() < 1e-10 * eig[0]);
        }
    }

    #[test]
    fn rank_deficient_matrix_has_zero_singular_value() {
        let mut a = Matrix::from_fn(10, 3, |i, j| (i + j) as f64 + 1.0);
        // Make column 2 = column 0 + column 1 exactly (it already is for this
        // generator? force it).
        for i in 0..10 {
            let v = a[(i, 0)] + a[(i, 1)];
            a[(i, 2)] = v;
        }
        let sv = svdvals_jacobi(&a);
        assert!(sv[2] < 1e-12 * sv[0]);
    }

    #[test]
    fn empty_and_single_column() {
        assert!(svdvals_jacobi(&Matrix::zeros(5, 0)).is_empty());
        let a = Matrix::from_col_major(4, 1, vec![3.0, 0.0, 4.0, 0.0]);
        let sv = svdvals_jacobi(&a);
        assert!((sv[0] - 5.0).abs() < 1e-14);
    }
}
