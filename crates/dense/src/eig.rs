//! Small dense eigensolvers: symmetric (cyclic Jacobi) and real upper
//! Hessenberg (Francis double-shift QR).
//!
//! The paper's numerical study reports condition numbers `κ(V)` and
//! orthogonality errors `‖I − QᵀQ‖₂`.  Both reduce to eigenvalues of small
//! symmetric matrices (`VᵀV` is `s×s` or `(m+1)×(m+1)` at most), for which
//! the cyclic Jacobi method is simple, robust and accurate (it computes tiny
//! eigenvalues of ill-conditioned Gram matrices to high relative accuracy,
//! which matters when measuring condition numbers near `1/ε`).
//!
//! The Newton-basis pipeline additionally needs the eigenvalues (Ritz
//! values) of the *nonsymmetric* upper-Hessenberg matrix that GMRES
//! recovers — generally complex for the row/column-scaled matrices of the
//! evaluation — so [`hessenberg_eigvals`] implements the implicit
//! double-shift QR iteration on a real Hessenberg matrix, returning
//! eigenvalues as `(re, im)` pairs with conjugate pairs adjacent.

use crate::matrix::Matrix;

/// Maximum number of Jacobi sweeps before giving up (convergence is
/// typically reached in < 15 sweeps for the matrix sizes used here).
const MAX_SWEEPS: usize = 64;

/// Eigenvalues (ascending) and eigenvectors of a symmetric matrix.
///
/// Only the upper triangle of `a` is read.  The columns of the returned
/// matrix are the eigenvectors, in the same order as the eigenvalues.
pub fn sym_eig_jacobi(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "sym_eig_jacobi: matrix must be square");
    let mut m = a.clone();
    // Symmetrize from the upper triangle.
    for j in 0..n {
        for i in 0..j {
            let v = m[(i, j)];
            m[(j, i)] = v;
        }
    }
    let mut v = Matrix::identity(n);
    if n <= 1 {
        let evs = if n == 1 { vec![m[(0, 0)]] } else { Vec::new() };
        return (evs, v);
    }
    let tol = f64::EPSILON * off_norm(&m).max(f64::MIN_POSITIVE);
    for _sweep in 0..MAX_SWEEPS {
        let off = off_norm(&m);
        if off <= tol {
            break;
        }
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut eigvals: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    // Sort ascending, permuting the eigenvector columns accordingly.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| eigvals[i].partial_cmp(&eigvals[j]).unwrap());
    let sorted_vals: Vec<f64> = order.iter().map(|&i| eigvals[i]).collect();
    let mut sorted_vecs = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for i in 0..n {
            sorted_vecs[(i, new_col)] = v[(i, old_col)];
        }
    }
    eigvals = sorted_vals;
    (eigvals, sorted_vecs)
}

/// Eigenvalues only (ascending) of a symmetric matrix.
pub fn sym_eigvals(a: &Matrix) -> Vec<f64> {
    sym_eig_jacobi(a).0
}

/// The double-shift QR iteration failed to deflate an eigenvalue within the
/// iteration cap — in practice only possible for adversarially constructed
/// matrices; the Newton-shift harvester treats it as "no shifts available".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HessEigError {
    /// Index of the eigenvalue (active block end) that failed to converge.
    pub eigenvalue_index: usize,
}

impl std::fmt::Display for HessEigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Hessenberg QR iteration failed to converge at eigenvalue {}",
            self.eigenvalue_index
        )
    }
}

impl std::error::Error for HessEigError {}

/// Per-eigenvalue iteration cap of the double-shift QR loop (the classical
/// hqr cap, with exceptional shifts at 10 and 20 to break limit cycles).
const HQR_MAX_ITS: usize = 30;

/// Eigenvalues of a real upper-Hessenberg matrix as `(re, im)` pairs,
/// computed by the implicit double-shift (Francis) QR iteration with
/// deflation — the classical hqr algorithm (Golub & Van Loan, Alg. 7.5.x /
/// EISPACK `hqr`), which handles complex-conjugate eigenvalue pairs in real
/// arithmetic.
///
/// Entries below the first subdiagonal are ignored, so the leading `k×k`
/// block of a `(k+1)×k` GMRES Hessenberg matrix can be passed directly.
/// Complex eigenvalues come out in adjacent conjugate pairs
/// (`im > 0` first); ordering is otherwise the deflation order.
pub fn hessenberg_eigvals(a: &Matrix) -> Result<Vec<(f64, f64)>, HessEigError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "hessenberg_eigvals: matrix must be square");
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut h = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n.min(j + 2) {
            h[(i, j)] = a[(i, j)];
        }
    }
    // Norm used as the deflation scale when a diagonal pair vanishes.
    let mut anorm = 0.0f64;
    for j in 0..n {
        for i in 0..n.min(j + 2) {
            anorm += h[(i, j)].abs();
        }
    }
    let anorm = anorm.max(f64::MIN_POSITIVE);
    let eps = f64::EPSILON;
    let mut eigs = vec![(0.0f64, 0.0f64); n];
    let mut t = 0.0f64; // accumulated exceptional shifts
    let mut hi = n; // active block is rows/cols 0..hi
    while hi > 0 {
        let mut its = 0usize;
        loop {
            let nn = hi - 1;
            // Deflation scan: smallest l with a negligible subdiagonal
            // below it (l = 0 when none is negligible).
            let mut l = nn;
            while l > 0 {
                let s = h[(l - 1, l - 1)].abs() + h[(l, l)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if h[(l, l - 1)].abs() <= eps * s {
                    h[(l, l - 1)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = h[(nn, nn)];
            if l == nn {
                // 1×1 deflation: a real eigenvalue.
                eigs[nn] = (x + t, 0.0);
                hi -= 1;
                break;
            }
            let y = h[(nn - 1, nn - 1)];
            let w = h[(nn, nn - 1)] * h[(nn - 1, nn)];
            if l + 1 == nn {
                // 2×2 deflation: a real pair or a conjugate pair.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x = x + t;
                if q >= 0.0 {
                    let z = p + z.copysign(if p == 0.0 { 1.0 } else { p });
                    eigs[nn - 1] = (x + z, 0.0);
                    eigs[nn] = (if z != 0.0 { x - w / z } else { x + z }, 0.0);
                } else {
                    eigs[nn - 1] = (x + p, z);
                    eigs[nn] = (x + p, -z);
                }
                hi -= 2;
                break;
            }
            if its == HQR_MAX_ITS {
                return Err(HessEigError {
                    eigenvalue_index: nn,
                });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 {
                // Exceptional shift to break limit cycles.
                t += x;
                for i in 0..=nn {
                    let v = h[(i, i)] - x;
                    h[(i, i)] = v;
                }
                let s = h[(nn, nn - 1)].abs() + h[(nn - 1, nn - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            // Look for two consecutive small subdiagonal elements to start
            // the implicit double-shift bulge as far down as possible.
            let mut m = nn - 2;
            let (mut p, mut q, mut r);
            loop {
                let z = h[(m, m)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / h[(m + 1, m)] + h[(m, m + 1)];
                q = h[(m + 1, m + 1)] - z - rr - ss;
                r = h[(m + 2, m + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = h[(m, m - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (h[(m - 1, m - 1)].abs() + z.abs() + h[(m + 1, m + 1)].abs());
                if u <= eps * v {
                    break;
                }
                m -= 1;
            }
            for i in (m + 2)..=nn {
                h[(i, i - 2)] = 0.0;
                if i > m + 2 {
                    h[(i, i - 3)] = 0.0;
                }
            }
            // Double QR step: chase the 3×3 bulge down rows l..=nn.
            for k in m..nn {
                if k != m {
                    p = h[(k, k - 1)];
                    q = h[(k + 1, k - 1)];
                    r = if k != nn - 1 { h[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = (p * p + q * q + r * r)
                    .sqrt()
                    .copysign(if p == 0.0 { 1.0 } else { p });
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        let v = -h[(k, k - 1)];
                        h[(k, k - 1)] = v;
                    }
                } else {
                    h[(k, k - 1)] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification (apply the reflector from the left).
                for j in k..=nn {
                    let mut pp = h[(k, j)] + q * h[(k + 1, j)];
                    if k != nn - 1 {
                        pp += r * h[(k + 2, j)];
                    }
                    let a0 = h[(k, j)] - pp * x;
                    let a1 = h[(k + 1, j)] - pp * y;
                    h[(k, j)] = a0;
                    h[(k + 1, j)] = a1;
                    if k != nn - 1 {
                        let a2 = h[(k + 2, j)] - pp * z;
                        h[(k + 2, j)] = a2;
                    }
                }
                // Column modification (apply it from the right).
                let imax = nn.min(k + 3);
                for i in l..=imax {
                    let mut pp = x * h[(i, k)] + y * h[(i, k + 1)];
                    if k != nn - 1 {
                        pp += z * h[(i, k + 2)];
                    }
                    let a0 = h[(i, k)] - pp;
                    let a1 = h[(i, k + 1)] - pp * q;
                    h[(i, k)] = a0;
                    h[(i, k + 1)] = a1;
                    if k != nn - 1 {
                        let a2 = h[(i, k + 2)] - pp * r;
                        h[(i, k + 2)] = a2;
                    }
                }
            }
        }
    }
    Ok(eigs)
}

/// Frobenius norm of the off-diagonal part.
fn off_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut acc = 0.0;
    for j in 0..n {
        for i in 0..n {
            if i != j {
                acc += m[(i, j)] * m[(i, j)];
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_nn;

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let (vals, _) = sym_eig_jacobi(&a);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = sym_eig_jacobi(&a);
        assert!((vals[0] - 1.0).abs() < 1e-14);
        assert!((vals[1] - 3.0).abs() < 1e-14);
        // A·v = λ·v for both pairs.
        for k in 0..2 {
            for i in 0..2 {
                let av: f64 = (0..2).map(|j| a[(i, j)] * vecs[(j, k)]).sum();
                assert!((av - vals[k] * vecs[(i, k)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn reconstructs_matrix_from_spectral_decomposition() {
        let b = Matrix::from_fn(6, 6, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let a = gemm_nn(&b.transpose(), &b); // symmetric PSD
        let (vals, vecs) = sym_eig_jacobi(&a);
        // A ≈ V diag(vals) Vᵀ
        let mut lambda = Matrix::zeros(6, 6);
        for i in 0..6 {
            lambda[(i, i)] = vals[i];
        }
        let back = gemm_nn(&gemm_nn(&vecs, &lambda), &vecs.transpose());
        for i in 0..6 {
            for j in 0..6 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10 * a.max_abs());
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let b = Matrix::from_fn(8, 8, |i, j| ((i + 2 * j) % 5) as f64 * 0.3);
        let a = gemm_nn(&b.transpose(), &b);
        let (_, vecs) = sym_eig_jacobi(&a);
        let vtv = gemm_nn(&vecs.transpose(), &vecs);
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn handles_tiny_and_empty_matrices() {
        let (vals, _) = sym_eig_jacobi(&Matrix::from_rows(&[&[5.0]]));
        assert_eq!(vals, vec![5.0]);
        let (vals0, _) = sym_eig_jacobi(&Matrix::zeros(0, 0));
        assert!(vals0.is_empty());
    }

    #[test]
    fn resolves_widely_spread_eigenvalues() {
        // Gram-like matrix with eigenvalues spanning ~12 orders of magnitude.
        let d = [1.0, 1e-6, 1e-12];
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a[(i, i)] = d[i];
        }
        let vals = sym_eigvals(&a);
        assert!((vals[0] - 1e-12).abs() < 1e-24 + 1e-15 * 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn negative_eigenvalues_are_found() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]); // eigenvalues ±1
        let vals = sym_eigvals(&a);
        assert!((vals[0] + 1.0).abs() < 1e-14);
        assert!((vals[1] - 1.0).abs() < 1e-14);
    }

    /// Sort (re, im) pairs lexicographically for order-insensitive compares.
    fn sorted(mut v: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn hessenberg_eigvals_of_triangular_matrix_is_its_diagonal() {
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                (j + 1) as f64
            } else if i < j {
                0.3 * (i + j) as f64
            } else {
                0.0
            }
        });
        let eigs = sorted(hessenberg_eigvals(&a).unwrap());
        for (k, &(re, im)) in eigs.iter().enumerate() {
            assert!((re - (k + 1) as f64).abs() < 1e-12, "{eigs:?}");
            assert_eq!(im, 0.0);
        }
    }

    #[test]
    fn hessenberg_eigvals_matches_symmetric_jacobi_on_tridiagonal() {
        // 1-D Laplacian: eigenvalues 2 − 2cos(kπ/(n+1)), also checkable
        // against the symmetric Jacobi solver.
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let mut eigs: Vec<f64> = hessenberg_eigvals(&a)
            .unwrap()
            .iter()
            .map(|&(re, im)| {
                assert!(im.abs() < 1e-12);
                re
            })
            .collect();
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sym = sym_eigvals(&a);
        for (k, (qr, j)) in eigs.iter().zip(&sym).enumerate() {
            let exact = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n + 1) as f64).cos();
            assert!((qr - j).abs() < 1e-10, "QR {qr} vs Jacobi {j}");
            assert!((qr - exact).abs() < 1e-10, "QR {qr} vs exact {exact}");
        }
    }

    #[test]
    fn hessenberg_eigvals_finds_complex_conjugate_pairs() {
        // Companion matrix of (λ² − 2λ + 5)(λ − 3): roots 1 ± 2i and 3.
        // p(λ) = λ³ − 5λ² + 11λ − 15.
        let a = Matrix::from_rows(&[&[5.0, -11.0, 15.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let eigs = hessenberg_eigvals(&a).unwrap();
        let complex: Vec<&(f64, f64)> = eigs.iter().filter(|e| e.1 != 0.0).collect();
        assert_eq!(complex.len(), 2, "{eigs:?}");
        for &&(re, im) in &complex {
            assert!((re - 1.0).abs() < 1e-10, "{eigs:?}");
            assert!((im.abs() - 2.0).abs() < 1e-10, "{eigs:?}");
        }
        // Conjugates are adjacent with the im > 0 member first.
        let pos = eigs.iter().position(|e| e.1 > 0.0).unwrap();
        assert_eq!(eigs[pos + 1].0, eigs[pos].0);
        assert_eq!(eigs[pos + 1].1, -eigs[pos].1);
        let real: Vec<&(f64, f64)> = eigs.iter().filter(|e| e.1 == 0.0).collect();
        assert_eq!(real.len(), 1);
        assert!((real[0].0 - 3.0).abs() < 1e-10);
    }

    #[test]
    fn hessenberg_eigvals_rotation_block_is_exactly_complex() {
        // [[c, -s], [s, c]] has eigenvalues c ± i·s.
        let (c, s) = (0.6f64, 0.8f64);
        let a = Matrix::from_rows(&[&[c, -s], &[s, c]]);
        let eigs = hessenberg_eigvals(&a).unwrap();
        assert!((eigs[0].0 - c).abs() < 1e-14);
        assert!((eigs[0].1 - s).abs() < 1e-14);
        assert!((eigs[1].1 + s).abs() < 1e-14);
    }

    #[test]
    fn hessenberg_eigvals_preserves_trace_and_conjugate_closure() {
        // A pseudo-random Hessenberg matrix: the eigenvalue multiset must be
        // closed under conjugation and sum to the trace.
        let n = 9;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i <= j + 1 {
                (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) * 0.25
            } else {
                0.0
            }
        });
        let eigs = hessenberg_eigvals(&a).unwrap();
        assert_eq!(eigs.len(), n);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let eig_sum: f64 = eigs.iter().map(|e| e.0).sum();
        let imag_sum: f64 = eigs.iter().map(|e| e.1).sum();
        let scale: f64 = eigs.iter().map(|e| e.0.abs() + e.1.abs()).sum::<f64>();
        assert!((eig_sum - trace).abs() < 1e-10 * scale.max(1.0));
        assert!(imag_sum.abs() < 1e-10 * scale.max(1.0));
        for &(re, im) in &eigs {
            if im != 0.0 {
                assert!(
                    eigs.iter()
                        .any(|&(re2, im2)| (re2 - re).abs() < 1e-9 && (im2 + im).abs() < 1e-9),
                    "conjugate of ({re}, {im}) missing: {eigs:?}"
                );
            }
        }
    }

    #[test]
    fn hessenberg_eigvals_handles_degenerate_sizes() {
        assert!(hessenberg_eigvals(&Matrix::zeros(0, 0)).unwrap().is_empty());
        let one = hessenberg_eigvals(&Matrix::from_rows(&[&[4.5]])).unwrap();
        assert_eq!(one, vec![(4.5, 0.0)]);
        // Already-deflated (diagonal) input.
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = i as f64 - 1.5;
        }
        let eigs = sorted(hessenberg_eigvals(&d).unwrap());
        for (k, &(re, im)) in eigs.iter().enumerate() {
            assert_eq!((re, im), (k as f64 - 1.5, 0.0));
        }
    }

    #[test]
    fn hessenberg_eigvals_ignores_entries_below_the_subdiagonal() {
        // The (k+1)×k GMRES recovery matrix is passed as its leading k×k
        // block; any stale entries below the first subdiagonal are ignored.
        let mut a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 2.0]]);
        let clean = hessenberg_eigvals(&a).unwrap();
        a[(2, 0)] = 1e6; // garbage below the subdiagonal
        let dirty = hessenberg_eigvals(&a).unwrap();
        assert_eq!(sorted(clean), sorted(dirty));
    }
}
