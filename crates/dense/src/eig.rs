//! Symmetric eigensolver (cyclic Jacobi) for small matrices.
//!
//! The paper's numerical study reports condition numbers `κ(V)` and
//! orthogonality errors `‖I − QᵀQ‖₂`.  Both reduce to eigenvalues of small
//! symmetric matrices (`VᵀV` is `s×s` or `(m+1)×(m+1)` at most), for which
//! the cyclic Jacobi method is simple, robust and accurate (it computes tiny
//! eigenvalues of ill-conditioned Gram matrices to high relative accuracy,
//! which matters when measuring condition numbers near `1/ε`).

use crate::matrix::Matrix;

/// Maximum number of Jacobi sweeps before giving up (convergence is
/// typically reached in < 15 sweeps for the matrix sizes used here).
const MAX_SWEEPS: usize = 64;

/// Eigenvalues (ascending) and eigenvectors of a symmetric matrix.
///
/// Only the upper triangle of `a` is read.  The columns of the returned
/// matrix are the eigenvectors, in the same order as the eigenvalues.
pub fn sym_eig_jacobi(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "sym_eig_jacobi: matrix must be square");
    let mut m = a.clone();
    // Symmetrize from the upper triangle.
    for j in 0..n {
        for i in 0..j {
            let v = m[(i, j)];
            m[(j, i)] = v;
        }
    }
    let mut v = Matrix::identity(n);
    if n <= 1 {
        let evs = if n == 1 { vec![m[(0, 0)]] } else { Vec::new() };
        return (evs, v);
    }
    let tol = f64::EPSILON * off_norm(&m).max(f64::MIN_POSITIVE);
    for _sweep in 0..MAX_SWEEPS {
        let off = off_norm(&m);
        if off <= tol {
            break;
        }
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut eigvals: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    // Sort ascending, permuting the eigenvector columns accordingly.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| eigvals[i].partial_cmp(&eigvals[j]).unwrap());
    let sorted_vals: Vec<f64> = order.iter().map(|&i| eigvals[i]).collect();
    let mut sorted_vecs = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for i in 0..n {
            sorted_vecs[(i, new_col)] = v[(i, old_col)];
        }
    }
    eigvals = sorted_vals;
    (eigvals, sorted_vecs)
}

/// Eigenvalues only (ascending) of a symmetric matrix.
pub fn sym_eigvals(a: &Matrix) -> Vec<f64> {
    sym_eig_jacobi(a).0
}

/// Frobenius norm of the off-diagonal part.
fn off_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut acc = 0.0;
    for j in 0..n {
        for i in 0..n {
            if i != j {
                acc += m[(i, j)] * m[(i, j)];
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_nn;

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let (vals, _) = sym_eig_jacobi(&a);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = sym_eig_jacobi(&a);
        assert!((vals[0] - 1.0).abs() < 1e-14);
        assert!((vals[1] - 3.0).abs() < 1e-14);
        // A·v = λ·v for both pairs.
        for k in 0..2 {
            for i in 0..2 {
                let av: f64 = (0..2).map(|j| a[(i, j)] * vecs[(j, k)]).sum();
                assert!((av - vals[k] * vecs[(i, k)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn reconstructs_matrix_from_spectral_decomposition() {
        let b = Matrix::from_fn(6, 6, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let a = gemm_nn(&b.transpose(), &b); // symmetric PSD
        let (vals, vecs) = sym_eig_jacobi(&a);
        // A ≈ V diag(vals) Vᵀ
        let mut lambda = Matrix::zeros(6, 6);
        for i in 0..6 {
            lambda[(i, i)] = vals[i];
        }
        let back = gemm_nn(&gemm_nn(&vecs, &lambda), &vecs.transpose());
        for i in 0..6 {
            for j in 0..6 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10 * a.max_abs());
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let b = Matrix::from_fn(8, 8, |i, j| ((i + 2 * j) % 5) as f64 * 0.3);
        let a = gemm_nn(&b.transpose(), &b);
        let (_, vecs) = sym_eig_jacobi(&a);
        let vtv = gemm_nn(&vecs.transpose(), &vecs);
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn handles_tiny_and_empty_matrices() {
        let (vals, _) = sym_eig_jacobi(&Matrix::from_rows(&[&[5.0]]));
        assert_eq!(vals, vec![5.0]);
        let (vals0, _) = sym_eig_jacobi(&Matrix::zeros(0, 0));
        assert!(vals0.is_empty());
    }

    #[test]
    fn resolves_widely_spread_eigenvalues() {
        // Gram-like matrix with eigenvalues spanning ~12 orders of magnitude.
        let d = [1.0, 1e-6, 1e-12];
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a[(i, i)] = d[i];
        }
        let vals = sym_eigvals(&a);
        assert!((vals[0] - 1e-12).abs() < 1e-24 + 1e-15 * 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn negative_eigenvalues_are_found() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]); // eigenvalues ±1
        let vals = sym_eigvals(&a);
        assert!((vals[0] + 1.0).abs() < 1e-14);
        assert!((vals[1] - 1.0).abs() < 1e-14);
    }
}
