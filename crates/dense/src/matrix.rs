//! Column-major dense matrix and column-block views.
//!
//! The solver stores the Krylov basis as one wide matrix
//! `Q ∈ R^{n×(m+1)}` and repeatedly needs two disjoint column blocks of it
//! at the same time: the already-orthogonalized prefix `Q_{1:j−1}`
//! (read-only) and the new panel `V_j` (mutable).  [`Matrix::split_at_col`]
//! provides exactly that without copies, because a column block of a
//! column-major matrix is contiguous in memory.

use std::ops::Range;

/// An owned, column-major, `f64` dense matrix with `lda == nrows`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

/// A read-only view of a contiguous column block of a [`Matrix`].
#[derive(Debug, Clone, Copy)]
pub struct MatView<'a> {
    nrows: usize,
    ncols: usize,
    data: &'a [f64],
}

/// A mutable view of a contiguous column block of a [`Matrix`].
#[derive(Debug)]
pub struct MatViewMut<'a> {
    nrows: usize,
    ncols: usize,
    data: &'a mut [f64],
}

impl Matrix {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a column-major data vector.
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "from_col_major: data length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Self { nrows, ncols, data }
    }

    /// Build a matrix from a row-major nested array (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut m = Self::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The underlying column-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying column-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(
            j < self.ncols,
            "column index {j} out of bounds {}",
            self.ncols
        );
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(
            j < self.ncols,
            "column index {j} out of bounds {}",
            self.ncols
        );
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Read-only view of the whole matrix.
    pub fn view(&self) -> MatView<'_> {
        MatView {
            nrows: self.nrows,
            ncols: self.ncols,
            data: &self.data,
        }
    }

    /// Mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatViewMut<'_> {
        MatViewMut {
            nrows: self.nrows,
            ncols: self.ncols,
            data: &mut self.data,
        }
    }

    /// Read-only view of the column block `cols`.
    pub fn cols(&self, cols: Range<usize>) -> MatView<'_> {
        assert!(cols.end <= self.ncols, "column range out of bounds");
        MatView {
            nrows: self.nrows,
            ncols: cols.end - cols.start,
            data: &self.data[cols.start * self.nrows..cols.end * self.nrows],
        }
    }

    /// Mutable view of the column block `cols`.
    pub fn cols_mut(&mut self, cols: Range<usize>) -> MatViewMut<'_> {
        assert!(cols.end <= self.ncols, "column range out of bounds");
        let nrows = self.nrows;
        MatViewMut {
            nrows,
            ncols: cols.end - cols.start,
            data: &mut self.data[cols.start * nrows..cols.end * nrows],
        }
    }

    /// Split the matrix into the column blocks `[0, j)` (read-only) and
    /// `[j, ncols)` (mutable).  This is the access pattern of block
    /// Gram–Schmidt: orthogonalize the trailing panel against the leading
    /// basis in place.
    pub fn split_at_col(&mut self, j: usize) -> (MatView<'_>, MatViewMut<'_>) {
        assert!(
            j <= self.ncols,
            "split column {j} out of bounds {}",
            self.ncols
        );
        let nrows = self.nrows;
        let (head, tail) = self.data.split_at_mut(j * nrows);
        (
            MatView {
                nrows,
                ncols: j,
                data: head,
            },
            MatViewMut {
                nrows,
                ncols: self.ncols - j,
                data: tail,
            },
        )
    }

    /// Copy of the column block `cols` as an owned matrix.
    pub fn cols_owned(&self, cols: Range<usize>) -> Matrix {
        self.cols(cols).to_owned_matrix()
    }

    /// Copy `src` into the column block starting at column `start`.
    pub fn set_cols(&mut self, start: usize, src: &Matrix) {
        assert_eq!(src.nrows, self.nrows, "set_cols: row mismatch");
        assert!(start + src.ncols <= self.ncols, "set_cols: out of bounds");
        let dst = &mut self.data[start * self.nrows..(start + src.ncols) * self.nrows];
        dst.copy_from_slice(&src.data);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Entry-wise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.nrows, other.nrows, "sub: row mismatch");
        assert_eq!(self.ncols, other.ncols, "sub: col mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_col_major(self.nrows, self.ncols, data)
    }

    /// Entry-wise `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.nrows, other.nrows, "add: row mismatch");
        assert_eq!(self.ncols, other.ncols, "add: col mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_col_major(self.nrows, self.ncols, data)
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Maximum absolute entry (`max |a_ij|`), 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &self.data[j * self.nrows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &mut self.data[j * self.nrows + i]
    }
}

impl<'a> MatView<'a> {
    /// Construct a view from a raw column-major slice.
    pub fn from_slice(nrows: usize, ncols: usize, data: &'a [f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_slice: length mismatch");
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The backing column-major slice.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &'a [f64] {
        assert!(j < self.ncols, "column index out of bounds");
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Sub-view of columns `cols` of this view.
    pub fn cols(&self, cols: Range<usize>) -> MatView<'a> {
        assert!(cols.end <= self.ncols, "column range out of bounds");
        MatView {
            nrows: self.nrows,
            ncols: cols.end - cols.start,
            data: &self.data[cols.start * self.nrows..cols.end * self.nrows],
        }
    }

    /// Deep copy into an owned [`Matrix`].
    pub fn to_owned_matrix(&self) -> Matrix {
        Matrix::from_col_major(self.nrows, self.ncols, self.data.to_vec())
    }
}

impl<'a> MatViewMut<'a> {
    /// Construct a mutable view from a raw column-major slice.
    pub fn from_slice(nrows: usize, ncols: usize, data: &'a mut [f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_slice: length mismatch");
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The backing column-major slice.
    pub fn data(&self) -> &[f64] {
        self.data
    }

    /// Mutable access to the backing column-major slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.ncols, "column index out of bounds");
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.ncols, "column index out of bounds");
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Set entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] = value;
    }

    /// Reborrow as a read-only view.
    pub fn as_view(&self) -> MatView<'_> {
        MatView {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data,
        }
    }

    /// Reborrow a mutable sub-view of columns `cols`.
    pub fn cols_mut(&mut self, cols: Range<usize>) -> MatViewMut<'_> {
        assert!(cols.end <= self.ncols, "column range out of bounds");
        let nrows = self.nrows;
        MatViewMut {
            nrows,
            ncols: cols.end - cols.start,
            data: &mut self.data[cols.start * nrows..cols.end * nrows],
        }
    }

    /// Deep copy into an owned [`Matrix`].
    pub fn to_owned_matrix(&self) -> Matrix {
        Matrix::from_col_major(self.nrows, self.ncols, self.data.to_vec())
    }

    /// Overwrite this view's contents with those of `src` (same shape).
    pub fn copy_from(&mut self, src: &MatView<'_>) {
        assert_eq!(self.nrows, src.nrows, "copy_from: row mismatch");
        assert_eq!(self.ncols, src.ncols, "copy_from: col mismatch");
        self.data.copy_from_slice(src.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.nrows(), 3);
        assert_eq!(z.ncols(), 2);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn indexing_is_column_major() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn columns_are_contiguous() {
        let m = Matrix::from_fn(4, 3, |i, j| (10 * j + i) as f64);
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn col_block_views() {
        let m = Matrix::from_fn(3, 4, |i, j| (j * 3 + i) as f64);
        let v = m.cols(1..3);
        assert_eq!(v.ncols(), 2);
        assert_eq!(v.get(0, 0), 3.0);
        assert_eq!(v.get(2, 1), 8.0);
        let sub = v.cols(1..2);
        assert_eq!(sub.get(0, 0), 6.0);
    }

    #[test]
    fn split_at_col_gives_disjoint_blocks() {
        let mut m = Matrix::from_fn(2, 4, |i, j| (j * 2 + i) as f64);
        let (head, mut tail) = m.split_at_col(2);
        assert_eq!(head.ncols(), 2);
        assert_eq!(tail.ncols(), 2);
        assert_eq!(head.get(0, 1), 2.0);
        assert_eq!(tail.get(0, 0), 4.0);
        tail.set(1, 1, 99.0);
        assert_eq!(m[(1, 3)], 99.0);
    }

    #[test]
    fn set_cols_and_cols_owned_round_trip() {
        let mut m = Matrix::zeros(3, 4);
        let block = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        m.set_cols(1, &block);
        let back = m.cols_owned(1..3);
        assert_eq!(back, block);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn add_sub_scale_max_abs() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let c = a.add(&b).sub(&b);
        assert_eq!(c, a);
        let mut d = a.clone();
        d.scale(2.0);
        assert_eq!(d[(1, 1)], 8.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cols_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.cols(1..3);
    }

    #[test]
    fn viewmut_copy_from() {
        let src = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let mut dst = Matrix::zeros(3, 2);
        dst.view_mut().copy_from(&src.view());
        assert_eq!(dst, src);
    }
}
