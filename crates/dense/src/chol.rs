//! Cholesky factorization of (small) symmetric positive-definite matrices.
//!
//! CholQR computes the Cholesky factor of the Gram matrix `G = VᵀV`; the
//! factorization failing (a non-positive pivot) is exactly the numerical
//! breakdown condition the paper discusses (condition (1)): it happens when
//! `κ(V)` exceeds roughly `1/√ε`.  The shifted variant implements the
//! remedy of Fukaya et al. referenced in the related-work section.

use crate::matrix::Matrix;

/// Error returned when a Cholesky factorization breaks down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CholeskyError {
    /// Index of the pivot that was not positive.
    pub pivot: usize,
    /// Value of the failing pivot.
    pub value: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cholesky breakdown at pivot {} (value {:.3e}); the Gram matrix is not numerically positive definite",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Upper-triangular Cholesky factor `R` with `RᵀR = G`.
///
/// `G` must be symmetric; only its upper triangle is read.  The returned `R`
/// has strictly positive diagonal entries.  Fails with [`CholeskyError`] if a
/// pivot is not strictly positive (i.e. `G` is not numerically SPD).
pub fn cholesky_upper(g: &Matrix) -> Result<Matrix, CholeskyError> {
    let n = g.nrows();
    assert_eq!(g.ncols(), n, "cholesky_upper: matrix must be square");
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = g[(j, j)];
        for k in 0..j {
            d -= r[(k, j)] * r[(k, j)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError { pivot: j, value: d });
        }
        let djj = d.sqrt();
        r[(j, j)] = djj;
        // Off-diagonal entries of row j (columns j+1..n of R).
        for i in (j + 1)..n {
            let mut v = g[(j, i)];
            for k in 0..j {
                v -= r[(k, j)] * r[(k, i)];
            }
            r[(j, i)] = v / djj;
        }
    }
    Ok(r)
}

/// Shifted Cholesky factorization: factorizes `G + shift·I` where the shift
/// is chosen as `c·ε·‖G‖` (Fukaya et al., SISC 2020) so that the
/// factorization succeeds for any numerically full-rank input, at the price
/// of a slightly less orthogonal `Q` (which a reorthogonalization pass then
/// repairs).
///
/// Returns the factor and the shift that was applied.
pub fn shifted_cholesky_upper(
    g: &Matrix,
    n_global_rows: usize,
) -> Result<(Matrix, f64), CholeskyError> {
    let s = g.nrows();
    // Shift suggested by the shifted-CholQR analysis: 11 (n·s + s(s+1)) ε ‖G‖₂.
    // We use the (cheap, slightly larger) Frobenius norm as the norm estimate.
    let norm = crate::measure::frobenius_norm(g);
    let shift = 11.0 * ((n_global_rows * s + s * (s + 1)) as f64) * f64::EPSILON * norm;
    let mut shifted = g.clone();
    for j in 0..s {
        shifted[(j, j)] += shift;
    }
    match cholesky_upper(&shifted) {
        Ok(r) => Ok((r, shift)),
        Err(_) => {
            // Escalate the shift once (covers pathologically scaled inputs).
            let bigger = shift.max(f64::EPSILON * norm) * 1e3 + f64::MIN_POSITIVE;
            let mut shifted2 = g.clone();
            for j in 0..s {
                shifted2[(j, j)] += bigger;
            }
            cholesky_upper(&shifted2).map(|r| (r, bigger))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_nn;

    fn spd_matrix(n: usize) -> Matrix {
        // A = BᵀB + n·I is SPD.
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 11) as f64 * 0.1 - 0.3);
        let mut a = gemm_nn(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let g = spd_matrix(6);
        let r = cholesky_upper(&g).unwrap();
        let back = gemm_nn(&r.transpose(), &r);
        for i in 0..6 {
            for j in 0..6 {
                assert!((back[(i, j)] - g[(i, j)]).abs() < 1e-10 * g.max_abs());
            }
            assert!(r[(i, i)] > 0.0);
        }
        // R is upper triangular.
        for i in 1..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn identity_factors_to_identity() {
        let r = cholesky_upper(&Matrix::identity(4)).unwrap();
        assert_eq!(r, Matrix::identity(4));
    }

    #[test]
    fn indefinite_matrix_fails() {
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = cholesky_upper(&g).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
        assert!(err.to_string().contains("breakdown"));
    }

    #[test]
    fn zero_matrix_fails_at_first_pivot() {
        let err = cholesky_upper(&Matrix::zeros(3, 3)).unwrap_err();
        assert_eq!(err.pivot, 0);
    }

    #[test]
    fn shifted_cholesky_succeeds_on_near_singular_gram() {
        // Gram matrix of two nearly parallel vectors: regular Cholesky may
        // succeed or fail depending on rounding; with an explicit zero
        // eigenvalue it must fail, the shifted version must succeed.
        let g = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(cholesky_upper(&g).is_err());
        let (r, shift) = shifted_cholesky_upper(&g, 1000).unwrap();
        assert!(shift > 0.0);
        assert!(r[(0, 0)] > 0.0 && r[(1, 1)] > 0.0);
    }

    #[test]
    fn shifted_cholesky_barely_perturbs_well_conditioned_input() {
        let g = spd_matrix(5);
        let r_plain = cholesky_upper(&g).unwrap();
        let (r_shift, shift) = shifted_cholesky_upper(&g, 100).unwrap();
        assert!(shift < 1e-8 * g.max_abs());
        for i in 0..5 {
            for j in 0..5 {
                assert!((r_plain[(i, j)] - r_shift[(i, j)]).abs() < 1e-6);
            }
        }
    }
}
