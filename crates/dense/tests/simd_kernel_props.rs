//! Property battery for the runtime-dispatched SIMD tile kernels: every
//! blocked kernel is pinned to its `naive_*` oracle on awkward shapes — row
//! counts that are not multiples of the register tile ([`dense::TILE`]) or
//! the 4-wide AVX2 lane, `s ∈ 1..=10`, and the `k = 0` edge — across
//! thread counts {1, 4, 8}, and the scalar and SIMD backends are
//! cross-checked against each other (bitwise for the update/TRSM class,
//! tolerance for the Gram/projection class).
//!
//! The final test is the multithread scaling smoke check on a bench-sized
//! panel: with ≥ 2 hardware threads the 8-thread blocked Gram must beat
//! the 1-thread time; on a single hardware thread (where scaling is
//! physically impossible) the pool's dispatch overhead must stay bounded.

use dense::{Matrix, SimdLevel, ROW_BLOCK, TILE};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Both the `parkit` thread count and the SIMD backend override are
/// process-global; serialize every test that touches either.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn panel(n: usize, s: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, s, |i, j| {
        ((i * 29 + j * 23 + seed * 37) % 67) as f64 * 0.029 - 0.95
            + if (i + 2 * j + seed).is_multiple_of(11) {
                1.3
            } else {
                0.0
            }
    })
}

fn upper(s: usize, seed: usize) -> Matrix {
    Matrix::from_fn(s, s, |i, j| {
        if i > j {
            0.0
        } else if i == j {
            1.4 + ((i + seed) % 3) as f64 * 0.3
        } else {
            ((2 * i + j + seed) % 5) as f64 * 0.12 - 0.25
        }
    })
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
    assert_eq!(a.nrows(), b.nrows(), "{what}: row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "{what}: col mismatch");
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            assert!(
                (a[(i, j)] - b[(i, j)]).abs() <= tol,
                "{what} entry ({i},{j}): {} vs {} (tol {tol:.3e})",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

/// Row counts straddling the register tile and the 4-wide AVX2 lane: the
/// interesting remainders are 1..=3 rows past a tile/lane boundary plus the
/// panel-boundary stragglers.
fn awkward_rows() -> Vec<usize> {
    vec![
        0,
        1,
        2,
        3,
        TILE - 1,
        TILE + 1,
        TILE + 3,
        2 * TILE + 1,
        7 * TILE + 2,
        ROW_BLOCK - 1,
        ROW_BLOCK + 5,
        2 * ROW_BLOCK + 3,
        1_031, // prime
    ]
}

/// Every kernel vs its oracle on one (n, s, k) shape under the current
/// global thread count and backend.
fn check_shape(n: usize, s: usize, k: usize) {
    let v = panel(n, s, 3);
    let q = panel(n, k, 5);
    let p = Matrix::from_fn(k, s, |i, j| ((i + 3 * j) % 4) as f64 * 0.21 - 0.3);
    let r = upper(s, 2);
    let tol = 1e-10 * (n.max(1) as f64);
    // Tolerance class: gram / gemm_tn.
    assert_close(
        &dense::gram(&v.view()),
        &dense::naive_gram(&v.view()),
        tol,
        "gram",
    );
    assert_close(
        &dense::gemm_tn(&q.view(), &v.view()),
        &dense::naive_gemm_tn(&q.view(), &v.view()),
        tol,
        "gemm_tn",
    );
    // Bitwise class: update, TRSM, and the fused update half.
    let mut w = v.clone();
    let mut w_ref = v.clone();
    dense::gemm_nn_minus(&mut w.view_mut(), &q.view(), &p);
    dense::naive_gemm_nn_minus(&mut w_ref.view_mut(), &q.view(), &p);
    assert_eq!(w, w_ref, "update bitwise (n={n}, s={s}, k={k})");
    let mut t = v.clone();
    let mut t_ref = v.clone();
    dense::trsm_right_upper(&mut t.view_mut(), &r);
    dense::naive_trsm_right_upper(&mut t_ref.view_mut(), &r);
    assert_eq!(t, t_ref, "trsm bitwise (n={n}, s={s})");
    let mut f = v.clone();
    let (fc, fg) = dense::fused_update_proj_gram(&mut f.view_mut(), &q.view(), &p);
    assert_eq!(f, w, "fused update bitwise (n={n}, s={s}, k={k})");
    assert_close(
        &fc,
        &dense::naive_gemm_tn(&q.view(), &w.view()),
        tol,
        "fused C",
    );
    assert_close(&fg, &dense::naive_gram(&w.view()), tol, "fused G");
}

#[test]
fn simd_kernels_match_oracles_on_awkward_shapes_across_thread_counts() {
    let _guard = global_lock();
    for threads in [1usize, 4, 8] {
        parkit::set_num_threads(threads);
        for n in awkward_rows() {
            for s in [1usize, 2, TILE - 1, TILE, TILE + 1, 10] {
                for k in [0usize, 1, TILE, TILE + 2] {
                    check_shape(n, s, k);
                }
            }
        }
    }
    parkit::set_num_threads(0);
}

#[test]
fn scalar_backend_matches_oracles_on_awkward_shapes() {
    let _guard = global_lock();
    dense::set_simd_override(Some(SimdLevel::Scalar));
    for threads in [1usize, 4] {
        parkit::set_num_threads(threads);
        for n in [1usize, TILE + 1, ROW_BLOCK + 5, 1_031] {
            for (s, k) in [(1usize, 0usize), (5, 3), (10, TILE)] {
                check_shape(n, s, k);
            }
        }
    }
    dense::set_simd_override(None);
    parkit::set_num_threads(0);
}

#[test]
fn update_class_is_bitwise_identical_across_backends() {
    let _guard = global_lock();
    parkit::set_num_threads(3);
    for n in [1usize, TILE + 3, ROW_BLOCK + 1, 1_031] {
        let s = 7;
        let k = 5;
        let v = panel(n, s, 9);
        let q = panel(n, k, 4);
        let p = Matrix::from_fn(k, s, |i, j| ((2 * i + j) % 5) as f64 * 0.19 - 0.3);
        let r = upper(s, 6);
        dense::set_simd_override(Some(SimdLevel::Scalar));
        let mut w_scalar = v.clone();
        dense::gemm_nn_minus(&mut w_scalar.view_mut(), &q.view(), &p);
        let mut t_scalar = v.clone();
        dense::trsm_right_upper(&mut t_scalar.view_mut(), &r);
        let mut f_scalar = v.clone();
        let _ = dense::fused_update_proj_gram(&mut f_scalar.view_mut(), &q.view(), &p);
        dense::set_simd_override(None);
        let mut w_auto = v.clone();
        dense::gemm_nn_minus(&mut w_auto.view_mut(), &q.view(), &p);
        let mut t_auto = v.clone();
        dense::trsm_right_upper(&mut t_auto.view_mut(), &r);
        let mut f_auto = v.clone();
        let _ = dense::fused_update_proj_gram(&mut f_auto.view_mut(), &q.view(), &p);
        assert_eq!(w_scalar, w_auto, "update must not depend on the backend");
        assert_eq!(t_scalar, t_auto, "trsm must not depend on the backend");
        assert_eq!(
            f_scalar, f_auto,
            "fused update must not depend on the backend"
        );
    }
    parkit::set_num_threads(0);
}

#[test]
fn gram_class_backends_agree_within_ulp_envelope() {
    let _guard = global_lock();
    parkit::set_num_threads(2);
    for n in [TILE + 1, ROW_BLOCK + 5, 2_051] {
        let v = panel(n, 9, 1);
        let q = panel(n, 6, 2);
        dense::set_simd_override(Some(SimdLevel::Scalar));
        let g_scalar = dense::gram(&v.view());
        let c_scalar = dense::gemm_tn(&q.view(), &v.view());
        dense::set_simd_override(None);
        let g_auto = dense::gram(&v.view());
        let c_auto = dense::gemm_tn(&q.view(), &v.view());
        // FMA + lane reassociation envelope, far tighter than the oracle
        // tolerance.
        let tol = 1e-12 * (n as f64);
        assert_close(&g_scalar, &g_auto, tol, "gram backend envelope");
        assert_close(&c_scalar, &c_auto, tol, "gemm_tn backend envelope");
    }
    parkit::set_num_threads(0);
}

/// Multithread scaling smoke check on a bench-sized panel (the PR's bug
/// signature: 8-thread Gram used to be *slower* than 1-thread).  Real
/// speedup is only physically possible with ≥ 2 hardware threads; on a
/// single-core host the assertion degrades to a dispatch-overhead bound.
#[test]
fn eight_thread_gram_beats_or_matches_one_thread() {
    let _guard = global_lock();
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let v = panel(200_000, 8, 5);
    let time_gram = || {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            std::hint::black_box(dense::gram(&v.view()));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    parkit::set_num_threads(1);
    let _warm = time_gram();
    let t1 = time_gram();
    parkit::set_num_threads(8);
    let t8 = time_gram();
    parkit::set_num_threads(0);
    if hw >= 2 {
        assert!(
            t8 < t1,
            "8-thread gram must beat 1-thread on {hw} hardware threads: {t8:.6}s vs {t1:.6}s"
        );
    } else {
        assert!(
            t8 <= 2.5 * t1,
            "pool dispatch overhead out of bounds on one hardware thread: \
             8-thread {t8:.6}s vs 1-thread {t1:.6}s"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes around lane/tile boundaries, random thread counts,
    /// including the k = 0 edge.
    #[test]
    fn random_shapes_match_oracles(
        n in 0usize..1_500,
        s in 1usize..11,
        k in 0usize..9,
        threads in 1usize..9,
    ) {
        let _guard = global_lock();
        parkit::set_num_threads(threads);
        check_shape(n, s, k);
        parkit::set_num_threads(0);
    }
}
