//! Property tests pinning the blocked/register-tiled BLAS-3 kernels to the
//! retained `naive_*` references on awkward shapes: empty operands, single
//! rows/columns, sizes straddling the register tile ([`dense::TILE`]) and
//! cache panel ([`dense::ROW_BLOCK`]) boundaries, and row counts that are
//! not multiples of the tile or the worker count.
//!
//! Two classes of assertion:
//!
//! * **Value**: `gram`/`gemm_tn` match the naive dot-product formulation to
//!   a tight summation-reordering tolerance; `gemm_nn_minus`,
//!   `trsm_right_upper` and the update half of `fused_update_proj_gram`
//!   perform per-element arithmetic in the same order as the naive sweeps
//!   and must match **bitwise**.
//! * **Determinism**: for a fixed thread count, repeated runs are bitwise
//!   identical (chunk-ordered reductions), at every thread count.

use dense::{Matrix, ROW_BLOCK, TILE};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// `parkit`'s thread-count override is process-global; serialize every test
/// that touches it so concurrent test threads don't race each other.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("thread lock poisoned")
}

fn panel(n: usize, s: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, s, |i, j| {
        ((i * 31 + j * 17 + seed * 41) % 61) as f64 * 0.03 - 0.9
            + if (i + j + seed).is_multiple_of(7) {
                1.1
            } else {
                0.0
            }
    })
}

fn upper(s: usize, seed: usize) -> Matrix {
    Matrix::from_fn(s, s, |i, j| {
        if i > j {
            0.0
        } else if i == j {
            1.25 + ((i + seed) % 3) as f64 * 0.5
        } else {
            ((i + 2 * j + seed) % 5) as f64 * 0.15 - 0.3
        }
    })
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f64) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.nrows(), b.nrows());
    prop_assert_eq!(a.ncols(), b.ncols());
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            prop_assert!(
                (a[(i, j)] - b[(i, j)]).abs() <= tol,
                "entry ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
    Ok(())
}

/// The shapes the issue calls out explicitly, plus tile/panel stragglers.
fn awkward_rows() -> Vec<usize> {
    vec![
        0,
        1,
        TILE - 1,
        TILE + 1,
        3 * TILE + 2,
        ROW_BLOCK - 1,
        ROW_BLOCK + 1,
        2 * ROW_BLOCK + 7,
        1_031, // prime: not a multiple of any tile or thread count
    ]
}

#[test]
fn blocked_kernels_match_naive_on_enumerated_awkward_shapes() {
    let _guard = thread_lock();
    for threads in [1usize, 2, 3, 5] {
        parkit::set_num_threads(threads);
        for n in awkward_rows() {
            for s in [1usize, TILE - 1, TILE, TILE + 1, 9] {
                for k in [0usize, 1, TILE, TILE + 2] {
                    let v = panel(n, s, 3);
                    let q = panel(n, k, 5);
                    let p = Matrix::from_fn(k, s, |i, j| ((i + 3 * j) % 4) as f64 * 0.2 - 0.25);
                    // gram ≈ naive (summation order differs).
                    let tol = 1e-12 * (n.max(1) as f64);
                    let g = dense::gram(&v.view());
                    let g_ref = dense::naive_gram(&v.view());
                    assert_close(&g, &g_ref, tol).unwrap();
                    // gemm_tn ≈ naive.
                    let c = dense::gemm_tn(&q.view(), &v.view());
                    let c_ref = dense::naive_gemm_tn(&q.view(), &v.view());
                    assert_close(&c, &c_ref, tol).unwrap();
                    // gemm_nn_minus: bitwise.
                    let mut w = v.clone();
                    let mut w_ref = v.clone();
                    dense::gemm_nn_minus(&mut w.view_mut(), &q.view(), &p);
                    dense::naive_gemm_nn_minus(&mut w_ref.view_mut(), &q.view(), &p);
                    assert_eq!(w, w_ref, "update bitwise (n={n}, s={s}, k={k})");
                    // trsm: bitwise.
                    let r = upper(s, 1);
                    let mut t = v.clone();
                    let mut t_ref = v.clone();
                    dense::trsm_right_upper(&mut t.view_mut(), &r);
                    dense::naive_trsm_right_upper(&mut t_ref.view_mut(), &r);
                    assert_eq!(t, t_ref, "trsm bitwise (n={n}, s={s})");
                    // fused update half: bitwise vs the blocked update.
                    let mut f = v.clone();
                    let (fc, fg) = dense::fused_update_proj_gram(&mut f.view_mut(), &q.view(), &p);
                    assert_eq!(f, w, "fused update bitwise (n={n}, s={s}, k={k})");
                    let fc_ref = dense::naive_gemm_tn(&q.view(), &w.view());
                    let fg_ref = dense::naive_gram(&w.view());
                    assert_close(&fc, &fc_ref, tol).unwrap();
                    assert_close(&fg, &fg_ref, tol).unwrap();
                }
            }
        }
    }
    parkit::set_num_threads(0);
}

#[test]
fn blocked_kernels_are_bitwise_deterministic_per_thread_count() {
    let _guard = thread_lock();
    let n = 2 * ROW_BLOCK + 19;
    let v = panel(n, 7, 11);
    let q = panel(n, 5, 13);
    let p = Matrix::from_fn(5, 7, |i, j| (i as f64 - j as f64) * 0.11);
    for threads in [1usize, 2, 4, 7] {
        parkit::set_num_threads(threads);
        let g1 = dense::gram(&v.view());
        let g2 = dense::gram(&v.view());
        assert_eq!(g1, g2, "gram must be deterministic at {threads} threads");
        let c1 = dense::gemm_tn(&q.view(), &v.view());
        let c2 = dense::gemm_tn(&q.view(), &v.view());
        assert_eq!(c1, c2, "gemm_tn must be deterministic at {threads} threads");
        let mut a = v.clone();
        let mut b = v.clone();
        let (ca, ga) = dense::fused_update_proj_gram(&mut a.view_mut(), &q.view(), &p);
        let (cb, gb) = dense::fused_update_proj_gram(&mut b.view_mut(), &q.view(), &p);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert_eq!(ga, gb);
    }
    parkit::set_num_threads(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gram_and_gemm_tn_match_naive_on_random_shapes(
        n in 0usize..1_300,
        s in 1usize..11,
        k in 1usize..9,
        threads in 1usize..6,
    ) {
        let _guard = thread_lock();
        parkit::set_num_threads(threads);
        let v = panel(n, s, n + s);
        let q = panel(n, k, n + k + 1);
        let tol = 1e-12 * (n.max(1) as f64);
        let g = dense::gram(&v.view());
        let g_ref = dense::naive_gram(&v.view());
        parkit::set_num_threads(0);
        assert_close(&g, &g_ref, tol)?;
        for j in 0..s {
            for i in 0..s {
                prop_assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
        parkit::set_num_threads(threads);
        let c = dense::gemm_tn(&q.view(), &v.view());
        let c_ref = dense::naive_gemm_tn(&q.view(), &v.view());
        parkit::set_num_threads(0);
        assert_close(&c, &c_ref, tol)?;
    }

    #[test]
    fn update_and_trsm_are_bitwise_naive_on_random_shapes(
        n in 0usize..1_300,
        s in 1usize..11,
        k in 1usize..9,
        threads in 1usize..6,
    ) {
        let _guard = thread_lock();
        parkit::set_num_threads(threads);
        let v = panel(n, s, 2 * n + s);
        let q = panel(n, k, n + 3);
        let p = Matrix::from_fn(k, s, |i, j| ((2 * i + j) % 5) as f64 * 0.17 - 0.2);
        let r = upper(s, n % 7);
        let mut w = v.clone();
        let mut w_ref = v.clone();
        dense::gemm_nn_minus(&mut w.view_mut(), &q.view(), &p);
        dense::naive_gemm_nn_minus(&mut w_ref.view_mut(), &q.view(), &p);
        let mut t = v.clone();
        let mut t_ref = v.clone();
        dense::trsm_right_upper(&mut t.view_mut(), &r);
        dense::naive_trsm_right_upper(&mut t_ref.view_mut(), &r);
        parkit::set_num_threads(0);
        prop_assert!(w == w_ref, "blocked update diverged from naive");
        prop_assert!(t == t_ref, "row-parallel TRSM diverged from naive");
    }
}
