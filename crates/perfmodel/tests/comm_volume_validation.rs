//! Cross-validation of the performance model's message-**volume** terms
//! against traffic actually measured by the `distsim` communicator
//! statistics (ROADMAP: "exploit `CommStats` word counts in `perfmodel`").
//!
//! The reduce *counts* were already pinned; these tests pin the *words*:
//!
//! * the `allreduce((k + s)·s)` term of the fused BCGS-PIP kernels equals
//!   the words `proj_and_gram` / `update_and_gram` actually reduce;
//! * [`ortho_cycle_words`] — the volume the model charges a full restart
//!   cycle of each scheme — equals the measured `allreduce_words` of
//!   running that scheme end to end;
//! * the SpMV halo-exchange volume/neighbor terms of
//!   [`ProblemSpec::laplace2d`] equal the ghost words and message counts
//!   the negotiated halo plan produces and `CommStats` records per SpMV.

use blockortho::{make_orthogonalizer, OrthoKind};
use distsim::{run_ranks, DistCsr, DistMultiVector, SerialComm};
use perfmodel::{ortho_cycle_words, ortho_reduce_count, ProblemSpec, SchemeKind};
use sparse::{block_row_partition, Laplace2d9ptRows};

/// Well-conditioned basis so no scheme takes a breakdown detour (which
/// would legitimately spend extra reduces).
fn test_basis(n: usize, cols: usize) -> dense::Matrix {
    dense::Matrix::from_fn(n, cols, |i, j| {
        ((i * 7 + j * 3) % 13) as f64 * 0.2 + if i == j { 3.0 } else { 0.0 }
    })
}

#[test]
fn fused_kernel_reduce_volume_matches_the_pip_model_term() {
    // The model charges one all-reduce of (k + s)·s words per BCGS-PIP
    // call; both fused kernels must reduce exactly that.
    let v = test_basis(250, 12);
    for (k, s) in [(1usize, 5usize), (3, 4), (6, 6), (0, 5), (7, 1)] {
        let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let before = basis.comm().stats().snapshot();
        let p = {
            let (p, _g) = basis.proj_and_gram(0..k, k..k + s);
            p
        };
        let delta = basis.comm().stats().snapshot().since(&before);
        assert_eq!(delta.allreduces, 1);
        assert_eq!(
            delta.allreduce_words,
            (k + s) * s,
            "proj_and_gram k={k} s={s}"
        );
        let before = basis.comm().stats().snapshot();
        let _ = basis.update_and_gram(0..k, k..k + s, &p);
        let delta = basis.comm().stats().snapshot().since(&before);
        assert_eq!(delta.allreduces, 1);
        assert_eq!(
            delta.allreduce_words,
            (k + s) * s,
            "update_and_gram k={k} s={s}"
        );
    }
}

#[test]
fn measured_cycle_reduce_words_match_the_analytic_volumes() {
    // Run every scheme through a full cycle on the distsim substrate and
    // compare the measured all-reduced words against ortho_cycle_words
    // (and the counts against ortho_reduce_count, as before).
    let m = 20;
    let pairs: [(OrthoKind, SchemeKind, usize); 7] = [
        (OrthoKind::Cgs2, SchemeKind::StandardCgs2, 1),
        (OrthoKind::Bcgs2CholQr2, SchemeKind::Bcgs2CholQr2, 5),
        (OrthoKind::BcgsPip2, SchemeKind::BcgsPip2, 5),
        (
            OrthoKind::TwoStage { big_panel: 20 },
            SchemeKind::TwoStage { bs: 20 },
            5,
        ),
        (
            OrthoKind::TwoStage { big_panel: 10 },
            SchemeKind::TwoStage { bs: 10 },
            5,
        ),
        (
            OrthoKind::RandCholQr,
            // rows = rows_per_col (8, the default) · total_cols (m + 1).
            SchemeKind::RandCholQr { rows: 168, nnz: 4 },
            5,
        ),
        (
            OrthoKind::TwoStageSketched { big_panel: 10 },
            SchemeKind::TwoStageSketched {
                bs: 10,
                rows: 168,
                nnz: 4,
            },
            5,
        ),
    ];
    let v = test_basis(300, m + 1);
    for (kind, scheme, s) in pairs {
        let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
        let mut r = dense::Matrix::zeros(m + 1, m + 1);
        let mut ortho = make_orthogonalizer(kind, m + 1);
        // The initial residual column is identical for every scheme; the
        // model folds it into cycle setup, so it is excluded here too.
        ortho.orthogonalize_panel(&mut basis, 0..1, &mut r).unwrap();
        let before = basis.comm().stats().snapshot();
        let mut col = 1;
        while col < m + 1 {
            ortho
                .orthogonalize_panel(&mut basis, col..col + s, &mut r)
                .unwrap();
            col += s;
        }
        ortho.finish(&mut basis, &mut r).unwrap();
        let delta = basis.comm().stats().snapshot().since(&before);
        assert_eq!(
            delta.allreduces,
            ortho_reduce_count(scheme, m, s),
            "{scheme:?} reduce count"
        );
        assert_eq!(
            delta.allreduce_words,
            ortho_cycle_words(scheme, m, s),
            "{scheme:?} reduce volume"
        );
    }
}

#[test]
fn measured_block_cycle_reduce_words_match_the_analytic_volumes() {
    // The block generalization of the cycle volumes: a k-wide block cycle
    // runs k·s-column panels over a k·(m + 1)-column basis (the schedule
    // `SStepGmres::solve_block` drives, with `OrthoKind::for_block_width`
    // scaling the two-stage flush threshold).  For k ∈ {1, 2, 4} the
    // measured reduce counts and words must equal the closed forms —
    // exactly, not approximately — on both a plain and a sketched scheme,
    // and the counts must be identical across k.
    use perfmodel::{block_ortho_cycle_words, block_ortho_reduce_count};
    let m = 20;
    let s = 5;
    for k in [1usize, 2, 4] {
        let total = k * (m + 1);
        let v = test_basis(300, total);
        let pairs: [(OrthoKind, SchemeKind); 4] = [
            (OrthoKind::BcgsPip2, SchemeKind::BcgsPip2),
            (
                OrthoKind::TwoStage { big_panel: 10 }.for_block_width(k),
                SchemeKind::TwoStage { bs: 10 },
            ),
            (
                OrthoKind::RandCholQr,
                // rows = rows_per_col (8, the default) · total_cols.
                SchemeKind::RandCholQr {
                    rows: 8 * total,
                    nnz: 4,
                },
            ),
            (
                OrthoKind::TwoStageSketched { big_panel: 10 }.for_block_width(k),
                SchemeKind::TwoStageSketched {
                    bs: 10,
                    rows: 8 * total,
                    nnz: 4,
                },
            ),
        ];
        for (kind, scheme) in pairs {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            let mut r = dense::Matrix::zeros(total, total);
            let mut ortho = make_orthogonalizer(kind, total);
            // The initial residual block is cycle setup, as in the scalar
            // validation above.
            ortho.orthogonalize_panel(&mut basis, 0..k, &mut r).unwrap();
            let before = basis.comm().stats().snapshot();
            let mut col = k;
            while col < total {
                ortho
                    .orthogonalize_panel(&mut basis, col..col + k * s, &mut r)
                    .unwrap();
                col += k * s;
            }
            ortho.finish(&mut basis, &mut r).unwrap();
            let delta = basis.comm().stats().snapshot().since(&before);
            assert_eq!(
                delta.allreduces,
                block_ortho_reduce_count(scheme, m, s, k),
                "{scheme:?} k={k} reduce count"
            );
            assert_eq!(
                delta.allreduces,
                block_ortho_reduce_count(scheme, m, s, 1),
                "{scheme:?} k={k}: count must be k-independent"
            );
            assert_eq!(
                delta.allreduce_words,
                block_ortho_cycle_words(scheme, m, s, k),
                "{scheme:?} k={k} reduce volume"
            );
        }
    }
}

#[test]
fn sketch_closed_form_matches_the_operator_and_the_measured_words() {
    // The model's sketch_reduce_words must agree with both the realized
    // operator's own accounting (SketchOp::reduce_words) and the words a
    // standalone sketched-panel reduce actually moves through CommStats.
    use distsim::{SketchConfig, SketchOp, SKETCH_NNZ_PER_ROW};
    let n = 300;
    let total_cols = 21;
    let cfg = SketchConfig::default();
    let op = SketchOp::for_basis(&cfg, n, total_cols);
    for s in [1usize, 4, 5, 8] {
        assert_eq!(
            perfmodel::sketch_reduce_words(op.rows(), SKETCH_NNZ_PER_ROW, s),
            op.reduce_words(s),
            "closed form vs operator, s={s}"
        );
        let v = test_basis(n, total_cols);
        let basis = DistMultiVector::from_matrix(SerialComm::new(), v);
        let before = basis.comm().stats().snapshot();
        let sv = basis.sketch(&op, 0..s);
        let delta = basis.comm().stats().snapshot().since(&before);
        assert_eq!(delta.allreduces, 1, "sketch is one allreduce, s={s}");
        assert_eq!(
            delta.allreduce_words,
            perfmodel::sketch_reduce_words(op.rows(), SKETCH_NNZ_PER_ROW, s),
            "measured words vs closed form, s={s}"
        );
        assert_eq!((sv.nrows(), sv.ncols()), (op.rows(), s));
    }
}

#[test]
fn spmv_halo_volume_and_neighbors_match_problem_spec() {
    // 9-pt Laplacian, block rows aligned with grid lines: the analytic
    // ProblemSpec terms (2·nx halo words over 2 neighbors per interior
    // rank) must equal both the negotiated halo plan and the words
    // CommStats measures during a real SpMV.
    let nx = 40;
    let nranks = 4; // 10 whole grid lines per rank
    let spec = ProblemSpec::laplace2d(nx, 9, nranks);
    let rows = Laplace2d9ptRows { nx, ny: nx };
    let part = block_row_partition(nx * nx, nranks);
    let measured = run_ranks(nranks, |comm| {
        let (lo, hi) = part.range(comm.rank());
        let dist = DistCsr::from_row_source(comm.clone(), &part, &rows);
        let x = vec![1.0; hi - lo];
        let mut y = vec![0.0; hi - lo];
        let before = comm.stats().snapshot();
        dist.spmv(&x, &mut y);
        let delta = comm.stats().snapshot().since(&before);
        (
            dist.halo_plan().recv_words(),
            dist.halo_plan().recv_neighbors(),
            dist.halo_plan().send_words(),
            delta.p2p_words,
            delta.p2p_messages,
        )
    });
    let mut recv_total = 0;
    let mut sent_total = 0;
    for (rank, (recv_words, neighbors, send_words, p2p_words, p2p_msgs)) in
        measured.iter().enumerate()
    {
        let interior = rank > 0 && rank < nranks - 1;
        if interior {
            // Interior ranks are exactly the analytic per-rank averages.
            assert_eq!(*recv_words, spec.halo_words_per_rank, "rank {rank}");
            assert_eq!(*neighbors, spec.neighbors_per_rank, "rank {rank}");
        } else {
            // Edge ranks import one grid line instead of two.
            assert_eq!(*recv_words, spec.halo_words_per_rank / 2, "rank {rank}");
            assert_eq!(*neighbors, spec.neighbors_per_rank / 2, "rank {rank}");
        }
        // CommStats counts words at the sender: one SpMV sends exactly the
        // planned halo, in exactly one message per neighbor.
        assert_eq!(*p2p_words, *send_words, "rank {rank}");
        assert_eq!(*p2p_msgs, *neighbors, "rank {rank}");
        recv_total += recv_words;
        sent_total += p2p_words;
    }
    // Conservation: every imported ghost word was sent by its owner.
    assert_eq!(recv_total, sent_total);
}
