//! # perfmodel — analytic GPU-cluster performance model
//!
//! The paper's performance results were measured on the Summit and Vortex
//! clusters (IBM Power9 + NVIDIA V100, Spectrum MPI).  This crate replaces
//! that testbed with an analytic model so the *shape* of every performance
//! table and figure can be regenerated on any machine:
//!
//! * [`machine`] — roofline-style machine description (GPU memory bandwidth
//!   and flop rate, kernel-launch overhead, all-reduce latency/bandwidth,
//!   point-to-point link parameters) with presets for a Summit node
//!   (6 V100 per node) and a Vortex node (4 V100 per node);
//! * [`kernels`] — per-kernel cost functions (tall-skinny GEMM, TRSM, SpMV,
//!   dot/axpy, all-reduce, halo exchange) built on the roofline of the
//!   machine description;
//! * [`ortho_cost`] — the kernel-by-kernel assembly of one restart cycle of
//!   each block orthogonalization scheme (BCGS2+CholQR2, BCGS-PIP2,
//!   two-stage, column-wise CGS2), faithfully following the kernel sequences
//!   implemented in the `blockortho` crate — a unit test cross-checks the
//!   modeled synchronization counts against the counts measured by actually
//!   running the schemes;
//! * [`solver_cost`] — full solver time estimates (SpMV + preconditioner +
//!   orthogonalization + small redundant work) used by the Table II/III/IV
//!   and Fig. 10–13 harness binaries.
//!
//! The model is calibrated to the orders of magnitude reported in the paper
//! (per-iteration times of a fraction of a millisecond on a few hundred
//! GPUs), but the reproduction targets *relative* behaviour: which scheme
//! wins, by what factor, and how the gap changes with node count.

pub mod kernels;
pub mod machine;
pub mod ortho_cost;
pub mod solver_cost;

pub use kernels::KernelCosts;
pub use machine::MachineModel;
pub use ortho_cost::{
    block_ortho_cycle_words, block_ortho_reduce_count, ortho_cycle_cost, ortho_cycle_words,
    ortho_reduce_count, sketch_reduce_words, OrthoBreakdown, SchemeKind,
};
pub use solver_cost::{solver_time, ProblemSpec, SolverTimes};
