//! Per-kernel cost functions.
//!
//! Every kernel the orthogonalization schemes and the solver execute is
//! mapped to a roofline time on the machine model.  The shapes follow the
//! actual implementations in the `dense`/`blockortho` crates: tall-skinny
//! GEMMs that read the long operands once, small Cholesky/TRSM factors that
//! are replicated and effectively free on the GPU scale, and the SpMV /
//! halo-exchange pair of the matrix-powers kernel.

use crate::machine::MachineModel;

/// Kernel cost calculator bound to one machine model and one local problem
/// size (rows per rank).
#[derive(Debug, Clone)]
pub struct KernelCosts<'a> {
    machine: &'a MachineModel,
    /// Rows of the Krylov basis owned by this rank.
    pub local_rows: usize,
    /// Number of MPI ranks.
    pub nranks: usize,
}

impl<'a> KernelCosts<'a> {
    /// Create a calculator for `local_rows` rows per rank on `nranks` ranks.
    pub fn new(machine: &'a MachineModel, local_rows: usize, nranks: usize) -> Self {
        Self {
            machine,
            local_rows,
            nranks,
        }
    }

    /// The machine model in use.
    pub fn machine(&self) -> &MachineModel {
        self.machine
    }

    /// Local dot-product GEMM `C = AᵀB` with `A ∈ R^{n×k}`, `B ∈ R^{n×s}`
    /// (the BCGS projection / Gram-matrix kernel).
    pub fn gemm_tn(&self, k: usize, s: usize) -> f64 {
        let n = self.local_rows as f64;
        let bytes = 8.0 * n * (k as f64 + s as f64);
        let flops = 2.0 * n * k as f64 * s as f64;
        self.machine.roofline(bytes, flops, 1.0)
    }

    /// Local vector-update GEMM `V ← V − Q·R` with `Q ∈ R^{n×k}`,
    /// `V ∈ R^{n×s}`.
    pub fn gemm_update(&self, k: usize, s: usize) -> f64 {
        let n = self.local_rows as f64;
        let bytes = 8.0 * n * (k as f64 + 2.0 * s as f64);
        let flops = 2.0 * n * k as f64 * s as f64;
        self.machine.roofline(bytes, flops, 1.0)
    }

    /// Local triangular normalization `Q ← V·R⁻¹` (TRSM) on `s` columns.
    pub fn trsm(&self, s: usize) -> f64 {
        let n = self.local_rows as f64;
        let bytes = 8.0 * n * 2.0 * s as f64;
        let flops = n * (s * s) as f64;
        self.machine.roofline(bytes, flops, 1.0)
    }

    /// Small replicated work (Cholesky of an `s×s` Gram matrix, triangular
    /// updates): done redundantly on every rank; modeled as a handful of
    /// kernel launches plus cubic work at host speed.
    pub fn small_factorization(&self, s: usize) -> f64 {
        let flops = (s * s * s) as f64 / 3.0;
        self.machine.kernel_launch + flops / 5.0e9
    }

    /// One global sum all-reduce of `words` `f64` words.
    pub fn allreduce(&self, words: usize) -> f64 {
        self.machine.allreduce(words, self.nranks)
    }

    /// One local SpMV with `nnz_local` nonzeros plus its halo exchange of
    /// `ghost_words` words over `neighbors` messages.
    pub fn spmv(&self, nnz_local: usize, ghost_words: usize, neighbors: usize) -> f64 {
        let n = self.local_rows as f64;
        // 8-byte value + 4-byte column index per nonzero, plus the in/out
        // vectors.
        let bytes = 12.0 * nnz_local as f64 + 16.0 * n;
        let flops = 2.0 * nnz_local as f64;
        let local = self.machine.roofline(bytes, flops, 1.0);
        let halo = if self.nranks > 1 {
            self.machine.halo_exchange(ghost_words, neighbors)
        } else {
            0.0
        };
        local + halo
    }

    /// One local Gauss–Seidel sweep (same traffic as an SpMV plus the
    /// diagonal scaling).
    pub fn gs_sweep(&self, nnz_local: usize) -> f64 {
        let n = self.local_rows as f64;
        let bytes = 12.0 * nnz_local as f64 + 24.0 * n;
        let flops = 2.0 * nnz_local as f64 + 2.0 * n;
        self.machine.roofline(bytes, flops, 1.0)
    }

    /// A single long-vector AXPY or scaling.
    pub fn axpy(&self) -> f64 {
        let n = self.local_rows as f64;
        self.machine.roofline(24.0 * n, 2.0 * n, 1.0)
    }

    /// A single long-vector dot product (local part only — add
    /// [`Self::allreduce`] for the global reduction).
    pub fn dot_local(&self) -> f64 {
        let n = self.local_rows as f64;
        self.machine.roofline(16.0 * n, 2.0 * n, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(machine: &MachineModel) -> KernelCosts<'_> {
        KernelCosts::new(machine, 1_000_000, 32)
    }

    #[test]
    fn bigger_blocks_amortize_launch_overhead() {
        let m = MachineModel::summit_node();
        let c = costs(&m);
        // One GEMM over 60 columns must be cheaper than 12 GEMMs over 5.
        let one_big = c.gemm_tn(60, 60);
        let many_small: f64 = (0..12).map(|_| c.gemm_tn(60, 5)).sum();
        assert!(one_big < many_small);
    }

    #[test]
    fn gemm_cost_grows_with_previous_block_width() {
        let m = MachineModel::summit_node();
        let c = costs(&m);
        assert!(c.gemm_tn(50, 5) > c.gemm_tn(10, 5));
        assert!(c.gemm_update(50, 5) > c.gemm_update(10, 5));
    }

    #[test]
    fn allreduce_dominates_small_gemm_at_scale() {
        // On many ranks the latency of a reduce exceeds the local work on a
        // small panel — the paper's core observation.
        let m = MachineModel::summit_node();
        let small_local = KernelCosts::new(&m, 20_000, 192);
        assert!(small_local.allreduce(36) > small_local.gemm_tn(5, 5));
    }

    #[test]
    fn spmv_includes_halo_only_in_parallel_runs() {
        let m = MachineModel::summit_node();
        let serial = KernelCosts::new(&m, 1_000_000, 1);
        let parallel = KernelCosts::new(&m, 1_000_000, 8);
        let t_serial = serial.spmv(5_000_000, 2_000, 2);
        let t_parallel = parallel.spmv(5_000_000, 2_000, 2);
        assert!(t_parallel > t_serial);
    }

    #[test]
    fn small_factorization_is_negligible_compared_to_tall_kernels() {
        let m = MachineModel::summit_node();
        let c = costs(&m);
        assert!(c.small_factorization(5) < c.gemm_tn(60, 5) / 5.0);
    }

    #[test]
    fn vector_kernels_have_sane_magnitudes() {
        let m = MachineModel::summit_node();
        let c = KernelCosts::new(&m, 4_000_000 / 6, 6);
        // A long-vector axpy on ~670k rows at 750 GB/s ≈ 20 µs + launch.
        assert!(c.axpy() > 1e-6 && c.axpy() < 1e-3);
        assert!(c.dot_local() > 1e-6 && c.dot_local() < 1e-3);
    }
}
