//! Machine description (roofline + network parameters).

/// Parameters of one GPU and of the interconnect, per MPI rank
/// (the paper runs one MPI rank per GPU).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Human-readable name of the preset.
    pub name: String,
    /// Sustained GPU memory bandwidth in bytes/s (V100 ≈ 0.8 of 900 GB/s).
    pub mem_bandwidth: f64,
    /// Sustained double-precision flop rate in flop/s for compute-bound
    /// kernels (V100 ≈ 6.5 Tflop/s for large GEMM).
    pub flop_rate: f64,
    /// Fixed overhead per GPU kernel launch / BLAS call, in seconds
    /// (≈ 5–10 µs; this is what makes many small BLAS calls expensive).
    pub kernel_launch: f64,
    /// All-reduce latency per communication round, in seconds
    /// (MPI + GPU-direct overhead per log₂(p) stage).
    pub allreduce_latency: f64,
    /// All-reduce per-word bandwidth term, in seconds per byte.
    pub allreduce_byte_time: f64,
    /// Point-to-point message latency (halo exchange), in seconds.
    pub p2p_latency: f64,
    /// Point-to-point bandwidth, in bytes/s.
    pub p2p_bandwidth: f64,
    /// Number of GPUs (MPI ranks) per node.
    pub gpus_per_node: usize,
}

impl MachineModel {
    /// A Summit node: 6 NVIDIA V100 GPUs, NVLink within the node, dual-rail
    /// EDR InfiniBand between nodes (the machine of Tables III/IV and
    /// Figs. 10–13).
    pub fn summit_node() -> Self {
        Self {
            name: "summit".to_string(),
            mem_bandwidth: 750.0e9,
            flop_rate: 6.0e12,
            kernel_launch: 8.0e-6,
            allreduce_latency: 18.0e-6,
            allreduce_byte_time: 1.0 / 8.0e9,
            p2p_latency: 6.0e-6,
            p2p_bandwidth: 12.0e9,
            gpus_per_node: 6,
        }
    }

    /// A Vortex node (Sandia ATS testbed): 4 NVIDIA V100 GPUs per node
    /// (the machine of Table II).
    pub fn vortex_node() -> Self {
        Self {
            name: "vortex".to_string(),
            mem_bandwidth: 750.0e9,
            flop_rate: 6.0e12,
            kernel_launch: 8.0e-6,
            allreduce_latency: 15.0e-6,
            allreduce_byte_time: 1.0 / 8.0e9,
            p2p_latency: 6.0e-6,
            p2p_bandwidth: 12.0e9,
            gpus_per_node: 4,
        }
    }

    /// Time for a memory- and compute-roofline kernel touching `bytes` bytes
    /// and performing `flops` floating-point operations, issued as
    /// `launches` GPU kernels.
    pub fn roofline(&self, bytes: f64, flops: f64, launches: f64) -> f64 {
        let mem = bytes / self.mem_bandwidth;
        let cmp = flops / self.flop_rate;
        launches * self.kernel_launch + mem.max(cmp)
    }

    /// Time of one sum all-reduce of `words` `f64` words over `nranks`
    /// ranks.
    pub fn allreduce(&self, words: usize, nranks: usize) -> f64 {
        if nranks <= 1 {
            // A single rank still pays a device synchronization to read the
            // result on the host.
            return self.kernel_launch;
        }
        let stages = (nranks as f64).log2().ceil().max(1.0);
        stages * self.allreduce_latency + (words as f64) * 8.0 * self.allreduce_byte_time
    }

    /// Time of a neighbourhood (halo) exchange of `words` `f64` words spread
    /// over `neighbors` messages.
    pub fn halo_exchange(&self, words: usize, neighbors: usize) -> f64 {
        if neighbors == 0 {
            return 0.0;
        }
        neighbors as f64 * self.p2p_latency + (words as f64) * 8.0 / self.p2p_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_gpus_per_node() {
        assert_eq!(MachineModel::summit_node().gpus_per_node, 6);
        assert_eq!(MachineModel::vortex_node().gpus_per_node, 4);
    }

    #[test]
    fn roofline_is_monotone_in_bytes_and_flops() {
        let m = MachineModel::summit_node();
        let t1 = m.roofline(1e6, 1e6, 1.0);
        let t2 = m.roofline(2e6, 1e6, 1.0);
        let t3 = m.roofline(2e6, 1e12, 1.0);
        assert!(t2 >= t1);
        assert!(t3 > t2);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let m = MachineModel::summit_node();
        let t = m.roofline(100.0, 100.0, 1.0);
        assert!(t < 2.0 * m.kernel_launch);
        assert!(t >= m.kernel_launch);
    }

    #[test]
    fn allreduce_latency_grows_logarithmically() {
        let m = MachineModel::summit_node();
        let t6 = m.allreduce(25, 6);
        let t192 = m.allreduce(25, 192);
        assert!(t192 > t6);
        // log2(192)/log2(6) = 7.58/2.58 ≈ 2.9; the small-message time must
        // grow by roughly that factor, not linearly in ranks (192/6 = 32).
        assert!(t192 / t6 < 4.0);
        assert!(m.allreduce(25, 1) < t6);
    }

    #[test]
    fn allreduce_volume_term_matters_for_large_buffers() {
        let m = MachineModel::summit_node();
        let small = m.allreduce(25, 32);
        let large = m.allreduce(4_000_000, 32);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn halo_exchange_scales_with_neighbors_and_volume() {
        let m = MachineModel::summit_node();
        assert_eq!(m.halo_exchange(0, 0), 0.0);
        let one = m.halo_exchange(1000, 1);
        let two = m.halo_exchange(2000, 2);
        assert!(two > one);
    }

    #[test]
    fn presets_are_cloneable_and_comparable() {
        let m = MachineModel::summit_node();
        assert_eq!(m.clone(), m);
        assert_ne!(MachineModel::summit_node(), MachineModel::vortex_node());
    }
}
