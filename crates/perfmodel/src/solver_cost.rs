//! Full solver time estimates (the rows of Tables II–IV and Fig. 13).

use crate::kernels::KernelCosts;
use crate::machine::MachineModel;
use crate::ortho_cost::{ortho_cycle_cost, SchemeKind};

/// Description of a linear-system workload (per the paper's tables).
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// Problem name (e.g. "Laplace2D", "atmosmodl").
    pub name: String,
    /// Global number of unknowns.
    pub n: usize,
    /// Global number of matrix nonzeros.
    pub nnz: usize,
    /// Average ghost values imported per rank per SpMV (halo volume).
    pub halo_words_per_rank: usize,
    /// Average number of neighbour ranks per rank.
    pub neighbors_per_rank: usize,
}

impl ProblemSpec {
    /// A 2D Laplace problem on an `nx × nx` grid with the given stencil
    /// width (5 or 9 points), distributed over `nranks` ranks in block rows.
    pub fn laplace2d(nx: usize, stencil: usize, nranks: usize) -> Self {
        let n = nx * nx;
        let nnz = n * stencil - if stencil == 5 { 4 * nx } else { 6 * nx + 4 };
        // 1D block-row distribution of a 2D grid: each interior rank imports
        // one (5-pt) or one (9-pt) grid line from each of its two neighbours.
        Self {
            name: format!("Laplace2D-{stencil}pt-{nx}x{nx}"),
            n,
            nnz,
            halo_words_per_rank: if nranks > 1 { 2 * nx } else { 0 },
            neighbors_per_rank: if nranks > 1 { 2 } else { 0 },
        }
    }

    /// A generic problem from its size and density (used for the SuiteSparse
    /// surrogates of Table IV, where the halo is estimated from the row
    /// density).
    pub fn from_density(name: &str, n: usize, nnz_per_row: f64, nranks: usize) -> Self {
        let nnz = (n as f64 * nnz_per_row) as usize;
        // Unstructured matrices partitioned by a graph partitioner: assume a
        // surface-to-volume halo of ~2·sqrt(local rows) rows' worth of
        // couplings spread over a handful of neighbours.
        let local = n / nranks.max(1);
        let halo = if nranks > 1 {
            (2.0 * (local as f64).sqrt()) as usize
        } else {
            0
        };
        Self {
            name: name.to_string(),
            n,
            nnz,
            halo_words_per_rank: halo,
            neighbors_per_rank: if nranks > 1 { 4.min(nranks - 1) } else { 0 },
        }
    }
}

/// Modeled solver times (seconds), split the way the paper's tables are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverTimes {
    /// Time in the sparse matrix–vector products (and halo exchanges).
    pub spmv: f64,
    /// Time in the preconditioner applications.
    pub precond: f64,
    /// Time in block orthogonalization.
    pub ortho: f64,
    /// Remaining time (small replicated solves, vector updates, residual
    /// computations).
    pub other: f64,
}

impl SolverTimes {
    /// Total time-to-solution.
    pub fn total(&self) -> f64 {
        self.spmv + self.precond + self.ortho + self.other
    }
}

/// Model the time-to-solution of a GMRES solve.
///
/// * `scheme` — orthogonalization scheme (and, for the standard scheme, the
///   implied step size 1);
/// * `s` — step size of the matrix-powers kernel (ignored for the standard
///   scheme);
/// * `m` — restart length;
/// * `iterations` — total iteration count of the solve (from the paper or
///   from running the actual solver);
/// * `gs_sweeps` — Gauss–Seidel sweeps per preconditioner application
///   (0 = unpreconditioned).
#[allow(clippy::too_many_arguments)]
pub fn solver_time(
    scheme: SchemeKind,
    problem: &ProblemSpec,
    machine: &MachineModel,
    nranks: usize,
    s: usize,
    m: usize,
    iterations: usize,
    gs_sweeps: usize,
) -> SolverTimes {
    assert!(nranks >= 1, "need at least one rank");
    let local_rows = problem.n / nranks;
    let local_nnz = problem.nnz / nranks;
    let costs = KernelCosts::new(machine, local_rows, nranks);
    let step = match scheme {
        SchemeKind::StandardCgs2 => 1,
        _ => s,
    };
    // Per-iteration SpMV + preconditioner.
    let t_spmv_once = costs.spmv(
        local_nnz,
        problem.halo_words_per_rank,
        problem.neighbors_per_rank,
    );
    let t_precond_once = if gs_sweeps > 0 {
        gs_sweeps as f64 * costs.gs_sweep(local_nnz)
    } else {
        0.0
    };
    let spmv = iterations as f64 * t_spmv_once;
    let precond = iterations as f64 * t_precond_once;
    // Orthogonalization: per restart cycle of m vectors, scaled by the
    // number of cycles actually executed.
    let cycles = iterations as f64 / m as f64;
    let ortho_cycle = ortho_cycle_cost(scheme, &costs, m, step);
    let ortho = cycles * ortho_cycle.total();
    // Other work per cycle: residual recomputation (1 SpMV + axpy + norm),
    // solution update (GEMV over m columns + axpy), replicated least squares.
    let t_other_cycle = t_spmv_once
        + 2.0 * costs.axpy()
        + costs.dot_local()
        + costs.allreduce(1)
        + costs.gemm_update(m, 1)
        + (m * m * m) as f64 / 5.0e9;
    let other = cycles * t_other_cycle;
    SolverTimes {
        spmv,
        precond,
        ortho,
        other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_N: usize = 2000 * 2000;

    fn table3_times(scheme: SchemeKind, nodes: usize, iterations: usize) -> SolverTimes {
        let machine = MachineModel::summit_node();
        let nranks = nodes * machine.gpus_per_node;
        let problem = ProblemSpec::laplace2d(2000, 9, nranks);
        solver_time(scheme, &problem, &machine, nranks, 5, 60, iterations, 0)
    }

    #[test]
    fn problem_specs_have_expected_sizes() {
        let p = ProblemSpec::laplace2d(2000, 9, 24);
        assert_eq!(p.n, PAPER_N);
        assert!((p.nnz as f64 / p.n as f64) > 8.9 && (p.nnz as f64 / p.n as f64) <= 9.0);
        let q = ProblemSpec::from_density("atmosmodl", 1_489_752, 6.9, 96);
        assert!((q.nnz as f64 / q.n as f64 - 6.9).abs() < 0.01);
        assert!(q.halo_words_per_rank > 0);
    }

    #[test]
    fn table_iii_ordering_holds_on_32_nodes() {
        // Who wins and in which order (Table III, 32 nodes): standard is the
        // slowest, two-stage the fastest.
        let iters = 60_300;
        let std = table3_times(SchemeKind::StandardCgs2, 32, 60_251);
        let bcgs2 = table3_times(SchemeKind::Bcgs2CholQr2, 32, 60_255);
        let pip2 = table3_times(SchemeKind::BcgsPip2, 32, 60_255);
        let two = table3_times(SchemeKind::TwoStage { bs: 60 }, 32, iters);
        assert!(two.ortho < pip2.ortho);
        assert!(pip2.ortho < bcgs2.ortho);
        assert!(bcgs2.ortho < std.ortho);
        assert!(two.total() < pip2.total());
        assert!(pip2.total() < bcgs2.total());
        assert!(bcgs2.total() < std.total());
    }

    #[test]
    fn ortho_speedup_factors_are_in_the_papers_range() {
        // Paper, 32 nodes: ortho speedup of s-step over standard ≈ 2.1×, of
        // two-stage over standard ≈ 5.4×.  The model should land within a
        // factor ~2 of those ratios.
        let std = table3_times(SchemeKind::StandardCgs2, 32, 60_251);
        let bcgs2 = table3_times(SchemeKind::Bcgs2CholQr2, 32, 60_255);
        let two = table3_times(SchemeKind::TwoStage { bs: 60 }, 32, 60_300);
        let s_bcgs2 = std.ortho / bcgs2.ortho;
        let s_two = std.ortho / two.ortho;
        assert!(
            s_bcgs2 > 1.3 && s_bcgs2 < 5.0,
            "bcgs2 ortho speedup {s_bcgs2}"
        );
        assert!(
            s_two > 2.5 && s_two < 12.0,
            "two-stage ortho speedup {s_two}"
        );
        assert!(s_two > s_bcgs2);
    }

    #[test]
    fn spmv_time_is_scheme_independent() {
        let a = table3_times(SchemeKind::StandardCgs2, 8, 10_000);
        let b = table3_times(SchemeKind::TwoStage { bs: 60 }, 8, 10_000);
        assert!((a.spmv - b.spmv).abs() < 1e-12);
    }

    #[test]
    fn strong_scaling_reduces_per_node_work_but_not_latency() {
        // Total time decreases with node count but the ortho fraction grows
        // (Fig. 10's message).
        let std1 = table3_times(SchemeKind::StandardCgs2, 1, 60_251);
        let std32 = table3_times(SchemeKind::StandardCgs2, 32, 60_251);
        assert!(std32.total() < std1.total());
        let frac1 = std1.ortho / std1.total();
        let frac32 = std32.ortho / std32.total();
        assert!(frac32 > frac1, "ortho fraction must grow with node count");
    }

    #[test]
    fn preconditioner_adds_cost_but_preserves_ordering() {
        let machine = MachineModel::summit_node();
        let nranks = 96;
        let problem = ProblemSpec::laplace2d(2000, 9, nranks);
        let with_gs =
            |scheme, iters| solver_time(scheme, &problem, &machine, nranks, 5, 60, iters, 2);
        let std = with_gs(SchemeKind::StandardCgs2, 20_000);
        let two = with_gs(SchemeKind::TwoStage { bs: 60 }, 20_000);
        assert!(std.precond > 0.0 && two.precond > 0.0);
        assert!(two.total() < std.total());
    }

    #[test]
    fn table_ii_shape_bs_sweep_improves_total_time() {
        // Table II: on 4 Vortex GPUs, growing bs from 5 to 60 reduces the
        // orthogonalization and total times monotonically.
        let machine = MachineModel::vortex_node();
        let nranks = 4;
        let problem = ProblemSpec::laplace2d(2000, 5, nranks);
        let mut prev = f64::INFINITY;
        for bs in [5usize, 20, 40, 60] {
            let t = solver_time(
                SchemeKind::TwoStage { bs },
                &problem,
                &machine,
                nranks,
                5,
                60,
                60_300,
                0,
            );
            assert!(t.ortho < prev, "bs {bs}");
            prev = t.ortho;
        }
    }
}
