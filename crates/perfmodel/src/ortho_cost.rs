//! Per-cycle cost assembly for each block orthogonalization scheme.
//!
//! The kernel sequences below mirror, one for one, the implementations in
//! the `blockortho` crate (and Figs. 2–5 of the paper).  A unit test
//! cross-checks the modeled number of global reductions against the counts
//! measured by actually running each scheme through the `distsim`
//! communicator statistics.

use crate::kernels::KernelCosts;

/// The orthogonalization schemes whose performance the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Standard GMRES with column-wise CGS2 (`s = 1`).
    StandardCgs2,
    /// Original s-step GMRES: BCGS2 with CholQR2.
    Bcgs2CholQr2,
    /// The paper's one-stage improvement: BCGS-PIP2.
    BcgsPip2,
    /// The paper's two-stage scheme with second step size `bs` (in columns).
    TwoStage {
        /// Second-stage block size.
        bs: usize,
    },
    /// Randomized CholQR (the sketched one-stage scheme): one fused
    /// sketch-and-projection reduce plus one BCGS-PIP polish per panel.
    /// Same 2 reduces per panel as BCGS-PIP2; the first reduce carries the
    /// extra `rows·nnz·s` sketch-slot words (see [`sketch_reduce_words`]).
    RandCholQr {
        /// Sketch rows `c` of the realized operator
        /// (`SketchOp::rows()`, i.e. `rows_per_col · (m + 1)`).
        rows: usize,
        /// Nonzero samples per sketch row (`SKETCH_NNZ_PER_ROW`).
        nnz: usize,
    },
    /// The two-stage scheme with the sketched first stage: the per-panel
    /// reduce is the fused sketch-and-projection instead of the fused
    /// Gram; the big-panel flush is unchanged.  Same reduce *count* as
    /// [`TwoStage`](Self::TwoStage).
    TwoStageSketched {
        /// Second-stage block size.
        bs: usize,
        /// Sketch rows `c` of the realized operator.
        rows: usize,
        /// Nonzero samples per sketch row.
        nnz: usize,
    },
}

/// Words one sketched-panel allreduce carries for an `s`-column panel over
/// a sketch with `rows` rows of `nnz` samples each: the slot-exchange
/// payload is one word per (sketch row, sample, panel column).  Mirrors
/// `SketchOp::reduce_words` in `distsim` exactly — the join is pinned by
/// `tests/comm_volume_validation.rs`.
pub fn sketch_reduce_words(rows: usize, nnz: usize, s: usize) -> usize {
    rows * nnz * s
}

impl SchemeKind {
    /// Label used in the generated tables (matches the paper's wording).
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::StandardCgs2 => "GMRES + CGS2",
            SchemeKind::Bcgs2CholQr2 => "s-step + BCGS2-CholQR2",
            SchemeKind::BcgsPip2 => "s-step + BCGS-PIP2",
            SchemeKind::TwoStage { .. } => "s-step + Two-stage",
            SchemeKind::RandCholQr { .. } => "s-step + RandCholQR",
            SchemeKind::TwoStageSketched { .. } => "s-step + Two-stage (sketched)",
        }
    }
}

/// Breakdown of the orthogonalization time of one restart cycle
/// (the quantities plotted in Figs. 10–12).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OrthoBreakdown {
    /// Local time of the dot-product GEMMs (`QᵀV`, Gram matrices).
    pub dot_products: f64,
    /// Local time of the vector-update GEMMs and TRSM normalizations.
    pub vector_updates: f64,
    /// Replicated small-matrix work (Cholesky factors, triangular updates).
    pub small_work: f64,
    /// Time spent in global all-reduces.
    pub allreduce: f64,
    /// Number of global all-reduces.
    pub reduces: usize,
}

impl OrthoBreakdown {
    /// Total orthogonalization time of the cycle.
    pub fn total(&self) -> f64 {
        self.dot_products + self.vector_updates + self.small_work + self.allreduce
    }

    fn add(&mut self, other: &OrthoBreakdown) {
        self.dot_products += other.dot_products;
        self.vector_updates += other.vector_updates;
        self.small_work += other.small_work;
        self.allreduce += other.allreduce;
        self.reduces += other.reduces;
    }
}

/// Cost of one BCGS-PIP call on a panel of `s` columns against `k` previous
/// columns.
fn pip_cost(costs: &KernelCosts<'_>, k: usize, s: usize) -> OrthoBreakdown {
    OrthoBreakdown {
        // Fused [Q, V]ᵀV: projection + Gram in one pass over the panel.
        dot_products: costs.gemm_tn(k, s) + costs.gemm_tn(s, s),
        vector_updates: costs.gemm_update(k, s) + costs.trsm(s),
        small_work: costs.small_factorization(s),
        allreduce: costs.allreduce((k + s) * s),
        reduces: 1,
    }
}

/// Cost of the sketched pre-conditioning of a panel of `s` columns against
/// `k` previous columns: one allreduce of the `rows·nnz·s` sketch slots,
/// the replicated sketch-space least squares + Householder QR of the small
/// sketched panel (the projection coefficients are computed *locally* from
/// the replicated `S·Q`, so the reduce carries no `k·s` projection block),
/// and the projection update + triangular scaling of the panel.
fn sketch_precondition_cost(
    costs: &KernelCosts<'_>,
    k: usize,
    s: usize,
    rows: usize,
    nnz: usize,
) -> OrthoBreakdown {
    OrthoBreakdown {
        dot_products: 0.0,
        vector_updates: costs.gemm_update(k, s) + costs.trsm(s),
        small_work: costs.small_factorization(s),
        allreduce: costs.allreduce(sketch_reduce_words(rows, nnz, s)),
        reduces: 1,
    }
}

/// Cost of one BCGS projection (`QᵀV` + update) of a panel of `s` columns
/// against `k` previous columns.
fn bcgs_cost(costs: &KernelCosts<'_>, k: usize, s: usize) -> OrthoBreakdown {
    OrthoBreakdown {
        dot_products: costs.gemm_tn(k, s),
        vector_updates: costs.gemm_update(k, s),
        small_work: 0.0,
        allreduce: costs.allreduce(k * s),
        reduces: 1,
    }
}

/// Cost of one CholQR of `s` columns.
fn cholqr_cost(costs: &KernelCosts<'_>, s: usize) -> OrthoBreakdown {
    OrthoBreakdown {
        dot_products: costs.gemm_tn(s, s),
        vector_updates: costs.trsm(s),
        small_work: costs.small_factorization(s),
        allreduce: costs.allreduce(s * s),
        reduces: 1,
    }
}

/// Orthogonalization cost of one restart cycle of `m` generated basis
/// vectors with step size `s` (panels of `s` columns; the initial residual
/// column is ignored — its cost is identical for every scheme and
/// negligible).
pub fn ortho_cycle_cost(
    scheme: SchemeKind,
    costs: &KernelCosts<'_>,
    m: usize,
    s: usize,
) -> OrthoBreakdown {
    let mut acc = OrthoBreakdown::default();
    match scheme {
        SchemeKind::StandardCgs2 => {
            // One column at a time: two projection passes + normalization.
            for c in 1..=m {
                let k = c; // previous columns
                acc.add(&bcgs_cost(costs, k, 1));
                acc.add(&bcgs_cost(costs, k, 1));
                acc.add(&OrthoBreakdown {
                    dot_products: costs.dot_local(),
                    vector_updates: costs.axpy(),
                    small_work: 0.0,
                    allreduce: costs.allreduce(1),
                    reduces: 1,
                });
            }
        }
        SchemeKind::Bcgs2CholQr2 => {
            let panels = m / s;
            for j in 0..panels {
                let k = j * s + 1;
                // BCGS + CholQR2 + BCGS + CholQR (Fig. 2b).
                acc.add(&bcgs_cost(costs, k, s));
                acc.add(&cholqr_cost(costs, s));
                acc.add(&cholqr_cost(costs, s));
                acc.add(&bcgs_cost(costs, k, s));
                acc.add(&cholqr_cost(costs, s));
            }
        }
        SchemeKind::BcgsPip2 => {
            let panels = m / s;
            for j in 0..panels {
                let k = j * s + 1;
                acc.add(&pip_cost(costs, k, s));
                acc.add(&pip_cost(costs, k, s));
            }
        }
        SchemeKind::TwoStage { bs } => {
            let panels = m / s;
            let mut big_start = 0usize; // columns before the current big panel
            let mut pending = 1usize; // pre-processed columns awaiting stage 2 (starts with the residual column)
            for j in 0..panels {
                let k = j * s + 1;
                // First stage: one BCGS-PIP against everything stored.
                acc.add(&pip_cost(costs, k, s));
                pending += s;
                if pending > bs || j == panels - 1 {
                    // Second stage on the accumulated big panel.
                    let width = pending;
                    acc.add(&pip_cost(costs, big_start, width));
                    big_start += width;
                    pending = 0;
                }
            }
        }
        SchemeKind::RandCholQr { rows, nnz } => {
            let panels = m / s;
            for j in 0..panels {
                let k = j * s + 1;
                // Sketched pre-conditioning + one BCGS-PIP polish.
                acc.add(&sketch_precondition_cost(costs, k, s, rows, nnz));
                acc.add(&pip_cost(costs, k, s));
            }
        }
        SchemeKind::TwoStageSketched { bs, rows, nnz } => {
            let panels = m / s;
            let mut big_start = 0usize;
            let mut pending = 1usize;
            for j in 0..panels {
                let k = j * s + 1;
                // First stage: sketched pre-conditioning of the panel.
                acc.add(&sketch_precondition_cost(costs, k, s, rows, nnz));
                pending += s;
                if pending > bs || j == panels - 1 {
                    let width = pending;
                    acc.add(&pip_cost(costs, big_start, width));
                    big_start += width;
                    pending = 0;
                }
            }
        }
    }
    acc
}

/// Number of global reductions one restart cycle of `m` basis vectors needs
/// (closed form, used to sanity-check the assembled model and quoted in the
/// reports).
pub fn ortho_reduce_count(scheme: SchemeKind, m: usize, s: usize) -> usize {
    match scheme {
        SchemeKind::StandardCgs2 => 3 * m,
        SchemeKind::Bcgs2CholQr2 => 5 * (m / s),
        SchemeKind::BcgsPip2 => 2 * (m / s),
        SchemeKind::TwoStage { bs } | SchemeKind::TwoStageSketched { bs, .. } => {
            let panels = m / s;
            let big_panels = m.div_ceil(bs); // ceil
            panels + big_panels
        }
        SchemeKind::RandCholQr { .. } => 2 * (m / s),
    }
}

/// Total number of `f64` words all-reduced by the orthogonalization of one
/// restart cycle — the message-*volume* companion of
/// [`ortho_reduce_count`], mirroring exactly the `allreduce(words)` terms
/// [`ortho_cycle_cost`] feeds the machine model:
///
/// * CGS2 column `c`: two `k`-word projections plus a one-word norm,
///   `k = c` previous columns;
/// * BCGS2 + CholQR2 panel: two `k·s`-word projections and three `s²`-word
///   Gram matrices;
/// * BCGS-PIP2 panel: two fused `(k + s)·s`-word reduces;
/// * two-stage: one fused `(k + s)·s`-word reduce per panel plus one
///   `(k' + w)·w`-word reduce per flushed big panel of `w` columns.
///
/// `tests/comm_volume_validation.rs` asserts these analytic volumes against
/// the `CommStats::allreduce_words` measured from running the real schemes
/// on the `distsim` substrate.
pub fn ortho_cycle_words(scheme: SchemeKind, m: usize, s: usize) -> usize {
    let mut words = 0usize;
    match scheme {
        SchemeKind::StandardCgs2 => {
            for c in 1..=m {
                words += 2 * c + 1;
            }
        }
        SchemeKind::Bcgs2CholQr2 => {
            for j in 0..m / s {
                let k = j * s + 1;
                words += 2 * k * s + 3 * s * s;
            }
        }
        SchemeKind::BcgsPip2 => {
            for j in 0..m / s {
                let k = j * s + 1;
                words += 2 * (k + s) * s;
            }
        }
        SchemeKind::TwoStage { bs } => {
            let panels = m / s;
            let mut big_start = 0usize;
            let mut pending = 1usize; // the residual column awaits stage 2
            for j in 0..panels {
                let k = j * s + 1;
                words += (k + s) * s;
                pending += s;
                if pending > bs || j == panels - 1 {
                    words += (big_start + pending) * pending;
                    big_start += pending;
                    pending = 0;
                }
            }
        }
        SchemeKind::RandCholQr { rows, nnz } => {
            for j in 0..m / s {
                let k = j * s + 1;
                // Sketch-only pre-conditioning reduce + fused polish.
                words += sketch_reduce_words(rows, nnz, s);
                words += (k + s) * s;
            }
        }
        SchemeKind::TwoStageSketched { bs, rows, nnz } => {
            let panels = m / s;
            let mut big_start = 0usize;
            let mut pending = 1usize;
            for j in 0..panels {
                words += sketch_reduce_words(rows, nnz, s);
                pending += s;
                if pending > bs || j == panels - 1 {
                    words += (big_start + pending) * pending;
                    big_start += pending;
                    pending = 0;
                }
            }
        }
    }
    words
}

/// Number of global reductions one restart cycle of a **block** solve with
/// `k` right-hand sides needs — the closed form behind the batched-solver
/// headline.  `m` and `s` stay in block steps (each MPK panel carries
/// `k·s` columns); `bs` stays in *scalar* columns, matching
/// `OrthoKind::for_block_width` scaling the flush threshold to `k·bs`.
///
/// For every panel-blocked scheme the count is **independent of `k`**:
/// the panel schedule is `m / s` panels regardless of width, and the
/// two-stage pending counter starts at `k` and grows by `k·s` per panel,
/// so `pending > k·bs` fires on exactly the panels the scalar cadence
/// fires on.  Only column-wise CGS2 scales with `k` (it pays 3 reduces
/// per *column*, honestly reported here).  At `k = 1` this is exactly
/// [`ortho_reduce_count`].
pub fn block_ortho_reduce_count(scheme: SchemeKind, m: usize, s: usize, k: usize) -> usize {
    assert!(k >= 1, "block width must be at least 1");
    match scheme {
        SchemeKind::StandardCgs2 => 3 * k * m,
        SchemeKind::Bcgs2CholQr2 => 5 * (m / s),
        SchemeKind::BcgsPip2 => 2 * (m / s),
        SchemeKind::TwoStage { bs } | SchemeKind::TwoStageSketched { bs, .. } => {
            m / s + m.div_ceil(bs)
        }
        SchemeKind::RandCholQr { .. } => 2 * (m / s),
    }
}

/// Total `f64` words all-reduced by one **block** restart cycle — the
/// volume companion of [`block_ortho_reduce_count`], generalizing
/// [`ortho_cycle_words`] over the block width: panels are `k·s` columns
/// against `k·(j·s + 1)` previous columns, the two-stage pending counter
/// starts at the `k` residual columns, and sketched reduces carry
/// `rows·nnz·k·s` slot words (`rows` is the realized sketch height,
/// `rows_per_col · k·(m + 1)`).  While the reduce *count* stays flat in
/// `k`, the words grow ~`k²` — the latency-vs-bandwidth trade the batched
/// solver makes, validated against measured `CommStats` for
/// `k ∈ {1, 2, 4}` in `tests/comm_volume_validation.rs`.  At `k = 1` this
/// is exactly [`ortho_cycle_words`].
pub fn block_ortho_cycle_words(scheme: SchemeKind, m: usize, s: usize, k: usize) -> usize {
    assert!(k >= 1, "block width must be at least 1");
    let mut words = 0usize;
    let w = k * s; // panel width in columns
    match scheme {
        SchemeKind::StandardCgs2 => {
            // Column-wise over the k·m generated columns; the k residual
            // columns are the cycle setup, as in the scalar form.
            for c in k..k * (m + 1) {
                words += 2 * c + 1;
            }
        }
        SchemeKind::Bcgs2CholQr2 => {
            for j in 0..m / s {
                let p = k * (j * s + 1);
                words += 2 * p * w + 3 * w * w;
            }
        }
        SchemeKind::BcgsPip2 => {
            for j in 0..m / s {
                let p = k * (j * s + 1);
                words += 2 * (p + w) * w;
            }
        }
        SchemeKind::TwoStage { bs } => {
            let panels = m / s;
            let mut big_start = 0usize;
            let mut pending = k; // the residual block awaits stage 2
            for j in 0..panels {
                let p = k * (j * s + 1);
                words += (p + w) * w;
                pending += w;
                if pending > k * bs || j == panels - 1 {
                    words += (big_start + pending) * pending;
                    big_start += pending;
                    pending = 0;
                }
            }
        }
        SchemeKind::RandCholQr { rows, nnz } => {
            for j in 0..m / s {
                let p = k * (j * s + 1);
                words += sketch_reduce_words(rows, nnz, w);
                words += (p + w) * w;
            }
        }
        SchemeKind::TwoStageSketched { bs, rows, nnz } => {
            let panels = m / s;
            let mut big_start = 0usize;
            let mut pending = k;
            for j in 0..panels {
                words += sketch_reduce_words(rows, nnz, w);
                pending += w;
                if pending > k * bs || j == panels - 1 {
                    words += (big_start + pending) * pending;
                    big_start += pending;
                    pending = 0;
                }
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    fn costs(machine: &MachineModel, nranks: usize) -> KernelCosts<'_> {
        KernelCosts::new(machine, 4_000_000 / nranks.max(1), nranks)
    }

    #[test]
    fn reduce_counts_match_closed_forms() {
        let m = 60;
        let s = 5;
        let machine = MachineModel::summit_node();
        let c = costs(&machine, 24);
        for scheme in [
            SchemeKind::StandardCgs2,
            SchemeKind::Bcgs2CholQr2,
            SchemeKind::BcgsPip2,
            SchemeKind::TwoStage { bs: 60 },
            SchemeKind::TwoStage { bs: 20 },
            SchemeKind::RandCholQr { rows: 488, nnz: 4 },
            SchemeKind::TwoStageSketched {
                bs: 20,
                rows: 488,
                nnz: 4,
            },
        ] {
            let assembled = ortho_cycle_cost(
                scheme,
                &c,
                m,
                if scheme == SchemeKind::StandardCgs2 {
                    1
                } else {
                    s
                },
            );
            let closed = ortho_reduce_count(
                scheme,
                m,
                if scheme == SchemeKind::StandardCgs2 {
                    1
                } else {
                    s
                },
            );
            assert_eq!(assembled.reduces, closed, "{scheme:?}");
        }
    }

    #[test]
    fn modeled_reduce_counts_match_measured_counts() {
        // Run the actual schemes on a small problem and compare the measured
        // all-reduce counts (excluding the initial single-column panel, which
        // the model folds into the cycle setup) against the model.
        use blockortho::{make_orthogonalizer, OrthoKind};
        use distsim::{DistMultiVector, SerialComm};
        let m = 20;
        let s = 5;
        let v = dense::Matrix::from_fn(300, m + 1, |i, j| {
            ((i * 7 + j * 3) % 13) as f64 * 0.2 + if i == j { 3.0 } else { 0.0 }
        });
        let pairs = [
            (OrthoKind::Bcgs2CholQr2, SchemeKind::Bcgs2CholQr2),
            (OrthoKind::BcgsPip2, SchemeKind::BcgsPip2),
            (
                OrthoKind::TwoStage { big_panel: 20 },
                SchemeKind::TwoStage { bs: 20 },
            ),
            (
                OrthoKind::TwoStage { big_panel: 10 },
                SchemeKind::TwoStage { bs: 10 },
            ),
            (
                OrthoKind::RandCholQr,
                // rows = rows_per_col (8, default) · total_cols (21).
                SchemeKind::RandCholQr { rows: 168, nnz: 4 },
            ),
            (
                OrthoKind::TwoStageSketched { big_panel: 10 },
                SchemeKind::TwoStageSketched {
                    bs: 10,
                    rows: 168,
                    nnz: 4,
                },
            ),
        ];
        for (kind, scheme) in pairs {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            let mut r = dense::Matrix::zeros(m + 1, m + 1);
            let mut ortho = make_orthogonalizer(kind, m + 1);
            ortho.orthogonalize_panel(&mut basis, 0..1, &mut r).unwrap();
            let before = basis.comm().stats().snapshot();
            let mut col = 1;
            while col < m + 1 {
                ortho
                    .orthogonalize_panel(&mut basis, col..col + s, &mut r)
                    .unwrap();
                col += s;
            }
            ortho.finish(&mut basis, &mut r).unwrap();
            let measured = basis.comm().stats().snapshot().since(&before).allreduces;
            let modeled = ortho_reduce_count(scheme, m, s);
            assert_eq!(measured, modeled, "{scheme:?}");
        }
    }

    #[test]
    fn scheme_ordering_matches_the_paper_at_scale() {
        // On 192 GPUs (32 Summit nodes) with the paper's problem size the
        // model must reproduce: two-stage < BCGS-PIP2 < BCGS2-CholQR2 <
        // standard CGS2 in orthogonalization time per cycle.
        let machine = MachineModel::summit_node();
        let nranks = 192;
        let c = costs(&machine, nranks);
        let m = 60;
        let t_std = ortho_cycle_cost(SchemeKind::StandardCgs2, &c, m, 1).total();
        let t_bcgs2 = ortho_cycle_cost(SchemeKind::Bcgs2CholQr2, &c, m, 5).total();
        let t_pip2 = ortho_cycle_cost(SchemeKind::BcgsPip2, &c, m, 5).total();
        let t_two = ortho_cycle_cost(SchemeKind::TwoStage { bs: 60 }, &c, m, 5).total();
        assert!(t_two < t_pip2, "two-stage {t_two} vs pip2 {t_pip2}");
        assert!(t_pip2 < t_bcgs2, "pip2 {t_pip2} vs bcgs2 {t_bcgs2}");
        assert!(t_bcgs2 < t_std, "bcgs2 {t_bcgs2} vs standard {t_std}");
    }

    #[test]
    fn larger_second_step_size_is_faster_as_in_table_ii() {
        let machine = MachineModel::vortex_node();
        let nranks = 4;
        let c = costs(&machine, nranks);
        let m = 60;
        let mut prev = f64::INFINITY;
        for bs in [5usize, 20, 40, 60] {
            let t = ortho_cycle_cost(SchemeKind::TwoStage { bs }, &c, m, 5).total();
            assert!(t < prev, "bs = {bs}: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn speedup_over_standard_grows_with_node_count() {
        // The paper's Table III: the orthogonalization speedup of the s-step
        // variants over standard GMRES grows as nodes are added (latency
        // becomes dominant).
        let machine = MachineModel::summit_node();
        let m = 60;
        let speedup = |nodes: usize| {
            let nranks = nodes * machine.gpus_per_node;
            let c = costs(&machine, nranks);
            ortho_cycle_cost(SchemeKind::StandardCgs2, &c, m, 1).total()
                / ortho_cycle_cost(SchemeKind::TwoStage { bs: 60 }, &c, m, 5).total()
        };
        assert!(speedup(32) > speedup(1));
    }

    #[test]
    fn block_closed_forms_collapse_to_scalar_at_width_one() {
        let m = 60;
        let s = 5;
        for scheme in [
            SchemeKind::StandardCgs2,
            SchemeKind::Bcgs2CholQr2,
            SchemeKind::BcgsPip2,
            SchemeKind::TwoStage { bs: 60 },
            SchemeKind::TwoStage { bs: 20 },
            SchemeKind::RandCholQr { rows: 488, nnz: 4 },
            SchemeKind::TwoStageSketched {
                bs: 20,
                rows: 488,
                nnz: 4,
            },
        ] {
            let step = if scheme == SchemeKind::StandardCgs2 {
                1
            } else {
                s
            };
            assert_eq!(
                block_ortho_reduce_count(scheme, m, step, 1),
                ortho_reduce_count(scheme, m, step),
                "{scheme:?}: counts"
            );
            assert_eq!(
                block_ortho_cycle_words(scheme, m, step, 1),
                ortho_cycle_words(scheme, m, step),
                "{scheme:?}: words"
            );
        }
    }

    #[test]
    fn block_reduce_count_is_width_independent_for_panel_schemes() {
        // The batched-solver headline in closed form: the reduce count of
        // every panel-blocked scheme is flat in k (only column-wise CGS2
        // pays per column), while the words scale superlinearly.
        let m = 60;
        let s = 5;
        for scheme in [
            SchemeKind::Bcgs2CholQr2,
            SchemeKind::BcgsPip2,
            SchemeKind::TwoStage { bs: 20 },
            SchemeKind::TwoStageSketched {
                bs: 20,
                rows: 488,
                nnz: 4,
            },
        ] {
            let base = block_ortho_reduce_count(scheme, m, s, 1);
            for k in [2usize, 4, 8] {
                assert_eq!(
                    block_ortho_reduce_count(scheme, m, s, k),
                    base,
                    "{scheme:?} at k = {k}"
                );
                assert!(
                    block_ortho_cycle_words(scheme, m, s, k)
                        >= k * block_ortho_cycle_words(scheme, m, s, 1),
                    "{scheme:?} at k = {k}: words must grow at least linearly"
                );
            }
        }
        assert_eq!(
            block_ortho_reduce_count(SchemeKind::StandardCgs2, m, 1, 4),
            4 * ortho_reduce_count(SchemeKind::StandardCgs2, m, 1)
        );
    }

    #[test]
    fn breakdown_components_are_all_positive() {
        let machine = MachineModel::summit_node();
        let c = costs(&machine, 6);
        let b = ortho_cycle_cost(SchemeKind::BcgsPip2, &c, 60, 5);
        assert!(b.dot_products > 0.0);
        assert!(b.vector_updates > 0.0);
        assert!(b.small_work > 0.0);
        assert!(b.allreduce > 0.0);
        assert!(
            (b.total() - (b.dot_products + b.vector_updates + b.small_work + b.allreduce)).abs()
                < 1e-12
        );
    }
}
