//! Criterion micro-benchmarks of the orthogonalization kernels
//! (CholQR, CholQR2, Householder QR, BCGS-PIP) on a tall-skinny panel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distsim::{DistMultiVector, SerialComm};

fn panel(n: usize, s: usize) -> dense::Matrix {
    dense::Matrix::from_fn(n, s, |i, j| {
        ((i * 31 + j * 17) % 29) as f64 * 0.07 + if i % (j + 2) == 0 { 1.5 } else { 0.0 }
    })
}

fn bench_intra_kernels(c: &mut Criterion) {
    let n = 50_000;
    let s = 5;
    let v = panel(n, s);
    let mut group = c.benchmark_group("intra_block_qr");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("cholqr", s), |b| {
        b.iter(|| {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            blockortho::kernels::cholqr(&mut basis, 0..s).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("cholqr2", s), |b| {
        b.iter(|| {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            blockortho::kernels::cholqr2(&mut basis, 0..s).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("householder_qr", s), |b| {
        b.iter(|| dense::householder_qr(&v))
    });
    group.bench_function(BenchmarkId::new("mixed_precision_cholqr", s), |b| {
        b.iter(|| {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            blockortho::kernels::mixed_precision_cholqr(&mut basis, 0..s).unwrap()
        })
    });
    group.finish();
}

fn bench_inter_kernels(c: &mut Criterion) {
    let n = 50_000;
    let s = 5;
    let prev = 30;
    let v = panel(n, prev + s);
    let mut group = c.benchmark_group("inter_block");
    group.sample_size(10);
    group.bench_function("bcgs", |b| {
        b.iter(|| {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            blockortho::kernels::bcgs(&mut basis, 0..prev, prev..prev + s)
        })
    });
    group.bench_function("bcgs_pip", |b| {
        b.iter(|| {
            let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
            blockortho::kernels::bcgs_pip(&mut basis, 0..prev, prev..prev + s).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_intra_kernels, bench_inter_kernels);
criterion_main!(benches);
