//! Criterion benchmarks of the substrate kernels: sparse matrix–vector
//! product on the model problems and the tall-skinny GEMM family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(10);
    let problems: Vec<(&str, sparse::Csr)> = vec![
        ("laplace2d_5pt_300", sparse::laplace2d_5pt(300, 300)),
        ("laplace2d_9pt_300", sparse::laplace2d_9pt(300, 300)),
        ("laplace3d_7pt_40", sparse::laplace3d_7pt(40, 40, 40)),
    ];
    for (name, a) in problems {
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut y = vec![0.0; a.nrows()];
        group.bench_function(BenchmarkId::new("csr", name), |b| {
            b.iter(|| a.spmv(&x, &mut y))
        });
    }
    group.finish();
}

fn bench_tall_skinny_gemm(c: &mut Criterion) {
    let n = 200_000;
    let mut group = c.benchmark_group("tall_skinny_gemm");
    group.sample_size(10);
    for &(k, s) in &[(5usize, 5usize), (30, 5), (60, 60)] {
        let a = dense::Matrix::from_fn(n, k, |i, j| ((i + j) % 7) as f64 * 0.3);
        let b = dense::Matrix::from_fn(n, s, |i, j| ((i * 3 + j) % 5) as f64 * 0.2);
        group.bench_function(BenchmarkId::new("gemm_tn", format!("{k}x{s}")), |bch| {
            bch.iter(|| dense::gemm_tn(&a.view(), &b.view()))
        });
        let r = dense::Matrix::from_fn(k, s, |i, j| if i <= j { 0.5 } else { 0.1 });
        group.bench_function(BenchmarkId::new("gemm_update", format!("{k}x{s}")), |bch| {
            bch.iter(|| {
                let mut v = b.clone();
                dense::gemm_nn_minus(&mut v.view_mut(), &a.view(), &r);
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_tall_skinny_gemm);
criterion_main!(benches);
