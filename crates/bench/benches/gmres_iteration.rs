//! Criterion benchmark of full GMRES solves (one restart cycle worth of
//! iterations) on a 2D Laplace problem, comparing the solver variants
//! end-to-end as they run on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssgmres::{standard_gmres_config, GmresConfig, OrthoKind, SStepGmres};

fn bench_one_cycle(c: &mut Criterion) {
    let a = sparse::laplace2d_9pt(120, 120);
    let b = a.spmv_alloc(&vec![1.0; a.nrows()]);
    let mut group = c.benchmark_group("gmres_one_cycle");
    group.sample_size(10);
    let variants: [(&str, GmresConfig); 4] = [
        (
            "standard_cgs2",
            GmresConfig {
                restart: 60,
                max_restarts: 1,
                tol: 1e-30,
                ..standard_gmres_config()
            },
        ),
        (
            "sstep_bcgs2_cholqr2",
            GmresConfig {
                restart: 60,
                step_size: 5,
                max_restarts: 1,
                tol: 1e-30,
                ortho: OrthoKind::Bcgs2CholQr2,
                ..GmresConfig::default()
            },
        ),
        (
            "sstep_bcgs_pip2",
            GmresConfig {
                restart: 60,
                step_size: 5,
                max_restarts: 1,
                tol: 1e-30,
                ortho: OrthoKind::BcgsPip2,
                ..GmresConfig::default()
            },
        ),
        (
            "sstep_two_stage",
            GmresConfig {
                restart: 60,
                step_size: 5,
                max_restarts: 1,
                tol: 1e-30,
                ortho: OrthoKind::TwoStage { big_panel: 60 },
                ..GmresConfig::default()
            },
        ),
    ];
    for (name, config) in variants {
        let solver = SStepGmres::new(config);
        group.bench_function(BenchmarkId::from_parameter(name), |bch| {
            bch.iter(|| solver.solve_serial(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_cycle);
criterion_main!(benches);
