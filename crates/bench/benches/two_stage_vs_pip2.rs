//! Criterion benchmark comparing the block orthogonalization schemes over a
//! full restart cycle of `m = 60` basis vectors with panels of `s = 5`
//! (the paper's configuration), measured as wall-clock time of the actual
//! Rust kernels on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distsim::{DistMultiVector, SerialComm};

fn basis_matrix(n: usize, cols: usize) -> dense::Matrix {
    dense::Matrix::from_fn(n, cols, |i, j| {
        ((i * 13 + j * 7) % 19) as f64 * 0.11 + if (i + j) % 5 == 0 { 2.0 } else { 0.0 }
    })
}

fn run_cycle(kind: blockortho::OrthoKind, v: &dense::Matrix, s: usize) {
    let cols = v.ncols();
    let mut basis = DistMultiVector::from_matrix(SerialComm::new(), v.clone());
    let mut r = dense::Matrix::zeros(cols, cols);
    let mut ortho = blockortho::make_orthogonalizer(kind, cols);
    ortho.orthogonalize_panel(&mut basis, 0..1, &mut r).unwrap();
    let mut c = 1;
    while c < cols {
        let end = (c + s).min(cols);
        ortho
            .orthogonalize_panel(&mut basis, c..end, &mut r)
            .unwrap();
        c = end;
    }
    ortho.finish(&mut basis, &mut r).unwrap();
}

fn bench_cycle(c: &mut Criterion) {
    let n = 40_000;
    let m = 60;
    let s = 5;
    let v = basis_matrix(n, m + 1);
    let mut group = c.benchmark_group("ortho_cycle_m60_s5");
    group.sample_size(10);
    let kinds = [
        ("bcgs2_cholqr2", blockortho::OrthoKind::Bcgs2CholQr2),
        ("bcgs_pip2", blockortho::OrthoKind::BcgsPip2),
        (
            "two_stage_bs20",
            blockortho::OrthoKind::TwoStage { big_panel: 20 },
        ),
        (
            "two_stage_bs60",
            blockortho::OrthoKind::TwoStage { big_panel: 60 },
        ),
        ("columnwise_cgs2", blockortho::OrthoKind::Cgs2),
    ];
    for (name, kind) in kinds {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                run_cycle(
                    kind,
                    &v,
                    if kind == blockortho::OrthoKind::Cgs2 {
                        1
                    } else {
                        s
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
